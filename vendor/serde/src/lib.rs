//! Offline stand-in for `serde`.
//!
//! The build container has no crates.io access, so the real serde cannot
//! be fetched. This shim keeps the workspace's `#[derive(Serialize,
//! Deserialize)]` sites compiling and `serde_json` working by replacing
//! serde's visitor architecture with a concrete value tree: `Serialize`
//! renders into [`Value`], `Deserialize` parses out of it. That is a much
//! smaller contract than real serde, but it is all this workspace uses
//! (derives on plain structs/enums + `serde_json::to_string_pretty`).
//!
//! If the real serde ever becomes available, deleting `vendor/` and
//! repointing `[workspace.dependencies]` is the entire migration.

use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (field order = declaration order).
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Look up a struct field in a serialized map (derive-generated code).
pub fn field<'a>(map: &'a [(String, Value)], name: &str) -> Result<&'a Value, Error> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| Error::custom(format!("missing field `{name}`")))
}

macro_rules! impl_int {
    ($variant:ident: $($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::$variant(*self as _)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let out = match *v {
                    Value::I64(n) => <$t>::try_from(n).ok(),
                    Value::U64(n) => <$t>::try_from(n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    Error::custom(concat!("expected in-range integer for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(I64: i8, i16, i32, i64, isize);
impl_int!(U64: u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64().map(|f| f as $t).ok_or_else(|| Error::custom("expected number"))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(Deserialize::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Deserialize::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::custom("expected tuple sequence"))?;
                let mut it = seq.iter();
                Ok(($(
                    {
                        let _ = $idx; // positional: consume in order
                        $name::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                    },
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
        assert_eq!(
            <(usize, usize, usize)>::from_value(&(1usize, 2usize, 3usize).to_value()).unwrap(),
            (1, 2, 3)
        );
    }

    #[test]
    fn vec_and_option_roundtrip() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Value::U64(9)).unwrap(), Some(9));
    }

    #[test]
    fn field_lookup() {
        let m = vec![("a".to_string(), Value::U64(1))];
        assert!(field(&m, "a").is_ok());
        assert!(field(&m, "b").is_err());
    }
}
