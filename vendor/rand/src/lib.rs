//! Offline stand-in for `rand` 0.8: the trait surface only.
//!
//! The concrete generator lives in the sibling `rand_chacha` shim; this
//! crate supplies `RngCore`, `SeedableRng`, and the `Rng` extension trait
//! (`gen`, `gen_range`, `gen_bool`) the workspace calls. Floating-point
//! conversion follows rand's convention: 53 random mantissa bits mapped
//! uniformly onto `[0, 1)`. Integer `gen_range` reproduces upstream
//! 0.8.5's `UniformInt::sample_single` exactly — Lemire widening-multiply
//! rejection (exact-modulo zone for ≤16-bit types, bitmask zone above) —
//! so integer draws consume the same generator words and yield the same
//! values as real rand over any `RngCore`.

use std::ops::Range;

/// Raw generator interface: a source of uniform random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with the same PCG32-style scheme
    /// rand_core 0.6 uses, so `seed_from_u64(s)` produces bit-identical
    /// seeds (and therefore identical streams) to upstream rand 0.8.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a generator's raw words.
pub trait Uniformable: Sized + Copy + PartialOrd {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl Uniformable for f64 {
    // rand 0.8's `Standard` for f64: 53 mantissa bits mapped onto [0, 1).
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
    // rand 0.8's `UniformFloat::sample_single`: draw in [1, 2) via the
    // exponent trick (52 bits), shift to [0, 1), scale, reject overshoot.
    // Upstream computes `value1_2 * scale + (low - scale)` instead; the
    // two agree except on a ~2^-52-probability rounding edge (where
    // upstream can even yield exactly 0.0 for `MIN_POSITIVE..1.0` —
    // this form never returns below `low`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        let scale = range.end - range.start;
        loop {
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | 0x3FF0_0000_0000_0000);
            let res = (value1_2 - 1.0) * scale + range.start;
            if res < range.end {
                return res;
            }
        }
    }
}

impl Uniformable for f32 {
    // rand 0.8's `Standard` for f32: 24 mantissa bits onto [0, 1).
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f32>) -> f32 {
        assert!(range.start < range.end, "empty range");
        let scale = range.end - range.start;
        loop {
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | 0x3F80_0000);
            let res = (value1_2 - 1.0) * scale + range.start;
            if res < range.end {
                return res;
            }
        }
    }
}

// Integer sampling reproduces upstream rand 0.8.5 exactly:
//
// * `sample_unit` mirrors the `Standard` distribution's width rule —
//   types ≤ 32 bits truncate one `next_u32`, 64-bit types take one
//   `next_u64`, and `usize`/`isize` follow the target's pointer width —
//   so each draw consumes the same generator words as upstream.
// * `sample_range` is `UniformInt::sample_single` (Lemire's
//   widening-multiply rejection): `gen_range(low..high)` delegates to
//   `sample_single_inclusive(low, high - 1)`, whose span over a non-empty
//   exclusive range is `high - low` (never zero, so the upstream
//   full-range special case cannot trigger). A raw `$u_large` word `v` is
//   widened, multiplied by the span, and split into `(hi, lo)` halves;
//   `hi` is the candidate and `lo` is rejected above the zone — the exact
//   modulo zone for the small types (≤ 16 bits), the shifted power-of-two
//   approximation for the rest, both per upstream.
macro_rules! impl_uniform_int {
    ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty, $unit:ident) => {
        impl Uniformable for $ty {
            fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> $ty {
                rng.$unit() as $ty
            }
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$ty>) -> $ty {
                assert!(range.start < range.end, "empty range");
                let span =
                    (range.end as $unsigned).wrapping_sub(range.start as $unsigned) as $u_large;
                let zone = if <$unsigned>::BITS <= 16 {
                    // Exact zone by modulo — upstream's fast path for the
                    // 8/16-bit types.
                    let ints_to_reject = (<$u_large>::MAX - span + 1) % span;
                    <$u_large>::MAX - ints_to_reject
                } else {
                    // Conservative power-of-two zone; the `- 1` keeps the
                    // `<=` comparison unbiased (upstream's comment).
                    (span << span.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v = rng.$unit() as $u_large;
                    let m = (v as $wide) * (span as $wide);
                    let hi = (m >> <$u_large>::BITS) as $u_large;
                    let lo = m as $u_large;
                    if lo <= zone {
                        return range.start.wrapping_add(hi as $ty);
                    }
                }
            }
        }
    };
}

impl_uniform_int!(u8, u8, u32, u64, next_u32);
impl_uniform_int!(u16, u16, u32, u64, next_u32);
impl_uniform_int!(u32, u32, u32, u64, next_u32);
impl_uniform_int!(u64, u64, u64, u128, next_u64);
impl_uniform_int!(i8, u8, u32, u64, next_u32);
impl_uniform_int!(i16, u16, u32, u64, next_u32);
impl_uniform_int!(i32, u32, u32, u64, next_u32);
impl_uniform_int!(i64, u64, u64, u128, next_u64);
#[cfg(target_pointer_width = "64")]
impl_uniform_int!(usize, usize, usize, u128, next_u64);
#[cfg(target_pointer_width = "64")]
impl_uniform_int!(isize, usize, usize, u128, next_u64);
#[cfg(target_pointer_width = "32")]
impl_uniform_int!(usize, usize, usize, u64, next_u32);
#[cfg(target_pointer_width = "32")]
impl_uniform_int!(isize, usize, usize, u64, next_u32);

/// User-facing extension methods, auto-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Uniformable>(&mut self) -> T {
        T::sample_unit(self)
    }

    fn gen_range<T: Uniformable>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_unit(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Placeholder module mirroring rand's layout (no OS entropy offline).
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respected() {
        let mut r = Lcg(3);
        for _ in 0..1000 {
            let v = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
            let i = r.gen_range(5usize..17);
            assert!((5..17).contains(&i));
        }
    }

    /// Replays a fixed word tape, so the tests below pin the exact
    /// arithmetic rand 0.8.5 performs on known generator output.
    struct Tape {
        words: Vec<u64>,
        i: usize,
    }

    impl Tape {
        fn new(words: &[u64]) -> Self {
            Tape { words: words.to_vec(), i: 0 }
        }
    }

    impl RngCore for Tape {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            let w = self.words[self.i];
            self.i += 1;
            w
        }
    }

    #[test]
    fn u32_gen_range_is_rand_08_lemire_rejection() {
        // gen_range(0u32..10) = sample_single_inclusive(0, 9):
        // span 10, zone = (10 << 28) − 1 = 0x9FFF_FFFF.
        //   v = 0           → hi 0, lo 0              → accept 0
        //   v = 0x8000_0000 → 10·v = 0x5_0000_0000    → hi 5, lo 0 → 5
        //   v = 0xFFFF_FFFF → 10·v = 0x9_FFFF_FFF6    → lo 0xFFFF_FFF6
        //                     > zone → REJECT, consume another word
        //   v = 7           → hi 0, lo 70             → accept 0
        let mut r = Tape::new(&[0, 0x8000_0000, 0xFFFF_FFFF, 7]);
        assert_eq!(r.gen_range(0u32..10), 0);
        assert_eq!(r.gen_range(0u32..10), 5);
        assert_eq!(r.gen_range(0u32..10), 0);
        assert_eq!(r.i, 4, "the rejected word must be consumed, as upstream does");
    }

    #[test]
    fn small_int_gen_range_uses_the_exact_modulo_zone() {
        // i8 takes upstream's ≤16-bit fast path: gen_range(-128i8..127)
        // has inclusive span 255, ints_to_reject = (2³² − 255) % 255 = 1,
        // zone = 0xFFFF_FFFE. v = 0xFFFF_FFFF → 255·v = 0xFE_FFFF_FF01 →
        // hi 254, lo 0xFFFF_FF01 ≤ zone → accept −128 + 254 = 126, the
        // range's top value.
        let mut r = Tape::new(&[0xFFFF_FFFF]);
        assert_eq!(r.gen_range(-128i8..127), 126);
        assert_eq!(r.i, 1);
    }

    #[test]
    fn u64_gen_range_widens_through_u128() {
        // gen_range(0u64..6): span 6, zone = (6 << 61) − 1 =
        // 0xBFFF_FFFF_FFFF_FFFF.
        //   v = u64::MAX → 6·v = 0x5_FFFF_FFFF_FFFF_FFFA → lo > zone →
        //                  REJECT
        //   v = 3        → hi 0 → accept 0
        //   v = 1 << 62  → 6·v = 0x1_8000_…_0000 → hi 1, lo 0x8000_… ≤
        //                  zone → accept 1
        let mut r = Tape::new(&[u64::MAX, 3, 1 << 62]);
        assert_eq!(r.gen_range(0u64..6), 0);
        assert_eq!(r.gen_range(0u64..6), 1);
        assert_eq!(r.i, 3);
    }

    #[test]
    fn integer_sample_unit_width_matches_rand_08() {
        // Standard-distribution width rule: ≤32-bit types truncate one
        // u32 draw, 64-bit types take one u64 draw.
        let mut r = Tape::new(&[0x0102_0304, 0xDEAD_BEEF_CAFE_F00D]);
        let b: u8 = r.gen();
        assert_eq!(b, 0x04, "u8 truncates a u32 word");
        let w: u64 = r.gen();
        assert_eq!(w, 0xDEAD_BEEF_CAFE_F00D);
        assert_eq!(r.i, 2);
    }

    #[test]
    fn gen_range_covers_bounds_and_stays_inside() {
        let mut r = Lcg(11);
        let (mut saw_lo, mut saw_hi) = (false, false);
        for _ in 0..4000 {
            let v = r.gen_range(-3i32..3);
            assert!((-3..3).contains(&v));
            saw_lo |= v == -3;
            saw_hi |= v == 2;
        }
        assert!(saw_lo && saw_hi, "both range ends must be reachable");
    }
}
