//! Offline stand-in for `rand` 0.8: the trait surface only.
//!
//! The concrete generator lives in the sibling `rand_chacha` shim; this
//! crate supplies `RngCore`, `SeedableRng`, and the `Rng` extension trait
//! (`gen`, `gen_range`, `gen_bool`) the workspace calls. Floating-point
//! conversion follows rand's convention: 53 random mantissa bits mapped
//! uniformly onto `[0, 1)`.

use std::ops::Range;

/// Raw generator interface: a source of uniform random words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed with the same PCG32-style scheme
    /// rand_core 0.6 uses, so `seed_from_u64(s)` produces bit-identical
    /// seeds (and therefore identical streams) to upstream rand 0.8.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            let n = chunk.len();
            chunk.copy_from_slice(&x.to_le_bytes()[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types samplable uniformly from a generator's raw words.
pub trait Uniformable: Sized + Copy + PartialOrd {
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl Uniformable for f64 {
    // rand 0.8's `Standard` for f64: 53 mantissa bits mapped onto [0, 1).
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
    // rand 0.8's `UniformFloat::sample_single`: draw in [1, 2) via the
    // exponent trick (52 bits), shift to [0, 1), scale, reject overshoot.
    // Upstream computes `value1_2 * scale + (low - scale)` instead; the
    // two agree except on a ~2^-52-probability rounding edge (where
    // upstream can even yield exactly 0.0 for `MIN_POSITIVE..1.0` —
    // this form never returns below `low`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        let scale = range.end - range.start;
        loop {
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | 0x3FF0_0000_0000_0000);
            let res = (value1_2 - 1.0) * scale + range.start;
            if res < range.end {
                return res;
            }
        }
    }
}

impl Uniformable for f32 {
    // rand 0.8's `Standard` for f32: 24 mantissa bits onto [0, 1).
    fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f32>) -> f32 {
        assert!(range.start < range.end, "empty range");
        let scale = range.end - range.start;
        loop {
            let value1_2 = f32::from_bits((rng.next_u32() >> 9) | 0x3F80_0000);
            let res = (value1_2 - 1.0) * scale + range.start;
            if res < range.end {
                return res;
            }
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl Uniformable for $t {
            fn sample_unit<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo, NOT upstream rand's Lemire rejection: bias is
                // < 2^-64 per draw, but streams diverge from upstream
                // here (no in-tree caller draws integer ranges).
                let draw = rng.next_u64() as u128 % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing extension methods, auto-implemented for every generator.
pub trait Rng: RngCore {
    fn gen<T: Uniformable>(&mut self) -> T {
        T::sample_unit(self)
    }

    fn gen_range<T: Uniformable>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_unit(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Placeholder module mirroring rand's layout (no OS entropy offline).
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Lcg(u64);
    impl RngCore for Lcg {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = Lcg(7);
        for _ in 0..1000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_respected() {
        let mut r = Lcg(3);
        for _ in 0..1000 {
            let v = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!((f64::MIN_POSITIVE..1.0).contains(&v));
            let i = r.gen_range(5usize..17);
            assert!((5..17).contains(&i));
        }
    }
}
