//! Offline stand-in for `std::simd` (the unstable portable-SIMD API).
//!
//! No crates.io access and no nightly toolchain in the build container, so
//! this shim supplies the subset the workspace's codec kernels use:
//! fixed-width lane types ([`f64x4`], [`i64x4`], [`i32x8`], [`u64x4`]) with
//! elementwise arithmetic, plus a runtime [`Backend`] dispatch layer.
//!
//! ## Dispatch model
//!
//! Lane types are plain `[T; N]` wrappers whose operations are written as
//! `#[inline(always)]` elementwise scalar code. That makes every kernel
//! body *one* piece of source with *two* compiled clones:
//!
//! 1. a **baseline clone** — the ordinary safe function, compiled for the
//!    lowest common denominator target (the reference implementation), and
//! 2. an **accelerated clone** — the same body wrapped in an
//!    `unsafe fn` annotated `#[target_feature(enable = "avx2")]`, which
//!    lets LLVM lower the elementwise lane ops to real vector
//!    instructions.
//!
//! Callers pick a clone at runtime via [`backend`]: ISA support is probed
//! once with `is_x86_feature_detected!` and cached in a `OnceLock`
//! (detect once, dispatch forever). On non-x86_64 targets detection
//! always resolves to [`Backend::Scalar`], so the accelerated clone is
//! never reachable where it could not run.
//!
//! ## Byte-identity contract
//!
//! Both clones execute the *same* per-lane operation sequence — IEEE-754
//! adds/subs/muls/divs/rounds and exact integer ops, no reassociation, no
//! FMA contraction (Rust never auto-contracts) — so scalar and SIMD paths
//! produce bit-identical results on every input, including NaN/Inf lanes.
//! The workspace's golden-bytes fixtures and forced-backend parity suites
//! gate this invariant.
//!
//! ## Forcing a backend
//!
//! `HPDC21_SIMD=off` pins [`backend`] to scalar, `HPDC21_SIMD=force`
//! insists on the accelerated path (panics if the host lacks it — a CI
//! guard against silent fallback), and `HPDC21_SIMD=auto` (or unset) uses
//! whatever was detected. Kernels additionally expose explicit-backend
//! entry points so parity tests can compare both clones in one process
//! regardless of the environment.

use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Backend detection and dispatch
// ---------------------------------------------------------------------------

/// Which compiled clone of a kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Baseline clone: safe, portable, the reference implementation.
    Scalar,
    /// AVX2-annotated clone (x86_64 with runtime-verified support only).
    Avx2,
}

impl Backend {
    /// Stable label for telemetry and diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }
}

/// The `HPDC21_SIMD` override policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Use the detected backend (default).
    Auto,
    /// Insist on an accelerated backend; panic when none is available.
    Force,
    /// Pin to scalar regardless of detection.
    Off,
}

impl Policy {
    /// Parse an `HPDC21_SIMD` value; unknown strings fall back to `Auto`
    /// (an observable diagnostic would be noise on every process start —
    /// `diag_simd` prints the resolved policy instead).
    pub fn parse(value: Option<&str>) -> Policy {
        match value.map(str::trim) {
            Some("force") => Policy::Force,
            Some("off") => Policy::Off,
            _ => Policy::Auto,
        }
    }

    /// Resolve the policy against a detected backend.
    ///
    /// `Force` with a scalar-only host panics: a forced-SIMD CI lane must
    /// fail loudly rather than silently measure the fallback.
    pub fn resolve(self, detected: Backend) -> Backend {
        match self {
            Policy::Auto => detected,
            Policy::Off => Backend::Scalar,
            Policy::Force => {
                assert!(
                    detected != Backend::Scalar,
                    "HPDC21_SIMD=force but no SIMD backend is available on this host"
                );
                detected
            }
        }
    }
}

/// Probe the host ISA (uncached; use [`backend`] on hot paths).
pub fn detect() -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Backend::Avx2;
        }
    }
    Backend::Scalar
}

/// The process-wide dispatch decision: detected ISA filtered through the
/// `HPDC21_SIMD` policy, computed once and cached.
pub fn backend() -> Backend {
    static CACHED: OnceLock<Backend> = OnceLock::new();
    *CACHED.get_or_init(|| {
        let policy = Policy::parse(std::env::var("HPDC21_SIMD").ok().as_deref());
        policy.resolve(detect())
    })
}

// ---------------------------------------------------------------------------
// Lane types
// ---------------------------------------------------------------------------

/// Define a lane type: a `[T; N]` wrapper with elementwise constructors,
/// loads/stores, and the shared arithmetic ops.
macro_rules! lanes {
    ($name:ident, $t:ty, $n:literal) => {
        // Lowercase names mirror `std::simd` (`f64x4` etc.) so a future
        // swap to the real portable-SIMD API is a use-statement change.
        #[allow(non_camel_case_types)]
        #[derive(Debug, Clone, Copy, PartialEq)]
        #[repr(transparent)]
        pub struct $name(pub [$t; $n]);

        impl $name {
            pub const LANES: usize = $n;

            #[inline(always)]
            pub fn splat(v: $t) -> Self {
                Self([v; $n])
            }

            #[inline(always)]
            pub fn from_array(a: [$t; $n]) -> Self {
                Self(a)
            }

            #[inline(always)]
            pub fn from_slice(s: &[$t]) -> Self {
                let mut a = [<$t>::default(); $n];
                a.copy_from_slice(&s[..$n]);
                Self(a)
            }

            /// Strided gather: lane `i` loads `s[base + i·stride]`.
            #[inline(always)]
            pub fn gather(s: &[$t], base: usize, stride: usize) -> Self {
                let mut a = [<$t>::default(); $n];
                for (i, slot) in a.iter_mut().enumerate() {
                    *slot = s[base + i * stride];
                }
                Self(a)
            }

            /// Strided scatter: lane `i` stores to `s[base + i·stride]`.
            #[inline(always)]
            pub fn scatter(self, s: &mut [$t], base: usize, stride: usize) {
                for (i, v) in self.0.iter().enumerate() {
                    s[base + i * stride] = *v;
                }
            }

            #[inline(always)]
            pub fn to_array(self) -> [$t; $n] {
                self.0
            }

            #[inline(always)]
            pub fn write_to_slice(self, s: &mut [$t]) {
                s[..$n].copy_from_slice(&self.0);
            }
        }

        impl std::ops::Add for $name {
            type Output = Self;
            #[inline(always)]
            fn add(self, rhs: Self) -> Self {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
                    *o = elem_add(*o, *r);
                }
                Self(out)
            }
        }

        impl std::ops::Sub for $name {
            type Output = Self;
            #[inline(always)]
            fn sub(self, rhs: Self) -> Self {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
                    *o = elem_sub(*o, *r);
                }
                Self(out)
            }
        }

        impl std::ops::Mul for $name {
            type Output = Self;
            #[inline(always)]
            fn mul(self, rhs: Self) -> Self {
                let mut out = self.0;
                for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
                    *o = elem_mul(*o, *r);
                }
                Self(out)
            }
        }
    };
}

// Elementwise primitives: wrapping for the integer lanes (the codec
// kernels' semantics), plain IEEE for floats. Free functions so the
// `lanes!` macro can share one body across numeric kinds.
#[inline(always)]
fn elem_add<T: ElemArith>(a: T, b: T) -> T {
    a.e_add(b)
}
#[inline(always)]
fn elem_sub<T: ElemArith>(a: T, b: T) -> T {
    a.e_sub(b)
}
#[inline(always)]
fn elem_mul<T: ElemArith>(a: T, b: T) -> T {
    a.e_mul(b)
}

trait ElemArith: Copy {
    fn e_add(self, o: Self) -> Self;
    fn e_sub(self, o: Self) -> Self;
    fn e_mul(self, o: Self) -> Self;
}

impl ElemArith for f64 {
    #[inline(always)]
    fn e_add(self, o: Self) -> Self {
        self + o
    }
    #[inline(always)]
    fn e_sub(self, o: Self) -> Self {
        self - o
    }
    #[inline(always)]
    fn e_mul(self, o: Self) -> Self {
        self * o
    }
}

macro_rules! wrapping_elem {
    ($t:ty) => {
        impl ElemArith for $t {
            #[inline(always)]
            fn e_add(self, o: Self) -> Self {
                self.wrapping_add(o)
            }
            #[inline(always)]
            fn e_sub(self, o: Self) -> Self {
                self.wrapping_sub(o)
            }
            #[inline(always)]
            fn e_mul(self, o: Self) -> Self {
                self.wrapping_mul(o)
            }
        }
    };
}

wrapping_elem!(i64);
wrapping_elem!(u64);
wrapping_elem!(i32);

lanes!(f64x4, f64, 4);
lanes!(i64x4, i64, 4);
lanes!(u64x4, u64, 4);
lanes!(i32x8, i32, 8);

// --- float-specific ops ----------------------------------------------------

impl f64x4 {
    /// Elementwise `f64::div` (one `vdivpd` under AVX2 — the big win in
    /// the quantisation kernel, where division dominates the scalar loop).
    /// An inherent method, not `ops::Div`, to mirror `std::simd`'s shape
    /// and keep call sites free of trait imports.
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn div(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o /= *r;
        }
        Self(out)
    }

    /// Elementwise `f64::round` (half away from zero, exactly the scalar
    /// semantics — both clones run this same code, so ties break
    /// identically).
    #[inline(always)]
    pub fn round(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.round();
        }
        Self(out)
    }

    #[inline(always)]
    pub fn abs(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = o.abs();
        }
        Self(out)
    }

    /// Per-lane `is_finite` mask.
    #[inline(always)]
    pub fn is_finite(self) -> [bool; 4] {
        let mut m = [false; 4];
        for (b, v) in m.iter_mut().zip(self.0.iter()) {
            *b = v.is_finite();
        }
        m
    }

    /// Per-lane `self < rhs` mask (false on NaN, like scalar `<`).
    #[inline(always)]
    pub fn lt(self, rhs: Self) -> [bool; 4] {
        let mut m = [false; 4];
        for (i, b) in m.iter_mut().enumerate() {
            *b = self.0[i] < rhs.0[i];
        }
        m
    }

    /// Per-lane `self <= rhs` mask (false on NaN, like scalar `<=`).
    #[inline(always)]
    pub fn le(self, rhs: Self) -> [bool; 4] {
        let mut m = [false; 4];
        for (i, b) in m.iter_mut().enumerate() {
            *b = self.0[i] <= rhs.0[i];
        }
        m
    }

    /// Per-lane `self > rhs` mask (false on NaN, like scalar `>`).
    #[inline(always)]
    pub fn gt(self, rhs: Self) -> [bool; 4] {
        let mut m = [false; 4];
        for (i, b) in m.iter_mut().enumerate() {
            *b = self.0[i] > rhs.0[i];
        }
        m
    }

    /// Per-lane saturating `as i64` cast (scalar `as` semantics).
    #[inline(always)]
    pub fn to_i64(self) -> i64x4 {
        let mut out = [0i64; 4];
        for (o, v) in out.iter_mut().zip(self.0.iter()) {
            *o = *v as i64;
        }
        i64x4(out)
    }

    /// Per-lane round-trip through `f32` (the T-precision recheck in the
    /// ABS accept path): `f64 → f32 → f64`.
    #[inline(always)]
    pub fn through_f32(self) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o = (*o as f32) as f64;
        }
        Self(out)
    }
}

// --- integer-specific ops --------------------------------------------------

impl i64x4 {
    /// Elementwise arithmetic shift right by a constant. An inherent
    /// method, not `ops::Shr` (the operand is a `u32` count, not a lane
    /// vector).
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn shr(self, n: u32) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o >>= n;
        }
        Self(out)
    }

    /// Elementwise shift left by a constant (wrapping, like the scalar
    /// `<<` on in-range shifts); inherent for the same reason as [`Self::shr`].
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn shl(self, n: u32) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o <<= n;
        }
        Self(out)
    }

    #[inline(always)]
    pub fn to_f64(self) -> f64x4 {
        let mut out = [0.0f64; 4];
        for (o, v) in out.iter_mut().zip(self.0.iter()) {
            *o = *v as f64;
        }
        f64x4(out)
    }

    /// Reinterpret lanes as `u64` (negabinary packing).
    #[inline(always)]
    pub fn cast_u64(self) -> u64x4 {
        let mut out = [0u64; 4];
        for (o, v) in out.iter_mut().zip(self.0.iter()) {
            *o = *v as u64;
        }
        u64x4(out)
    }
}

impl u64x4 {
    /// Elementwise logical shift right by a constant (inherent, not
    /// `ops::Shr` — the operand is a `u32` count, not a lane vector).
    #[allow(clippy::should_implement_trait)]
    #[inline(always)]
    pub fn shr(self, n: u32) -> Self {
        let mut out = self.0;
        for o in out.iter_mut() {
            *o >>= n;
        }
        Self(out)
    }

    /// Elementwise shift left by per-lane amounts (AVX2 `vpsllvq`; the
    /// bit-plane transpose needs lane-varying shifts).
    #[inline(always)]
    pub fn shl_each(self, n: [u32; 4]) -> Self {
        let mut out = self.0;
        for (o, k) in out.iter_mut().zip(n.iter()) {
            *o <<= *k;
        }
        Self(out)
    }

    #[inline(always)]
    pub fn and(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o &= *r;
        }
        Self(out)
    }

    #[inline(always)]
    pub fn or(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o |= *r;
        }
        Self(out)
    }

    #[inline(always)]
    pub fn xor(self, rhs: Self) -> Self {
        let mut out = self.0;
        for (o, r) in out.iter_mut().zip(rhs.0.iter()) {
            *o ^= *r;
        }
        Self(out)
    }

    /// OR-fold the four lanes into one value.
    #[inline(always)]
    pub fn or_lanes(self) -> u64 {
        (self.0[0] | self.0[1]) | (self.0[2] | self.0[3])
    }

    /// Reinterpret lanes as `i64`.
    #[inline(always)]
    pub fn cast_i64(self) -> i64x4 {
        let mut out = [0i64; 4];
        for (o, v) in out.iter_mut().zip(self.0.iter()) {
            *o = *v as i64;
        }
        i64x4(out)
    }
}

/// 4×4 in-register transpose of `i64` lanes: rows in, columns out.
/// Used by the z-direction lifting pass, whose four independent lifts
/// have their elements laid out across (not along) memory rows.
#[inline(always)]
pub fn transpose4_i64(rows: [i64x4; 4]) -> [i64x4; 4] {
    let [a, b, c, d] = rows;
    [
        i64x4([a.0[0], b.0[0], c.0[0], d.0[0]]),
        i64x4([a.0[1], b.0[1], c.0[1], d.0[1]]),
        i64x4([a.0[2], b.0[2], c.0[2], d.0[2]]),
        i64x4([a.0[3], b.0[3], c.0[3], d.0[3]]),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parse_and_resolve() {
        assert_eq!(Policy::parse(None), Policy::Auto);
        assert_eq!(Policy::parse(Some("force")), Policy::Force);
        assert_eq!(Policy::parse(Some(" off ")), Policy::Off);
        assert_eq!(Policy::parse(Some("bogus")), Policy::Auto);
        assert_eq!(Policy::Auto.resolve(Backend::Avx2), Backend::Avx2);
        assert_eq!(Policy::Off.resolve(Backend::Avx2), Backend::Scalar);
        assert_eq!(Policy::Force.resolve(Backend::Avx2), Backend::Avx2);
    }

    #[test]
    #[should_panic]
    fn force_panics_without_simd() {
        let _ = Policy::Force.resolve(Backend::Scalar);
    }

    #[test]
    fn backend_is_cached_and_consistent() {
        assert_eq!(backend(), backend());
    }

    #[test]
    fn f64_ops_match_scalar() {
        let a = f64x4::from_array([1.5, -2.5, f64::NAN, 1e300]);
        let b = f64x4::splat(2.0);
        let s = (a.div(b)).round().to_array();
        for (i, v) in a.to_array().iter().enumerate() {
            let expect = (v / 2.0).round();
            if expect.is_nan() {
                assert!(s[i].is_nan());
            } else {
                assert_eq!(s[i].to_bits(), expect.to_bits(), "lane {i}");
            }
        }
        assert_eq!(a.is_finite(), [true, true, false, true]);
        // round() must be half-away-from-zero, not banker's rounding.
        assert_eq!(f64x4::splat(2.5).round().to_array(), [3.0; 4]);
        assert_eq!(f64x4::splat(-2.5).round().to_array(), [-3.0; 4]);
        // The largest double below 0.5 must round to 0 (the trunc(x+0.5)
        // trap).
        assert_eq!(f64x4::splat(0.49999999999999994).round().to_array(), [0.0; 4]);
    }

    #[test]
    fn int_ops_match_scalar() {
        let a = i64x4::from_array([i64::MAX, -7, 0, 1 << 40]);
        let b = i64x4::splat(3);
        assert_eq!((a + b).to_array()[0], i64::MAX.wrapping_add(3));
        assert_eq!(a.shr(1).to_array()[1], -7 >> 1);
        let u = u64x4::from_array([1, 2, 4, 8]);
        assert_eq!(u.shl_each([0, 1, 2, 3]).or_lanes(), 1 | 4 | 16 | 64);
    }

    #[test]
    fn gather_scatter_strided() {
        let src: Vec<i64> = (0..32).collect();
        let v = i64x4::gather(&src, 3, 5);
        assert_eq!(v.to_array(), [3, 8, 13, 18]);
        let mut dst = vec![0i64; 32];
        v.scatter(&mut dst, 1, 2);
        assert_eq!(&dst[..8], &[0, 3, 0, 8, 0, 13, 0, 18]);
    }

    #[test]
    fn transpose_is_involutive() {
        let rows = [
            i64x4::from_array([0, 1, 2, 3]),
            i64x4::from_array([4, 5, 6, 7]),
            i64x4::from_array([8, 9, 10, 11]),
            i64x4::from_array([12, 13, 14, 15]),
        ];
        let t = transpose4_i64(rows);
        assert_eq!(t[0].to_array(), [0, 4, 8, 12]);
        assert_eq!(transpose4_i64(t), rows);
    }
}
