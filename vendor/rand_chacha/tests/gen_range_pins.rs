//! Pins integer `gen_range` draws over a real ChaCha8 stream.
//!
//! Two facts combine to make these literals equal genuine rand 0.8.5 +
//! rand_chacha 0.3 output: the shim's ChaCha8 word stream is pinned
//! against upstream vectors (see `src/lib.rs` tests), and the shim's
//! integer `gen_range` reproduces `UniformInt::sample_single`'s Lemire
//! widening-multiply rejection arithmetic exactly (see the hand-derived
//! tape tests in the `rand` shim). Any regression in either layer —
//! word order, widening width, zone computation, rejection consumption —
//! shifts these sequences.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

#[test]
fn u32_draws_match_rand_08_stream() {
    let mut r = ChaCha8Rng::seed_from_u64(42);
    let got: Vec<u32> = (0..6).map(|_| r.gen_range(0u32..100)).collect();
    assert_eq!(got, [22, 68, 14, 95, 77, 42]);
}

#[test]
fn u64_draws_match_rand_08_stream() {
    // 64-bit ranges consume two ChaCha words per accepted draw (one
    // next_u64) and widen through u128.
    let mut r = ChaCha8Rng::seed_from_u64(42);
    let got: Vec<u64> = (0..4).map(|_| r.gen_range(0u64..1_000_003)).collect();
    assert_eq!(got, [681898, 950278, 427517, 627362]);
}

#[test]
fn usize_draws_match_rand_08_stream() {
    // On 64-bit targets usize follows the u64 path, per upstream's
    // target_pointer_width dispatch.
    let mut r = ChaCha8Rng::seed_from_u64(7);
    let got: Vec<usize> = (0..6).map(|_| r.gen_range(0usize..17)).collect();
    assert_eq!(got, [12, 10, 6, 1, 14, 6]);
}

#[test]
fn i8_draws_match_rand_08_stream() {
    // Signed small ints: unsigned-span arithmetic plus the ≤16-bit
    // exact-modulo zone, one u32 word per accepted draw.
    let mut r = ChaCha8Rng::seed_from_u64(7);
    let got: Vec<i8> = (0..6).map(|_| r.gen_range(-100i8..100)).collect();
    assert_eq!(got, [-72, -69, -64, -67, -46, 40]);
}
