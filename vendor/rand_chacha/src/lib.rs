//! Offline stand-in for `rand_chacha`: a real ChaCha8 keystream generator.
//!
//! Implements the ChaCha block function (RFC 8439 quarter-rounds, 8
//! rounds) keyed by the 32-byte seed, so `ChaCha8Rng::seed_from_u64(s)`
//! yields a deterministic, statistically solid stream per seed. Output
//! word order matches the block's little-endian u32 sequence; it is *not*
//! guaranteed bit-identical to the upstream crate, only deterministic
//! within this workspace (nothing here asserts golden values).

use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word in `buf`; 16 means exhausted.
    idx: usize,
}

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [0; 16];
        state[..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        for _ in 0..4 {
            // 4 double-rounds = 8 rounds (ChaCha8).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial) {
            *word = word.wrapping_add(init);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng { key, counter: 0, buf: [0; 16], idx: 16 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = ChaCha8Rng::seed_from_u64(42);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn stream_is_roughly_uniform() {
        let mut r = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let mean = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn blocks_advance() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let first_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
