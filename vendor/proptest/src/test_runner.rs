//! Case-loop configuration, the per-test RNG, and case outcomes.

/// Mirror of proptest's `ProptestConfig`, reduced to what the suites set.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Requested number of successful cases.
    pub cases: u32,
    /// Abort if `prop_assume!` discards this many inputs in one test.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, max_global_rejects: 4096 }
    }

    /// The count actually run: `PROPTEST_CASES` (when set and parseable)
    /// caps the configured value so CI can bound suite cost globally.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse::<u32>().ok()) {
            Some(cap) => self.cases.min(cap.max(1)),
            None => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(256)
    }
}

/// Why a case did not pass.
#[derive(Debug, Clone, PartialEq)]
pub enum TestCaseError {
    /// `prop_assert*` failure: fails the test.
    Fail(String),
    /// `prop_assume!` miss: case is discarded and redrawn.
    Reject(String),
}

/// SplitMix64-based deterministic RNG, seeded from the test's name so
/// every run draws the same inputs (no shrinking to compensate with).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    seed: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        let seed = match std::env::var("PROPTEST_RNG_SEED").ok().and_then(|v| v.parse().ok()) {
            Some(s) => s,
            None => {
                // FNV-1a over the test name.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in name.bytes() {
                    h ^= b as u64;
                    h = h.wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            }
        };
        TestRng { state: seed, seed }
    }

    /// The seed in use, reported on failure for reproduction.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
