//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so this shim re-implements
//! the subset the workspace's property suites use: the `proptest!` macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, range and tuple
//! strategies, `Just`, `prop_map`/`prop_flat_map`/`prop_filter`, and
//! `proptest::collection::vec`. Differences from the real crate:
//!
//! * **no shrinking** — a failing case reports its case number and the
//!   deterministic per-test seed instead of a minimised input;
//! * **deterministic by default** — the RNG seed is derived from the test
//!   name (override with `PROPTEST_RNG_SEED`), so failures reproduce;
//! * `PROPTEST_CASES` *caps* the per-test case count (even one set via
//!   `ProptestConfig::with_cases`), which is how CI keeps suites fast.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    /// Namespace mirror (`prop::collection::vec(...)` style).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests. Each argument is drawn from its strategy fresh
/// per case; the body runs inside a closure so `prop_assert*` can abort
/// the case without panicking machinery.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let cases = config.effective_cases();
                let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
                let mut passed: u32 = 0;
                let mut rejected: u32 = 0;
                while passed < cases {
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest shim: `{}` rejected {} inputs before reaching {} cases — \
                             loosen prop_assume! or widen the strategies",
                            stringify!($name), rejected, cases
                        );
                    }
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject(_)) => rejected += 1,
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                            "proptest shim: `{}` failed at case #{} (seed {}): {}",
                            stringify!($name), passed, rng.seed(), msg
                        ),
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assert_eq failed: `{}` = {:?} vs `{}` = {:?}",
                stringify!($left),
                left,
                stringify!($right),
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assert_ne failed: both sides = {:?}",
                left
            )));
        }
    }};
}

/// Discard the current case (does not count toward the case target).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.5f64..2.5, z in 1u64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!((1..=9).contains(&z));
        }

        #[test]
        fn tuples_and_vec(dims in (1usize..=4, 1usize..=4), data in crate::collection::vec(0.0f32..1.0, 2..10)) {
            prop_assert!(dims.0 >= 1 && dims.1 <= 4);
            prop_assert!(data.len() >= 2 && data.len() < 10);
            for v in &data {
                prop_assert!((0.0..1.0).contains(v));
            }
        }

        #[test]
        fn flat_map_links_sizes(v in (1usize..=8).prop_flat_map(|n| crate::collection::vec(0u64..100, n)).prop_map(|v| v)) {
            prop_assert!(!v.is_empty() && v.len() <= 8);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_runner::TestRng::for_test("abc");
        let mut b = crate::test_runner::TestRng::for_test("abc");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn env_caps_cases() {
        let cfg = ProptestConfig::with_cases(1000);
        // Without the env var set this is just the explicit count.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(cfg.effective_cases(), 1000);
        } else {
            assert!(cfg.effective_cases() <= 1000);
        }
    }
}
