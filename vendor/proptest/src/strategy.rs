//! Value-generation strategies: ranges, tuples, `Just`, combinators, and
//! `collection::vec`. Generation-only — no shrinking trees.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Redraw until `f` accepts (bounded); mirrors proptest's local
    /// rejection, panicking when the predicate is pathologically tight.
    fn prop_filter<F>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f, reason }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("proptest shim: prop_filter({}) rejected 1000 consecutive draws", self.reason);
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let draw = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + draw) as $t
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let u = rng.unit_f64() as $t;
                let v = self.start + u * (self.end - self.start);
                if v >= self.end { self.start } else { v.max(self.start) }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u = rng.unit_f64() as $t;
                (lo + u * (hi - lo)).clamp(lo, hi)
            }
        }
    )*};
}

impl_float_ranges!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Element-count specification for [`vec`]: exact, half-open, or inclusive.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + if span > 1 { rng.below(span) as usize } else { 0 };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
