//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The container this workspace builds in has no crates.io access, so the
//! real `parking_lot` cannot be fetched. This shim reproduces the API
//! subset the workspace uses — `Mutex::lock()` returning a guard directly
//! (no poisoning `Result`) and `Condvar::wait(&mut guard)` — on top of the
//! std primitives. Poisoned locks are recovered rather than propagated,
//! matching parking_lot's "no poisoning" semantics.

use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard taken")
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard taken")
    }
}

#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Block until notified, releasing the mutex while parked. The guard
    /// is reacquired before returning, like parking_lot's in-place wait.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard taken");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        assert!(t.join().unwrap());
    }
}
