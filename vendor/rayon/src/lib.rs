//! Offline stand-in for `rayon`'s parallel iterators.
//!
//! No crates.io access in the build container, so this shim supplies the
//! subset the workspace uses (`par_iter`, `par_iter_mut`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter`, then `map`/`enumerate`/`for_each`/
//! `collect`/`sum`) with *real* parallelism: work items are split into
//! contiguous chunks, one `std::thread::scope` thread per chunk, results
//! concatenated in input order. Unlike rayon the combinators are eager —
//! `map` runs immediately — which is observably identical for the
//! map→collect / enumerate→for_each shapes used here, minus work stealing.

use std::num::NonZeroUsize;

fn thread_count(items: usize) -> usize {
    let hw = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
    hw.min(items).max(1)
}

/// Run `f` over `items` on multiple threads, preserving input order.
fn run<T: Send, R: Send>(items: Vec<T>, f: impl Fn(T) -> R + Sync) -> Vec<R> {
    let n = items.len();
    let threads = thread_count(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut slots: Vec<Vec<R>> = Vec::with_capacity(threads);
    let mut pending: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut items = items;
    while !items.is_empty() {
        let tail = items.split_off(items.len().saturating_sub(chunk));
        pending.push(tail);
    }
    pending.reverse(); // split_off took tails, so restore front-to-back order
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = pending
            .into_iter()
            .map(|batch| scope.spawn(move || batch.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            slots.push(h.join().expect("parallel worker panicked"));
        }
    });
    slots.into_iter().flatten().collect()
}

/// An eager "parallel iterator": a materialised work list.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter { items: self.items.into_iter().enumerate().collect() }
    }

    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParIter<R> {
        ParIter { items: run(self.items, f) }
    }

    pub fn filter<F: Fn(&T) -> bool + Sync>(self, f: F) -> ParIter<T> {
        let keep = run(self.items, |t| if f(&t) { Some(t) } else { None });
        ParIter { items: keep.into_iter().flatten().collect() }
    }

    pub fn for_each<F: Fn(T) + Sync>(self, f: F) {
        run(self.items, f);
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    pub fn count(self) -> usize {
        self.items.len()
    }

    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: Fn() -> T,
        Op: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }
}

pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter { items: self.collect() }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter { items: self.iter().collect() }
    }
    fn par_chunks(&self, size: usize) -> ParIter<&[T]> {
        ParIter { items: self.chunks(size).collect() }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> ParIter<&mut T>;
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<&mut T> {
        ParIter { items: self.iter_mut().collect() }
    }
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter { items: self.chunks_mut(size).collect() }
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut};
}

pub mod iter {
    pub use crate::{IntoParallelIterator, ParIter};
}

pub mod slice {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut v = vec![0u64; 997];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for c in chunk.iter_mut() {
                *c = i as u64;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[10], 1);
        assert_eq!(v[996], 99);
    }

    #[test]
    fn par_iter_sum_matches_serial() {
        let v: Vec<u64> = (0..10_000).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, v.iter().sum::<u64>());
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
