//! Offline stand-in for `rayon`'s parallel iterators.
//!
//! No crates.io access in the build container, so this shim supplies the
//! subset the workspace uses (`par_iter`, `par_iter_mut`, `par_chunks`,
//! `par_chunks_mut`, `into_par_iter`, then `map`/`enumerate`/`filter`/
//! `for_each`/`collect`/`sum`/`count`/`reduce`) on top of std scoped
//! threads.
//!
//! ## Scheduling model
//!
//! Unlike the first version of this shim (which ran every combinator
//! eagerly, paying one full thread fan-out *per combinator*), combinators
//! are now **lazy**: a [`ParIter`] is a plain `Vec` of source items plus
//! one composed per-item closure — `map`/`enumerate` merely wrap that
//! closure (no allocation, no dynamic dispatch), and exactly one fan-out
//! happens at the terminal operation (`collect`, `for_each`, `sum`,
//! `reduce`, `count`). Work distribution is dynamic self-scheduling rather
//! than static chunking:
//!
//! 1. The item list is cut into contiguous batches of
//!    `⌈n / (workers · 4)⌉` items (several batches per worker so uneven
//!    per-item costs — e.g. dense vs empty cosmology partitions — balance
//!    out without work stealing).
//! 2. `min(available_parallelism, n)` workers are spawned under
//!    `std::thread::scope`; each repeatedly pops the next batch from a
//!    shared queue and applies the composed closure until the queue drains.
//! 3. Batch results carry their original start index, so the merged output
//!    is in input order — observably identical to serial iteration.
//!
//! Differences from real rayon, by design: no work stealing across batch
//! boundaries, no nested-pool sharing (each terminal op spawns its own
//! scoped workers), and `filter` is a materialisation barrier (it drives
//! the chain, then re-wraps the survivors). All are fine for the
//! partition-/pencil-granularity workloads in this workspace.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::num::NonZeroUsize;
use std::sync::{Mutex, OnceLock};

/// Batches handed to the dynamic queue per worker; >1 gives load balancing
/// for uneven item costs at negligible queue-lock overhead.
const BATCHES_PER_WORKER: usize = 4;

/// Hardware parallelism, detected once per process.
/// `available_parallelism` can cost a syscall (cgroup probing on Linux),
/// and terminal operations fire once per partition loop iteration — the
/// answer cannot change mid-process, so cache it.
fn hardware_parallelism() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1))
}

/// Number of workers a terminal operation over `items` items will use.
///
/// `1` is the serial dispatch: the chain runs inline on the caller with no
/// queue, no `Mutex`, and no scoped threads. That is always the decision
/// on a single-core host (`available_parallelism() == 1`) no matter how
/// many items there are — spawning one worker thread would add fan-out
/// overhead with zero added parallelism. Public so callers (and the
/// dispatch-pinning tests) can observe the decision without racing it.
pub fn planned_workers(items: usize) -> usize {
    hardware_parallelism().min(items).max(1)
}

fn ident<T>(t: T) -> T {
    t
}

/// A freshly constructed [`ParIter`] whose per-item closure is the
/// identity.
pub type SourceIter<'a, T> = ParIter<'a, T, T, fn(T) -> T>;

/// A lazy "parallel iterator": source items plus one composed per-item
/// closure. Combinator calls wrap the closure; the single parallel fan-out
/// happens at the terminal operation.
pub struct ParIter<'a, S, T, F> {
    items: Vec<S>,
    f: F,
    _lt: PhantomData<&'a fn(S) -> T>,
}

impl<'a, S, T, F> ParIter<'a, S, T, F>
where
    S: Send + 'a,
    T: Send + 'a,
    F: Fn(S) -> T + Send + Sync + 'a,
{
    fn from_items(items: Vec<S>) -> SourceIter<'a, S> {
        ParIter { items, f: ident::<S>, _lt: PhantomData }
    }

    /// Pair each item with its input-order index (lazy).
    #[allow(clippy::type_complexity)]
    pub fn enumerate(
        self,
    ) -> ParIter<'a, (usize, S), (usize, T), impl Fn((usize, S)) -> (usize, T) + Send + Sync + 'a>
    {
        let f = self.f;
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
            f: move |(i, s)| (i, f(s)),
            _lt: PhantomData,
        }
    }

    /// Compose `g` onto the per-item closure (lazy — no threads spawned,
    /// no allocation).
    pub fn map<R, G>(self, g: G) -> ParIter<'a, S, R, impl Fn(S) -> R + Send + Sync + 'a>
    where
        R: Send + 'a,
        G: Fn(T) -> R + Send + Sync + 'a,
    {
        let f = self.f;
        ParIter { items: self.items, f: move |s| g(f(s)), _lt: PhantomData }
    }

    /// Keep items satisfying `g`. This is a materialisation barrier: the
    /// pending chain runs (in parallel) and survivors are re-wrapped.
    pub fn filter<G>(self, g: G) -> SourceIter<'a, T>
    where
        G: Fn(&T) -> bool + Send + Sync + 'a,
    {
        let kept: Vec<T> = self
            .map(move |t| if g(&t) { Some(t) } else { None })
            .drive()
            .into_iter()
            .flatten()
            .collect();
        ParIter::<T, T, fn(T) -> T>::from_items(kept)
    }

    /// Terminal: run the chain plus `g` across workers.
    pub fn for_each<G: Fn(T) + Send + Sync + 'a>(self, g: G) {
        self.map(g).drive();
    }

    /// Terminal: run the chain and collect results in input order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.drive().into_iter().collect()
    }

    /// Terminal: run the chain and sum the results.
    pub fn sum<Z: std::iter::Sum<T>>(self) -> Z {
        self.drive().into_iter().sum()
    }

    /// Terminal: number of items (drives the chain for side effects).
    pub fn count(self) -> usize {
        self.drive().len()
    }

    /// Terminal: fold results with `op` starting from `identity()`.
    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: Fn() -> T,
        Op: Fn(T, T) -> T,
    {
        self.drive().into_iter().fold(identity(), op)
    }

    /// Execute the composed chain across scoped workers with dynamic batch
    /// scheduling, returning results in input order. This is the shim's
    /// single fan-out point — every terminal operation funnels through it.
    fn drive(self) -> Vec<T> {
        let Self { mut items, f, .. } = self;
        let n = items.len();
        let workers = planned_workers(n);
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let batch = n.div_ceil(workers * BATCHES_PER_WORKER).max(1);
        let mut queue: VecDeque<(usize, Vec<S>)> = VecDeque::with_capacity(n.div_ceil(batch));
        let mut start = 0usize;
        while !items.is_empty() {
            let take = batch.min(items.len());
            let rest = items.split_off(take);
            queue.push_back((start, std::mem::replace(&mut items, rest)));
            start += take;
        }
        let queue = Mutex::new(queue);
        let f = &f;
        let mut merged: Vec<(usize, Vec<T>)> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done: Vec<(usize, Vec<T>)> = Vec::new();
                        loop {
                            let next = queue.lock().expect("queue lock").pop_front();
                            match next {
                                Some((at, batch)) => {
                                    done.push((at, batch.into_iter().map(f).collect()));
                                }
                                None => break,
                            }
                        }
                        done
                    })
                })
                .collect();
            for h in handles {
                merged.extend(h.join().expect("parallel worker panicked"));
            }
        });
        merged.sort_unstable_by_key(|&(at, _)| at);
        merged.into_iter().flat_map(|(_, v)| v).collect()
    }
}

pub trait IntoParallelIterator<'a> {
    type Item: Send + 'a;
    fn into_par_iter(self) -> SourceIter<'a, Self::Item>;
}

impl<'a, T: Send + 'a> IntoParallelIterator<'a> for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> SourceIter<'a, T> {
        ParIter::<T, T, fn(T) -> T>::from_items(self)
    }
}

impl<'a> IntoParallelIterator<'a> for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> SourceIter<'a, usize> {
        ParIter::<usize, usize, fn(usize) -> usize>::from_items(self.collect())
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> SourceIter<'_, &T>;
    fn par_chunks(&self, size: usize) -> SourceIter<'_, &[T]>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> SourceIter<'_, &T> {
        ParIter::<&T, &T, fn(&T) -> &T>::from_items(self.iter().collect())
    }
    fn par_chunks(&self, size: usize) -> SourceIter<'_, &[T]> {
        ParIter::<&[T], &[T], fn(&[T]) -> &[T]>::from_items(self.chunks(size).collect())
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_iter_mut(&mut self) -> SourceIter<'_, &mut T>;
    fn par_chunks_mut(&mut self, size: usize) -> SourceIter<'_, &mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> SourceIter<'_, &mut T> {
        ParIter::<&mut T, &mut T, fn(&mut T) -> &mut T>::from_items(self.iter_mut().collect())
    }
    fn par_chunks_mut(&mut self, size: usize) -> SourceIter<'_, &mut [T]> {
        ParIter::<&mut [T], &mut [T], fn(&mut [T]) -> &mut [T]>::from_items(
            self.chunks_mut(size).collect(),
        )
    }
}

pub mod prelude {
    pub use crate::{
        planned_workers, IntoParallelIterator, ParIter, ParallelSlice, ParallelSliceMut,
    };
}

pub mod iter {
    pub use crate::{IntoParallelIterator, ParIter};
}

pub mod slice {
    pub use crate::{ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let out: Vec<usize> = v.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, v.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn chained_maps_fuse_and_preserve_order() {
        let out: Vec<String> = (0..257)
            .into_par_iter()
            .map(|x| x + 1)
            .enumerate()
            .map(|(i, x)| format!("{i}:{x}"))
            .collect();
        for (i, s) in out.iter().enumerate() {
            assert_eq!(s, &format!("{i}:{}", i + 1));
        }
    }

    #[test]
    fn chunks_mut_writes_disjoint() {
        let mut v = vec![0u64; 997];
        v.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for c in chunk.iter_mut() {
                *c = i as u64;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[10], 1);
        assert_eq!(v[996], 99);
    }

    #[test]
    fn par_iter_sum_matches_serial() {
        let v: Vec<u64> = (0..10_000).collect();
        let s: u64 = v.par_iter().map(|&x| x).sum();
        assert_eq!(s, v.iter().sum::<u64>());
    }

    #[test]
    fn uneven_work_still_ordered() {
        // Items with wildly different costs: dynamic batches must not
        // reorder the merged output.
        let out: Vec<usize> = (0..64)
            .into_par_iter()
            .map(|i| {
                let spin = if i % 7 == 0 { 20_000 } else { 10 };
                let mut acc = 0usize;
                for k in 0..spin {
                    acc = acc.wrapping_add(k ^ i);
                }
                std::hint::black_box(acc);
                i
            })
            .collect();
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn filter_keeps_matching_in_order() {
        let out: Vec<usize> = (0..100).into_par_iter().filter(|&x| x % 3 == 0).collect();
        assert_eq!(out, (0..100).filter(|&x| x % 3 == 0).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_folds_all_items() {
        let total = (1..101usize).into_par_iter().reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 5050);
    }

    #[test]
    fn count_drives_chain() {
        assert_eq!((0..37).into_par_iter().map(|x| x * x).count(), 37);
    }

    #[test]
    fn borrowed_captures_work() {
        // Closures capturing references (the par_map pattern) must compile
        // and run — the shim cannot demand 'static.
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let slice = &data;
        let out: Vec<f64> = (0..10usize).into_par_iter().map(|i| slice[i * 10]).collect();
        assert_eq!(out[3], 30.0);
    }

    #[test]
    fn empty_input_is_fine() {
        let v: Vec<u32> = Vec::new();
        let out: Vec<u32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn dispatch_decision_is_pinned() {
        // The serial/parallel dispatch contract: zero or one item is
        // always serial; on a single-core host EVERY fan-out is serial
        // (no worker threads, no queue), and worker count never exceeds
        // the cached hardware parallelism.
        let hw = super::hardware_parallelism();
        assert_eq!(super::planned_workers(0), 1);
        assert_eq!(super::planned_workers(1), 1);
        if hw == 1 {
            assert_eq!(super::planned_workers(usize::MAX), 1, "single core ⇒ serial always");
        } else {
            assert!(super::planned_workers(usize::MAX) > 1);
        }
        for items in [2usize, 3, 64, 100_000] {
            let w = super::planned_workers(items);
            assert!(w >= 1 && w <= hw && w <= items, "items {items} → workers {w}");
        }
        // The cached probe is stable across calls.
        assert_eq!(hw, super::hardware_parallelism());
    }
}
