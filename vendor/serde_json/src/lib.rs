//! Offline stand-in for `serde_json`, rendering the serde shim's
//! [`Value`] tree to JSON text and parsing it back.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

#[derive(Debug, Clone, PartialEq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json shim: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                // Always keep a decimal point or exponent so the value
                // re-parses as a float.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null"); // JSON has no NaN/Inf
            }
        }
        Value::Str(s) => escape_into(s, out),
        Value::Seq(items) => {
            render_container(out, '[', ']', items.len(), indent, depth, |i, out, d| {
                render(&items[i], indent, d, out)
            })
        }
        Value::Map(entries) => {
            render_container(out, '{', '}', entries.len(), indent, depth, |i, out, d| {
                escape_into(&entries[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(&entries[i].1, indent, d, out)
            })
        }
    }
}

fn render_container(
    out: &mut String,
    open: char,
    close: char,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut item: impl FnMut(usize, &mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(i, out, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error("unexpected end".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        c => return Err(Error(format!("bad array separator `{}`", c as char))),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    entries.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        c => return Err(Error(format!("bad object separator `{}`", c as char))),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let e =
                        *self.bytes.get(self.pos).ok_or_else(|| Error("dangling escape".into()))?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()? as u32;
                            if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate escape
                                // must follow; combine into one scalar.
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error("unpaired high surrogate".into()));
                                }
                                self.pos += 2;
                                let low = self.hex4()? as u32;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error("invalid low surrogate".into()));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error("bad surrogate pair".into()))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error("unpaired low surrogate".into()))?,
                                );
                            }
                        }
                        c => return Err(Error(format!("unknown escape `\\{}`", c as char))),
                    }
                }
                b => {
                    // Re-sync multi-byte UTF-8 sequences.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                            end += 1;
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error("invalid utf-8".into()))?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error("short \\u escape".into()))?;
        self.pos += 4;
        u16::from_str_radix(std::str::from_utf8(hex).map_err(|_| Error("bad hex".into()))?, 16)
            .map_err(|_| Error("bad hex".into()))
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("bad number".into()))?;
        if text.is_empty() {
            return Err(Error(format!("expected value at byte {start}")));
        }
        if !text.contains(['.', 'e', 'E']) {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>().map(Value::F64).map_err(|_| Error(format!("bad number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_pretty_json() {
        let v = Value::Map(vec![
            ("id".into(), Value::Str("fig15".into())),
            ("rows".into(), Value::Seq(vec![Value::U64(1), Value::F64(2.5)])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"id\": \"fig15\""));
        assert!(s.contains("2.5"));
    }

    #[test]
    fn value_is_serializable_itself() {
        // Value implements Serialize via the blanket &T? No — give it one.
        let s = to_string(&42u64).unwrap();
        assert_eq!(s, "42");
    }

    #[test]
    fn parse_roundtrip() {
        let src = r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": null, "d": true}"#;
        let v = parse_value(src).unwrap();
        let rendered = {
            struct W(Value);
            impl Serialize for W {
                fn to_value(&self) -> Value {
                    self.0.clone()
                }
            }
            to_string(&W(v)).unwrap()
        };
        let v2 = parse_value(&rendered).unwrap();
        assert_eq!(parse_value(src).unwrap(), v2);
    }

    #[test]
    fn floats_keep_a_point() {
        let s = to_string(&3.0f64).unwrap();
        assert_eq!(s, "3.0");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_value("{oops}").is_err());
        assert!(parse_value("[1,").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        // 😀 as a conforming serializer's ASCII escape.
        let v = parse_value(r#""😀""#).unwrap();
        assert_eq!(v, Value::Str("😀".to_string()));
        // Lone surrogates are errors, not replacement characters.
        assert!(parse_value(r#""\ud83d""#).is_err());
        assert!(parse_value(r#""\ud83dx""#).is_err());
        assert!(parse_value(r#""\ude00""#).is_err());
    }

    #[test]
    fn out_of_range_integers_rejected() {
        assert!(from_str::<u8>("300").is_err());
        assert!(from_str::<u32>("-1").is_err());
        assert_eq!(from_str::<u8>("255").unwrap(), 255);
        assert_eq!(from_str::<i8>("-128").unwrap(), -128);
    }
}
