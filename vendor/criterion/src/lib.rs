//! Offline stand-in for `criterion`.
//!
//! Compiles and *runs* the workspace's `[[bench]]` targets without the
//! real crate: each benchmark gets a short warm-up, then `sample_size`
//! timed samples, and reports median / min / max ns per iteration plus
//! derived throughput. No statistical regression machinery — the numbers
//! are honest wall-clock medians, good enough to steer optimisation work
//! until the real criterion can be vendored.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

pub struct Bencher {
    /// Captured per-iteration timings, one entry per sample.
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: a few unrecorded runs to fault in caches/pools.
        for _ in 0..2 {
            black_box(f());
        }
        // Calibrate iterations per sample so one sample is >= ~1ms.
        let probe = Instant::now();
        black_box(f());
        let once = probe.elapsed().max(Duration::from_nanos(1));
        let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters);
        }
    }

    fn report(&self, group: &str, id: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        let median = sorted[sorted.len() / 2];
        let (min, max) = (sorted[0], sorted[sorted.len() - 1]);
        let rate = throughput.map(|t| match t {
            Throughput::Elements(n) => {
                format!(" ({:.3e} elem/s)", n as f64 / median.as_secs_f64())
            }
            Throughput::Bytes(n) => {
                format!(" ({:.1} MiB/s)", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
            }
        });
        println!(
            "bench {group}/{id}: median {:?} (min {:?}, max {:?}, {} samples){}",
            median,
            min,
            max,
            sorted.len(),
            rate.unwrap_or_default()
        );
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self // accepted for API compatibility; sampling is iteration-count based
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        b.report(&self.name, &id.label, self.throughput);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        b.report(&self.name, &id.label, self.throughput);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 10, throughput: None, _criterion: self }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = BenchmarkGroup {
            name: String::new(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        };
        g.bench_function(id, f);
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` forwards harness flags (--bench, filters);
            // this shim runs everything and ignores them.
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_smoke");
        g.sample_size(3);
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum_n", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }
}
