//! Offline stand-in for `crossbeam-channel` 0.5: the bounded-MPMC subset.
//!
//! The build container has no crates.io access, so this shim re-implements
//! exactly the API surface the workspace's stream server uses: `bounded`
//! channels with clonable `Sender`/`Receiver` endpoints, non-blocking
//! `try_send`/`try_recv`, blocking `send`/`recv`, and `recv_timeout`.
//! Semantics match upstream where the subset overlaps:
//!
//! * FIFO per channel; every message is delivered to exactly one receiver.
//! * A channel is **disconnected** when all endpoints of one side have
//!   dropped. Sends to a receiver-less channel fail immediately; receives
//!   drain any buffered messages first and only then report disconnection
//!   (upstream's "disconnected means empty AND no senders" rule).
//! * `try_send` on a full channel returns [`TrySendError::Full`] without
//!   blocking — the primitive admission control builds on.
//!
//! Not implemented: zero-capacity rendezvous channels (`bounded(0)`
//! panics here; upstream turns them into handoffs), `unbounded`, `select!`
//! and the `Iterator`/`IntoIterator` glue. Built on `std::sync`
//! Mutex + Condvar; poisoning is absorbed (a panicking holder of the
//! queue lock cannot leave it half-mutated — every critical section is a
//! single push/pop).

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// The send half failed because every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Why a `try_send` did not enqueue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The buffer is at capacity — the caller's backpressure signal.
    Full(T),
    /// Every receiver is gone; the channel can never drain.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// The message that was not sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// True when the failure is backpressure, not teardown.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

/// The receive half failed: the buffer is empty and every sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why a `try_recv` returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing buffered right now (senders may still produce).
    Empty,
    /// Empty and every sender is gone.
    Disconnected,
}

/// Why a `recv_timeout` returned nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the buffer still empty.
    Timeout,
    /// Empty and every sender is gone.
    Disconnected,
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}
impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}
impl std::error::Error for RecvError {}
impl std::error::Error for TryRecvError {}
impl std::error::Error for RecvTimeoutError {}

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    cap: usize,
    /// Signalled when a message lands or the last sender leaves.
    not_empty: Condvar,
    /// Signalled when a slot frees or the last receiver leaves.
    not_full: Condvar,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // Absorb poisoning: see the module docs.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Create a bounded FIFO channel holding at most `cap` in-flight
/// messages. Both endpoints clone freely (MPMC). Panics when `cap` is 0
/// (upstream's rendezvous mode is outside this shim's subset).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    assert!(cap > 0, "this shim does not implement zero-capacity rendezvous channels");
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner { queue: VecDeque::with_capacity(cap), senders: 1, receivers: 1 }),
        cap,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

/// The sending half; clone per producer.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone per consumer.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueue without blocking, or report `Full`/`Disconnected` — the
    /// admission-control primitive: an overloaded queue surfaces here
    /// instead of stalling the caller.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.lock();
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if inner.queue.len() >= self.shared.cap {
            return Err(TrySendError::Full(value));
        }
        inner.queue.push_back(value);
        drop(inner);
        self.shared.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue, blocking while the buffer is full. Fails only when every
    /// receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.lock();
        loop {
            if inner.receivers == 0 {
                return Err(SendError(value));
            }
            if inner.queue.len() < self.shared.cap {
                inner.queue.push_back(value);
                drop(inner);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.len() >= self.shared.cap
    }

    /// The channel's fixed capacity.
    pub fn capacity(&self) -> Option<usize> {
        Some(self.shared.cap)
    }
}

impl<T> Receiver<T> {
    /// Dequeue without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.lock();
        match inner.queue.pop_front() {
            Some(v) => {
                drop(inner);
                self.shared.not_full.notify_one();
                Ok(v)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }

    /// Dequeue, blocking while the buffer is empty. Fails only when the
    /// buffer is empty *and* every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self.shared.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// [`recv`](Receiver::recv) with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.shared.lock();
        loop {
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
        }
    }

    /// Messages currently buffered.
    pub fn len(&self) -> usize {
        self.shared.lock().queue.len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's fixed capacity.
    pub fn capacity(&self) -> Option<usize> {
        Some(self.shared.cap)
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.lock().senders += 1;
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.lock().receivers += 1;
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            // Blocked receivers must wake to observe the disconnect.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.lock();
        inner.receivers -= 1;
        if inner.receivers == 0 {
            drop(inner);
            // Blocked senders must wake to observe the disconnect.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sender {{ len: {}, cap: {} }}", self.len(), self.shared.cap)
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Receiver {{ len: {}, cap: {} }}", self.len(), self.shared.cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn try_send_reports_full_without_blocking() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).unwrap();
        tx.try_send(2).unwrap();
        assert!(tx.is_full());
        match tx.try_send(3) {
            Err(TrySendError::Full(3)) => {}
            other => panic!("expected Full(3), got {other:?}"),
        }
        assert_eq!(rx.recv().unwrap(), 1);
        tx.try_send(3).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn drop_all_receivers_disconnects_senders() {
        let (tx, rx) = bounded::<u32>(1);
        let rx2 = rx.clone();
        drop(rx);
        tx.try_send(7).unwrap(); // one receiver still alive
        drop(rx2);
        assert_eq!(tx.try_send(8), Err(TrySendError::Disconnected(8)));
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn drop_all_senders_drains_then_disconnects() {
        let (tx, rx) = bounded(4);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        // Buffered messages still arrive after the last sender leaves.
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.try_recv().unwrap(), 2);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv_timeout(Duration::from_millis(1)), Err(RecvTimeoutError::Disconnected));
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        let h = thread::spawn(move || {
            thread::sleep(Duration::from_millis(20));
            tx.send(42).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 42);
        h.join().unwrap();
    }

    #[test]
    fn blocked_sender_wakes_when_a_slot_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2)); // blocks: full
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        h.join().unwrap().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
    }

    #[test]
    fn mpmc_delivers_every_message_exactly_once() {
        const PRODUCERS: usize = 4;
        const CONSUMERS: usize = 4;
        const PER_PRODUCER: usize = 250;
        let (tx, rx) = bounded(8);
        let producers: Vec<_> = (0..PRODUCERS)
            .map(|p| {
                let tx = tx.clone();
                thread::spawn(move || {
                    for i in 0..PER_PRODUCER {
                        tx.send(p * PER_PRODUCER + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<usize> = Vec::new();
        for c in consumers {
            all.extend(c.join().unwrap());
        }
        all.sort_unstable();
        let expected: Vec<usize> = (0..PRODUCERS * PER_PRODUCER).collect();
        assert_eq!(all, expected, "every message delivered exactly once");
    }

    #[test]
    fn zero_capacity_is_rejected_loudly() {
        assert!(std::panic::catch_unwind(|| bounded::<u8>(0)).is_err());
    }
}
