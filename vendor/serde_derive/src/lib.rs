//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim.
//!
//! syn/quote are unavailable (no registry), so the input item is parsed
//! directly from `proc_macro::TokenStream`. Supported shapes — which is
//! exactly what this workspace derives on:
//!
//! * non-generic structs with named fields,
//! * non-generic enums whose variants are unit or tuple (any arity).
//!
//! `#[serde(...)]` attributes are not supported and none exist in-tree;
//! anything unsupported fails the build with a clear message rather than
//! silently mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Mode::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Serialize,
    Deserialize,
}

enum Item {
    Struct { name: String, fields: Vec<String> },
    Enum { name: String, variants: Vec<(String, usize)> },
}

fn expand(input: TokenStream, mode: Mode) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!(\"serde shim derive: {msg}\");").parse().unwrap()
        }
    };
    let code = match (&item, mode) {
        (Item::Struct { name, fields }, Mode::Serialize) => struct_ser(name, fields),
        (Item::Struct { name, fields }, Mode::Deserialize) => struct_de(name, fields),
        (Item::Enum { name, variants }, Mode::Serialize) => enum_ser(name, variants),
        (Item::Enum { name, variants }, Mode::Deserialize) => enum_de(name, variants),
    };
    code.parse().expect("derive produced invalid Rust")
}

/// Parse `[attrs] [pub] (struct|enum) Name { ... }` out of the token
/// stream rustc hands a derive macro.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);
    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g.stream(),
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!("generic type `{name}` is not supported by the shim derive"))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple struct `{name}` is not supported by the shim derive"))
            }
            Some(_) => continue,
            None => return Err(format!("no body found for `{name}`")),
        }
    };
    match kind.as_str() {
        "struct" => Ok(Item::Struct { name, fields: parse_named_fields(body)? }),
        "enum" => Ok(Item::Enum { name, variants: parse_variants(body)? }),
        other => Err(format!("cannot derive for `{other}` items")),
    }
}

fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Field names from `{ a: T, pub b: U<V, W>, ... }`. Commas inside
/// parenthesised groups are invisible (they are nested token groups);
/// commas inside generic arguments are skipped by tracking `<`/`>` depth.
fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after `{name}`, got {other:?}")),
        }
        fields.push(name);
        let mut angle_depth = 0usize;
        for tok in tokens.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1)
                }
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// `(variant name, payload arity)` pairs; arity 0 = unit variant.
fn parse_variants(body: TokenStream) -> Result<Vec<(String, usize)>, String> {
    let mut variants = Vec::new();
    let mut tokens = body.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let name = match tokens.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        let mut arity = 0usize;
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    arity = tuple_arity(g.stream());
                    tokens.next();
                }
                Delimiter::Brace => {
                    return Err(format!(
                        "struct variant `{name}` is not supported by the shim derive"
                    ))
                }
                _ => {}
            }
        }
        variants.push((name, arity));
        for tok in tokens.by_ref() {
            if matches!(&tok, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
        }
    }
    Ok(variants)
}

fn tuple_arity(stream: TokenStream) -> usize {
    let mut arity = 1;
    let mut angle_depth = 0usize;
    let mut saw_any = false;
    for tok in stream {
        saw_any = true;
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1)
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => arity += 1,
            _ => {}
        }
    }
    if saw_any {
        arity
    } else {
        0
    }
}

fn struct_ser(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Map(vec![{entries}])\n\
             }}\n\
         }}"
    )
}

fn struct_de(name: &str, fields: &[String]) -> String {
    let entries: String = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::from_value(::serde::field(map, \"{f}\")?)?,"))
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let map = v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                 Ok({name} {{ {entries} }})\n\
             }}\n\
         }}"
    )
}

fn bindings(arity: usize) -> Vec<String> {
    (0..arity).map(|i| format!("f{i}")).collect()
}

fn enum_ser(name: &str, variants: &[(String, usize)]) -> String {
    let arms: String = variants
        .iter()
        .map(|(v, arity)| match arity {
            0 => format!("{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),"),
            1 => format!(
                "{name}::{v}(f0) => ::serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::to_value(f0))]),"
            ),
            &n => {
                let binds = bindings(n).join(", ");
                let items: String = bindings(n)
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b}),"))
                    .collect();
                format!(
                    "{name}::{v}({binds}) => ::serde::Value::Map(vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Seq(vec![{items}]))]),"
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn enum_de(name: &str, variants: &[(String, usize)]) -> String {
    let unit_arms: String = variants
        .iter()
        .filter(|(_, a)| *a == 0)
        .map(|(v, _)| format!("::serde::Value::Str(s) if s == \"{v}\" => Ok({name}::{v}),"))
        .collect();
    let payload_arms: String = variants
        .iter()
        .filter(|(_, a)| *a > 0)
        .map(|(v, arity)| {
            if *arity == 1 {
                format!(
                    "::serde::Value::Map(m) if m.len() == 1 && m[0].0 == \"{v}\" => \
                         Ok({name}::{v}(::serde::Deserialize::from_value(&m[0].1)?)),"
                )
            } else {
                let elems: String = (0..*arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::from_value(seq.get({i}).ok_or_else(|| ::serde::Error::custom(\"short variant payload\"))?)?,"
                        )
                    })
                    .collect();
                format!(
                    "::serde::Value::Map(m) if m.len() == 1 && m[0].0 == \"{v}\" => {{\n\
                         let seq = m[0].1.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected payload sequence\"))?;\n\
                         Ok({name}::{v}({elems}))\n\
                     }},"
                )
            }
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                     {unit_arms}\n\
                     {payload_arms}\n\
                     _ => Err(::serde::Error::custom(\"unrecognised {name} value\")),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
