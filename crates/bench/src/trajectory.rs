//! `BENCH_*.json` performance-trajectory entries.
//!
//! Every perf-focused PR records a machine-readable baseline under
//! `results/BENCH_<seq>.json` so later optimisation work has a number to
//! beat (convention defined in ROADMAP.md). The `bench_report` binary
//! builds a [`Trajectory`] by re-running the criterion benches' workloads
//! with the same median-of-samples methodology as the vendored criterion
//! shim, then persists it through [`Trajectory::save_next`].

use serde::Serialize;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Schema identifier written into every trajectory file.
pub const SCHEMA: &str = "bench-trajectory-v1";

/// One measured workload.
#[derive(Debug, Clone, Serialize)]
pub struct BenchEntry {
    /// Bench name, `group/function` style matching the criterion benches.
    pub bench: String,
    /// Median wall-clock nanoseconds per iteration.
    pub median_ns: u64,
    /// Throughput derived from the median (MiB/s over the workload bytes,
    /// or elements/s where bytes make no sense); 0 when not meaningful.
    pub throughput: f64,
    /// Throughput unit: "MiB/s", "Melem/s", or "".
    pub throughput_unit: String,
    /// Workload size, e.g. "64x64x64" or "4096 partitions".
    pub grid: String,
}

/// A full trajectory file: one `bench_report` run.
#[derive(Debug, Clone, Serialize)]
pub struct Trajectory {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// `git rev-parse --short HEAD` at measurement time ("unknown" outside
    /// a git checkout).
    pub commit: String,
    /// `std::thread::available_parallelism` on the measuring host — needed
    /// to interpret the serial-vs-parallel pipeline entries.
    pub host_parallelism: usize,
    /// Measured workloads.
    pub entries: Vec<BenchEntry>,
    /// Free-form context (scale, caveats, derived speedups).
    pub notes: Vec<String>,
}

impl Trajectory {
    pub fn new() -> Self {
        Self {
            schema: SCHEMA.to_string(),
            commit: commit_hash(),
            host_parallelism: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1),
            entries: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Record one workload: time `f`, derive throughput from `bytes` when
    /// given.
    pub fn measure<F: FnMut()>(
        &mut self,
        bench: &str,
        grid: &str,
        samples: usize,
        bytes: Option<u64>,
        f: F,
    ) -> u64 {
        let median = median_ns(samples, f);
        let secs = median as f64 / 1e9;
        let (throughput, unit) = match bytes {
            Some(b) if median > 0 => (b as f64 / secs / (1 << 20) as f64, "MiB/s"),
            _ => (0.0, ""),
        };
        self.entries.push(BenchEntry {
            bench: bench.to_string(),
            median_ns: median,
            throughput,
            throughput_unit: unit.to_string(),
            grid: grid.to_string(),
        });
        median
    }

    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("trajectory serializes")
    }

    /// Write to `dir/BENCH_<next>.json` (scans for the first free sequence
    /// number) and return the path.
    pub fn save_next(&self, dir: &Path) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = next_bench_path(dir);
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

impl Default for Trajectory {
    fn default() -> Self {
        Self::new()
    }
}

/// First unused `BENCH_<seq>.json` path under `dir` (sequence starts at 1).
pub fn next_bench_path(dir: &Path) -> PathBuf {
    for seq in 1..10_000u32 {
        let p = dir.join(format!("BENCH_{seq:04}.json"));
        if !p.exists() {
            return p;
        }
    }
    dir.join("BENCH_overflow.json")
}

/// Short commit hash of HEAD, or "unknown".
pub fn commit_hash() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Median ns/iteration of `samples` timed samples, with the same warm-up +
/// iteration-count calibration as the vendored criterion shim (so
/// `bench_report` numbers are comparable to `cargo bench` output).
pub fn median_ns<F: FnMut()>(samples: usize, mut f: F) -> u64 {
    for _ in 0..2 {
        f();
    }
    let probe = Instant::now();
    f();
    let once = probe.elapsed().max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;
    let mut timings: Vec<u64> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        timings.push((start.elapsed() / iters).as_nanos() as u64);
    }
    timings.sort_unstable();
    timings[timings.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_busy_loop_is_positive() {
        let mut acc = 0u64;
        let m = median_ns(3, || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            std::hint::black_box(acc);
        });
        assert!(m > 0);
    }

    #[test]
    fn trajectory_records_entries_and_serializes() {
        let mut t = Trajectory::new();
        let m = t.measure("group/fn", "8x8x8", 3, Some(2048), || {
            std::hint::black_box((0..500u64).sum::<u64>());
        });
        assert!(m > 0);
        t.note("smoke");
        assert_eq!(t.schema, SCHEMA);
        assert_eq!(t.entries.len(), 1);
        let json = t.to_json();
        assert!(json.contains("bench-trajectory-v1"));
        assert!(json.contains("group/fn"));
        assert!(json.contains("MiB/s"));
    }

    #[test]
    fn next_bench_path_skips_existing() {
        let dir = std::env::temp_dir().join(format!("bench_traj_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(next_bench_path(&dir).ends_with("BENCH_0001.json"));
        std::fs::write(dir.join("BENCH_0001.json"), "{}").unwrap();
        assert!(next_bench_path(&dir).ends_with("BENCH_0002.json"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
