//! Fig. 14: histogram of the effective (boundary) cell count across
//! partitions of the baryon-density field.
//!
//! A dispersed histogram is what gives the halo-aware optimizer headroom:
//! partitions with few boundary cells can absorb much larger bounds.

use crate::report::{f, Report, Scale};
use crate::workloads;
use gridlab::Field3;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.baryon_density;
    let dec = workloads::decomposition(scale);
    let hc = workloads::halo_config(field);
    let eb_ref = 1.0;

    let counts: Vec<usize> = dec.par_map(field, |_, brick: &Field3<f32>| {
        cosmoanalysis::halo::finder::boundary_cells(brick, hc.t_boundary, eb_ref)
    });

    // Log₂-spaced bins as the paper's log-scaled x-axis.
    let max = counts.iter().cloned().max().unwrap_or(1).max(1);
    let bins = (max as f64).log2().ceil() as usize + 1;
    let mut hist = vec![0usize; bins + 1]; // slot 0 = zero cells
    for &c in &counts {
        if c == 0 {
            hist[0] += 1;
        } else {
            hist[1 + (c as f64).log2().floor() as usize] += 1;
        }
    }

    let mut r = Report::new(
        "fig14",
        "Effective (boundary) cells per partition at eb_ref = 1",
        &["n_bc_range", "partitions"],
    );
    r.row(vec!["0".into(), hist[0].to_string()]);
    for (i, &h) in hist.iter().enumerate().skip(1) {
        let lo = 1usize << (i - 1);
        let hi = (1usize << i) - 1;
        r.row(vec![format!("{lo}..{hi}"), h.to_string()]);
    }
    let nz: Vec<usize> = counts.iter().cloned().filter(|&c| c > 0).collect();
    r.note(format!(
        "partitions: {}, with boundary cells: {}, max n_bc: {}",
        counts.len(),
        nz.len(),
        max
    ));
    let spread = if let (Some(&mn), Some(&mx)) = (nz.iter().min(), nz.iter().max()) {
        mx as f64 / mn as f64
    } else {
        1.0
    };
    r.note(format!("dispersion (max/min over non-zero) = {}", f(spread)));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_is_dispersed() {
        let r = run(&Scale { n: 48, parts: 4, seed: 27 });
        let total: usize = r.rows.iter().map(|row| row[1].parse::<usize>().unwrap()).sum();
        assert_eq!(total, 64); // 4³ partitions
                               // More than one occupied bucket ⇒ the dispersion the paper shows.
        let occupied = r.rows.iter().filter(|row| row[1] != "0").count();
        assert!(occupied >= 2, "boundary-cell counts not dispersed");
    }
}
