//! Fig. 18: improvement vs partition size.
//!
//! Paper: shrinking the partition edge from 512 to 64 (on 512³ data)
//! raises the improvement from 27.1 % to 56.0 % — large partitions average
//! out the contrast the optimizer feeds on.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::optimizer::QualityTarget;
use gridlab::Decomposition;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.baryon_density;
    let eb_avg = workloads::default_eb_avg(field);

    let mut r = Report::new(
        "fig18",
        "Ratio improvement vs partition size (same field, same quality)",
        &["parts_per_axis", "brick_dim", "ratio_traditional", "ratio_adaptive", "improvement_%"],
    );
    let mut parts_list = vec![2usize];
    if scale.n.is_multiple_of(4) {
        parts_list.push(4);
    }
    if scale.n.is_multiple_of(8) && scale.n / 8 >= 8 {
        parts_list.push(8);
    }
    for &parts in &parts_list {
        let dec = Decomposition::cubic(scale.n, parts).expect("divides");
        let pipeline = workloads::calibrated_pipeline(field, &dec, QualityTarget::fft_only(eb_avg));
        let a = pipeline.run_adaptive(field).ratio();
        let t = pipeline.run_traditional(field, workloads::traditional_eb(eb_avg)).ratio();
        r.row(vec![
            parts.to_string(),
            (scale.n / parts).to_string(),
            f(t),
            f(a),
            f((a / t - 1.0) * 100.0),
        ]);
    }
    r.note(
        "paper trend (gain grows as bricks shrink) holds for paper-scale bricks (>= 64^3); \
         below that, per-container costs (Huffman table, Lorenzo restart) flatten the \
         per-partition rate curves and the gain recedes — run with REPRO_N=256+ to stay \
         in the paper's brick range",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_wins_at_every_partition_size() {
        let r = run(&Scale { n: 64, parts: 4, seed: 35 });
        assert!(r.rows.len() >= 2);
        for row in &r.rows {
            let imp: f64 = row[4].parse().unwrap();
            assert!(imp > 5.0, "parts {}: improvement {imp}%", row[0]);
        }
    }
}
