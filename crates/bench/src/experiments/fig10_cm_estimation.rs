//! Fig. 10: (a) accuracy of predicting C_m from the partition mean;
//! (b) consistency of the compressor's rate curves across snapshots.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::math::linear_fit;
use adaptive_config::ratio_model::measured_bitrate;
use nyxlite::NyxConfig;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.baryon_density;
    let dec = workloads::decomposition(scale);
    let base = workloads::default_eb_avg(field);
    let model = workloads::calibrated_model(field, &dec, base);

    let mut r = Report::new(
        "fig10",
        "C_m prediction from partition mean + rate-curve consistency",
        &["partition", "mean", "C_measured", "C_predicted", "rel_err"],
    );

    // (a) Validate C prediction on partitions not necessarily in the
    // calibration sample: measure C via two-point fit at the shared c.
    let sweep = [0.5 * base, 2.0 * base];
    let ln_eb: Vec<f64> = sweep.iter().map(|e| e.ln()).collect();
    let m = dec.num_partitions();
    let stride = (m / 12).max(1);
    let mut rel_errs = Vec::new();
    for pid in (0..m).step_by(stride) {
        let p = dec.partition(pid).expect("in range");
        let brick = field.extract(p.origin, p.dims);
        let mean = gridlab::stats::mean(brick.as_slice());
        let ln_b: Vec<f64> =
            sweep.iter().map(|&eb| measured_bitrate(&brick, eb).max(1e-6).ln()).collect();
        // C from the measured points under the shared exponent.
        let ln_c = ln_b.iter().zip(&ln_eb).map(|(lb, le)| lb - model.c * le).sum::<f64>() / 2.0;
        let c_meas = ln_c.exp();
        let c_pred = model.coefficient(mean);
        let rel = (c_pred - c_meas).abs() / c_meas;
        rel_errs.push(rel);
        r.row(vec![pid.to_string(), f(mean), f(c_meas), f(c_pred), f(rel)]);
    }
    let mean_rel = rel_errs.iter().sum::<f64>() / rel_errs.len() as f64;
    r.note(format!("mean relative C error = {}", f(mean_rel)));

    // (b) Consistency: fit the exponent on two different snapshots; SZ-class
    // prediction+quantisation gives nearly identical curves.
    let snap_b = NyxConfig::new(scale.n, scale.seed + 1).generate(workloads::Z_DEFAULT);
    let slope_of = |fld: &gridlab::Field3<f32>| -> f64 {
        let p = dec.partition(0).expect("partition 0");
        let brick = fld.extract(p.origin, p.dims);
        let ebs = [0.5 * base, base, 2.0 * base];
        let ln_e: Vec<f64> = ebs.iter().map(|e| e.ln()).collect();
        let ln_b: Vec<f64> =
            ebs.iter().map(|&eb| measured_bitrate(&brick, eb).max(1e-6).ln()).collect();
        linear_fit(&ln_e, &ln_b).1
    };
    let sa = slope_of(field);
    let sb = slope_of(&snap_b.baryon_density);
    r.note(format!(
        "rate-curve exponent snapshot A = {}, snapshot B = {} (consistent c)",
        f(sa),
        f(sb)
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prediction_error_is_bounded() {
        let r = run(&Scale { n: 32, parts: 4, seed: 19 });
        let note = r.notes.iter().find(|n| n.contains("mean relative")).expect("note");
        let v: f64 = note.rsplit('=').next().unwrap().trim().parse().unwrap();
        assert!(v < 0.6, "mean relative C error {v}");
    }

    #[test]
    fn exponents_agree_across_snapshots() {
        let r = run(&Scale { n: 32, parts: 4, seed: 19 });
        let note = r.notes.iter().find(|n| n.contains("snapshot A")).expect("note");
        // parse "... A = x, snapshot B = y (consistent c)"
        let nums: Vec<f64> = note
            .split('=')
            .skip(1)
            .filter_map(|s| s.trim().split([',', ' ']).next().and_then(|t| t.parse::<f64>().ok()))
            .collect();
        assert_eq!(nums.len(), 2, "{note}");
        assert!((nums[0] - nums[1]).abs() < 0.5 * nums[0].abs().max(0.2), "{note}");
    }
}
