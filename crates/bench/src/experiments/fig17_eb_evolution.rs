//! Fig. 17: optimized error-bound maps early vs late in the simulation.
//!
//! Early (high-z) snapshots are smooth and homogeneous, so optimized
//! bounds cluster near the average; late snapshots are clumpy, so the
//! bound distribution disperses.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::optimizer::QualityTarget;
use nyxlite::NyxConfig;

pub fn run(scale: &Scale) -> Report {
    let cfg = NyxConfig::new(scale.n, scale.seed);
    let dec = workloads::decomposition(scale);

    let mut r = Report::new(
        "fig17",
        "Optimized bound distribution: early (z=54) vs late (z=42)",
        &["redshift", "eb_min/avg", "eb_max/avg", "spread_max/min", "eb_cv"],
    );
    let mut spreads = Vec::new();
    for z in [54.0, 42.0] {
        let snap = cfg.generate(z);
        let field = &snap.baryon_density;
        let eb_avg = workloads::default_eb_avg(field);
        let pipeline = workloads::calibrated_pipeline(field, &dec, QualityTarget::fft_only(eb_avg));
        let ebs = pipeline.run_adaptive(field).ebs;
        let mean = ebs.iter().sum::<f64>() / ebs.len() as f64;
        let min = ebs.iter().cloned().fold(f64::MAX, f64::min);
        let max = ebs.iter().cloned().fold(f64::MIN, f64::max);
        let var = ebs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / ebs.len() as f64;
        let cv = var.sqrt() / mean;
        spreads.push(max / min);
        r.row(vec![f(z), f(min / mean), f(max / mean), f(max / min), f(cv)]);
    }
    r.note(format!(
        "late/early spread ratio = {} (> 1 ⇒ structure growth disperses bounds)",
        f(spreads[1] / spreads[0])
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_snapshot_disperses_bounds() {
        let r = run(&Scale { n: 32, parts: 4, seed: 33 });
        let early_cv: f64 = r.rows[0][4].parse().unwrap();
        let late_cv: f64 = r.rows[1][4].parse().unwrap();
        assert!(
            late_cv >= early_cv * 0.8,
            "late CV {late_cv} should not collapse vs early {early_cv}"
        );
    }
}
