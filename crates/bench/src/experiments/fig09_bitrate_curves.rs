//! Fig. 9: bit-rate vs error-bound curves for sampled partitions.
//!
//! Each partition's curve should be a power law (straight in log-log) with
//! a shared slope and partition-dependent offset — the premise of Eq. 15.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::math::linear_fit;
use adaptive_config::ratio_model::measured_bitrate;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.baryon_density;
    let dec = workloads::decomposition(scale);
    let base = workloads::default_eb_avg(field);
    let sweep: Vec<f64> = workloads::EB_SWEEP.iter().map(|s| s / 0.2 * base).collect();

    // Sample up to 8 partitions evenly.
    let m = dec.num_partitions();
    let stride = (m / 8).max(1);
    let samples: Vec<usize> = (0..m).step_by(stride).take(8).collect();

    let mut headers: Vec<String> = vec!["eb".into()];
    headers.extend(samples.iter().map(|i| format!("p{i}")));
    let href: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut r = Report::new("fig09", "Bit rate vs error bound per partition", &href);

    let mut curves: Vec<Vec<f64>> = vec![Vec::new(); samples.len()];
    for &eb in &sweep {
        let mut row = vec![f(eb)];
        for (ci, &pid) in samples.iter().enumerate() {
            let p = dec.partition(pid).expect("sampled in range");
            let brick = field.extract(p.origin, p.dims);
            let b = measured_bitrate(&brick, eb);
            curves[ci].push(b);
            row.push(f(b));
        }
        r.row(row);
    }

    // Fit per-partition slopes in log-log; report the spread.
    let ln_eb: Vec<f64> = sweep.iter().map(|e| e.ln()).collect();
    let slopes: Vec<f64> = curves
        .iter()
        .map(|c| {
            let ln_b: Vec<f64> = c.iter().map(|b| b.max(1e-6).ln()).collect();
            linear_fit(&ln_eb, &ln_b).1
        })
        .collect();
    let smin = slopes.iter().cloned().fold(f64::MAX, f64::min);
    let smax = slopes.iter().cloned().fold(f64::MIN, f64::max);
    let smean = slopes.iter().sum::<f64>() / slopes.len() as f64;
    r.note(format!(
        "log-log slopes (the shared c): mean {}, range [{}, {}]",
        f(smean),
        f(smin),
        f(smax)
    ));
    r.note("all slopes negative and clustered ⇒ shared-exponent power law holds");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_decreasing_and_slopes_cluster() {
        let r = run(&Scale { n: 32, parts: 4, seed: 17 });
        // Bit rate must fall as eb grows, column by column.
        for col in 1..r.headers.len() {
            let first: f64 = r.rows[0][col].parse().unwrap();
            let last: f64 = r.rows[r.rows.len() - 1][col].parse().unwrap();
            assert!(last < first, "column {col} not decreasing");
        }
        let note = &r.notes[0];
        assert!(note.contains("mean -") || note.contains("mean"), "{note}");
    }
}
