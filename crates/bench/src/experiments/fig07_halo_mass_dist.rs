//! Fig. 7: halo mass distribution under increasing error bounds.
//!
//! Paper claim: the distribution is essentially preserved — only small
//! halos near the detection limit appear/disappear at high bounds, large
//! halos survive untouched.

use crate::report::{f, Report, Scale};
use crate::workloads;
use cosmoanalysis::find_halos;
use rsz::{compress, decompress, SzConfig};

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.baryon_density;
    let hc = workloads::halo_config(field);

    let masses = |f: &gridlab::Field3<f32>| -> Vec<f64> {
        find_halos(f, &hc).halos.iter().map(|h| h.mass).collect()
    };
    let orig = masses(field);

    // Log-spaced mass bins spanning the original catalog.
    let (lo, hi) =
        match (orig.iter().cloned().reduce(f64::min), orig.iter().cloned().reduce(f64::max)) {
            (Some(lo), Some(hi)) if hi > lo => (lo.ln(), (hi * 1.001).ln()),
            _ => (0.0, 1.0),
        };
    let bins = 6;
    let w = (hi - lo) / bins as f64;
    let hist = |ms: &[f64]| -> Vec<usize> {
        let mut h = vec![0usize; bins];
        for &m in ms {
            if m > 0.0 {
                let x = ((m.ln() - lo) / w).floor();
                let i = (x.max(0.0) as usize).min(bins - 1);
                h[i] += 1;
            }
        }
        h
    };
    let h0 = hist(&orig);

    let ebs = [0.1, 1.0, 10.0];
    let mut per_eb: Vec<Vec<usize>> = Vec::new();
    let mut counts: Vec<usize> = Vec::new();
    for &eb in &ebs {
        let c = compress(field, &SzConfig::abs(eb));
        let recon: gridlab::Field3<f32> = decompress(&c).expect("container decodes");
        let m = masses(&recon);
        counts.push(m.len());
        per_eb.push(hist(&m));
    }

    let mut r = Report::new(
        "fig07",
        "Halo mass distribution vs error bound",
        &["mass_bin_low", "orig", "eb=0.1", "eb=1", "eb=10"],
    );
    for i in 0..bins {
        r.row(vec![
            f((lo + i as f64 * w).exp()),
            h0[i].to_string(),
            per_eb[0][i].to_string(),
            per_eb[1][i].to_string(),
            per_eb[2][i].to_string(),
        ]);
    }
    r.note(format!(
        "halo counts: orig {} | {}",
        orig.len(),
        ebs.iter().zip(&counts).map(|(e, c)| format!("eb={e}: {c}")).collect::<Vec<_>>().join(", ")
    ));
    r.note("large-mass bins must be stable; only the lowest bins may wiggle");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_bins_are_stable() {
        let r = run(&Scale { n: 48, parts: 2, seed: 13 });
        // The two heaviest mass bins: identical at eb=0.1, near-identical
        // at eb=1 (small halos at bin edges may wiggle by a count or two).
        let bins = r.rows.len();
        for row in &r.rows[bins - 2..] {
            let orig: i64 = row[1].parse().unwrap();
            let lo: i64 = row[2].parse().unwrap();
            let mid: i64 = row[3].parse().unwrap();
            assert_eq!(orig, lo, "heavy bin changed at eb=0.1: {row:?}");
            assert!((orig - mid).abs() <= 2, "heavy bin drifted at eb=1: {row:?}");
        }
    }
}
