//! Fig. 3: SZ compression-error distribution is ≈ uniform on [−eb, eb].
//!
//! Paper setup: temperature field, ABS bound 10, 100-bin histogram.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::error_model::sz_error::measure_error_distribution;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let eb = 10.0;
    let bins = 20; // 100 in the paper; 20 keeps the table readable
    let d = measure_error_distribution(&snap.temperature, eb, bins);

    let mut r = Report::new(
        "fig03",
        "SZ error distribution on temperature (ABS eb = 10)",
        &["bin_center", "count", "uniform_expect"],
    );
    let expect = d.histogram.total() as f64 / bins as f64;
    for (i, &c) in d.histogram.counts.iter().enumerate() {
        r.row(vec![f(d.histogram.center(i)), c.to_string(), f(expect)]);
    }
    r.note(format!("error mean = {} (model: 0)", f(d.mean)));
    r.note(format!("variance / (eb²/3) = {} (model: 1.0 for uniform)", f(d.variance_vs_uniform())));
    r.note(format!("bin-count CV = {} (0 = perfectly flat)", f(d.uniformity_cv())));
    r.note(format!("bound violations = {} (must be 0)", d.bound_violations));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distribution_is_flat_and_bounded() {
        let r = run(&Scale { n: 32, parts: 2, seed: 7 });
        assert_eq!(r.rows.len(), 20);
        assert!(r.notes.iter().any(|n| n.contains("violations = 0")));
    }
}
