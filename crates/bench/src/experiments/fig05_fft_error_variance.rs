//! Fig. 5: modeled vs measured FFT-error σ across a range of bounds.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::FftErrorModel;
use fftlite::{Complex64, Fft3};
use rsz::{compress_slice, decompress, SzConfig};

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.temperature;
    let dec = workloads::decomposition(scale);
    let model = FftErrorModel::new(field.len());
    let base = workloads::default_eb_avg(field);

    let mut r = Report::new(
        "fig05",
        "FFT error σ: model √(N/6)·mean(eb) vs measurement",
        &["eb_avg", "sigma_model", "sigma_measured", "ratio"],
    );
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let eb_avg = base * mult;
        // Mixed bounds around the average (±50 %), exercising Eq. 10.
        let ebs: Vec<f64> = (0..dec.num_partitions())
            .map(|i| if i % 2 == 0 { 0.5 * eb_avg } else { 1.5 * eb_avg })
            .collect();
        let bricks = dec.par_map(field, |p, brick| {
            let c = compress_slice(brick.as_slice(), brick.dims(), &SzConfig::abs(ebs[p.id]));
            decompress::<f32>(&c).expect("container decodes")
        });
        let recon = dec.assemble(&bricks).expect("brick count matches");
        let d = field.dims();
        let mut buf: Vec<Complex64> = field
            .as_slice()
            .iter()
            .zip(recon.as_slice())
            .map(|(&a, &b)| Complex64::real(a as f64 - b as f64))
            .collect();
        Fft3::new(d.nx, d.ny, d.nz).forward(&mut buf);
        let measured = (buf.iter().map(|z| z.re * z.re).sum::<f64>() / buf.len() as f64).sqrt();
        let predicted = model.sigma_mixed(&ebs);
        r.row(vec![f(eb_avg), f(predicted), f(measured), f(measured / predicted)]);
    }
    r.note("ratio ≈ 1 across the sweep validates Eq. 10's linear-in-eb scaling");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_tracks_model_across_sweep() {
        let r = run(&Scale { n: 32, parts: 4, seed: 5 });
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            let ratio: f64 = row[3].parse().unwrap();
            assert!(ratio > 0.4 && ratio < 2.0, "ratio {ratio}");
        }
    }
}
