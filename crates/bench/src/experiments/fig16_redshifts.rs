//! Fig. 16: adaptive vs static vs traditional across a redshift series.
//!
//! "Static" freezes the per-partition bounds optimized on the earliest
//! snapshot and reuses them; "adaptive" re-optimizes every snapshot. The
//! paper shows adaptive ≥ static ≥ traditional with the gap growing as
//! structure sharpens toward lower redshift.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::optimizer::QualityTarget;
use adaptive_config::{CodecId, Container};
use nyxlite::NyxConfig;

pub fn run(scale: &Scale) -> Report {
    let cfg = NyxConfig::new(scale.n, scale.seed);
    let redshifts = [54.0, 51.0, 48.0, 45.0, 42.0];
    let dec = workloads::decomposition(scale);

    // Calibrate + optimize on the earliest snapshot to define "static".
    let first = cfg.generate(redshifts[0]);
    let eb_avg = workloads::default_eb_avg(&first.baryon_density);
    let pipeline = workloads::calibrated_pipeline(
        &first.baryon_density,
        &dec,
        QualityTarget::fft_only(eb_avg),
    );
    let static_ebs = pipeline.run_adaptive(&first.baryon_density).ebs.clone();

    let mut r = Report::new(
        "fig16",
        "Ratio across redshifts: adaptive / static / traditional (normalised to adaptive)",
        &["redshift", "adaptive", "static", "traditional"],
    );
    for &z in &redshifts {
        let snap = cfg.generate(z);
        let field = &snap.baryon_density;
        let adaptive = pipeline.run_adaptive(field).ratio();
        // Static: reuse the early-snapshot bounds (same v2 container
        // format as the pipeline, so the comparison is storage-fair).
        let static_r = {
            let containers = dec.par_map(field, |p, brick| {
                Container::compress(CodecId::Rsz, brick.as_slice(), brick.dims(), static_ebs[p.id])
            });
            let bytes: usize = containers.iter().map(|c| c.len()).sum();
            (field.len() * 4) as f64 / bytes as f64
        };
        let traditional =
            pipeline.run_traditional(field, workloads::traditional_eb(eb_avg)).ratio();
        r.row(vec![f(z), f(1.0), f(static_r / adaptive), f(traditional / adaptive)]);
    }
    r.note("values < 1 mean the method trails per-snapshot adaptive optimization");
    r.note("traditional gap should widen at lower z as partition contrast grows");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_dominates_and_gap_grows() {
        let r = run(&Scale { n: 32, parts: 4, seed: 31 });
        assert_eq!(r.rows.len(), 5);
        for row in &r.rows {
            let stat: f64 = row[2].parse().unwrap();
            let trad: f64 = row[3].parse().unwrap();
            assert!(stat <= 1.02, "static beat adaptive at z {}: {stat}", row[0]);
            assert!(trad <= 1.02, "traditional beat adaptive at z {}: {trad}", row[0]);
        }
        let trad_first: f64 = r.rows[0][3].parse().unwrap();
        let trad_last: f64 = r.rows[r.rows.len() - 1][3].parse().unwrap();
        assert!(
            trad_last <= trad_first + 0.05,
            "traditional gap should not shrink materially: {trad_first} → {trad_last}"
        );
    }
}
