//! Fig. 12: bit-quality ratio (the rate-curve derivative) per partition,
//! traditional vs adaptive.
//!
//! Under the traditional single bound, partitions sit at wildly different
//! marginal costs; the optimizer equalises them — the spread collapsing is
//! exactly the optimisation criterion.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::optimizer::{bit_quality_ratio, QualityTarget};
use adaptive_config::ratio_model::extract_features;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.temperature;
    let dec = workloads::decomposition(scale);
    let eb_avg = workloads::default_eb_avg(field);
    let pipeline = workloads::calibrated_pipeline(field, &dec, QualityTarget::fft_only(eb_avg));
    let model = pipeline.optimizer.primary_model();
    let adaptive = pipeline.run_adaptive(field);
    let features = extract_features(field, &dec, 0.0, 1.0);

    let ratios = |ebs: &[f64]| -> Vec<f64> {
        features
            .iter()
            .zip(ebs)
            .map(|(feat, &eb)| bit_quality_ratio(&model, feat.mean, eb).abs())
            .collect()
    };
    let trad = ratios(&vec![eb_avg; features.len()]);
    let adap = ratios(&adaptive.ebs);

    // Normalise to the adaptive mean, as the paper's y-axis does.
    let mean_adap = adap.iter().sum::<f64>() / adap.len() as f64;

    let mut r = Report::new(
        "fig12",
        "Bit-quality ratio per partition (normalised): traditional vs adaptive",
        &["partition", "traditional", "adaptive"],
    );
    let stride = (features.len() / 16).max(1);
    for i in (0..features.len()).step_by(stride) {
        r.row(vec![i.to_string(), f(trad[i] / mean_adap), f(adap[i] / mean_adap)]);
    }
    let spread = |v: &[f64]| {
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        max / min
    };
    r.note(format!(
        "spread (max/min): traditional {}, adaptive {}",
        f(spread(&trad)),
        f(spread(&adap))
    ));
    r.note("adaptive spread ≪ traditional spread = equalised marginal cost");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_spread_is_smaller() {
        let r = run(&Scale { n: 32, parts: 4, seed: 23 });
        let note = r.notes.iter().find(|n| n.contains("spread")).expect("note");
        let nums: Vec<f64> = note
            .split(|c: char| !c.is_ascii_digit() && c != '.' && c != 'e' && c != '-')
            .filter_map(|s| s.parse::<f64>().ok())
            .collect();
        assert!(nums.len() >= 2, "{note}");
        let (trad, adap) = (nums[0], nums[1]);
        assert!(adap <= trad, "adaptive {adap} vs traditional {trad}");
    }
}
