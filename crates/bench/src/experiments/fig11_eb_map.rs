//! Fig. 11: the optimized per-partition error-bound map.
//!
//! The paper renders a 512-partition map next to the temperature field.
//! We print the bound assigned to each partition of the first z-layer of
//! bricks and summary statistics over all partitions.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::optimizer::QualityTarget;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.temperature;
    let dec = workloads::decomposition(scale);
    let eb_avg = workloads::default_eb_avg(field);
    let pipeline = workloads::calibrated_pipeline(field, &dec, QualityTarget::fft_only(eb_avg));
    let result = pipeline.run_adaptive(field);

    let mut r = Report::new(
        "fig11",
        "Optimized error-bound configuration per partition (z-layer 0)",
        &["brick_x", "brick_y", "eb", "eb_over_avg"],
    );
    let (cx, cy, _) = dec.counts();
    for bx in 0..cx {
        for by in 0..cy {
            // Partition id layout: (bx·cy + by)·cz + bz with bz = 0.
            let id = (bx * cy + by) * dec.counts().2;
            let eb = result.ebs[id];
            r.row(vec![bx.to_string(), by.to_string(), f(eb), f(eb / eb_avg)]);
        }
    }
    let min = result.ebs.iter().cloned().fold(f64::MAX, f64::min);
    let max = result.ebs.iter().cloned().fold(f64::MIN, f64::max);
    let mean = result.ebs.iter().sum::<f64>() / result.ebs.len() as f64;
    r.note(format!(
        "all {} partitions: eb ∈ [{}, {}], mean {} (budget {})",
        result.ebs.len(),
        f(min),
        f(max),
        f(mean),
        f(eb_avg)
    ));
    r.note(format!("spread max/min = {} (1.0 would mean no adaptation)", f(max / min)));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_adapts_and_respects_budget() {
        let r = run(&Scale { n: 32, parts: 4, seed: 21 });
        assert_eq!(r.rows.len(), 16); // 4×4 bricks in the layer
        let spread_note = r.notes.iter().find(|n| n.contains("spread")).expect("note");
        let spread: f64 = spread_note
            .split('=')
            .nth(1)
            .unwrap()
            .trim()
            .split(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(spread > 1.05, "no adaptation: spread {spread}");
        assert!(spread <= 16.0 + 1e-9, "clamp violated: {spread}");
    }
}
