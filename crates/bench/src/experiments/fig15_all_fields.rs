//! Fig. 15: compression-ratio improvement of adaptive over traditional on
//! all six Nyx fields at matched post-hoc quality.
//!
//! Paper headline: +56 % average, up to +73 %.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::optimizer::QualityTarget;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let dec = workloads::decomposition(scale);

    let mut r = Report::new(
        "fig15",
        "Compression ratio: traditional vs adaptive, all 6 fields",
        &[
            "field",
            "eb_avg",
            "ratio_traditional",
            "ratio_adaptive",
            "improvement_%",
            "redistribution_only_%",
        ],
    );
    let mut improvements = Vec::new();
    let mut redistribution = Vec::new();
    for (kind, field) in workloads::all_fields(&snap) {
        let eb_avg = workloads::default_eb_avg(field);
        let target = if kind.is_halo_field() {
            let hc = workloads::halo_config(field);
            // Generous budget so FFT dominates, as in the paper's finding
            // that the FFT-optimized combination also satisfies the halo
            // criterion.
            QualityTarget::with_halo(eb_avg, hc.t_boundary, f64::INFINITY)
        } else {
            QualityTarget::fft_only(eb_avg)
        };
        let pipeline = workloads::calibrated_pipeline(field, &dec, target);
        let adaptive = pipeline.run_adaptive(field);
        // Traditional: conservative uniform bound (no model ⇒ safety margin).
        let traditional = pipeline.run_traditional(field, workloads::traditional_eb(eb_avg));
        // Matched-bound baseline isolates the redistribution component.
        let matched = pipeline.run_traditional(field, eb_avg);
        let imp = (adaptive.ratio() / traditional.ratio() - 1.0) * 100.0;
        let red = (adaptive.ratio() / matched.ratio() - 1.0) * 100.0;
        improvements.push(imp);
        redistribution.push(red);
        r.row(vec![
            kind.name().into(),
            f(eb_avg),
            f(traditional.ratio()),
            f(adaptive.ratio()),
            f(imp),
            f(red),
        ]);
    }
    let avg = improvements.iter().sum::<f64>() / improvements.len() as f64;
    let max = improvements.iter().cloned().fold(f64::MIN, f64::max);
    let avg_red = redistribution.iter().sum::<f64>() / redistribution.len() as f64;
    r.note(format!("average improvement {}%, max {}% (paper: 56 % avg, 73 % max)", f(avg), f(max)));
    r.note(format!(
        "decomposition: accurate bound estimation (safety factor {}) + per-partition \
         redistribution (avg {}%)",
        workloads::TRADITIONAL_SAFETY,
        f(avg_red)
    ));
    r.note("velocity gains come almost entirely from bound estimation, as the paper notes");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_wins_on_every_field() {
        let r = run(&Scale { n: 32, parts: 4, seed: 29 });
        assert_eq!(r.rows.len(), 6);
        for row in &r.rows {
            let imp: f64 = row[4].parse().unwrap();
            assert!(imp > 5.0, "{}: improvement {imp}% vs conservative baseline", row[0]);
            let red: f64 = row[5].parse().unwrap();
            // Redistribution alone must never lose materially.
            assert!(red > -2.0, "{}: redistribution {red}%", row[0]);
        }
    }
}
