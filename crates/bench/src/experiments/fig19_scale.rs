//! Fig. 19: improvement across simulation scales.
//!
//! Paper: the adaptive gain is consistent across 512³ and 1024³ runs
//! (56.0 % and 51.9 %). We sweep grid sizes with partition counts fixed.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::optimizer::QualityTarget;
use gridlab::Decomposition;
use nyxlite::NyxConfig;

pub fn run(scale: &Scale) -> Report {
    let mut r = Report::new(
        "fig19",
        "Ratio improvement across simulation scales",
        &["grid", "partitions", "ratio_traditional", "ratio_adaptive", "improvement_%"],
    );
    let sizes = [scale.n / 2, scale.n, scale.n * 2];
    for &n in &sizes {
        if n < 16 || n % scale.parts != 0 {
            continue;
        }
        let snap = NyxConfig::new(n, scale.seed).generate(workloads::Z_DEFAULT);
        let field = &snap.baryon_density;
        let dec = Decomposition::cubic(n, scale.parts).expect("divides");
        let eb_avg = workloads::default_eb_avg(field);
        let pipeline = workloads::calibrated_pipeline(field, &dec, QualityTarget::fft_only(eb_avg));
        let a = pipeline.run_adaptive(field).ratio();
        let t = pipeline.run_traditional(field, workloads::traditional_eb(eb_avg)).ratio();
        r.row(vec![
            format!("{n}^3"),
            dec.num_partitions().to_string(),
            f(t),
            f(a),
            f((a / t - 1.0) * 100.0),
        ]);
    }
    r.note("the improvement should be broadly consistent across scales");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_is_consistent_across_scales() {
        let r = run(&Scale { n: 32, parts: 4, seed: 37 });
        assert!(r.rows.len() >= 2);
        for row in &r.rows {
            let imp: f64 = row[4].parse().unwrap();
            assert!(imp > -5.0, "{}: improvement {imp}%", row[0]);
        }
    }
}
