//! §4.3: the in situ overhead of the adaptive machinery.
//!
//! Paper: computing per-partition means costs ~1–1.5 % of compression time
//! on CPUs; the boundary-cell feature for baryon density adds up to ~5 %;
//! the optimization itself is negligible.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::optimizer::QualityTarget;
use adaptive_config::ratio_model::extract_features;
use std::time::Instant;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let dec = workloads::decomposition(scale);

    let mut r = Report::new(
        "perf",
        "In situ overhead: features + optimization vs compression",
        &["field", "features_ms", "optimize_ms", "compress_ms", "overhead_%"],
    );
    for (kind, field) in [
        (nyxlite::FieldKind::BaryonDensity, &snap.baryon_density),
        (nyxlite::FieldKind::Temperature, &snap.temperature),
        (nyxlite::FieldKind::VelocityX, &snap.velocity_x),
    ] {
        let eb_avg = workloads::default_eb_avg(field);
        let target = if kind.is_halo_field() {
            let hc = workloads::halo_config(field);
            QualityTarget::with_halo(eb_avg, hc.t_boundary, f64::INFINITY)
        } else {
            QualityTarget::fft_only(eb_avg)
        };
        let pipeline = workloads::calibrated_pipeline(field, &dec, target);
        // Warm up rayon pools and caches once.
        let _ = extract_features(field, &dec, 0.0, 1.0);
        let result = pipeline.run_adaptive(field);
        let t = result.timings;
        r.row(vec![
            kind.name().into(),
            f(t.features.as_secs_f64() * 1e3),
            f(t.optimize.as_secs_f64() * 1e3),
            f(t.compress.as_secs_f64() * 1e3),
            f(t.overhead_fraction() * 100.0),
        ]);
    }

    // Also time the collectives: the MPI_Allreduce stand-in.
    let t0 = Instant::now();
    let ranks = dec.num_partitions().min(64);
    let _ = adaptive_config::comm::run_ranks(ranks, |rank, comm| comm.allreduce_mean(rank as f64));
    r.note(format!(
        "allreduce over {ranks} simulated ranks: {} ms (thread spawn dominated)",
        f(t0.elapsed().as_secs_f64() * 1e3)
    ));
    r.note("paper: ~1 % (mean only) to ~5 % (with boundary-cell counting)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_stays_small() {
        let r = run(&Scale { n: 32, parts: 4, seed: 39 });
        for row in &r.rows {
            let overhead: f64 = row[4].parse().unwrap();
            // Debug-build tests allow generous slack; the release-mode
            // experiment prints the paper-comparable number.
            assert!(overhead < 150.0, "{}: overhead {overhead}%", row[0]);
        }
    }
}
