//! Fig. 13: power-spectrum distortion ratio of reconstructed baryon
//! density, with the paper's ±1 % acceptance band for k below the cut.
//!
//! This experiment exercises the model chain end to end the way the paper
//! does: the analysis tolerance (`P'(k)/P(k)` within `1 ± 0.01`) is mapped
//! through the FFT error model (Eq. 10, at 2σ ⇒ 95.45 % confidence) onto
//! an average bound, the optimizer distributes it, and the reconstructed
//! spectrum is checked against the band. A 4× looser bound is run as a
//! control to show the band actually discriminates.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::optimizer::QualityTarget;
use adaptive_config::FftErrorModel;
use cosmoanalysis::{band_ratio_ok, power_spectrum, PowerSpectrumResult, SpectrumKind};
use gridlab::Field3;

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.baryon_density;
    let dec = workloads::decomposition(scale);
    let mean = gridlab::stats::mean(field.as_slice());

    // Cosmological convention: δ is normalised by the fixed cosmic mean
    // (a constant of the run), not each snapshot's sample mean — otherwise
    // a sub-percent reconstruction mean drift coherently inflates every
    // P(k) ratio.
    let kind = SpectrumKind::OverdensityFixedMean(mean);
    let ps0 = power_spectrum(field, kind);
    let k_cut = (ps0.len() as f64 * 0.6).min(10.0);

    // Map the ±1 % band to an average bound via the model:
    // DFT amplitude floor over the protected band is N·√P_min; the error σ
    // must stay below tol·floor/(2k) for 2σ confidence; Eq. 10 then gives
    // the bound in δ units, converted to density units by the mean.
    let n = field.len();
    let p_floor = ps0
        .power
        .iter()
        .zip(&ps0.k)
        .filter(|(_, &k)| k < k_cut)
        .map(|(&p, _)| p)
        .fold(f64::MAX, f64::min);
    let model = FftErrorModel::new(n);
    let amp_floor = n as f64 * p_floor.sqrt();
    let sigma_budget = model.sigma_budget_from_ratio_tol(0.01, amp_floor, 2.0);
    let eb_avg = model.eb_avg_for_sigma(sigma_budget) * mean;

    let pipeline = workloads::calibrated_pipeline(field, &dec, QualityTarget::fft_only(eb_avg));

    let spectrum_of = |ebs_scale: f64| -> (PowerSpectrumResult, f64) {
        let target = QualityTarget::fft_only(eb_avg * ebs_scale);
        let p = workloads::calibrated_pipeline(field, &dec, target);
        let result = p.run_adaptive(field);
        let recon: Field3<f32> = result.reconstruct(&dec).expect("assembles");
        (power_spectrum(&recon, kind), result.ratio())
    };

    let adaptive = pipeline.run_adaptive(field);
    let recon_a: Field3<f32> = adaptive.reconstruct(&dec).expect("assembles");
    let ps_a = power_spectrum(&recon_a, kind);

    let traditional = pipeline.run_traditional(field, workloads::traditional_eb(eb_avg));
    let recon_t: Field3<f32> = traditional.reconstruct(&dec).expect("assembles");
    let ps_t = power_spectrum(&recon_t, kind);

    let (ps_loose, _) = spectrum_of(4.0);

    let ra = ps_a.ratio(&ps0);
    let rt = ps_t.ratio(&ps0);
    let rl = ps_loose.ratio(&ps0);

    let mut r = Report::new(
        "fig13",
        "P(k) ratio reconstructed/original (acceptance 1 ± 0.01, k < cut)",
        &["k", "P(k)_orig", "ratio_adaptive", "ratio_traditional", "ratio_4x_loose"],
    );
    for i in 0..ps0.len() {
        r.row(vec![f(ps0.k[i]), f(ps0.power[i]), f(ra[i]), f(rt[i]), f(rl[i])]);
    }
    let ok_a = band_ratio_ok(&ps_a, &ps0, k_cut, 0.01);
    let ok_t = band_ratio_ok(&ps_t, &ps0, k_cut, 0.01);
    let ok_l = band_ratio_ok(&ps_loose, &ps0, k_cut, 0.01);
    r.note(format!("model-derived eb_avg = {} (k_cut = {k_cut})", f(eb_avg)));
    r.note(format!("within ±1 % for k<cut: adaptive {ok_a}, traditional {ok_t}, 4x-loose {ok_l}"));
    r.note(format!(
        "ratio at the model-derived budget: adaptive {}x vs conservative traditional {}x",
        f(adaptive.ratio()),
        f(traditional.ratio())
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_derived_bound_passes_acceptance() {
        let r = run(&Scale { n: 32, parts: 4, seed: 25 });
        let note = r.notes.iter().find(|n| n.contains("within")).expect("note");
        assert!(note.contains("adaptive true"), "{note}");
    }
}
