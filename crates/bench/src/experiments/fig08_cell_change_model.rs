//! Fig. 8: candidate-cell count change — model estimate vs measurement.
//!
//! The model (Eqs. 12–13) predicts `n_bc/4` flipped cells per partition,
//! where `n_bc` counts cells within `±eb` of `t_boundary`. We sweep bounds
//! and compare the summed estimate with the measured flip count.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::HaloErrorModel;
use gridlab::Field3;
use rsz::{compress_slice, decompress, SzConfig};

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.baryon_density;
    let dec = workloads::decomposition(scale);
    let hc = workloads::halo_config(field);
    let hm = HaloErrorModel::new(hc.t_boundary);

    let mut r = Report::new(
        "fig08",
        "Flipped candidate cells: model n_bc/4 vs measured",
        &["eb", "estimated_flips", "measured_flips", "ratio"],
    );
    for eb in [0.05, 0.1, 0.2, 0.5, 1.0, 2.0] {
        // Per-partition estimate from the boundary-cell feature.
        let estimates: Vec<f64> = dec.par_map(field, |_, brick: &Field3<f32>| {
            let nbc = cosmoanalysis::halo::finder::boundary_cells(brick, hc.t_boundary, eb);
            hm.expected_fault_cells(nbc as f64)
        });
        let estimated: f64 = estimates.iter().sum();

        // Measured flips across the whole field.
        let measured: usize = dec
            .par_map(field, |_, brick: &Field3<f32>| {
                let c = compress_slice(brick.as_slice(), brick.dims(), &SzConfig::abs(eb));
                let recon: Field3<f32> = decompress(&c).expect("container decodes");
                brick
                    .as_slice()
                    .iter()
                    .zip(recon.as_slice())
                    .filter(|(&o, &rc)| (o as f64 > hc.t_boundary) != (rc as f64 > hc.t_boundary))
                    .count()
            })
            .iter()
            .sum();

        let ratio = if estimated > 0.0 { measured as f64 / estimated } else { f64::NAN };
        r.row(vec![f(eb), f(estimated), measured.to_string(), f(ratio)]);
    }
    r.note("ratio ≈ 1 validates the 25 % flip probability (Eq. 12)");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimates_track_measurement_within_2x() {
        let r = run(&Scale { n: 48, parts: 4, seed: 15 });
        let mut meaningful = 0;
        for row in &r.rows {
            let est: f64 = row[1].parse().unwrap();
            let meas: f64 = row[2].parse().unwrap();
            if est >= 20.0 {
                let ratio = meas / est;
                assert!(ratio > 0.3 && ratio < 3.0, "eb {}: ratio {ratio}", row[0]);
                meaningful += 1;
            }
        }
        assert!(meaningful > 0, "no eb produced enough boundary cells to validate");
    }
}
