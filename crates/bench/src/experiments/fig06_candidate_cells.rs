//! Fig. 6: halo-candidate cells before vs after lossy compression.
//!
//! The paper visualises a 64³ partition at the (deliberately coarse)
//! bound eb = 10 and observes candidacy changes only on halo edges. We
//! report the counts and the overlap so the "edge-only" claim is checkable
//! numerically.

use crate::report::{f, Report, Scale};
use crate::workloads;
use rsz::{compress, decompress, SzConfig};

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.baryon_density;
    let hc = workloads::halo_config(field);

    let mut r = Report::new(
        "fig06",
        "Halo-candidate cells before/after compression",
        &["eb", "candidates_orig", "candidates_recon", "flips_in", "flips_out", "interior_flips"],
    );
    for eb in [0.1, 1.0, 10.0] {
        let c = compress(field, &SzConfig::abs(eb));
        let recon: gridlab::Field3<f32> = decompress(&c).expect("container decodes");
        let t = hc.t_boundary;
        let orig_mask: Vec<bool> = field.as_slice().iter().map(|&v| v as f64 > t).collect();
        let recon_mask: Vec<bool> = recon.as_slice().iter().map(|&v| v as f64 > t).collect();
        let mut flips_in = 0u64;
        let mut flips_out = 0u64;
        let mut interior = 0u64;
        for ((&o, &rm), &v) in orig_mask.iter().zip(&recon_mask).zip(field.as_slice()) {
            if o != rm {
                if rm {
                    flips_in += 1;
                } else {
                    flips_out += 1;
                }
                // A flip is "interior" (not an edge cell) if the original
                // value was further than eb from the threshold — the model
                // says these cannot happen.
                if (v as f64 - t).abs() > eb {
                    interior += 1;
                }
            }
        }
        r.row(vec![
            f(eb),
            orig_mask.iter().filter(|&&m| m).count().to_string(),
            recon_mask.iter().filter(|&&m| m).count().to_string(),
            flips_in.to_string(),
            flips_out.to_string(),
            interior.to_string(),
        ]);
    }
    r.note("interior_flips must be 0: only cells within ±eb of t_boundary can flip");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flips_are_edge_only() {
        let r = run(&Scale { n: 32, parts: 2, seed: 9 });
        for row in &r.rows {
            assert_eq!(row[5], "0", "interior flip detected: {row:?}");
        }
    }

    #[test]
    fn more_error_more_flips() {
        let r = run(&Scale { n: 32, parts: 2, seed: 9 });
        let flips = |i: usize| -> u64 {
            r.rows[i][3].parse::<u64>().unwrap() + r.rows[i][4].parse::<u64>().unwrap()
        };
        assert!(flips(2) >= flips(0), "eb=10 flips {} < eb=0.1 flips {}", flips(2), flips(0));
    }
}
