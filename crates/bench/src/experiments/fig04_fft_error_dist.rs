//! Fig. 4: real vs estimated FFT-error distribution under mixed
//! per-partition bounds (temperature field, average bound scaled to data).
//!
//! The model (Eqs. 5–10) predicts the DFT coefficient error is
//! `N(0, σ²)` with `σ = √(N/6)·mean(eb_m)`. We compress each partition at
//! its own bound, FFT original and reconstruction, and histogram the real
//! axis of the spectral error in units of the modeled σ against the
//! standard normal density.

use crate::report::{f, Report, Scale};
use crate::workloads;
use adaptive_config::FftErrorModel;
use fftlite::{Complex64, Fft3};
use gridlab::Field3;
use rsz::{compress_slice, decompress, SzConfig};

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.temperature;
    let dec = workloads::decomposition(scale);

    // Mixed bounds: alternate between 0.5× and 1.5× of a base bound.
    let base = workloads::default_eb_avg(field);
    let ebs: Vec<f64> = (0..dec.num_partitions())
        .map(|i| if i % 2 == 0 { 0.5 * base } else { 1.5 * base })
        .collect();

    // Compress/decompress per partition.
    let bricks = dec.par_map(field, |p, brick| {
        let c = compress_slice(brick.as_slice(), brick.dims(), &SzConfig::abs(ebs[p.id]));
        decompress::<f32>(&c).expect("self-produced container decodes")
    });
    let recon = dec.assemble(&bricks).expect("brick count matches");

    let spectral_error = |a: &Field3<f32>, b: &Field3<f32>| -> Vec<Complex64> {
        let d = a.dims();
        let mut buf: Vec<Complex64> = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(&x, &y)| Complex64::real(x as f64 - y as f64))
            .collect();
        Fft3::new(d.nx, d.ny, d.nz).forward(&mut buf);
        buf
    };
    let errs = spectral_error(field, &recon);

    let model = FftErrorModel::new(field.len());
    let sigma_model = model.sigma_mixed(&ebs);
    let re: Vec<f64> = errs.iter().map(|z| z.re).collect();
    let sigma_real = (re.iter().map(|e| e * e).sum::<f64>() / re.len() as f64).sqrt();

    let mut r = Report::new(
        "fig04",
        "FFT error distribution: measured vs N(0, σ_model)",
        &["x_over_sigma", "measured_density", "normal_density"],
    );
    let bins = 16;
    let lo = -4.0;
    let hi = 4.0;
    let w = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for e in &re {
        let x = e / sigma_model;
        if x >= lo && x < hi {
            counts[((x - lo) / w) as usize] += 1;
        }
    }
    let n = re.len() as f64;
    for (i, &c) in counts.iter().enumerate() {
        let x = lo + (i as f64 + 0.5) * w;
        let density = c as f64 / n / w;
        let normal = (-x * x / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt();
        r.row(vec![f(x), f(density), f(normal)]);
    }
    r.note(format!(
        "σ_model = {}, σ_measured = {}, ratio = {}",
        f(sigma_model),
        f(sigma_real),
        f(sigma_real / sigma_model)
    ));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_sigma_within_factor_two_of_measured() {
        let r = run(&Scale { n: 32, parts: 4, seed: 3 });
        let note = r.notes.iter().find(|n| n.contains("ratio")).expect("ratio note");
        let ratio: f64 = note.rsplit('=').next().unwrap().trim().parse().unwrap();
        assert!(ratio > 0.5 && ratio < 2.0, "σ ratio {ratio}");
    }
}
