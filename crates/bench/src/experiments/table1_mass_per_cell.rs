//! Table 1: mass difference per changed cell on a large halo.
//!
//! Paper claim: as the bound grows the number of member cells of a big
//! halo changes, but the mass difference *per changed cell* stays ≈ the
//! finder threshold (88.16 there) — i.e. faults are whole edge cells
//! moving in/out, not value drift.

use crate::report::{f, Report, Scale};
use crate::workloads;
use cosmoanalysis::{compare_catalogs, find_halos};
use rsz::{compress, decompress, SzConfig};

pub fn run(scale: &Scale) -> Report {
    let snap = workloads::snapshot(scale);
    let field = &snap.baryon_density;
    let hc = workloads::halo_config(field);
    let orig = find_halos(field, &hc);
    let big = orig.largest().copied();

    let mut r = Report::new(
        "table1",
        "Mass difference per changed cell on the largest halo",
        &["eb", "cells", "mass", "mass_diff", "diff_per_cell", "t_boundary"],
    );
    if let Some(h0) = big {
        r.row(vec![
            "original".into(),
            h0.cells.to_string(),
            f(h0.mass),
            "-".into(),
            "-".into(),
            f(hc.t_boundary),
        ]);
        for eb in [0.01, 0.1, 1.0, 10.0] {
            let c = compress(field, &SzConfig::abs(eb));
            let recon: gridlab::Field3<f32> = decompress(&c).expect("container decodes");
            let cat = find_halos(&recon, &hc);
            // Match the big halo by position.
            let matched = cat
                .halos
                .iter()
                .min_by(|a, b| {
                    let da = dist2(a.position, h0.position);
                    let db = dist2(b.position, h0.position);
                    da.partial_cmp(&db).expect("finite")
                })
                .copied();
            if let Some(h) = matched {
                let dmass = h.mass - h0.mass;
                let dcells = (h.cells as i64 - h0.cells as i64).abs();
                let per_cell = if dcells > 0 { dmass.abs() / dcells as f64 } else { 0.0 };
                r.row(vec![
                    f(eb),
                    h.cells.to_string(),
                    f(h.mass),
                    f(dmass),
                    if dcells > 0 { f(per_cell) } else { "-".into() },
                    f(hc.t_boundary),
                ]);
            }
        }
        r.note("diff_per_cell should hover near t_boundary once cells change");
        let _ = compare_catalogs(&orig, &orig, 2.0); // link the comparison API
    } else {
        r.note("no halos found at this scale — increase REPRO_N");
    }
    r
}

fn dist2(a: (f64, f64, f64), b: (f64, f64, f64)) -> f64 {
    (a.0 - b.0).powi(2) + (a.1 - b.1).powi(2) + (a.2 - b.2).powi(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_cell_diff_tracks_threshold() {
        let r = run(&Scale { n: 48, parts: 2, seed: 11 });
        assert!(r.rows.len() >= 3, "no halos found");
        let t_b: f64 = r.rows[0][5].parse().unwrap();
        // Take rows where cells actually changed and check the per-cell
        // figure is within a factor ~3 of the threshold (Table 1 spreads
        // 81.7–92.2 around 88.16; small halos add noise at our scale).
        let mut checked = 0;
        for row in &r.rows[1..] {
            if row[4] != "-" {
                let pc: f64 = row[4].parse().unwrap();
                assert!(pc > t_b / 3.0 && pc < t_b * 3.0, "per-cell {pc} vs t_b {t_b}");
                checked += 1;
            }
        }
        assert!(checked > 0, "no row with changed cells; broaden eb sweep");
    }
}
