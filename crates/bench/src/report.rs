//! Report formatting and experiment scaling.

use serde::Serialize;
use std::path::PathBuf;

/// Experiment scale knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Grid cells per axis for single-snapshot experiments.
    pub n: usize,
    /// Partitions per axis (the paper's 512-partition runs are 8³).
    pub parts: usize,
    /// RNG seed for workload generation.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Self { n: 64, parts: 4, seed: 42 }
    }
}

impl Scale {
    /// Larger configuration for machines with time to spare.
    pub fn paper_like() -> Self {
        Self { n: 256, parts: 8, seed: 42 }
    }

    /// Parse from env (`REPRO_N`, `REPRO_PARTS`, `REPRO_SEED`), falling
    /// back to defaults — lets `exp_*` binaries scale without CLI plumbing.
    pub fn from_env() -> Self {
        let get = |k: &str| std::env::var(k).ok().and_then(|v| v.parse::<usize>().ok());
        let mut s = Self::default();
        if let Some(n) = get("REPRO_N") {
            s.n = n;
        }
        if let Some(p) = get("REPRO_PARTS") {
            s.parts = p;
        }
        if let Some(seed) = get("REPRO_SEED") {
            s.seed = seed as u64;
        }
        s
    }
}

/// A rendered experiment result: headers + rows + free-form notes.
#[derive(Debug, Clone, Serialize)]
pub struct Report {
    /// Artifact id, e.g. "fig15".
    pub id: String,
    /// What the artifact shows.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Table rows (stringified values).
    pub rows: Vec<Vec<String>>,
    /// Shape claims checked / caveats.
    pub notes: Vec<String>,
}

impl Report {
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append one row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Pretty-print to stdout.
    pub fn print(&self) {
        println!("\n== {} — {} ==", self.id, self.title);
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |cells: &[String]| {
            let mut s = String::from("| ");
            for (c, w) in cells.iter().zip(&widths) {
                s.push_str(&format!("{c:>w$} | ", w = w));
            }
            s
        };
        println!("{}", line(&self.headers));
        println!("|{}|", widths.iter().map(|w| "-".repeat(w + 2)).collect::<Vec<_>>().join("|"));
        for r in &self.rows {
            println!("{}", line(r));
        }
        for n in &self.notes {
            println!("  note: {n}");
        }
    }

    /// Persist as JSON under `results/<id>.json` (best-effort).
    pub fn save(&self) {
        let dir = PathBuf::from("results");
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        if let Ok(json) = serde_json::to_string_pretty(self) {
            let _ = std::fs::write(dir.join(format!("{}.json", self.id)), json);
        }
    }
}

/// Format a float with 4 significant-ish decimals.
pub fn f(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 || v.abs() < 0.01 {
        format!("{v:.3e}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_rows_and_notes() {
        let mut r = Report::new("figX", "test", &["a", "b"]);
        r.row(vec!["1".into(), "2".into()]);
        r.note("shape ok");
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.notes.len(), 1);
        r.print(); // smoke
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut r = Report::new("figX", "test", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f(0.0), "0");
        assert_eq!(f(1.5), "1.5000");
        assert!(f(12345.0).contains('e'));
        assert!(f(0.0001).contains('e'));
    }

    #[test]
    fn scale_defaults() {
        let s = Scale::default();
        assert_eq!(s.n % s.parts, 0);
        let p = Scale::paper_like();
        assert!(p.n > s.n);
    }
}
