//! Shared workload builders for the experiments.

use adaptive_config::optimizer::QualityTarget;
use adaptive_config::pipeline::{InSituPipeline, PipelineConfig};
use adaptive_config::ratio_model::RatioModel;
use cosmoanalysis::HaloFinderConfig;
use gridlab::{Decomposition, Field3};
use nyxlite::{FieldKind, NyxConfig, Snapshot};

use crate::report::Scale;

/// The calibration sweep used throughout (log-spaced bounds).
pub const EB_SWEEP: [f64; 5] = [0.05, 0.1, 0.2, 0.4, 0.8];

/// Safety factor of the *traditional* static configuration.
///
/// Without the paper's rate-quality models, users cannot map a post-hoc
/// analysis tolerance onto an error bound, so they trial-and-error one
/// early snapshot and then run the rest of the simulation with a margin
/// ("simulation users usually choose a relatively lower error-bound for
/// lossy compressor based on empirical studies compared to the optimized
/// solution", §4.2). We encode that conventional margin as 2×: the
/// traditional baseline compresses at `eb_avg / 2`. Experiments also
/// report the redistribution-only gain against a matched-bound baseline
/// so the two components of the paper's improvement stay separable.
pub const TRADITIONAL_SAFETY: f64 = 2.0;

/// The uniform bound the traditional workflow would pick for a quality
/// budget of `eb_avg`.
pub fn traditional_eb(eb_avg: f64) -> f64 {
    eb_avg / TRADITIONAL_SAFETY
}

/// Reference redshift used by single-snapshot experiments.
pub const Z_DEFAULT: f64 = 42.0;

/// Generate the standard snapshot for a scale.
pub fn snapshot(scale: &Scale) -> Snapshot {
    NyxConfig::new(scale.n, scale.seed).generate(Z_DEFAULT)
}

/// The standard decomposition for a scale.
pub fn decomposition(scale: &Scale) -> Decomposition {
    Decomposition::cubic(scale.n, scale.parts).expect("scale.parts divides scale.n")
}

/// Halo-finder thresholds relative to the baryon-density mean: boundary at
/// 2.2×mean, halo peak at 4×mean — tuned so a default snapshot holds a
/// realistic population of small and large halos.
pub fn halo_config(field: &Field3<f32>) -> HaloFinderConfig {
    let mean = gridlab::stats::mean(field.as_slice());
    HaloFinderConfig::relative_to_mean(mean, 2.2, 4.0)
}

/// Average error bound used when an experiment needs "a sensible quality
/// target" for a field: 10 % of the field's std-dev, which places the
/// compressor in the paper's operating regime (overall bit rate < 2,
/// ratios ≳ 16×, §3.5) while mapping through Eq. 10 to a fixed FFT
/// confidence regardless of units.
pub fn default_eb_avg(field: &Field3<f32>) -> f64 {
    let s = gridlab::stats::summarize(field.as_slice());
    (s.std_dev() * 0.10).max(1e-6)
}

/// Calibrate a pipeline for `field` with the standard sweep.
pub fn calibrated_pipeline(
    field: &Field3<f32>,
    dec: &Decomposition,
    target: QualityTarget,
) -> InSituPipeline {
    calibrated_pipeline_with_codecs(field, dec, target, &[adaptive_config::CodecId::Rsz])
}

/// [`calibrated_pipeline`] with an explicit codec selection space — pass
/// `CodecId::ALL` for the multi-backend pipeline the `codec_select`
/// trajectory entries measure.
pub fn calibrated_pipeline_with_codecs(
    field: &Field3<f32>,
    dec: &Decomposition,
    target: QualityTarget,
    codecs: &[adaptive_config::CodecId],
) -> InSituPipeline {
    // Scale the sweep to the field's own eb regime so calibration probes
    // the same curve region the optimizer will use.
    let eb_avg = target.eb_avg;
    let sweep: Vec<f64> = EB_SWEEP.iter().map(|s| s / 0.2 * eb_avg).collect();
    let cfg = PipelineConfig::new(dec.clone(), target).with_codecs(codecs);
    let stride = (dec.num_partitions() / 16).max(1);
    let (p, _) = InSituPipeline::calibrate(cfg, field, stride, &sweep).expect("finite bench field");
    p
}

/// Calibrate and return just the model (for model-accuracy experiments).
pub fn calibrated_model(field: &Field3<f32>, dec: &Decomposition, eb_avg: f64) -> RatioModel {
    calibrated_pipeline(field, dec, QualityTarget::fft_only(eb_avg)).optimizer.primary_model()
}

/// All six fields of a snapshot with their kinds.
pub fn all_fields(snap: &Snapshot) -> Vec<(FieldKind, &Field3<f32>)> {
    snap.fields().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_builders_are_consistent() {
        let scale = Scale { n: 16, parts: 2, seed: 1 };
        let snap = snapshot(&scale);
        let dec = decomposition(&scale);
        assert_eq!(snap.dims.len(), 16 * 16 * 16);
        assert_eq!(dec.num_partitions(), 8);
        let hc = halo_config(&snap.baryon_density);
        assert!(hc.t_halo > hc.t_boundary);
        assert!(default_eb_avg(&snap.baryon_density) > 0.0);
        assert_eq!(all_fields(&snap).len(), 6);
    }

    #[test]
    fn pipeline_calibration_smoke() {
        let scale = Scale { n: 16, parts: 2, seed: 2 };
        let snap = snapshot(&scale);
        let dec = decomposition(&scale);
        let eb = default_eb_avg(&snap.temperature);
        let p = calibrated_pipeline(&snap.temperature, &dec, QualityTarget::fft_only(eb));
        assert!(p.optimizer.primary_model().c < 0.0);
    }
}
