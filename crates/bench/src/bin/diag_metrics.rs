//! Diagnostic + CI smoke gate for the telemetry subsystem.
//!
//! Drives a tiny two-tenant workload (16³ fields) through every
//! instrumented path — overload rejection, quality degradation, drift
//! refresh, session checkpoint, durable persistence, and truncated-tail
//! recovery — then prints the Prometheus and JSON renders of the three
//! registries involved (the server's, a standalone session's, and the
//! process-global codec registry) and validates the exposition format:
//!
//! * every non-comment Prometheus line must parse as `name{labels} value`
//!   (or `name value`) with an identifier name, well-formed `k="v"`
//!   labels, and a finite value;
//! * every `*_total` series (counters) must be non-negative;
//! * both JSON renders must parse.
//!
//! Exits nonzero on any violation, so CI can run it as a gate:
//!
//! ```text
//! cargo run --release --bin diag_metrics
//! ```

use adaptive_config::{QualityPolicy, SessionConfig, StreamSession};
use codec_core::{recover_stream, SyncPolicy};
use gridlab::{Decomposition, Dim3, Field3};
use std::sync::Arc;
use stream_server::{ServerConfig, ServerError, StreamServer, TenantConfig};
use telemetry::MetricsRegistry;

const N: usize = 16;

fn field(amp: f64, seed: u64) -> Field3<f32> {
    let mut state = seed;
    Field3::from_fn(Dim3::cube(N), |x, y, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        let base = if x >= N / 2 && y >= N / 2 { 40.0 * amp } else { 8.0 };
        (base + amp * noise) as f32
    })
}

fn session_cfg(policy: QualityPolicy) -> SessionConfig {
    SessionConfig::new(Decomposition::cubic(N, 2).expect("2 divides 16"), policy)
}

/// Validate one registry's Prometheus render; returns format violations.
fn validate_prometheus(which: &str, text: &str) -> Vec<String> {
    let mut errs = Vec::new();
    let mut series = 0usize;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        series += 1;
        let Some((name_part, value_part)) = line.rsplit_once(' ') else {
            errs.push(format!("{which}: no value separator in {line:?}"));
            continue;
        };
        match value_part.parse::<f64>() {
            Ok(v) if v.is_finite() => {
                let name = name_part.split('{').next().unwrap_or("");
                if (name.ends_with("_total") || name.ends_with("_count")) && v < 0.0 {
                    errs.push(format!("{which}: negative counter in {line:?}"));
                }
            }
            _ => errs.push(format!("{which}: non-finite or unparsable value in {line:?}")),
        }
        let (name, labels) = match name_part.split_once('{') {
            Some((n, rest)) => (n, Some(rest)),
            None => (name_part, None),
        };
        let ident = |s: &str| {
            !s.is_empty()
                && !s.starts_with(|c: char| c.is_ascii_digit())
                && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        };
        if !ident(name) {
            errs.push(format!("{which}: bad metric name in {line:?}"));
        }
        if let Some(rest) = labels {
            let Some(body) = rest.strip_suffix('}') else {
                errs.push(format!("{which}: unterminated label set in {line:?}"));
                continue;
            };
            for pair in body.split(',') {
                let ok = pair
                    .split_once("=\"")
                    .map(|(k, v)| ident(k) && v.ends_with('"') && !v[..v.len() - 1].contains('"'))
                    .unwrap_or(false);
                if !ok {
                    errs.push(format!("{which}: malformed label {pair:?} in {line:?}"));
                }
            }
        }
    }
    if series == 0 {
        errs.push(format!("{which}: render produced no series at all"));
    }
    errs
}

fn main() {
    let dir = std::env::temp_dir().join(format!("diag_metrics_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let stream_path = dir.join("tenant_a.strm");

    // --- the two-tenant workload -----------------------------------------
    // One slot, one worker, an aggressive ladder: admission control is
    // guaranteed to both degrade and reject under the spam loop below.
    let server: StreamServer<f32> = StreamServer::start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        degrade_threshold: 0.5,
        degrade_ladder: vec![2.0],
        global_budget: None,
    });
    let a = server
        .register(
            TenantConfig::new(session_cfg(QualityPolicy::SigmaScaled(0.1)))
                .with_stream(&stream_path, SyncPolicy::Flush),
        )
        .expect("register tenant A");
    let b = server
        .register(TenantConfig::new(
            session_cfg(QualityPolicy::SigmaScaled(0.1)).with_drift_threshold(1e-6),
        ))
        .expect("register tenant B");

    // Steady traffic: tenant A persists frames; tenant B's near-zero
    // drift threshold schedules a refresh on every post-calibration push.
    for step in 0..4 {
        server.push(a, field(1.0 + 0.01 * step as f64, 7)).expect("tenant A push");
        server.push(b, field(1.0 + 0.5 * step as f64, 1000 + step)).expect("tenant B push");
    }
    // Saturate the single shard slot until a typed reject lands.
    let mut tickets = Vec::new();
    loop {
        match server.try_push(a, field(1.0, 5)) {
            Ok(t) => tickets.push(t),
            Err(ServerError::Overloaded { .. }) => break,
            Err(e) => panic!("unexpected admission error {e}"),
        }
    }
    for t in tickets {
        t.wait().expect("admitted pushes complete");
    }
    let server_reg = Arc::clone(server.metrics());
    server.close_tenant(a).expect("close A");
    server.close_tenant(b).expect("close B");
    server.shutdown().expect("clean shutdown");

    // Standalone session: checkpoint path (CheckpointSaved event).
    let session_reg = Arc::new(MetricsRegistry::new());
    let mut session = StreamSession::new(session_cfg(QualityPolicy::SigmaScaled(0.1)));
    session.attach_metrics(Arc::clone(&session_reg), 0);
    session.push_snapshot(&field(1.0, 21)).expect("calibration push");
    session.push_snapshot(&field(1.01, 21)).expect("steady push");
    let ckpt = session.save();
    assert!(!ckpt.is_empty(), "checkpoint bytes");

    // Recovery paths into the process-global registry: clean first, then
    // a torn tail (truncated mid-frame) that must count as truncated.
    let bytes = std::fs::read(&stream_path).expect("stream file");
    recover_stream(&bytes).expect("clean recovery");
    let torn = &bytes[..bytes.len() - 17];
    let (_, report) = recover_stream(torn).expect("torn recovery");
    assert!(report.bytes_dropped > 0, "truncation must drop bytes");
    std::fs::remove_dir_all(&dir).ok();

    // --- render + validate ------------------------------------------------
    let mut errs = Vec::new();
    for (which, reg) in [
        ("server", server_reg.as_ref()),
        ("session", session_reg.as_ref()),
        ("global", telemetry::global()),
    ] {
        let prom = reg.render_prometheus();
        println!("### {which} registry (prometheus)\n{prom}");
        errs.extend(validate_prometheus(which, &prom));
        let json = reg.render_json();
        println!("### {which} registry (json)\n{json}\n");
        if serde_json::from_str::<serde::Value>(&json).is_err() {
            errs.push(format!("{which}: render_json does not parse"));
        }
    }

    // Cross-check the workload left the marks it was designed to leave.
    let snap = server_reg.snapshot();
    let mut expect = |cond: bool, what: &str| {
        if !cond {
            errs.push(format!("workload mark missing: {what}"));
        }
    };
    expect(snap.counter("server_overloaded_total", &[]).unwrap_or(0) >= 1, "overload reject");
    expect(snap.counter("server_degraded_total", &[]).unwrap_or(0) >= 1, "degraded admit");
    expect(
        snap.events.iter().any(|e| matches!(e.event, telemetry::Event::DriftDetected { .. })),
        "drift event",
    );
    let session_snap = session_reg.snapshot();
    expect(
        session_snap
            .events
            .iter()
            .any(|e| matches!(e.event, telemetry::Event::CheckpointSaved { .. })),
        "checkpoint event",
    );
    let global_snap = telemetry::global().snapshot();
    expect(
        global_snap.counter("stream_recoveries_total", &[("outcome", "truncated")]).unwrap_or(0)
            >= 1,
        "truncated recovery",
    );
    expect(
        global_snap.counter("stream_recoveries_total", &[("outcome", "clean")]).unwrap_or(0) >= 1,
        "clean recovery",
    );
    expect(
        global_snap.histogram("codec_compress_ns", &[("codec", "rsz")]).map_or(0, |h| h.count) > 0,
        "codec compress samples",
    );

    if errs.is_empty() {
        println!("diag_metrics: all renders well-formed, all workload marks present");
    } else {
        for e in &errs {
            eprintln!("diag_metrics violation: {e}");
        }
        std::process::exit(1);
    }
}
