//! Regenerates the paper's Fig. 11 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig11_eb_map::run(&scale);
    report.print();
    report.save();
}
