//! Regenerates the paper's Fig. 10 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig10_cm_estimation::run(&scale);
    report.print();
    report.save();
}
