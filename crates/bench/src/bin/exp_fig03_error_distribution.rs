//! Regenerates the paper's Fig. 3 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig03_error_distribution::run(&scale);
    report.print();
    report.save();
}
