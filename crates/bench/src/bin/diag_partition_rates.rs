//! Diagnostic: per-partition bit-rate spread of the baryon-density field
//! across data-generation and error-bound regimes. Used to place the
//! experiments in the paper's operating regime (overall bit rate < 2,
//! ratios 27–83×, strong void/cluster contrast).

use adaptive_config::ratio_model::measured_bitrate;
use gridlab::Decomposition;
use nyxlite::{NyxConfig, PowerSpectrum};

fn main() {
    let n = 64;
    let parts = 4;
    for k_smooth in [7.0, 5.0, 4.0] {
        for sigma in [1.4, 2.0] {
            let mut cfg = NyxConfig::new(n, 42);
            cfg.spectrum = PowerSpectrum { k_smooth, ..cfg.spectrum };
            cfg.sigma_ref = sigma;
            let snap = cfg.generate(42.0);
            let field = &snap.baryon_density;
            let s = gridlab::stats::summarize(field.as_slice());
            let dec = Decomposition::cubic(n, parts).expect("divides");
            for eb_frac in [0.02, 0.05, 0.1, 0.2] {
                let eb = s.std_dev() * eb_frac;
                let rates: Vec<f64> = dec
                    .par_map(field, |_, brick| measured_bitrate(brick, eb))
                    .into_iter()
                    .collect();
                let min = rates.iter().cloned().fold(f64::MAX, f64::min);
                let max = rates.iter().cloned().fold(f64::MIN, f64::max);
                let mean = rates.iter().sum::<f64>() / rates.len() as f64;
                println!(
                    "k_smooth {k_smooth:4} sigma {sigma:3} eb {eb_frac:5}σ={eb:9.3}: \
                     bitrate mean {mean:6.3} min {min:6.3} max {max:6.3} spread {:6.2} ratio {:6.1}",
                    max / min.max(1e-6),
                    32.0 / mean
                );
            }
        }
    }
}
