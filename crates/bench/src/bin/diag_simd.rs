//! Diagnostic + CI gate for the SIMD kernel dispatch.
//!
//! Prints the detected ISA, the `HPDC21_SIMD` policy, the resolved
//! process-wide backend, and the per-kernel dispatch table, then runs a
//! scalar-vs-SIMD parity sweep over representative fields (smooth,
//! shocked, NaN/Inf-laced, pencil-shaped) for every vectorised kernel:
//! rsz compress/decompress, zfplite compress/decompress, and the
//! interleaved FNV digest. Containers must be byte-identical and
//! reconstructions bit-identical across backends.
//!
//! Exits nonzero on any divergence, so CI can run it as a gate:
//!
//! ```text
//! cargo run --release --bin diag_simd
//! HPDC21_SIMD=off   cargo run --release --bin diag_simd
//! ```
//!
//! Under `HPDC21_SIMD=force` the first dispatch panics when the host has
//! no SIMD backend — a forced lane fails loudly instead of silently
//! measuring the scalar fallback.

use gridlab::{Dim3, Field3};
use portable_simd::Backend;
use rsz::{SzConfig, SzScratch};
use zfplite::{ZfpConfig, ZfpScratch};

fn pencil(len: usize, seed: u64) -> Field3<f32> {
    let mut state = seed | 1;
    Field3::from_fn(Dim3::new(1, 1, len), |_, _, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 2e4) as f32
    })
}

fn rsz_parity(field: &Field3<f32>, cfg: &SzConfig) -> Result<(), String> {
    let mut scratch = SzScratch::default();
    let a = rsz::compress_slice_backend(
        field.as_slice(),
        field.dims(),
        cfg,
        &mut scratch,
        Backend::Scalar,
    );
    let b = rsz::compress_slice_backend(
        field.as_slice(),
        field.dims(),
        cfg,
        &mut scratch,
        Backend::Avx2,
    );
    if a.as_bytes() != b.as_bytes() {
        return Err(format!("rsz containers diverge at dims {:?}", field.dims()));
    }
    let (da, _) = rsz::decompress_slice_backend::<f32>(a.as_bytes(), &mut scratch, Backend::Scalar)
        .map_err(|e| format!("scalar decode failed: {e:?}"))?;
    let (db, _) = rsz::decompress_slice_backend::<f32>(a.as_bytes(), &mut scratch, Backend::Avx2)
        .map_err(|e| format!("simd decode failed: {e:?}"))?;
    let same = da.iter().zip(&db).all(|(x, y)| x.to_bits() == y.to_bits());
    if !same {
        return Err(format!("rsz reconstructions diverge at dims {:?}", field.dims()));
    }
    Ok(())
}

fn zfp_parity(field: &Field3<f32>, cfg: &ZfpConfig) -> Result<(), String> {
    let mut scratch = ZfpScratch::default();
    let a = zfplite::zfp_compress_slice_backend(
        field.as_slice(),
        field.dims(),
        cfg,
        &mut scratch,
        Backend::Scalar,
    );
    let b = zfplite::zfp_compress_slice_backend(
        field.as_slice(),
        field.dims(),
        cfg,
        &mut scratch,
        Backend::Avx2,
    );
    if a.as_bytes() != b.as_bytes() {
        return Err(format!("zfp containers diverge at dims {:?}", field.dims()));
    }
    let (da, _) = zfplite::zfp_decompress_slice_backend::<f32>(a.as_bytes(), Backend::Scalar)
        .map_err(|e| format!("scalar decode failed: {e:?}"))?;
    let (db, _) = zfplite::zfp_decompress_slice_backend::<f32>(a.as_bytes(), Backend::Avx2)
        .map_err(|e| format!("simd decode failed: {e:?}"))?;
    let same = da.iter().zip(&db).all(|(x, y)| x.to_bits() == y.to_bits());
    if !same {
        return Err(format!("zfp reconstructions diverge at dims {:?}", field.dims()));
    }
    Ok(())
}

fn main() {
    let policy = std::env::var("HPDC21_SIMD").unwrap_or_default();
    let detected = portable_simd::detect();
    // Resolves (and caches) the process-wide decision; panics loudly under
    // HPDC21_SIMD=force on a scalar-only host.
    let resolved = portable_simd::backend();
    println!("detected ISA:      {}", detected.name());
    println!("HPDC21_SIMD:       {:?}", if policy.is_empty() { "(unset)" } else { &policy });
    println!("resolved backend:  {}", resolved.name());
    println!();
    println!("dispatch table:");
    for kernel in codec_core::KERNELS {
        println!("  {kernel:<18} -> {}", resolved.name());
    }

    // The dispatch decision must also be visible to operators: publish the
    // gauges and verify they landed in the global registry.
    codec_core::record_kernel_backends();
    let snap = telemetry::global().snapshot();
    let mut failures: Vec<String> = Vec::new();
    for kernel in codec_core::KERNELS {
        let labels = [("kernel", kernel), ("isa", resolved.name())];
        if snap.gauge("codec_kernel_backend", &labels) != Some(1.0) {
            failures.push(format!("codec_kernel_backend gauge missing for kernel {kernel}"));
        }
    }

    // Parity sweep: every vectorised kernel, scalar vs SIMD, on fields that
    // stress the wavefront (pencils), block remainders (non-pow-2 cubes),
    // and non-finite handling (laced scenarios).
    let fields: Vec<(&str, Field3<f32>)> = vec![
        ("smooth_grf_12", scenarios::smooth_grf(12, 7, 2.0)),
        ("nan_laced_9", scenarios::nan_laced(9, 11, 0.05)),
        ("inf_laced_9", scenarios::inf_laced(9, 13, 0.05)),
        ("shock_front_10", scenarios::shock_front(10, 17, 0.4)),
        ("pencil_4096", pencil(4096, 23)),
        ("single_cell", pencil(1, 29)),
    ];
    let rsz_cfgs =
        [("abs_0.05", SzConfig::abs(0.05)), ("pw_rel_0.01", SzConfig::pw_rel(0.01, 1e-20))];
    let zfp_cfgs = [
        ("accuracy_0.05", ZfpConfig::accuracy(0.05)),
        ("fixed_rate_7", ZfpConfig::fixed_rate(7.0)),
    ];

    println!();
    for (fname, field) in &fields {
        for (cname, cfg) in &rsz_cfgs {
            match rsz_parity(field, cfg) {
                Ok(()) => println!("parity rsz/{cname:<12} {fname:<15} ok"),
                Err(e) => failures.push(format!("rsz/{cname}/{fname}: {e}")),
            }
        }
        for (cname, cfg) in &zfp_cfgs {
            match zfp_parity(field, cfg) {
                Ok(()) => println!("parity zfp/{cname:<12} {fname:<15} ok"),
                Err(e) => failures.push(format!("zfp/{cname}/{fname}: {e}")),
            }
        }
    }
    for len in [0usize, 1, 3, 4, 7, 64, 4097] {
        let bytes: Vec<u8> = (0..len).map(|i| (i as u64 * 167 % 251) as u8).collect();
        if codec_core::fnv1a64_quad(&bytes) != codec_core::fnv1a64_quad_scalar(&bytes) {
            failures.push(format!("fnv1a64_quad diverges at len {len}"));
        }
    }
    println!("parity fnv1a64_quad              ok (7 lengths)");

    if failures.is_empty() {
        println!("\ndiag_simd: backend {} OK, all parity checks passed", resolved.name());
    } else {
        eprintln!("\ndiag_simd: {} failure(s)", failures.len());
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
}
