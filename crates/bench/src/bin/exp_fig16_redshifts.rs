//! Regenerates the paper's Fig. 16 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig16_redshifts::run(&scale);
    report.print();
    report.save();
}
