//! Regenerate the legacy v1-container golden fixture used by the root
//! `container_compat` test.
//!
//! The fixture is a bare `rsz` `RSZ1` container — exactly what the
//! pipeline emitted before the multi-codec v2 format existed — over a
//! deterministic LCG field (no RNG crate, stable across toolchains). If
//! `tests/fixtures/` has drifted or the fixture needs to be re-rooted
//! after a *deliberate* v1-format change (there should never be one),
//! run:
//!
//! ```text
//! cargo run --release -p bench --bin diag_v1_fixture
//! ```
//!
//! and commit the new bytes together with the rationale.

use gridlab::{Dim3, Field3};
use rsz::SzConfig;

/// Must match `tests/container_compat.rs`.
fn fixture_field() -> Field3<f32> {
    let mut state = 0x517EC0DEu64;
    Field3::from_fn(Dim3::cube(16), |_, _, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 40) as f32 / (1u32 << 24) as f32 - 0.5) * 2.0e3
    })
}

fn main() {
    let field = fixture_field();
    let c = rsz::compress(&field, &SzConfig::abs(0.25));
    let path = std::path::Path::new("tests/fixtures/v1_rsz_16cube.bin");
    std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir fixtures");
    std::fs::write(path, c.as_bytes()).expect("write fixture");
    println!(
        "wrote {} ({} bytes, fnv1a64 {:#018x})",
        path.display(),
        c.len(),
        codec_core::fnv1a64(c.as_bytes())
    );
}
