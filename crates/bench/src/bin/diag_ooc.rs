//! Release-mode bounded-memory gate for the out-of-core stream paths.
//!
//! The durability layer's contract is that every stream-file path —
//! append, crash recovery, sequential read, cold-frame compaction —
//! holds **O(frame)** bytes resident, never O(stream). This binary
//! proves it with a counting global allocator: it drives each path over
//! a stream far larger than the asserted cap, at two stream lengths 4×
//! apart, and fails (non-zero exit) if any phase's allocation peak
//! exceeds the cap or grows with the stream instead of the frame.
//!
//! Run by CI as `cargo run --release -p bench --bin diag_ooc`. Debug
//! builds work too (the cap has headroom over allocator/layout noise),
//! but the CI gate uses release so the numbers match production.

use codec_core::{
    recover_stream, CompactionConfig, Container, StreamFileReader, StreamFileWriter, SyncPolicy,
};
use gridlab::{Decomposition, Dim3, Field3};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// System allocator wrapped with live/peak accounting. `PEAK` is
/// maintained with a CAS-max so concurrent allocations never lose an
/// observation (the gate itself is single-threaded, but library code may
/// not be).
struct CountingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    let mut peak = PEAK.load(Ordering::Relaxed);
    while live > peak {
        match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => peak = seen,
        }
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            on_alloc(new_size);
        }
        p
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Reset the peak to the current live footprint and run one phase,
/// returning its allocation high-water mark above entry.
fn measure(label: &str, f: impl FnOnce()) -> usize {
    let base = LIVE.load(Ordering::Relaxed);
    PEAK.store(base, Ordering::Relaxed);
    f();
    let peak = PEAK.load(Ordering::Relaxed).saturating_sub(base);
    eprintln!("  {label:<18} peak {:>8} KiB", peak / 1024);
    peak
}

/// Per-phase allocation peaks over one stream of `frames` frames.
struct Peaks {
    append: usize,
    recover: usize,
    read: usize,
    compact: usize,
    stream_bytes: u64,
}

fn drive(frames: usize) -> Peaks {
    let dec = Decomposition::cubic(16, 2).expect("2 divides 16");
    let field =
        Field3::from_fn(Dim3::cube(16), |x, y, z| ((x * 31 + y * 17 + z * 7) as f32).sin() * 40.0);
    // ONE frame compressed once, appended repeatedly: appending must not
    // retain payloads, so residency stays flat however long the stream.
    let frame: Vec<Container> = dec
        .iter()
        .map(|p| {
            let brick = field.extract(p.origin, p.dims);
            Container::compress(codec_core::CodecId::Rsz, brick.as_slice(), brick.dims(), 0.05)
        })
        .collect();
    let path = std::env::temp_dir().join(format!("diag_ooc_{}_{frames}.strm", std::process::id()));
    eprintln!("stream of {frames} frames at {}:", path.display());

    let append = measure("append+finish", || {
        let mut w =
            StreamFileWriter::create_with(&path, frame.len(), SyncPolicy::Flush).expect("create");
        for _ in 0..frames {
            w.append_frame(&frame).expect("append");
        }
        w.finish().expect("finish");
    });
    let stream_bytes = std::fs::metadata(&path).expect("stat").len();

    // Tear the tail mid-frame, then recover in place: the scan must
    // stream the file, not slurp it.
    let torn = stream_bytes - stream_bytes / 5;
    let f = std::fs::OpenOptions::new().write(true).open(&path).expect("open");
    f.set_len(torn).expect("truncate");
    drop(f);
    let recover = measure("recover", || {
        let (w, report) = StreamFileWriter::recover(&path).expect("recover");
        assert!(report.frames_kept > 0, "the torn stream kept a prefix");
        w.finish().expect("finish");
    });

    let read = measure("sequential read", || {
        let r = StreamFileReader::open(&path).expect("open");
        let mut scratch = Vec::new();
        let mut total = 0usize;
        for fidx in 0..r.frames() {
            for p in 0..r.partitions() {
                r.read_container_into(fidx, p, &mut scratch).expect("read");
                total += scratch.len();
            }
        }
        assert!(total as u64 > stream_bytes / 2, "the walk visited the payload region");
    });

    let compact = measure("compact", || {
        let report = codec_core::compact_stream_file::<f32>(&path, CompactionConfig::new(2, 0.5))
            .expect("compact")
            .expect("frames past the horizon");
        assert!(report.frames_compacted > 0);
    });

    std::fs::remove_file(&path).ok();
    Peaks { append, recover, read, compact, stream_bytes }
}

fn main() {
    // The asserted O(frame) residency cap. A frame here is ~8 containers
    // of a 16³ field (≈ tens of KiB; measured phase peaks sit under
    // 100 KiB); 1 MiB leaves room for codec scratch, decode buffers, and
    // allocator slack while sitting far below the large stream (≥ 3× the
    // cap), so an O(stream) regression on any path trips the gate
    // instead of hiding in headroom.
    const CAP: usize = 1 << 20;

    let small = drive(256);
    let large = drive(1024);
    assert!(
        large.stream_bytes > 3 * CAP as u64,
        "gate is vacuous: stream ({} bytes) must dwarf the cap ({CAP})",
        large.stream_bytes
    );

    let phases = [
        ("append", small.append, large.append),
        ("recover", small.recover, large.recover),
        ("read", small.read, large.read),
        ("compact", small.compact, large.compact),
    ];
    for (name, s, l) in phases {
        assert!(
            l <= CAP,
            "{name}: peak {l} bytes exceeds the O(frame) cap {CAP} on a {}-byte stream",
            large.stream_bytes
        );
        // 4× the frames must not ask for 2× the memory: O(frame) not
        // O(stream). The +64 KiB slack absorbs allocator bucketing on
        // tiny peaks.
        assert!(
            l <= 2 * s + (64 << 10),
            "{name}: peak grew from {s} to {l} bytes when the stream grew 4x — resident set \
             scales with the stream"
        );
    }
    // recover_stream (the borrowed-bytes form) is exercised by tests;
    // spot-check it here too so the gate covers both recovery entry
    // points' behaviour on an in-memory source.
    let dec = Decomposition::cubic(8, 2).expect("2 divides 8");
    let field = Field3::from_fn(Dim3::cube(8), |x, _, _| x as f32);
    let frame: Vec<Container> = dec
        .iter()
        .map(|p| {
            let b = field.extract(p.origin, p.dims);
            Container::compress(codec_core::CodecId::Rsz, b.as_slice(), b.dims(), 0.1)
        })
        .collect();
    let bytes = codec_core::stream_file_bytes(8, &[frame]);
    let (rec, _) = recover_stream(&bytes[..bytes.len() - 3]).expect("recover");
    assert!(!rec.is_empty());

    println!(
        "diag_ooc: all stream paths O(frame) — peaks (append/recover/read/compact) = \
         {}/{}/{}/{} KiB over a {} KiB stream (cap {} KiB)",
        large.append / 1024,
        large.recover / 1024,
        large.read / 1024,
        large.compact / 1024,
        large.stream_bytes / 1024,
        CAP / 1024
    );
}
