//! Regenerates the paper's Fig. 5 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig05_fft_error_variance::run(&scale);
    report.print();
    report.save();
}
