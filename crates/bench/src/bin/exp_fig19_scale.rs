//! Regenerates the paper's Fig. 19 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig19_scale::run(&scale);
    report.print();
    report.save();
}
