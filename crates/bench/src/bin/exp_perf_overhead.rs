//! Regenerates the paper's §4.3 performance numbers (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::perf_overhead::run(&scale);
    report.print();
    report.save();
}
