//! Regenerates the paper's Table 1 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::table1_mass_per_cell::run(&scale);
    report.print();
    report.save();
}
