//! Regenerates the paper's Fig. 15 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig15_all_fields::run(&scale);
    report.print();
    report.save();
}
