//! Regenerates the paper's Fig. 6 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig06_candidate_cells::run(&scale);
    report.print();
    report.save();
}
