//! Regenerates the paper's Fig. 18 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig18_partition_size::run(&scale);
    report.print();
    report.save();
}
