//! Regenerates the paper's Fig. 12 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig12_bit_quality::run(&scale);
    report.print();
    report.save();
}
