//! Diagnostic: decompose the P(k) ratio drift of reconstructed baryon
//! density into mean/variance shifts, and contrast the raw-spectrum vs
//! overdensity-spectrum views. This is the measurement behind the
//! `SpectrumKind::OverdensityFixedMean` design note (see EXPERIMENTS.md).

use cosmoanalysis::{power_spectrum, SpectrumKind};
use nyxlite::NyxConfig;
use rsz::{compress, decompress, SzConfig};

fn main() {
    let snap = NyxConfig::new(64, 42).generate(42.0);
    let field = &snap.baryon_density;
    let s0 = gridlab::stats::summarize(field.as_slice());
    let ps0_raw = power_spectrum(field, SpectrumKind::Raw);
    let ps0_od = power_spectrum(field, SpectrumKind::Overdensity);
    println!("orig: mean {:.4} var {:.4}", s0.mean, s0.variance);
    for eb in [1.0, 2.5, 5.0, 10.0] {
        let c = compress(field, &SzConfig::abs(eb));
        let recon: gridlab::Field3<f32> = decompress(&c).expect("decodes");
        let s = gridlab::stats::summarize(recon.as_slice());
        let rr = power_spectrum(&recon, SpectrumKind::Raw).ratio(&ps0_raw);
        let ro = power_spectrum(&recon, SpectrumKind::Overdensity).ratio(&ps0_od);
        println!(
            "eb {eb:5}: mean shift {:+.5}% var shift {:+.4}% | raw ratio k1 {:.4} k5 {:.4} | od ratio k1 {:.4} k5 {:.4}",
            (s.mean / s0.mean - 1.0) * 100.0,
            (s.variance / s0.variance - 1.0) * 100.0,
            rr[0],
            rr[4],
            ro[0],
            ro[4]
        );
    }
}
