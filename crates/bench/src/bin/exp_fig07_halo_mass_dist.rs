//! Regenerates the paper's Fig. 7 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig07_halo_mass_dist::run(&scale);
    report.print();
    report.save();
}
