//! Regenerates the paper's Fig. 9 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig09_bitrate_curves::run(&scale);
    report.print();
    report.save();
}
