//! Regenerate the `BENCH_*.json` performance trajectory (see ROADMAP.md).
//!
//! Re-runs the workloads of the six criterion benches with the same
//! median-of-samples methodology as the vendored criterion shim, plus a
//! serial-vs-parallel run of the multi-partition pipeline compression so
//! the trajectory records the threading speedup on the measuring host.
//!
//! Usage:
//! * `cargo run --release -p bench --bin bench_report` — full workloads,
//!   writes `results/BENCH_<next>.json` and prints it.
//! * `... -- --smoke` — tiny workloads, prints the JSON to stdout only
//!   (CI compile-and-run gate; nothing is written).

use adaptive_config::optimizer::QualityTarget;
use bench::trajectory::Trajectory;
use bench::{workloads, Scale};
use cosmoanalysis::{find_halos, power_spectrum, SpectrumKind};
use fftlite::{Complex64, Fft3};
use gridlab::{Decomposition, Field3};
use rsz::{compress, compress_slice, decompress, SzConfig};
use std::hint::black_box;
use zfplite::{zfp_compress, ZfpConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (scale, samples) =
        if smoke { (Scale { n: 16, parts: 2, seed: 42 }, 3) } else { (Scale::default(), 10) };

    let mut t = Trajectory::new();
    // `--note <text>` (repeatable): free-form context for the trajectory,
    // e.g. measured deltas vs the previous BENCH_*.json entry.
    for pair in args.windows(2) {
        if pair[0] == "--note" {
            t.note(pair[1].clone());
        }
    }
    t.note(format!(
        "scale: n={} parts={} seed={}{}",
        scale.n,
        scale.parts,
        scale.seed,
        if smoke { " (smoke)" } else { "" }
    ));

    let snap = workloads::snapshot(&scale);
    let dec = workloads::decomposition(&scale);
    let grid = format!("{0}x{0}x{0}", scale.n);
    let bytes = (snap.dims.len() * 4) as u64;

    // --- bench_compression workloads ---
    for (kind, field) in
        [("baryon_density", &snap.baryon_density), ("temperature", &snap.temperature)]
    {
        let eb = workloads::default_eb_avg(field);
        t.measure(&format!("rsz_compress/abs/{kind}"), &grid, samples, Some(bytes), || {
            black_box(compress(field, &SzConfig::abs(eb)));
        });
    }
    {
        let eb = workloads::default_eb_avg(&snap.temperature);
        let compressed = compress(&snap.temperature, &SzConfig::abs(eb));
        t.measure("rsz_decompress/temperature", &grid, samples, Some(bytes), || {
            black_box(decompress::<f32>(&compressed).expect("container decodes"));
        });
        t.measure("zfp_baseline/fixed_rate_8", &grid, samples, Some(bytes), || {
            black_box(zfp_compress(&snap.temperature, &ZfpConfig::fixed_rate(8.0)));
        });
    }

    // --- bench_fft workloads ---
    for n in if smoke { vec![16usize] } else { vec![32, 64] } {
        let fft = Fft3::cube(n);
        let data: Vec<Complex64> =
            (0..n * n * n).map(|i| Complex64::new((i as f64 * 0.37).sin(), 0.0)).collect();
        t.measure(
            &format!("fft3_forward/{n}"),
            &format!("{n}x{n}x{n}"),
            samples,
            Some((n * n * n * 16) as u64),
            || {
                let mut buf = data.clone();
                fft.forward(&mut buf);
                black_box(buf[0]);
            },
        );
    }

    // --- bench_feature_extraction workloads ---
    {
        let field = &snap.baryon_density;
        let hc = workloads::halo_config(field);
        t.measure("in_situ_overhead/features_mean_only", &grid, samples, Some(bytes), || {
            black_box(adaptive_config::ratio_model::extract_features(field, &dec, 0.0, 1.0));
        });
        t.measure(
            "in_situ_overhead/features_with_boundary_cells",
            &grid,
            samples,
            Some(bytes),
            || {
                black_box(adaptive_config::ratio_model::extract_features(
                    field,
                    &dec,
                    hc.t_boundary,
                    1.0,
                ));
            },
        );
    }

    // --- bench_optimizer workloads ---
    {
        use adaptive_config::optimizer::Optimizer;
        use adaptive_config::ratio_model::{PartitionFeature, RatioModel};
        let model = RatioModel { c: -0.4, a0: -1.0, a1: 0.4 };
        let opt = Optimizer::new(model);
        for m in if smoke { vec![512usize] } else { vec![512, 4096, 32768] } {
            let features: Vec<PartitionFeature> = (0..m)
                .map(|i| PartitionFeature {
                    mean: 1.0 + (i % 97) as f64 * 13.7,
                    boundary_cells_ref: (i % 31) as f64,
                    eb_ref: 1.0,
                    cells: 64 * 64 * 64,
                })
                .collect();
            let target = QualityTarget::with_halo(0.5, 88.16, 1e4);
            t.measure(
                &format!("optimize_bounds/{m}"),
                &format!("{m} partitions"),
                samples,
                None,
                || {
                    black_box(opt.optimize(&features, &target));
                },
            );
        }
    }

    // --- bench_analysis workloads ---
    {
        let field = &snap.baryon_density;
        let hc = workloads::halo_config(field);
        t.measure("post_hoc_analysis/halo_finder", &grid, samples, Some(bytes), || {
            black_box(find_halos(field, &hc));
        });
        t.measure("post_hoc_analysis/power_spectrum", &grid, samples, Some(bytes), || {
            black_box(power_spectrum(field, SpectrumKind::Overdensity));
        });
    }

    // --- bench_pipeline workloads + serial-vs-parallel speedup ---
    {
        let field = &snap.baryon_density;
        let eb_avg = workloads::default_eb_avg(field);
        let pipeline = workloads::calibrated_pipeline(field, &dec, QualityTarget::fft_only(eb_avg));
        t.measure("insitu_step/adaptive", &grid, samples, Some(bytes), || {
            black_box(pipeline.run_adaptive(field));
        });
        let eb = workloads::traditional_eb(eb_avg);
        t.measure("insitu_step/traditional", &grid, samples, Some(bytes), || {
            black_box(pipeline.run_traditional(field, eb));
        });

        // The same per-partition compression work, once strictly serial and
        // once through the parallel brick map — the trajectory's
        // threading-speedup probe.
        let cfg = SzConfig::abs(eb);
        let serial = t.measure(
            "insitu_step/compress_serial",
            &format!("{grid}/{} parts", dec.num_partitions()),
            samples,
            Some(bytes),
            || {
                let out: Vec<_> = dec
                    .iter()
                    .map(|p| {
                        let brick = field.extract(p.origin, p.dims);
                        compress_slice(brick.as_slice(), brick.dims(), &cfg)
                    })
                    .collect();
                black_box(out);
            },
        );
        let parallel = t.measure(
            "insitu_step/compress_parallel",
            &format!("{grid}/{} parts", dec.num_partitions()),
            samples,
            Some(bytes),
            || {
                let out = par_compress(&dec, field, &cfg);
                black_box(out);
            },
        );
        if parallel > 0 {
            t.note(format!(
                "pipeline speedup parallel-over-serial: {:.2}x on {} core(s)",
                serial as f64 / parallel as f64,
                t.host_parallelism
            ));
        }
    }

    // --- insitu_stream workloads: session amortization over a series ---
    // The streaming session calibrates once (snapshot 0) and transfers the
    // models across later snapshots, refreshing only on measured drift.
    // Recorded: cold-vs-steady push wall clock, plus the modeling +
    // optimization cost per snapshot across a 5-snapshot redshift series —
    // the amortization the session engine exists to buy.
    {
        use adaptive_config::session::{QualityPolicy, SessionConfig, StreamSession};
        let field = &snap.baryon_density;
        let session_cfg = || SessionConfig::new(dec.clone(), QualityPolicy::SigmaScaled(0.1));
        t.measure("insitu_stream/first_push_cold", &grid, samples, Some(bytes), || {
            let mut s = StreamSession::new(session_cfg());
            black_box(s.push_snapshot(field).expect("finite bench field"));
        });
        {
            let mut s = StreamSession::new(session_cfg());
            s.push_snapshot(field).expect("finite bench field");
            t.measure("insitu_stream/steady_push", &grid, samples, Some(bytes), || {
                black_box(s.push_snapshot(field).expect("finite bench field"));
            });
        }

        let nyx = nyxlite::NyxConfig::new(scale.n, scale.seed);
        let redshifts = [54.0, 51.0, 48.0, 45.0, 42.0];
        let fields: Vec<_> = redshifts.iter().map(|&z| nyx.generate(z).baryon_density).collect();
        let mut full_costs = Vec::new();
        let mut steady_costs = Vec::new();
        let mut refreshes = 0;
        for _ in 0..samples.max(1) {
            let mut s = StreamSession::new(session_cfg());
            for f in &fields {
                s.push_snapshot(f).expect("finite bench field");
            }
            let h = s.history();
            full_costs.push(h[0].model_cost.as_nanos() as u64);
            let steady: u64 =
                h[1..].iter().map(|st| st.adaptive_cost().as_nanos() as u64).sum::<u64>()
                    / (h.len() - 1) as u64;
            steady_costs.push(steady);
            refreshes = s.refreshes();
        }
        full_costs.sort_unstable();
        steady_costs.sort_unstable();
        let full = full_costs[full_costs.len() / 2];
        let steady = steady_costs[steady_costs.len() / 2];
        let series_grid = format!("{grid}, 5 snapshots");
        for (name, ns) in [
            ("insitu_stream/series/full_calibration", full),
            ("insitu_stream/series/steady_model_optimize", steady),
        ] {
            t.entries.push(bench::trajectory::BenchEntry {
                bench: name.to_string(),
                median_ns: ns,
                throughput: 0.0,
                throughput_unit: String::new(),
                grid: series_grid.clone(),
            });
        }
        if steady > 0 {
            t.note(format!(
                "insitu_stream series: full calibration {:.2} ms on snapshot 0, \
                 steady modeling+optimize {:.3} ms/snapshot after ({:.1}x cheaper), \
                 {refreshes} drift refresh(es) in 5 snapshots",
                full as f64 / 1e6,
                steady as f64 / 1e6,
                full as f64 / steady as f64,
            ));
        }

        // --- insitu_stream/restore: checkpoint round-trip instead of a
        // recalibration. A restarted simulation restores the CKPT blob and
        // its first push pays steady-state modeling cost — the datum the
        // durability layer exists to buy (vs repaying full calibration).
        {
            use adaptive_config::session::{Recalibration, StreamSession};
            let mut s = StreamSession::new(session_cfg());
            s.push_snapshot(field).expect("finite bench field");
            let blob = s.save();
            t.measure("insitu_stream/restore/save_checkpoint", &grid, samples, None, || {
                black_box(s.save());
            });
            t.measure("insitu_stream/restore/restore_session", &grid, samples, None, || {
                black_box(StreamSession::restore(&blob).expect("checkpoint restores"));
            });
            t.measure(
                "insitu_stream/restore/first_push_resumed",
                &grid,
                samples,
                Some(bytes),
                || {
                    let mut r = StreamSession::restore(&blob).expect("checkpoint restores");
                    black_box(r.push_snapshot(field).expect("finite bench field"));
                },
            );
            let mut costs = Vec::new();
            for _ in 0..samples.max(1) {
                let mut r = StreamSession::restore(&blob).expect("checkpoint restores");
                let rec = r.push_snapshot(field).expect("finite bench field");
                assert_ne!(
                    rec.stats.recalibration,
                    Recalibration::Full,
                    "a restored session must not recalibrate"
                );
                costs.push(rec.stats.adaptive_cost().as_nanos() as u64);
            }
            costs.sort_unstable();
            let resumed = costs[costs.len() / 2];
            t.entries.push(bench::trajectory::BenchEntry {
                bench: "insitu_stream/restore/resumed_model_optimize".to_string(),
                median_ns: resumed,
                throughput: 0.0,
                throughput_unit: String::new(),
                grid: grid.clone(),
            });
            if resumed > 0 && steady > 0 {
                t.note(format!(
                    "insitu_stream restore: resumed modeling+optimize {:.3} ms on the first \
                     post-restore push ({:.2}x the steady state, {:.1}x cheaper than the \
                     {:.2} ms full calibration it replaces), checkpoint blob {} bytes",
                    resumed as f64 / 1e6,
                    resumed as f64 / steady as f64,
                    full as f64 / resumed as f64,
                    full as f64 / 1e6,
                    blob.len(),
                ));
            }
        }
    }

    // --- codec_select workloads: rsz-only vs zfp-only vs adaptive-mixed ---
    // The multi-codec subsystem at the partition granularity where backend
    // trade-offs are real (small bricks: rsz pays its Huffman table, zfp
    // its per-block headers). All three runs share one calibration and one
    // quality target, so the ratio entries compare equal-quality storage.
    {
        use adaptive_config::CodecId;
        let parts = if smoke { scale.parts } else { 8 };
        let sel_dec = Decomposition::cubic(scale.n, parts).expect("parts divides n");
        let sel_grid = format!("{grid}/{} parts", sel_dec.num_partitions());
        for (kind, field) in
            [("baryon_density", &snap.baryon_density), ("temperature", &snap.temperature)]
        {
            let eb_avg = workloads::default_eb_avg(field);
            let pipeline = workloads::calibrated_pipeline_with_codecs(
                field,
                &sel_dec,
                QualityTarget::fft_only(eb_avg),
                &CodecId::ALL,
            );
            let mixed = pipeline.run_adaptive(field);
            let rsz_only = pipeline.run_adaptive_single(field, CodecId::Rsz);
            let zfp_only = pipeline.run_adaptive_single(field, CodecId::Zfp);

            let mixed_ns = t.measure(
                &format!("codec_select/adaptive_mixed/{kind}"),
                &sel_grid,
                samples,
                Some(bytes),
                || {
                    black_box(pipeline.run_adaptive(field));
                },
            );
            let rsz_ns = t.measure(
                &format!("codec_select/rsz_only/{kind}"),
                &sel_grid,
                samples,
                Some(bytes),
                || {
                    black_box(pipeline.run_adaptive_single(field, CodecId::Rsz));
                },
            );
            let zfp_ns = t.measure(
                &format!("codec_select/zfp_only/{kind}"),
                &sel_grid,
                samples,
                Some(bytes),
                || {
                    black_box(pipeline.run_adaptive_single(field, CodecId::Zfp));
                },
            );

            // Equal-quality compression ratios as machine-readable entries.
            // Each ratio rides with the measured median of the run that
            // produced it, so downstream tooling never sees a zero timing.
            for (which, run, ns) in [
                ("adaptive_mixed", &mixed, mixed_ns),
                ("rsz_only", &rsz_only, rsz_ns),
                ("zfp_only", &zfp_only, zfp_ns),
            ] {
                t.entries.push(bench::trajectory::BenchEntry {
                    bench: format!("codec_select/ratio/{which}/{kind}"),
                    median_ns: ns,
                    throughput: run.ratio(),
                    throughput_unit: "x".to_string(),
                    grid: sel_grid.clone(),
                });
            }
            let mix: Vec<String> =
                mixed.codec_counts().iter().map(|(c, n)| format!("{n} {c}")).collect();
            t.note(format!(
                "codec_select {kind}: adaptive-mixed {:.2}x ({}) vs rsz-only {:.2}x vs \
                 zfp-only {:.2}x at mean eb {:.4}",
                mixed.ratio(),
                mix.join(" + "),
                rsz_only.ratio(),
                zfp_only.ratio(),
                eb_avg,
            ));
        }
    }

    // --- stream_server workloads: the multi-stream service under load ---
    // Aggregate ingest throughput, steady-state p99 push latency at N
    // concurrent streams, and the fairness ratio when one stream is
    // poisoned (drift-recalibrating on every snapshot): neighbour p99
    // contended over uncontended. The service's scheduling contract is
    // that this ratio stays ≤ 2 — the same bound the integration suite
    // asserts — because recalibration yields one trial compression at a
    // time instead of monopolising a worker.
    {
        let streams = if smoke { 4 } else { 8 };
        let steps = if smoke { 4 } else { 16 };
        let sn = if smoke { 16 } else { 32 };
        let calm = stream_server_run(streams, steps, sn, false);
        let contended = stream_server_run(streams, steps, sn, true);
        let sessions_grid = format!("{sn}x{sn}x{sn}, {streams} streams x {steps} snapshots");

        t.entries.push(bench::trajectory::BenchEntry {
            bench: format!("stream_server/sessions_per_sec/{streams}_streams"),
            median_ns: calm.wall_ns,
            throughput: calm.pushes_per_sec,
            throughput_unit: "snapshots/s".to_string(),
            grid: sessions_grid.clone(),
        });
        t.entries.push(bench::trajectory::BenchEntry {
            bench: format!("stream_server/p99_push_latency/{streams}_streams"),
            median_ns: calm.p99_ns,
            throughput: 0.0,
            throughput_unit: String::new(),
            grid: sessions_grid.clone(),
        });
        t.entries.push(bench::trajectory::BenchEntry {
            bench: "stream_server/p99_push_latency/poisoned_neighbours".to_string(),
            median_ns: contended.p99_ns,
            throughput: 0.0,
            throughput_unit: String::new(),
            grid: sessions_grid.clone(),
        });
        let fairness = contended.p99_ns as f64 / calm.p99_ns.max(1) as f64;
        t.entries.push(bench::trajectory::BenchEntry {
            bench: "stream_server/fairness_ratio/one_poisoned".to_string(),
            median_ns: 0,
            throughput: fairness,
            throughput_unit: "x".to_string(),
            grid: sessions_grid,
        });
        t.note(format!(
            "stream_server: {streams} streams x {steps} snapshots ingest at {:.1} snapshots/s, \
             uncontended p99 push {:.2} ms; with one poisoned stream neighbour p99 {:.2} ms \
             (fairness ratio {fairness:.2}x, contract ≤ 2x)",
            calm.pushes_per_sec,
            calm.p99_ns as f64 / 1e6,
            contended.p99_ns as f64 / 1e6,
        ));
    }

    // --- stream_ooc workloads: out-of-core stream-file paths ---
    // Crash recovery (bounded-window forward scan), the windowed lazy
    // reader's sequential walk (one reused scratch buffer), and cold-
    // frame compaction — the durability paths diag_ooc proves O(frame);
    // here the trajectory records what that memory discipline costs in
    // time. Throughput is stream bytes processed per pass.
    {
        use codec_core::{
            compact_stream_file, recover_stream, stream_file_bytes, CompactionConfig, Container,
            StreamFileReader,
        };
        let frames_n = if smoke { 8 } else { 64 };
        let dec2 = workloads::decomposition(&scale);
        let frame: Vec<Container> = dec2
            .iter()
            .map(|p| {
                let brick = snap.baryon_density.extract(p.origin, p.dims);
                Container::compress(
                    adaptive_config::CodecId::Rsz,
                    brick.as_slice(),
                    brick.dims(),
                    workloads::default_eb_avg(&snap.baryon_density),
                )
            })
            .collect();
        let stream: Vec<Vec<Container>> = (0..frames_n).map(|_| frame.clone()).collect();
        let full_bytes = stream_file_bytes(frame.len(), &stream);
        let torn = &full_bytes[..full_bytes.len() - full_bytes.len() / 7];
        let ooc_grid = format!("{grid}, {frames_n} frames, {} KiB", full_bytes.len() / 1024);
        let sbytes = Some(full_bytes.len() as u64);

        t.measure("stream_ooc/recover_torn", &ooc_grid, samples, sbytes, || {
            let (rec, report) = recover_stream(torn).expect("torn stream recovers");
            assert!(report.frames_kept > 0);
            black_box(rec);
        });

        let path = std::env::temp_dir().join(format!("bench_ooc_{}.strm", std::process::id()));
        std::fs::write(&path, &full_bytes).expect("write stream");
        t.measure("stream_ooc/sequential_read", &ooc_grid, samples, sbytes, || {
            let r = StreamFileReader::open(&path).expect("open");
            let mut scratch = Vec::new();
            for f in 0..r.frames() {
                for p in 0..r.partitions() {
                    r.read_container_into(f, p, &mut scratch).expect("read");
                    black_box(scratch.len());
                }
            }
        });

        // Compaction mutates the file, so each sample re-tiers a fresh
        // copy of the pristine stream. The relaxed bound is 8x the write
        // bound: re-quantizing an already-quantized reconstruction at
        // only 2-4x the bound beats against the existing quantization
        // levels and can GROW the payload; the size win appears once the
        // cold bound clearly dominates the hot one.
        let eb2 = 8.0 * workloads::default_eb_avg(&snap.baryon_density);
        let mut last_report = None;
        t.measure("stream_ooc/compact", &ooc_grid, samples, sbytes, || {
            std::fs::write(&path, &full_bytes).expect("rewrite stream");
            let report = compact_stream_file::<f32>(&path, CompactionConfig::new(4, eb2))
                .expect("compact")
                .expect("frames past the horizon");
            last_report = Some(report);
        });
        if let Some(r) = last_report {
            t.note(format!(
                "stream_ooc: compaction re-tiered {} of {frames_n} frames at eb {eb2:.4} \
                 ({} -> {} data bytes, {:.2}x), diag_ooc pins all paths O(frame)",
                r.frames_compacted,
                r.bytes_before,
                r.bytes_after,
                r.bytes_before as f64 / r.bytes_after.max(1) as f64,
            ));
        }
        std::fs::remove_file(&path).ok();
    }

    println!("{}", t.to_json());
    if smoke {
        eprintln!("smoke run: not persisted");
    } else {
        let path =
            t.save_next(std::path::Path::new("results")).expect("write trajectory under results/");
        eprintln!("wrote {}", path.display());
    }
}

fn par_compress(dec: &Decomposition, field: &Field3<f32>, cfg: &SzConfig) -> Vec<rsz::Compressed> {
    dec.par_map(field, |_, brick| compress_slice(brick.as_slice(), brick.dims(), cfg))
}

struct StreamServerStats {
    /// Wall clock for the whole run (all streams, all snapshots).
    wall_ns: u64,
    /// Aggregate ingest rate across all streams.
    pushes_per_sec: f64,
    /// p99 push latency pooled over the calm streams, first (calibration)
    /// push excluded.
    p99_ns: u64,
}

/// Drive `streams` lockstepped client threads against a fresh
/// `StreamServer`; when `poison` is set the last stream recalibrates on
/// every snapshot (zero drift threshold + amplitude hops) and only its
/// neighbours' latencies are pooled.
fn stream_server_run(streams: usize, steps: usize, n: usize, poison: bool) -> StreamServerStats {
    use adaptive_config::session::{QualityPolicy, SessionConfig};
    use gridlab::Dim3;
    use std::sync::Barrier;
    use std::time::Instant;
    use stream_server::{ServerConfig, StreamServer, TenantConfig};

    let noisy_field = |amp: f64, seed: u64| {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).max(1);
        Field3::from_fn(Dim3::cube(n), |x, y, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let base = if x >= n / 2 && y >= n / 2 { 40.0 * amp } else { 8.0 };
            (base + amp * noise) as f32
        })
    };
    let dec = Decomposition::cubic(n, 2).expect("2 divides n");
    let server: StreamServer<f32> = StreamServer::start(ServerConfig {
        workers: 4,
        queue_capacity: 8,
        degrade_threshold: 1.0,
        degrade_ladder: vec![],
        global_budget: None,
    });
    let tenants: Vec<_> = (0..streams)
        .map(|tid| {
            let mut cfg = SessionConfig::new(dec.clone(), QualityPolicy::SigmaScaled(0.1));
            if poison && tid == streams - 1 {
                cfg = cfg.with_drift_threshold(1e-9);
            }
            server.register(TenantConfig::new(cfg)).expect("registration")
        })
        .collect();
    let barrier = Barrier::new(streams);
    let t0 = Instant::now();
    let per_stream: Vec<Vec<u64>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..streams)
            .map(|tid| {
                let server = &server;
                let barrier = &barrier;
                let noisy_field = &noisy_field;
                let tenant = tenants[tid];
                s.spawn(move || {
                    let poison_me = poison && tid == streams - 1;
                    let mut lat = Vec::with_capacity(steps);
                    for step in 0..steps {
                        let f = if poison_me {
                            noisy_field(3.0 + 17.0 * (step % 3) as f64, 777 + step as u64)
                        } else {
                            noisy_field(1.0, tid as u64 + 1)
                        };
                        barrier.wait();
                        let p0 = Instant::now();
                        server.push(tenant, f).expect("push succeeds");
                        lat.push(p0.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    server.shutdown().expect("clean shutdown");
    let measured = if poison { streams - 1 } else { streams };
    let mut pooled: Vec<u64> =
        per_stream[..measured].iter().flat_map(|l| l.iter().skip(1).copied()).collect();
    pooled.sort_unstable();
    let p99_ns = pooled[(pooled.len() as f64 * 0.99).ceil() as usize - 1];
    StreamServerStats {
        wall_ns,
        pushes_per_sec: (streams * steps) as f64 / (wall_ns as f64 / 1e9),
        p99_ns,
    }
}
