//! Regenerate the durable (`STRM` v2) stream-file golden fixture used by
//! the root `durable_compat` test.
//!
//! The fixture is a finished 2-frame × 8-partition durable stream over a
//! deterministic LCG field family (no RNG crate, stable across
//! toolchains), with even partitions compressed by `rsz` and odd ones by
//! `zfplite`, so it pins the v2 header/footer/trailer layout *and* both
//! codec payload formats. If the fixture needs re-rooting after a
//! *deliberate* stream-file version bump, run:
//!
//! ```text
//! cargo run --release -p bench --bin diag_strm_file_fixture
//! ```
//!
//! and commit the new bytes together with the rationale.

use codec_core::{stream_file_bytes, CodecId, Container};
use gridlab::{Decomposition, Dim3, Field3};

/// Must match `tests/durable_compat.rs`.
fn fixture_field(frame: u64) -> Field3<f32> {
    let mut state = 0xD0C5ED ^ (frame << 32);
    Field3::from_fn(Dim3::cube(16), |_, _, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 40) as f32 / (1u32 << 24) as f32 - 0.5) * (140.0 + 20.0 * frame as f32)
    })
}

/// Must match `tests/durable_compat.rs`.
fn fixture_stream() -> Vec<u8> {
    let dec = Decomposition::cubic(16, 2).expect("2 divides 16");
    let frames: Vec<Vec<Container>> = (0..2u64)
        .map(|frame| {
            let field = fixture_field(frame);
            dec.iter()
                .enumerate()
                .map(|(i, p)| {
                    let brick = field.extract(p.origin, p.dims);
                    let codec = if i % 2 == 0 { CodecId::Rsz } else { CodecId::Zfp };
                    Container::compress(codec, brick.as_slice(), brick.dims(), 0.25)
                })
                .collect()
        })
        .collect();
    stream_file_bytes(dec.num_partitions(), &frames)
}

fn main() {
    let bytes = fixture_stream();
    let path = std::path::Path::new("tests/fixtures/strm_v2_file_2x8.bin");
    std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir fixtures");
    std::fs::write(path, &bytes).expect("write fixture");
    println!(
        "wrote {} ({} bytes, fnv1a64 {:#018x})",
        path.display(),
        bytes.len(),
        codec_core::fnv1a64(&bytes)
    );
}
