//! Regenerate the `CKPT` session-checkpoint golden fixture used by the
//! root `durable_compat` test.
//!
//! The fixture is a hand-specified [`SessionCheckpoint`] (dyadic-rational
//! model coefficients, so every float is exactly representable and the
//! rendered JSON is bit-stable across platforms) wrapped in the v2 `CKPT`
//! blob. It pins the wrapper layout, the checkpoint document's field
//! order, and the float round-trip promise a restarted simulation's
//! byte-identical resume depends on. If the fixture needs re-rooting
//! after a *deliberate* checkpoint version bump, run:
//!
//! ```text
//! cargo run --release -p bench --bin diag_ckpt_fixture
//! ```
//!
//! and commit the new bytes together with the rationale.

use adaptive_config::ratio_model::{CodecModelBank, RatioModel};
use adaptive_config::session::{QualityPolicy, SessionCheckpoint, SessionConfig};
use codec_core::CodecId;
use gridlab::Decomposition;

/// Must match `tests/durable_compat.rs`.
fn fixture_checkpoint() -> SessionCheckpoint {
    let dec = Decomposition::cubic(16, 2).expect("2 divides 16");
    let config = SessionConfig::new(dec, QualityPolicy::SigmaScaled(0.125))
        .with_codecs(&CodecId::ALL)
        .with_halo(88.0625, 10000.0);
    let bank = CodecModelBank::new(vec![
        (CodecId::Rsz, RatioModel { c: -0.6875, a0: 0.84375, a1: 0.21875 }),
        (CodecId::Zfp, RatioModel { c: -0.40625, a0: 1.125, a1: 0.15625 }),
    ]);
    SessionCheckpoint {
        config,
        bank: Some(bank),
        clamp_factor: 4.0,
        snapshots: 3,
        full_calibrations: 1,
        refreshes: 1,
        last_drift: 0.25,
    }
}

fn main() {
    let bytes = fixture_checkpoint().to_bytes();
    let path = std::path::Path::new("tests/fixtures/ckpt_v2_session.bin");
    std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir fixtures");
    std::fs::write(path, &bytes).expect("write fixture");
    println!(
        "wrote {} ({} bytes, fnv1a64 {:#018x})",
        path.display(),
        bytes.len(),
        codec_core::fnv1a64(&bytes)
    );
}
