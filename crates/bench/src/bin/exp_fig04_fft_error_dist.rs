//! Regenerates the paper's Fig. 4 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig04_fft_error_dist::run(&scale);
    report.print();
    report.save();
}
