//! Regenerates the paper's Fig. 14 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig14_effective_cells::run(&scale);
    report.print();
    report.save();
}
