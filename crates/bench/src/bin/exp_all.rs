//! Runs every experiment in DESIGN.md's index and saves all reports under
//! `results/`. Scale via env: `REPRO_N`, `REPRO_PARTS`, `REPRO_SEED`.

use bench::experiments as e;
use bench::{Report, Scale};
use std::time::Instant;

type ExperimentFn = fn(&Scale) -> Report;

fn main() {
    let scale = Scale::from_env();
    println!(
        "running all experiments at {}^3 with {}^3 partitions (seed {})",
        scale.n, scale.parts, scale.seed
    );
    let runs: Vec<(&str, ExperimentFn)> = vec![
        ("fig03", e::fig03_error_distribution::run),
        ("fig04", e::fig04_fft_error_dist::run),
        ("fig05", e::fig05_fft_error_variance::run),
        ("fig06", e::fig06_candidate_cells::run),
        ("table1", e::table1_mass_per_cell::run),
        ("fig07", e::fig07_halo_mass_dist::run),
        ("fig08", e::fig08_cell_change_model::run),
        ("fig09", e::fig09_bitrate_curves::run),
        ("fig10", e::fig10_cm_estimation::run),
        ("fig11", e::fig11_eb_map::run),
        ("fig12", e::fig12_bit_quality::run),
        ("fig13", e::fig13_power_spectrum::run),
        ("fig14", e::fig14_effective_cells::run),
        ("fig15", e::fig15_all_fields::run),
        ("fig16", e::fig16_redshifts::run),
        ("fig17", e::fig17_eb_evolution::run),
        ("fig18", e::fig18_partition_size::run),
        ("fig19", e::fig19_scale::run),
        ("perf", e::perf_overhead::run),
    ];
    for (name, run) in runs {
        let t = Instant::now();
        let report = run(&scale);
        report.print();
        report.save();
        println!("  [{name} took {:.2}s]", t.elapsed().as_secs_f64());
    }
    println!("\nall reports saved under results/");
}
