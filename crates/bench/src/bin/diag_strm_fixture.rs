//! Regenerate the `STRM` stream-container golden fixture used by the root
//! `stream_compat` test.
//!
//! The fixture is a 2-frame × 8-partition stream over a deterministic LCG
//! field family (no RNG crate, stable across toolchains), with even
//! partitions compressed by `rsz` and odd ones by `zfplite` so the fixture
//! pins the manifest layout *and* both codec payload formats inside v2
//! containers. If the fixture needs re-rooting after a *deliberate*
//! stream-format version bump, run:
//!
//! ```text
//! cargo run --release -p bench --bin diag_strm_fixture
//! ```
//!
//! and commit the new bytes together with the rationale.

use codec_core::{CodecId, Container, StreamWriter};
use gridlab::{Decomposition, Dim3, Field3};

/// Must match `tests/stream_compat.rs`.
fn fixture_field(frame: u64) -> Field3<f32> {
    let mut state = 0xA11CE ^ (frame << 32);
    Field3::from_fn(Dim3::cube(16), |_, _, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 40) as f32 / (1u32 << 24) as f32 - 0.5) * (150.0 + 25.0 * frame as f32)
    })
}

/// Must match `tests/stream_compat.rs`.
fn fixture_stream() -> Vec<u8> {
    let dec = Decomposition::cubic(16, 2).expect("2 divides 16");
    let mut w = StreamWriter::new(dec.num_partitions());
    for frame in 0..2u64 {
        let field = fixture_field(frame);
        let containers: Vec<Container> = dec
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let brick = field.extract(p.origin, p.dims);
                let codec = if i % 2 == 0 { CodecId::Rsz } else { CodecId::Zfp };
                Container::compress(codec, brick.as_slice(), brick.dims(), 0.25)
            })
            .collect();
        w.push_frame(&containers);
    }
    w.finish()
}

fn main() {
    let bytes = fixture_stream();
    let path = std::path::Path::new("tests/fixtures/strm_v1_2x8.bin");
    std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir fixtures");
    std::fs::write(path, &bytes).expect("write fixture");
    println!(
        "wrote {} ({} bytes, fnv1a64 {:#018x})",
        path.display(),
        bytes.len(),
        codec_core::fnv1a64(&bytes)
    );
}
