//! Regenerates the paper's Fig. 13 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig13_power_spectrum::run(&scale);
    report.print();
    report.save();
}
