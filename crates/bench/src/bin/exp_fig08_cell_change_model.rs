//! Regenerates the paper's Fig. 8 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig08_cell_change_model::run(&scale);
    report.print();
    report.save();
}
