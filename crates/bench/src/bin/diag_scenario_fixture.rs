//! Regenerate the scenario-generator golden fixture the CI determinism
//! gate diffs against.
//!
//! The `scenarios` crate's generators are seeded and must produce
//! bit-identical fields forever: the chaos matrix pins drift TP/FP
//! envelopes against their exact output, so a silent generator change
//! would re-tune the envelope without anyone noticing. This tool hashes
//! every generator at pinned parameters plus every field of the
//! `scenario_matrix`, and writes the table to
//! `tests/fixtures/scenarios_v1.json`. CI reruns it and `git diff`s the
//! fixture; a *deliberate* generator change is committed together with
//! the regenerated hashes (and a re-checked envelope):
//!
//! ```text
//! cargo run --release -p bench --bin diag_scenario_fixture
//! ```

use codec_core::fnv1a64;
use gridlab::Field3;
use scenarios::{
    all_constant, amr_nested, constant_padded, inf_laced, nan_laced, scenario_matrix, shock_front,
    shot_noise, smooth_grf,
};

/// FNV-1a-64 over the field's f32 bit patterns, little-endian — stable
/// across platforms and NaN-transparent (bits, not values).
fn field_hash(f: &Field3<f32>) -> u64 {
    let bytes: Vec<u8> = f.as_slice().iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
    fnv1a64(&bytes)
}

fn main() {
    let n = 16;
    let mut rows: Vec<(String, u64)> = vec![
        ("smooth_grf(16, 42, 3.0)".into(), field_hash(&smooth_grf(n, 42, 3.0))),
        ("amr_nested(16, 17, 3)".into(), field_hash(&amr_nested(n, 17, 3))),
        ("shot_noise(16, 7, 4096)".into(), field_hash(&shot_noise(n, 7, 4096))),
        ("shock_front(16, 9, 0.5)".into(), field_hash(&shock_front(n, 9, 0.5))),
        ("constant_padded(16, 21, 0.5)".into(), field_hash(&constant_padded(n, 21, 0.5))),
        ("all_constant(16, 7.25)".into(), field_hash(&all_constant(n, 7.25))),
        ("nan_laced(16, 3, 0.01)".into(), field_hash(&nan_laced(n, 3, 0.01))),
        ("inf_laced(16, 4, 0.01)".into(), field_hash(&inf_laced(n, 4, 0.01))),
    ];
    for series in scenario_matrix(n) {
        for (s, f) in series.fields.iter().enumerate() {
            rows.push((format!("matrix/{}/{s}", series.name), field_hash(f)));
        }
    }

    // Hand-rendered JSON: one sorted row per line, bit-stable output.
    let mut doc = String::from("{\n");
    for (i, (k, h)) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        doc.push_str(&format!("  \"{k}\": \"{h:#018x}\"{sep}\n"));
    }
    doc.push_str("}\n");

    let path = std::path::Path::new("tests/fixtures/scenarios_v1.json");
    std::fs::create_dir_all(path.parent().unwrap()).expect("mkdir fixtures");
    std::fs::write(path, doc.as_bytes()).expect("write fixture");
    println!("wrote {} ({} hashes, {} bytes)", path.display(), rows.len(), doc.len());
}
