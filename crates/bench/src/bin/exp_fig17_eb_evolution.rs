//! Regenerates the paper's Fig. 17 (see DESIGN.md experiment index).
fn main() {
    let scale = bench::Scale::from_env();
    let report = bench::experiments::fig17_eb_evolution::run(&scale);
    report.print();
    report.save();
}
