//! # bench — experiment harness regenerating the paper's tables & figures
//!
//! One module per paper artifact (see DESIGN.md's experiment index); each
//! exposes `run(&Scale) -> Report`, and thin `exp_*` binaries wrap them so
//! `cargo run --release -p bench --bin exp_fig15_all_fields` reproduces one
//! figure while `exp_all` reproduces everything and dumps JSON rows under
//! `results/`.
//!
//! Scale note: the paper runs 512³–2048³ grids on Cori/Frontera; default
//! experiment scale here is 64³–128³ with the same partition *counts* so a
//! laptop regenerates every artifact in minutes. `Scale::paper_like()`
//! raises the sizes for cluster-class runs.

pub mod report;
pub mod trajectory;
pub mod workloads;

pub mod experiments {
    pub mod fig03_error_distribution;
    pub mod fig04_fft_error_dist;
    pub mod fig05_fft_error_variance;
    pub mod fig06_candidate_cells;
    pub mod fig07_halo_mass_dist;
    pub mod fig08_cell_change_model;
    pub mod fig09_bitrate_curves;
    pub mod fig10_cm_estimation;
    pub mod fig11_eb_map;
    pub mod fig12_bit_quality;
    pub mod fig13_power_spectrum;
    pub mod fig14_effective_cells;
    pub mod fig15_all_fields;
    pub mod fig16_redshifts;
    pub mod fig17_eb_evolution;
    pub mod fig18_partition_size;
    pub mod fig19_scale;
    pub mod perf_overhead;
    pub mod table1_mass_per_cell;
}

pub use report::{Report, Scale};
