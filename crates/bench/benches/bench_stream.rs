//! Criterion: streaming session engine — the cold first push (one full
//! calibration + compress) against the steady-state push where the models
//! transfer and the snapshot pays only features + optimize + compress.
//! The gap is the amortization the session buys a redshift-series loop.

use adaptive_config::session::{QualityPolicy, Recalibration, SessionConfig, StreamSession};
use bench::{workloads, Scale};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_stream(c: &mut Criterion) {
    let scale = Scale { n: 64, parts: 4, seed: 42 };
    let snap = workloads::snapshot(&scale);
    let field = &snap.baryon_density;
    let dec = workloads::decomposition(&scale);
    let session_cfg = || SessionConfig::new(dec.clone(), QualityPolicy::SigmaScaled(0.1));

    let mut g = c.benchmark_group("insitu_stream");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((field.len() * 4) as u64));
    g.bench_function("first_push_cold", |b| {
        b.iter(|| {
            let mut s = StreamSession::new(session_cfg());
            s.push_snapshot(field).expect("finite bench field")
        })
    });
    {
        let mut s = StreamSession::new(session_cfg());
        s.push_snapshot(field).expect("finite bench field");
        g.bench_function("steady_push", |b| {
            b.iter(|| {
                let rec = s.push_snapshot(field).expect("finite bench field");
                assert_eq!(rec.stats.recalibration, Recalibration::Skipped);
                rec
            })
        });
    }
    // Restore from a CKPT blob + first push: the kill-and-resume path.
    // Should sit next to steady_push, nowhere near first_push_cold — the
    // checkpoint replaces the recalibration, that is its entire point.
    {
        let mut s = StreamSession::new(session_cfg());
        s.push_snapshot(field).expect("finite bench field");
        let blob = s.save();
        g.bench_function("restored_push", |b| {
            b.iter(|| {
                let mut r = StreamSession::restore(&blob).expect("checkpoint restores");
                let rec = r.push_snapshot(field).expect("finite bench field");
                assert_ne!(rec.stats.recalibration, Recalibration::Full);
                rec
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_stream);
criterion_main!(benches);
