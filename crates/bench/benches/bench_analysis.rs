//! Criterion: post-hoc analysis throughput (halo finder + power spectrum)
//! — the costs the paper's in situ modeling avoids re-running per trial.

use bench::{workloads, Scale};
use cosmoanalysis::{find_halos, power_spectrum, SpectrumKind};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_analysis(c: &mut Criterion) {
    let scale = Scale { n: 64, parts: 4, seed: 42 };
    let snap = workloads::snapshot(&scale);
    let field = &snap.baryon_density;
    let hc = workloads::halo_config(field);

    let mut g = c.benchmark_group("post_hoc_analysis");
    g.sample_size(10);
    g.throughput(Throughput::Elements(field.len() as u64));
    g.bench_function("halo_finder", |b| b.iter(|| find_halos(field, &hc)));
    g.bench_function("power_spectrum", |b| {
        b.iter(|| power_spectrum(field, SpectrumKind::Overdensity))
    });
    g.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
