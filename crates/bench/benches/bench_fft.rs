//! Criterion: fftlite 3-D transform scaling (the substrate cost of the
//! power-spectrum analysis).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fftlite::{Complex64, Fft3};

fn bench_fft3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fft3_forward");
    g.sample_size(10);
    for n in [32usize, 64] {
        let fft = Fft3::cube(n);
        let data: Vec<Complex64> =
            (0..n * n * n).map(|i| Complex64::new((i as f64 * 0.37).sin(), 0.0)).collect();
        g.throughput(Throughput::Elements((n * n * n) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &data, |b, d| {
            b.iter(|| {
                let mut buf = d.clone();
                fft.forward(&mut buf);
                buf[0]
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fft1_kernels");
    g.sample_size(20);
    for n in [1024usize, 1000] {
        // 1024 = radix-2 path, 1000 = Bluestein path.
        let plan = fftlite::FftPlan::new(n);
        let data: Vec<Complex64> =
            (0..n).map(|i| Complex64::new((i as f64).cos(), (i as f64).sin())).collect();
        g.bench_with_input(
            BenchmarkId::new(if plan.is_radix2() { "radix2" } else { "bluestein" }, n),
            &data,
            |b, d| {
                b.iter(|| {
                    let mut buf = d.clone();
                    plan.forward(&mut buf);
                    buf[0]
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_fft3);
criterion_main!(benches);
