//! Criterion: rsz compress/decompress throughput per field and bound, and
//! the zfplite baseline (supports §4.3's performance discussion).

use bench::{workloads, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use gridlab::Field3;
use rsz::{compress, decompress, SzConfig};
use zfplite::{zfp_compress, ZfpConfig};

fn bench_compress(c: &mut Criterion) {
    let scale = Scale { n: 64, parts: 4, seed: 42 };
    let snap = workloads::snapshot(&scale);
    let bytes = (snap.dims.len() * 4) as u64;

    let mut g = c.benchmark_group("rsz_compress");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    for (kind, field) in
        [("baryon_density", &snap.baryon_density), ("temperature", &snap.temperature)]
    {
        let eb = workloads::default_eb_avg(field);
        g.bench_with_input(BenchmarkId::new("abs", kind), field, |b, f| {
            b.iter(|| compress(f, &SzConfig::abs(eb)))
        });
    }
    g.finish();

    let mut g = c.benchmark_group("rsz_decompress");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    let eb = workloads::default_eb_avg(&snap.temperature);
    let compressed = compress(&snap.temperature, &SzConfig::abs(eb));
    g.bench_function("temperature", |b| {
        b.iter(|| decompress::<f32>(&compressed).expect("container decodes"))
    });
    g.finish();

    let mut g = c.benchmark_group("zfp_baseline");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    g.bench_function("fixed_rate_8", |b| {
        let f: &Field3<f32> = &snap.temperature;
        b.iter(|| zfp_compress(f, &ZfpConfig::fixed_rate(8.0)))
    });
    g.finish();
}

criterion_group!(benches, bench_compress);
criterion_main!(benches);
