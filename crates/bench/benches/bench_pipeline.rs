//! Criterion: end-to-end in situ snapshot step — adaptive (features +
//! optimize + compress) vs traditional (compress only). The difference is
//! the paper's total overhead claim.

use adaptive_config::optimizer::QualityTarget;
use bench::{workloads, Scale};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn bench_pipeline(c: &mut Criterion) {
    let scale = Scale { n: 64, parts: 4, seed: 42 };
    let snap = workloads::snapshot(&scale);
    let field = &snap.baryon_density;
    let dec = workloads::decomposition(&scale);
    let eb_avg = workloads::default_eb_avg(field);
    let pipeline = workloads::calibrated_pipeline(field, &dec, QualityTarget::fft_only(eb_avg));

    let mut g = c.benchmark_group("insitu_step");
    g.sample_size(10);
    g.throughput(Throughput::Bytes((field.len() * 4) as u64));
    g.bench_function("adaptive", |b| b.iter(|| pipeline.run_adaptive(field)));
    g.bench_function("traditional", |b| {
        b.iter(|| pipeline.run_traditional(field, workloads::traditional_eb(eb_avg)))
    });
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
