//! Criterion: the in situ feature-extraction cost vs compression cost —
//! the measurement behind the paper's "~1 % overhead" claim (P1).

use adaptive_config::ratio_model::extract_features;
use bench::{workloads, Scale};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rsz::{compress, SzConfig};

fn bench_features(c: &mut Criterion) {
    let scale = Scale { n: 64, parts: 4, seed: 42 };
    let snap = workloads::snapshot(&scale);
    let dec = workloads::decomposition(&scale);
    let field = &snap.baryon_density;
    let hc = workloads::halo_config(field);
    let bytes = (field.len() * 4) as u64;

    let mut g = c.benchmark_group("in_situ_overhead");
    g.throughput(Throughput::Bytes(bytes));
    g.sample_size(10);
    g.bench_function("features_mean_only", |b| {
        // t_boundary = 0 short-circuits most of the boundary check.
        b.iter(|| extract_features(field, &dec, 0.0, 1.0))
    });
    g.bench_function("features_with_boundary_cells", |b| {
        b.iter(|| extract_features(field, &dec, hc.t_boundary, 1.0))
    });
    let eb = workloads::default_eb_avg(field);
    g.bench_function("compression_for_reference", |b| {
        b.iter(|| compress(field, &SzConfig::abs(eb)))
    });
    g.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
