//! Criterion: the optimizer must be negligible next to compression — this
//! is the paper's scalability argument against trial-and-error (§4.3).

use adaptive_config::optimizer::{Optimizer, QualityTarget};
use adaptive_config::ratio_model::{PartitionFeature, RatioModel};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_optimizer(c: &mut Criterion) {
    let model = RatioModel { c: -0.4, a0: -1.0, a1: 0.4 };
    let opt = Optimizer::new(model);
    let mut g = c.benchmark_group("optimize_bounds");
    for m in [512usize, 4096, 32768] {
        let features: Vec<PartitionFeature> = (0..m)
            .map(|i| PartitionFeature {
                mean: 1.0 + (i % 97) as f64 * 13.7,
                boundary_cells_ref: (i % 31) as f64,
                eb_ref: 1.0,
                cells: 64 * 64 * 64,
            })
            .collect();
        let target = QualityTarget::with_halo(0.5, 88.16, 1e4);
        g.bench_with_input(BenchmarkId::from_parameter(m), &features, |b, f| {
            b.iter(|| opt.optimize(f, &target))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_optimizer);
criterion_main!(benches);
