//! Property tests for the analyses: halo-finder invariants and power
//! spectrum algebra on arbitrary fields.

use cosmoanalysis::{find_halos, power_spectrum, HaloFinderConfig, SpectrumKind};
use gridlab::{Dim3, Field3};
use proptest::prelude::*;

fn arb_density() -> impl Strategy<Value = Field3<f64>> {
    (2usize..=8, 2usize..=8, 2usize..=8).prop_flat_map(|(nx, ny, nz)| {
        let d = Dim3::new(nx, ny, nz);
        proptest::collection::vec(0.0f64..1000.0, d.len())
            .prop_map(move |v| Field3::from_vec(d, v).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn halo_mass_equals_member_cell_sum(f in arb_density(), tb in 1.0f64..500.0) {
        let cfg = HaloFinderConfig { t_boundary: tb, t_halo: tb, min_cells: 1 };
        let cat = find_halos(&f, &cfg);
        // With t_halo == t_boundary every candidate belongs to some halo,
        // so total halo mass equals the sum over candidate cells.
        let manual: f64 = f.as_slice().iter().filter(|&&v| v > tb).sum();
        prop_assert!((cat.total_mass() - manual).abs() <= 1e-9 * manual.max(1.0));
        let cells: usize = cat.halos.iter().map(|h| h.cells).sum();
        prop_assert_eq!(cells, cat.candidate_cells);
    }

    #[test]
    fn halo_count_monotone_in_peak_threshold(f in arb_density(), tb in 1.0f64..200.0) {
        let low = HaloFinderConfig { t_boundary: tb, t_halo: tb, min_cells: 1 };
        let high = HaloFinderConfig { t_boundary: tb, t_halo: tb * 2.0, min_cells: 1 };
        let n_low = find_halos(&f, &low).len();
        let n_high = find_halos(&f, &high).len();
        prop_assert!(n_high <= n_low);
    }

    #[test]
    fn candidate_cells_monotone_in_boundary(f in arb_density(), tb in 1.0f64..200.0) {
        let a = find_halos(&f, &HaloFinderConfig { t_boundary: tb, t_halo: tb, min_cells: 1 });
        let b = find_halos(&f, &HaloFinderConfig { t_boundary: tb * 2.0, t_halo: tb * 2.0, min_cells: 1 });
        prop_assert!(b.candidate_cells <= a.candidate_cells);
    }

    #[test]
    fn halo_positions_inside_grid(f in arb_density(), tb in 1.0f64..500.0) {
        let cfg = HaloFinderConfig { t_boundary: tb, t_halo: tb, min_cells: 1 };
        let d = f.dims();
        for h in &find_halos(&f, &cfg).halos {
            prop_assert!(h.position.0 >= 0.0 && h.position.0 < d.nx as f64);
            prop_assert!(h.position.1 >= 0.0 && h.position.1 < d.ny as f64);
            prop_assert!(h.position.2 >= 0.0 && h.position.2 < d.nz as f64);
            prop_assert!(h.max_density > cfg.t_halo);
            prop_assert!(h.cells >= 1);
        }
    }

    #[test]
    fn halos_sorted_by_mass(f in arb_density(), tb in 1.0f64..300.0) {
        let cfg = HaloFinderConfig { t_boundary: tb, t_halo: tb, min_cells: 1 };
        let cat = find_halos(&f, &cfg);
        for w in cat.halos.windows(2) {
            prop_assert!(w[0].mass >= w[1].mass);
        }
    }

    #[test]
    fn spectrum_scales_quadratically(f in arb_density(), alpha in 0.1f64..10.0) {
        let a = power_spectrum(&f, SpectrumKind::Raw);
        let mut g = f.clone();
        g.map_inplace(|v| v * alpha);
        let b = power_spectrum(&g, SpectrumKind::Raw);
        for (x, y) in a.power.iter().zip(&b.power) {
            if *x > 1e-12 {
                prop_assert!((y / (x * alpha * alpha) - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn spectrum_bins_cover_nyquist(f in arb_density()) {
        let ps = power_spectrum(&f, SpectrumKind::Raw);
        let d = f.dims();
        let kmax = d.nx.min(d.ny).min(d.nz) / 2;
        prop_assert_eq!(ps.len(), kmax);
        prop_assert!(ps.power.iter().all(|p| p.is_finite() && *p >= 0.0));
    }

    #[test]
    fn overdensity_invariant_to_scale(f in arb_density(), alpha in 0.5f64..2.0) {
        prop_assume!(f.as_slice().iter().sum::<f64>() > 1.0);
        let a = power_spectrum(&f, SpectrumKind::Overdensity);
        let mut g = f.clone();
        g.map_inplace(|v| v * alpha);
        let b = power_spectrum(&g, SpectrumKind::Overdensity);
        for (x, y) in a.power.iter().zip(&b.power) {
            prop_assert!((x - y).abs() <= 1e-6 * x.max(1e-12));
        }
    }
}
