//! Matter power spectrum `P(k)` from a 3-D field.
//!
//! `P(k)` is the shell-averaged squared magnitude of the field's Fourier
//! modes. For density fields the transform is applied to the overdensity
//! `δ = ρ/ρ̄ − 1` (the cosmological convention); for other fields the raw
//! values are used. The paper's acceptance criterion compares the spectrum
//! of reconstructed data to the original and requires the ratio to stay in
//! `1 ± 0.01` for all `k` below a cut (§2.1).

use fftlite::{Complex64, Fft3};
use gridlab::{Field3, Scalar};
use serde::{Deserialize, Serialize};

/// How to normalise the field before transforming.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpectrumKind {
    /// Transform `δ = x/mean − 1` using the field's own sample mean.
    Overdensity,
    /// Transform `δ = x/ρ̄ − 1` with a fixed reference mean. This is the
    /// cosmological convention (the cosmic mean density is a known
    /// constant of the run), and the right choice when comparing original
    /// vs reconstructed data: normalising each side by its own sample mean
    /// would let a sub-percent reconstruction mean drift inflate every
    /// `P(k)` ratio coherently.
    OverdensityFixedMean(f64),
    /// Transform the raw values (temperature, velocity, …).
    Raw,
}

/// Shell-binned power spectrum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerSpectrumResult {
    /// Bin centres in grid-frequency units (`k = 1, 2, …`).
    pub k: Vec<f64>,
    /// Mean `|X(k)|²` per shell, normalised by `N²` (Parseval-friendly).
    pub power: Vec<f64>,
    /// Modes per shell.
    pub counts: Vec<u64>,
}

impl PowerSpectrumResult {
    /// Number of bins.
    pub fn len(&self) -> usize {
        self.k.len()
    }

    pub fn is_empty(&self) -> bool {
        self.k.is_empty()
    }

    /// Per-bin ratio `self / other` (bins with zero reference power get 1).
    pub fn ratio(&self, other: &PowerSpectrumResult) -> Vec<f64> {
        assert_eq!(self.len(), other.len(), "spectra must share binning");
        self.power
            .iter()
            .zip(&other.power)
            .map(|(&a, &b)| if b > 0.0 { a / b } else { 1.0 })
            .collect()
    }
}

/// Compute the shell-averaged power spectrum of `field`.
///
/// Shells are unit-width in grid frequency: shell `i` collects modes with
/// `|k| ∈ [i + 0.5, i + 1.5)`, reported at centre `k = i + 1`. The DC mode
/// is excluded.
pub fn power_spectrum<T: Scalar>(field: &Field3<T>, kind: SpectrumKind) -> PowerSpectrumResult {
    let d = field.dims();
    let n = d.len() as f64;
    let mean = field.as_slice().iter().map(|v| v.to_f64()).sum::<f64>() / n;

    let mut buf: Vec<Complex64> = match kind {
        SpectrumKind::Overdensity | SpectrumKind::OverdensityFixedMean(_) => {
            let norm = match kind {
                SpectrumKind::OverdensityFixedMean(m) => m,
                _ => mean,
            };
            assert!(norm != 0.0, "overdensity spectrum needs a non-zero mean");
            field.as_slice().iter().map(|v| Complex64::real(v.to_f64() / norm - 1.0)).collect()
        }
        SpectrumKind::Raw => field.as_slice().iter().map(|v| Complex64::real(v.to_f64())).collect(),
    };
    Fft3::new(d.nx, d.ny, d.nz).forward(&mut buf);

    // Maximum meaningful |k| is the Nyquist radius of the smallest axis.
    let k_max = d.nx.min(d.ny).min(d.nz) / 2;
    let mut power = vec![0.0f64; k_max];
    let mut counts = vec![0u64; k_max];

    let freq = |j: usize, n: usize| -> f64 {
        if j <= n / 2 {
            j as f64
        } else {
            j as f64 - n as f64
        }
    };

    let mut idx = 0usize;
    for i in 0..d.nx {
        let kx = freq(i, d.nx);
        for j in 0..d.ny {
            let ky = freq(j, d.ny);
            for l in 0..d.nz {
                let kz = freq(l, d.nz);
                let km = (kx * kx + ky * ky + kz * kz).sqrt();
                // Shell index: nearest integer k, shifted to 0-based bins.
                let shell = km.round() as usize;
                if shell >= 1 && shell <= k_max {
                    power[shell - 1] += buf[idx].norm_sqr() / (n * n);
                    counts[shell - 1] += 1;
                }
                idx += 1;
            }
        }
    }
    for (p, &c) in power.iter_mut().zip(&counts) {
        if c > 0 {
            *p /= c as f64;
        }
    }
    PowerSpectrumResult { k: (1..=k_max).map(|i| i as f64).collect(), power, counts }
}

/// The paper's acceptance check: is `P'(k)/P(k)` within `1 ± tol` for every
/// bin with `k < k_cut`?
pub fn band_ratio_ok(
    reconstructed: &PowerSpectrumResult,
    original: &PowerSpectrumResult,
    k_cut: f64,
    tol: f64,
) -> bool {
    reconstructed
        .ratio(original)
        .iter()
        .zip(&original.k)
        .filter(|(_, &k)| k < k_cut)
        .all(|(&r, _)| (r - 1.0).abs() <= tol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Dim3;

    fn plane_wave(n: usize, k0: usize) -> Field3<f64> {
        Field3::from_fn(Dim3::cube(n), |x, _, _| {
            (2.0 * std::f64::consts::PI * (k0 * x) as f64 / n as f64).cos()
        })
    }

    #[test]
    fn single_mode_lands_in_its_shell() {
        let n = 16;
        let k0 = 3;
        let ps = power_spectrum(&plane_wave(n, k0), SpectrumKind::Raw);
        let (imax, _) = ps
            .power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .expect("non-empty");
        assert_eq!(ps.k[imax], k0 as f64);
    }

    #[test]
    fn bins_cover_to_nyquist() {
        let ps = power_spectrum(&plane_wave(16, 1), SpectrumKind::Raw);
        assert_eq!(ps.len(), 8);
        assert_eq!(*ps.k.last().expect("bins"), 8.0);
        assert!(ps.counts.iter().all(|&c| c > 0));
    }

    #[test]
    fn overdensity_of_constant_field_is_zero() {
        let f = Field3::constant(Dim3::cube(8), 5.0f32);
        let ps = power_spectrum(&f, SpectrumKind::Overdensity);
        assert!(ps.power.iter().all(|&p| p < 1e-20));
    }

    #[test]
    fn ratio_of_identical_spectra_is_one() {
        let f = plane_wave(16, 2);
        let a = power_spectrum(&f, SpectrumKind::Raw);
        let b = power_spectrum(&f, SpectrumKind::Raw);
        assert!(a.ratio(&b).iter().all(|&r| (r - 1.0).abs() < 1e-12));
        assert!(band_ratio_ok(&a, &b, 10.0, 0.01));
    }

    #[test]
    fn small_perturbation_passes_large_fails() {
        let n = 16;
        let f = Field3::from_fn(Dim3::cube(n), |x, y, z| {
            100.0 + 10.0 * ((x + 2 * y + 3 * z) as f64 * 0.7).sin()
        });
        let ps0 = power_spectrum(&f, SpectrumKind::Raw);

        let mut tiny = f.clone();
        tiny.map_inplace(|v| v + 1e-4 * (v * 17.0).sin());
        let ps_tiny = power_spectrum(&tiny, SpectrumKind::Raw);
        assert!(band_ratio_ok(&ps_tiny, &ps0, 8.0, 0.01));

        let mut big = f.clone();
        let mut state = 3u64;
        big.map_inplace(|v| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            v + 8.0 * ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
        });
        let ps_big = power_spectrum(&big, SpectrumKind::Raw);
        assert!(!band_ratio_ok(&ps_big, &ps0, 8.0, 0.01));
    }

    #[test]
    fn band_ratio_respects_k_cut() {
        // Corrupt only high-k power: check passes with a low cut.
        let n = 16;
        let f = plane_wave(n, 2);
        let ps0 = power_spectrum(&f, SpectrumKind::Raw);
        let mut g = f.clone();
        // Add a Nyquist-frequency ripple (k = 8).
        let mut parity = false;
        g.map_inplace(|v| {
            parity = !parity;
            v + if parity { 0.3 } else { -0.3 }
        });
        let ps1 = power_spectrum(&g, SpectrumKind::Raw);
        assert!(band_ratio_ok(&ps1, &ps0, 5.0, 0.05));
        assert!(!band_ratio_ok(&ps1, &ps0, 9.0, 0.05));
    }

    #[test]
    fn fixed_mean_overdensity_decouples_from_sample_mean() {
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| 100.0 + ((x + y + z) as f64).sin());
        let mean = 100.0;
        // Shift the field's sample mean slightly: the fixed-mean spectrum
        // only moves at DC (excluded), while the sample-mean spectrum
        // rescales every mode.
        let mut g = f.clone();
        g.map_inplace(|v| v * 1.01);
        let a = power_spectrum(&f, SpectrumKind::OverdensityFixedMean(mean));
        let b = power_spectrum(&g, SpectrumKind::OverdensityFixedMean(mean));
        for (x, y) in a.power.iter().zip(&b.power) {
            assert!((y / x - 1.0201).abs() < 1e-6, "{x} vs {y}");
        }
        // Sample-mean normalisation cancels the scale entirely.
        let c = power_spectrum(&f, SpectrumKind::Overdensity);
        let d = power_spectrum(&g, SpectrumKind::Overdensity);
        for (x, y) in c.power.iter().zip(&d.power) {
            assert!((y / x - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rectangular_grid_supported() {
        let f = Field3::from_fn(Dim3::new(16, 8, 8), |x, y, z| ((x * y + z) as f64).sin());
        let ps = power_spectrum(&f, SpectrumKind::Raw);
        assert_eq!(ps.len(), 4); // min axis 8 → Nyquist radius 4
    }
}
