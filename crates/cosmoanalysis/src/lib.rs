//! # cosmoanalysis — the paper's post-hoc analyses
//!
//! Two domain-specific quality metrics drive the paper's adaptive
//! configuration; both are implemented here, operating on `gridlab` fields:
//!
//! * [`power_spectrum`] — the 3-D-FFT matter power spectrum `P(k)` binned
//!   in spherical `k`-shells, plus the distortion-ratio acceptance check
//!   (`P'(k)/P(k)` within `1 ± tol` for `k` below a cut — §2.1, Fig. 13);
//! * [`halo`] — the Eulerian density-threshold halo finder (candidate
//!   cells above `t_boundary`, face-connected components, halo when the
//!   component peak exceeds `t_halo`; centroid + cell-weighted mass), and
//!   catalog comparison (count / position / mass change — §3.4);
//! * [`metrics`] — the general-purpose distortion metrics (PSNR/MSE/NRMSE)
//!   the paper argues are *insufficient* on their own, kept for reference
//!   comparisons.

pub mod halo;
pub mod metrics;
pub mod power_spectrum;
pub mod ssim;

pub use halo::compare::{compare_catalogs, CatalogComparison};
pub use halo::finder::{find_halos, Halo, HaloCatalog, HaloFinderConfig};
pub use power_spectrum::{band_ratio_ok, power_spectrum, PowerSpectrumResult, SpectrumKind};
pub use ssim::{ssim, SsimConfig};
