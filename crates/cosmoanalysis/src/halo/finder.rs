//! Eulerian density-threshold halo finder.
//!
//! The algorithm the paper models (§3.4, after Friesen et al. 2016):
//!
//! 1. mark **candidate cells** with density above `t_boundary`;
//! 2. group face-adjacent candidates into connected components;
//! 3. keep components whose **peak** density exceeds `t_halo` (and that
//!    have at least `min_cells` cells) as halos;
//! 4. record per halo the centroid position and the cell-weighted mass
//!    (sum of member densities).
//!
//! The paper's error analysis hinges on *edge cells*: compression error can
//! only flip candidacy of cells within `±eb` of `t_boundary`, each flip
//! changing the halo mass by ≈ `t_boundary` (Table 1).

use crate::halo::union_find::UnionFind;
use gridlab::{Field3, Scalar};
use serde::{Deserialize, Serialize};

/// Thresholds for the finder.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HaloFinderConfig {
    /// Candidate (boundary) threshold — the paper's `t_boundary`.
    pub t_boundary: f64,
    /// Peak threshold a component must reach to count as a halo.
    pub t_halo: f64,
    /// Minimum component size in cells (1 = keep everything).
    pub min_cells: usize,
}

impl HaloFinderConfig {
    /// Thresholds as multiples of the field mean — convenient because the
    /// density mean is fixed by the simulation (§4.3).
    pub fn relative_to_mean(mean: f64, boundary_factor: f64, halo_factor: f64) -> Self {
        assert!(halo_factor >= boundary_factor);
        Self { t_boundary: mean * boundary_factor, t_halo: mean * halo_factor, min_cells: 1 }
    }
}

/// One identified halo.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Halo {
    /// Number of member cells.
    pub cells: usize,
    /// Cell-weighted mass (sum of member densities).
    pub mass: f64,
    /// Unweighted centroid of member cell coordinates.
    pub position: (f64, f64, f64),
    /// Peak density within the halo.
    pub max_density: f64,
}

/// All halos found in one field.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HaloCatalog {
    pub config: HaloFinderConfig,
    /// Halos sorted by descending mass.
    pub halos: Vec<Halo>,
    /// Total candidate cells above `t_boundary` (the paper's Fig. 6/8
    /// quantity, including non-halo components).
    pub candidate_cells: usize,
}

impl HaloCatalog {
    pub fn len(&self) -> usize {
        self.halos.len()
    }

    pub fn is_empty(&self) -> bool {
        self.halos.is_empty()
    }

    /// Total mass across halos.
    pub fn total_mass(&self) -> f64 {
        self.halos.iter().map(|h| h.mass).sum()
    }

    /// The most massive halo, if any.
    pub fn largest(&self) -> Option<&Halo> {
        self.halos.first()
    }
}

/// Run the halo finder over a density field.
pub fn find_halos<T: Scalar>(field: &Field3<T>, config: &HaloFinderConfig) -> HaloCatalog {
    let d = field.dims();
    let vals = field.as_slice();
    let n = d.len();

    // Pass 1: candidate mask.
    let mask: Vec<bool> = vals.iter().map(|v| v.to_f64() > config.t_boundary).collect();
    let candidate_cells = mask.iter().filter(|&&m| m).count();

    // Pass 2: union face-adjacent candidates. Only the three "backward"
    // neighbours are needed when scanning forward.
    let mut uf = UnionFind::new(n);
    for x in 0..d.nx {
        for y in 0..d.ny {
            for z in 0..d.nz {
                let i = d.index(x, y, z);
                if !mask[i] {
                    continue;
                }
                if x > 0 {
                    let j = d.index(x - 1, y, z);
                    if mask[j] {
                        uf.union(i, j);
                    }
                }
                if y > 0 {
                    let j = d.index(x, y - 1, z);
                    if mask[j] {
                        uf.union(i, j);
                    }
                }
                if z > 0 {
                    let j = d.index(x, y, z - 1);
                    if mask[j] {
                        uf.union(i, j);
                    }
                }
            }
        }
    }

    // Pass 3: accumulate per-component statistics.
    #[derive(Default, Clone)]
    struct Acc {
        cells: usize,
        mass: f64,
        cx: f64,
        cy: f64,
        cz: f64,
        max: f64,
    }
    use std::collections::HashMap;
    let mut groups: HashMap<usize, Acc> = HashMap::new();
    for i in 0..n {
        if !mask[i] {
            continue;
        }
        let root = uf.find(i);
        let (x, y, z) = d.coords(i);
        let v = vals[i].to_f64();
        let a = groups.entry(root).or_default();
        a.cells += 1;
        a.mass += v;
        a.cx += x as f64;
        a.cy += y as f64;
        a.cz += z as f64;
        a.max = a.max.max(v);
    }

    let mut halos: Vec<Halo> = groups
        .into_values()
        .filter(|a| a.max > config.t_halo && a.cells >= config.min_cells)
        .map(|a| Halo {
            cells: a.cells,
            mass: a.mass,
            position: (a.cx / a.cells as f64, a.cy / a.cells as f64, a.cz / a.cells as f64),
            max_density: a.max,
        })
        .collect();
    halos.sort_by(|a, b| b.mass.partial_cmp(&a.mass).expect("finite masses"));

    HaloCatalog { config: *config, halos, candidate_cells }
}

/// Count cells with value in the open interval
/// `(t_boundary − eb, t_boundary + eb)` — the paper's `n_bc` feature.
pub fn boundary_cells<T: Scalar>(field: &Field3<T>, t_boundary: f64, eb: f64) -> usize {
    gridlab::stats::count_in_range(field.as_slice(), t_boundary - eb, t_boundary + eb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Dim3;

    fn cfg(tb: f64, th: f64) -> HaloFinderConfig {
        HaloFinderConfig { t_boundary: tb, t_halo: th, min_cells: 1 }
    }

    /// A field with two separated blobs: a strong one at (4,4,4) and a weak
    /// one at (12,12,12).
    fn two_blobs(n: usize) -> Field3<f64> {
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            let d1 =
                ((x as f64 - 4.0).powi(2) + (y as f64 - 4.0).powi(2) + (z as f64 - 4.0).powi(2))
                    .sqrt();
            let d2 =
                ((x as f64 - 12.0).powi(2) + (y as f64 - 12.0).powi(2) + (z as f64 - 12.0).powi(2))
                    .sqrt();
            100.0 * (-d1 * d1 / 4.0).exp() + 30.0 * (-d2 * d2 / 4.0).exp() + 1.0
        })
    }

    #[test]
    fn finds_two_halos_when_both_peak() {
        let f = two_blobs(16);
        let cat = find_halos(&f, &cfg(10.0, 20.0));
        assert_eq!(cat.len(), 2);
        // Sorted by mass: the 100-peak blob first.
        assert!(cat.halos[0].mass > cat.halos[1].mass);
        assert!(cat.halos[0].max_density > 90.0);
    }

    #[test]
    fn peak_threshold_filters_weak_blob() {
        let f = two_blobs(16);
        let cat = find_halos(&f, &cfg(10.0, 50.0));
        assert_eq!(cat.len(), 1);
        assert!(cat.halos[0].max_density > 90.0);
    }

    #[test]
    fn positions_are_blob_centers() {
        let f = two_blobs(16);
        let cat = find_halos(&f, &cfg(10.0, 20.0));
        let big = cat.halos[0].position;
        assert!((big.0 - 4.0).abs() < 0.5 && (big.1 - 4.0).abs() < 0.5);
        let small = cat.halos[1].position;
        assert!((small.0 - 12.0).abs() < 0.5);
    }

    #[test]
    fn mass_is_sum_of_member_cells() {
        let f = two_blobs(16);
        let cat = find_halos(&f, &cfg(10.0, 20.0));
        // Recompute by brute force over cells near each blob.
        let manual: f64 = f.as_slice().iter().filter(|&&v| v > 10.0).sum();
        assert!((cat.total_mass() - manual).abs() < 1e-9);
    }

    #[test]
    fn empty_when_nothing_crosses_threshold() {
        let f = Field3::constant(Dim3::cube(8), 1.0f64);
        let cat = find_halos(&f, &cfg(10.0, 20.0));
        assert!(cat.is_empty());
        assert_eq!(cat.candidate_cells, 0);
        assert!(cat.largest().is_none());
    }

    #[test]
    fn whole_field_is_one_halo_when_all_above() {
        let f = Field3::constant(Dim3::cube(4), 50.0f64);
        let cat = find_halos(&f, &cfg(10.0, 20.0));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.halos[0].cells, 64);
        assert!((cat.halos[0].mass - 64.0 * 50.0).abs() < 1e-9);
        assert_eq!(cat.candidate_cells, 64);
    }

    #[test]
    fn diagonal_cells_are_not_connected() {
        // Two cells touching only at a corner are separate components.
        let mut f = Field3::constant(Dim3::cube(4), 0.0f64);
        f.set(0, 0, 0, 100.0);
        f.set(1, 1, 1, 100.0);
        let cat = find_halos(&f, &cfg(10.0, 20.0));
        assert_eq!(cat.len(), 2);
    }

    #[test]
    fn face_adjacent_cells_merge() {
        let mut f = Field3::constant(Dim3::cube(4), 0.0f64);
        f.set(0, 0, 0, 100.0);
        f.set(0, 0, 1, 15.0);
        f.set(0, 0, 2, 100.0);
        let cat = find_halos(&f, &cfg(10.0, 20.0));
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.halos[0].cells, 3);
    }

    #[test]
    fn min_cells_filter() {
        let mut f = Field3::constant(Dim3::cube(4), 0.0f64);
        f.set(0, 0, 0, 100.0); // 1-cell component
        f.set(2, 2, 2, 100.0);
        f.set(2, 2, 3, 100.0); // 2-cell component
        let mut c = cfg(10.0, 20.0);
        c.min_cells = 2;
        let cat = find_halos(&f, &c);
        assert_eq!(cat.len(), 1);
        assert_eq!(cat.halos[0].cells, 2);
    }

    #[test]
    fn candidate_cells_counts_sub_halo_components() {
        let mut f = Field3::constant(Dim3::cube(4), 0.0f64);
        f.set(0, 0, 0, 15.0); // above boundary, below halo peak
        let cat = find_halos(&f, &cfg(10.0, 20.0));
        assert_eq!(cat.candidate_cells, 1);
        assert!(cat.is_empty());
    }

    #[test]
    fn boundary_cells_matches_range_count() {
        let f = two_blobs(16);
        let nb = boundary_cells(&f, 10.0, 1.0);
        let manual = f.as_slice().iter().filter(|&&v| v > 9.0 && v < 11.0).count();
        assert_eq!(nb, manual);
        assert!(nb > 0);
    }

    #[test]
    fn relative_config_builder() {
        let c = HaloFinderConfig::relative_to_mean(40.0, 2.0, 4.0);
        assert_eq!(c.t_boundary, 80.0);
        assert_eq!(c.t_halo, 160.0);
    }

    #[test]
    fn f32_field_works() {
        let f: Field3<f32> = two_blobs(16).cast();
        let cat = find_halos(&f, &cfg(10.0, 20.0));
        assert_eq!(cat.len(), 2);
    }
}
