//! Disjoint-set union with path halving and union by size.
//!
//! Backbone of the halo finder's connected-components pass: candidate
//! cells above the boundary threshold are unioned with face-adjacent
//! candidates; each resulting set is one halo candidate group.

/// Array-based disjoint-set structure over `0..n`.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind capacity exceeded");
        Self { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: usize) -> usize {
        loop {
            let p = self.parent[x] as usize;
            if p == x {
                return x;
            }
            let gp = self.parent[p];
            self.parent[x] = gp;
            x = gp as usize;
        }
    }

    /// Merge the sets of `a` and `b`; returns the new representative.
    pub fn union(&mut self, a: usize, b: usize) -> usize {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return ra;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        big
    }

    /// Whether `a` and `b` share a set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of `x`'s set.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disconnected() {
        let mut uf = UnionFind::new(4);
        assert_eq!(uf.len(), 4);
        assert!(!uf.connected(0, 1));
        assert_eq!(uf.set_size(2), 1);
    }

    #[test]
    fn union_connects_transitively() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.set_size(0), 3);
    }

    #[test]
    fn union_is_idempotent() {
        let mut uf = UnionFind::new(3);
        let r1 = uf.union(0, 1);
        let r2 = uf.union(0, 1);
        assert_eq!(r1, r2);
        assert_eq!(uf.set_size(1), 2);
    }

    #[test]
    fn chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.set_size(0), n);
        assert!(uf.connected(0, n - 1));
    }

    #[test]
    fn independent_components_stay_separate() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(4, 5);
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(1, 2));
        assert!(!uf.connected(3, 4));
        assert_eq!(uf.set_size(4), 2);
    }
}
