//! Density-threshold halo finding and catalog comparison.

pub mod compare;
pub mod finder;
pub mod union_find;
