//! Halo catalog comparison — the paper's three halo-quality criteria
//! (§2.1): (1) halo positions, (2) halo count, (3) per-halo mass change,
//! with emphasis on preserving middle/large halos over small ones.

use crate::halo::finder::{Halo, HaloCatalog};
use serde::{Deserialize, Serialize};

/// Result of matching a reconstructed catalog against the original.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogComparison {
    /// Halos in the original catalog.
    pub n_original: usize,
    /// Halos in the reconstructed catalog.
    pub n_reconstructed: usize,
    /// Matched pairs (greedy nearest-centroid within `match_radius`).
    pub n_matched: usize,
    /// RMS centroid displacement over matched halos (cells).
    pub position_rmse: f64,
    /// RMS of the mass ratio `m'/m` over matched halos (the paper keeps
    /// this within `1 ± 0.01`).
    pub mass_ratio_rmse: f64,
    /// Mean absolute mass change over matched halos.
    pub mean_abs_mass_change: f64,
    /// Total |Δmass| over matched halos — the quantity Eq. 11 estimates.
    pub total_abs_mass_change: f64,
    /// Mean absolute change in member-cell count over matched halos.
    pub mean_abs_cell_change: f64,
}

fn dist2(a: (f64, f64, f64), b: (f64, f64, f64)) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    let dz = a.2 - b.2;
    dx * dx + dy * dy + dz * dz
}

/// Greedily match halos by centroid proximity (largest original first) and
/// compute the comparison statistics.
pub fn compare_catalogs(
    original: &HaloCatalog,
    reconstructed: &HaloCatalog,
    match_radius: f64,
) -> CatalogComparison {
    let r2 = match_radius * match_radius;
    let mut used = vec![false; reconstructed.halos.len()];
    let mut matched: Vec<(&Halo, &Halo)> = Vec::new();

    for orig in &original.halos {
        let mut best: Option<(usize, f64)> = None;
        for (j, rec) in reconstructed.halos.iter().enumerate() {
            if used[j] {
                continue;
            }
            let d2 = dist2(orig.position, rec.position);
            if d2 <= r2 && best.is_none_or(|(_, bd)| d2 < bd) {
                best = Some((j, d2));
            }
        }
        if let Some((j, _)) = best {
            used[j] = true;
            matched.push((orig, &reconstructed.halos[j]));
        }
    }

    let n_matched = matched.len();
    let (mut pos_acc, mut ratio_acc, mut dmass_acc, mut dcell_acc) = (0.0, 0.0, 0.0, 0.0);
    for (o, r) in &matched {
        pos_acc += dist2(o.position, r.position);
        let ratio = if o.mass > 0.0 { r.mass / o.mass } else { 1.0 };
        ratio_acc += (ratio - 1.0) * (ratio - 1.0);
        dmass_acc += (r.mass - o.mass).abs();
        dcell_acc += (r.cells as f64 - o.cells as f64).abs();
    }
    let nm = n_matched.max(1) as f64;
    CatalogComparison {
        n_original: original.len(),
        n_reconstructed: reconstructed.len(),
        n_matched,
        position_rmse: (pos_acc / nm).sqrt(),
        mass_ratio_rmse: (ratio_acc / nm).sqrt(),
        mean_abs_mass_change: dmass_acc / nm,
        total_abs_mass_change: dmass_acc,
        mean_abs_cell_change: dcell_acc / nm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::finder::HaloFinderConfig;

    fn catalog(halos: Vec<Halo>) -> HaloCatalog {
        HaloCatalog {
            config: HaloFinderConfig { t_boundary: 10.0, t_halo: 20.0, min_cells: 1 },
            candidate_cells: halos.iter().map(|h| h.cells).sum(),
            halos,
        }
    }

    fn halo(pos: (f64, f64, f64), mass: f64, cells: usize) -> Halo {
        Halo { cells, mass, position: pos, max_density: mass / cells as f64 }
    }

    #[test]
    fn identical_catalogs_match_perfectly() {
        let c = catalog(vec![halo((1.0, 1.0, 1.0), 100.0, 10), halo((9.0, 9.0, 9.0), 50.0, 5)]);
        let cmp = compare_catalogs(&c, &c.clone(), 2.0);
        assert_eq!(cmp.n_matched, 2);
        assert_eq!(cmp.position_rmse, 0.0);
        assert_eq!(cmp.mass_ratio_rmse, 0.0);
        assert_eq!(cmp.total_abs_mass_change, 0.0);
    }

    #[test]
    fn small_mass_changes_are_measured() {
        let a = catalog(vec![halo((1.0, 1.0, 1.0), 100.0, 10)]);
        let b = catalog(vec![halo((1.0, 1.0, 1.0), 102.0, 11)]);
        let cmp = compare_catalogs(&a, &b, 2.0);
        assert_eq!(cmp.n_matched, 1);
        assert!((cmp.mass_ratio_rmse - 0.02).abs() < 1e-12);
        assert!((cmp.total_abs_mass_change - 2.0).abs() < 1e-12);
        assert!((cmp.mean_abs_cell_change - 1.0).abs() < 1e-12);
    }

    #[test]
    fn far_halos_do_not_match() {
        let a = catalog(vec![halo((1.0, 1.0, 1.0), 100.0, 10)]);
        let b = catalog(vec![halo((20.0, 20.0, 20.0), 100.0, 10)]);
        let cmp = compare_catalogs(&a, &b, 2.0);
        assert_eq!(cmp.n_matched, 0);
        assert_eq!(cmp.n_original, 1);
        assert_eq!(cmp.n_reconstructed, 1);
    }

    #[test]
    fn each_reconstructed_halo_matches_once() {
        let a = catalog(vec![halo((1.0, 1.0, 1.0), 100.0, 10), halo((1.5, 1.0, 1.0), 90.0, 9)]);
        let b = catalog(vec![halo((1.2, 1.0, 1.0), 95.0, 9)]);
        let cmp = compare_catalogs(&a, &b, 2.0);
        assert_eq!(cmp.n_matched, 1);
    }

    #[test]
    fn nearest_candidate_wins() {
        let a = catalog(vec![halo((0.0, 0.0, 0.0), 100.0, 10)]);
        let b = catalog(vec![halo((1.5, 0.0, 0.0), 40.0, 4), halo((0.1, 0.0, 0.0), 99.0, 10)]);
        let cmp = compare_catalogs(&a, &b, 2.0);
        assert_eq!(cmp.n_matched, 1);
        // Matched with the nearer (mass 99) one: ratio error 1%.
        assert!((cmp.mass_ratio_rmse - 0.01).abs() < 1e-9);
    }

    #[test]
    fn empty_catalogs_are_safe() {
        let a = catalog(vec![]);
        let b = catalog(vec![]);
        let cmp = compare_catalogs(&a, &b, 2.0);
        assert_eq!(cmp.n_matched, 0);
        assert_eq!(cmp.position_rmse, 0.0);
    }
}
