//! Structural similarity (SSIM) over 3-D fields.
//!
//! The paper's stated future work is extending the approach to other
//! domains "such as climate simulation with SSIM" (§5). We provide the
//! standard windowed SSIM generalised to 3-D bricks so that extension is
//! ready to use: per-window luminance/contrast/structure terms, averaged
//! over a brick tiling.

use gridlab::{Dim3, Field3, Scalar};

/// SSIM parameters (Wang et al. defaults, with the dynamic range taken
/// from the reference field).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConfig {
    /// Cubic window edge in cells.
    pub window: usize,
    /// Stabiliser K1 (luminance term).
    pub k1: f64,
    /// Stabiliser K2 (contrast/structure term).
    pub k2: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        Self { window: 8, k1: 0.01, k2: 0.03 }
    }
}

/// Mean SSIM between a reference field and a distorted field.
///
/// Windows tile the domain; trailing partial windows are skipped (standard
/// practice for brick-aligned scientific data). Returns a value in
/// `(-1, 1]`, 1 for identical fields.
pub fn ssim<T: Scalar>(reference: &Field3<T>, distorted: &Field3<T>, cfg: &SsimConfig) -> f64 {
    assert_eq!(reference.dims(), distorted.dims(), "ssim shape mismatch");
    assert!(cfg.window >= 2, "window must be at least 2 cells");
    let d = reference.dims();
    let w = cfg.window.min(d.nx).min(d.ny).min(d.nz);
    let s = gridlab::stats::summarize(reference.as_slice());
    let range = s.range().max(f64::MIN_POSITIVE);
    let c1 = (cfg.k1 * range) * (cfg.k1 * range);
    let c2 = (cfg.k2 * range) * (cfg.k2 * range);

    let mut acc = 0.0f64;
    let mut windows = 0u64;
    let wdims = Dim3::new(w, w, w);
    let mut x0 = 0;
    while x0 + w <= d.nx {
        let mut y0 = 0;
        while y0 + w <= d.ny {
            let mut z0 = 0;
            while z0 + w <= d.nz {
                let a = reference.extract((x0, y0, z0), wdims);
                let b = distorted.extract((x0, y0, z0), wdims);
                acc += window_ssim(a.as_slice(), b.as_slice(), c1, c2);
                windows += 1;
                z0 += w;
            }
            y0 += w;
        }
        x0 += w;
    }
    assert!(windows > 0, "field smaller than one window");
    acc / windows as f64
}

fn window_ssim<T: Scalar>(a: &[T], b: &[T], c1: f64, c2: f64) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().map(|v| v.to_f64()).sum::<f64>() / n;
    let mb = b.iter().map(|v| v.to_f64()).sum::<f64>() / n;
    let mut va = 0.0;
    let mut vb = 0.0;
    let mut cov = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x.to_f64() - ma;
        let dy = y.to_f64() - mb;
        va += dx * dx;
        vb += dy * dy;
        cov += dx * dy;
    }
    va /= n;
    vb /= n;
    cov /= n;
    ((2.0 * ma * mb + c1) * (2.0 * cov + c2)) / ((ma * ma + mb * mb + c1) * (va + vb + c2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(n: usize) -> Field3<f64> {
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            100.0 + 20.0 * ((x as f64) * 0.7).sin() + 10.0 * ((y * z) as f64 * 0.13).cos()
        })
    }

    #[test]
    fn identical_fields_score_one() {
        let f = textured(16);
        let s = ssim(&f, &f, &SsimConfig::default());
        assert!((s - 1.0).abs() < 1e-12, "{s}");
    }

    #[test]
    fn more_noise_scores_lower() {
        let f = textured(16);
        let mut state = 5u64;
        let mut noisy = |amp: f64| {
            let mut g = f.clone();
            g.map_inplace(|v| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                v + amp * ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5)
            });
            g
        };
        let small = ssim(&f, &noisy(1.0), &SsimConfig::default());
        let large = ssim(&f, &noisy(30.0), &SsimConfig::default());
        assert!(small > large, "{small} vs {large}");
        assert!(small > 0.9 && small <= 1.0);
        assert!(large < 0.9);
    }

    #[test]
    fn mean_shift_penalised_by_luminance_term() {
        let f = textured(16);
        let mut g = f.clone();
        g.map_inplace(|v| v + 30.0);
        let s = ssim(&f, &g, &SsimConfig::default());
        // Luminance term: (2·μ_a·μ_b + c1)/(μ_a² + μ_b² + c1) ≈ 0.967 for
        // means 100 vs 130 — clearly below a perfect score.
        assert!(s < 0.98, "{s}");
        assert!(s > 0.5, "{s}");
    }

    #[test]
    fn compression_quality_is_monotone_in_bound() {
        let f: Field3<f32> = textured(16).cast();
        let cfg = SsimConfig::default();
        let at = |eb: f64| {
            let c = rsz::compress(&f, &rsz::SzConfig::abs(eb));
            let g: Field3<f32> = rsz::decompress(&c).expect("decodes");
            ssim(&f, &g, &cfg)
        };
        let tight = at(0.05);
        let loose = at(5.0);
        assert!(tight > loose, "{tight} vs {loose}");
        assert!(tight > 0.999);
    }

    #[test]
    fn window_larger_than_field_is_clamped() {
        let f = textured(4);
        let s = ssim(&f, &f, &SsimConfig { window: 64, ..SsimConfig::default() });
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_panics() {
        let a = textured(8);
        let b = textured(4);
        let _ = ssim(&a, &b, &SsimConfig::default());
    }
}
