//! General-purpose distortion metrics (PSNR / MSE / NRMSE / max error).
//!
//! The paper's premise is that these are *not sufficient* for cosmology
//! post-hoc quality (§1, §2.1) — they are provided so experiments can show
//! both the generic and the domain-specific views side by side.

use gridlab::{Field3, Scalar};

/// Mean squared error between two equally-shaped fields.
pub fn mse<T: Scalar>(a: &Field3<T>, b: &Field3<T>) -> f64 {
    assert_eq!(a.dims(), b.dims(), "mse shape mismatch");
    let n = a.len() as f64;
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(&x, &y)| {
            let d = x.to_f64() - y.to_f64();
            d * d
        })
        .sum::<f64>()
        / n
}

/// Root-mean-square error.
pub fn rmse<T: Scalar>(a: &Field3<T>, b: &Field3<T>) -> f64 {
    mse(a, b).sqrt()
}

/// RMSE normalised by the value range of `a`.
pub fn nrmse<T: Scalar>(a: &Field3<T>, b: &Field3<T>) -> f64 {
    let s = gridlab::stats::summarize_field(a);
    let range = s.range();
    if range == 0.0 {
        return if rmse(a, b) == 0.0 { 0.0 } else { f64::INFINITY };
    }
    rmse(a, b) / range
}

/// Peak signal-to-noise ratio in dB, with the peak taken as the value range
/// of the reference (the convention used for scientific float data).
pub fn psnr<T: Scalar>(a: &Field3<T>, b: &Field3<T>) -> f64 {
    let s = gridlab::stats::summarize_field(a);
    let range = s.range();
    let m = mse(a, b);
    if m == 0.0 {
        return f64::INFINITY;
    }
    20.0 * range.log10() - 10.0 * m.log10()
}

/// Maximum absolute point-wise error.
pub fn max_abs_error<T: Scalar>(a: &Field3<T>, b: &Field3<T>) -> f64 {
    a.max_abs_diff(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Dim3;

    fn ramp() -> Field3<f64> {
        Field3::from_fn(Dim3::cube(4), |x, y, z| (x * 16 + y * 4 + z) as f64)
    }

    #[test]
    fn identical_fields_are_perfect() {
        let a = ramp();
        assert_eq!(mse(&a, &a), 0.0);
        assert_eq!(rmse(&a, &a), 0.0);
        assert_eq!(nrmse(&a, &a), 0.0);
        assert_eq!(psnr(&a, &a), f64::INFINITY);
        assert_eq!(max_abs_error(&a, &a), 0.0);
    }

    #[test]
    fn constant_offset_has_known_metrics() {
        let a = ramp();
        let mut b = a.clone();
        b.map_inplace(|v| v + 2.0);
        assert!((mse(&a, &b) - 4.0).abs() < 1e-12);
        assert!((rmse(&a, &b) - 2.0).abs() < 1e-12);
        // Range of the ramp is 63.
        assert!((nrmse(&a, &b) - 2.0 / 63.0).abs() < 1e-12);
        assert_eq!(max_abs_error(&a, &b), 2.0);
    }

    #[test]
    fn psnr_decreases_with_more_noise() {
        let a = ramp();
        let mut small = a.clone();
        small.map_inplace(|v| v + 0.1);
        let mut big = a.clone();
        big.map_inplace(|v| v + 5.0);
        assert!(psnr(&a, &small) > psnr(&a, &big));
    }

    #[test]
    fn psnr_matches_formula() {
        let a = ramp();
        let mut b = a.clone();
        b.map_inplace(|v| v + 1.0);
        let expect = 20.0 * 63f64.log10() - 10.0 * 1f64.log10();
        assert!((psnr(&a, &b) - expect).abs() < 1e-12);
    }

    #[test]
    fn nrmse_of_flat_reference() {
        let a = Field3::constant(Dim3::cube(2), 3.0f32);
        let b = Field3::constant(Dim3::cube(2), 4.0f32);
        assert_eq!(nrmse(&a, &a), 0.0);
        assert_eq!(nrmse(&a, &b), f64::INFINITY);
    }
}
