//! SIMD variants of the block codec's integer hot loops.
//!
//! Everything here is exact integer arithmetic — wrapping adds and
//! arithmetic shifts — so lane-parallel evaluation is bit-identical to the
//! scalar reference by construction; no floating-point reasoning is needed
//! (contrast `rsz::simd_walk`). Three loops are vectorised:
//!
//! * the forward/inverse lifting transform: each axis pass applies four
//!   independent 4-point lifts, which become one lift over `i64x4` lanes.
//!   The y- and x-axis passes load lanes contiguously over `z`; the z-axis
//!   pass (stride 1 within a row) goes through a 4×4 transpose instead of
//!   gathers;
//! * the bit-plane significance scan: extracting plane `b` of 64
//!   negabinary coefficients into one mask word is a shift/mask/
//!   variable-shift OR-fold over `u64x4` instead of 64 single-bit steps.
//!
//! Dispatch follows the vendor shim's multiversion pattern (see
//! `vendor/portable_simd`): a generic body, an
//! `#[target_feature(enable = "avx2")]` clone for capable hosts, and the
//! original scalar functions in [`crate::transform`] as the
//! [`portable_simd::Backend::Scalar`] reference.

use portable_simd::{i64x4, transpose4_i64, u64x4};

/// Forward 4-point lift over four independent vectors, one per lane.
/// The exact step sequence of [`crate::transform::fwd_lift`] in lane-parallel form.
#[inline(always)]
fn fwd_lift_lanes(
    mut x: i64x4,
    mut y: i64x4,
    mut z: i64x4,
    mut w: i64x4,
) -> (i64x4, i64x4, i64x4, i64x4) {
    x = x + w;
    x = x.shr(1);
    w = w - x;
    z = z + y;
    z = z.shr(1);
    y = y - z;
    x = x + z;
    x = x.shr(1);
    z = z - x;
    w = w + y;
    w = w.shr(1);
    y = y - w;
    w = w + y.shr(1);
    y = y - w.shr(1);
    (x, y, z, w)
}

/// Inverse lift (exact mirror of [`crate::transform::inv_lift`]).
#[inline(always)]
fn inv_lift_lanes(
    mut x: i64x4,
    mut y: i64x4,
    mut z: i64x4,
    mut w: i64x4,
) -> (i64x4, i64x4, i64x4, i64x4) {
    y = y + w.shr(1);
    w = w - y.shr(1);
    y = y + w;
    w = w.shl(1);
    w = w - y;
    z = z + x;
    x = x.shl(1);
    x = x - z;
    y = y + z;
    z = z.shl(1);
    z = z - y;
    w = w + x;
    x = x.shl(1);
    x = x - w;
    (x, y, z, w)
}

#[inline(always)]
fn load4(block: &[i64; 64], at: usize) -> i64x4 {
    i64x4::from_slice(&block[at..at + 4])
}

#[inline(always)]
fn store4(block: &mut [i64; 64], at: usize, v: i64x4) {
    v.write_to_slice(&mut block[at..at + 4]);
}

/// Forward 3-D transform, four lifts per instruction. Axis order matches
/// `transform::fwd_xform` (z, then y, then x); lifts within one axis pass
/// are independent, so batching them cannot change the result.
#[inline(always)]
fn fwd_xform_body(block: &mut [i64; 64]) {
    // Along z (stride 1): the four row-vectors of each x-plane transpose
    // into (x, y, z, w) component lanes and back.
    for x in 0..4 {
        let p = 16 * x;
        let rows =
            [load4(block, p), load4(block, p + 4), load4(block, p + 8), load4(block, p + 12)];
        let [cx, cy, cz, cw] = transpose4_i64(rows);
        let (cx, cy, cz, cw) = fwd_lift_lanes(cx, cy, cz, cw);
        let rows = transpose4_i64([cx, cy, cz, cw]);
        store4(block, p, rows[0]);
        store4(block, p + 4, rows[1]);
        store4(block, p + 8, rows[2]);
        store4(block, p + 12, rows[3]);
    }
    // Along y (stride 4): lanes run over z, components are contiguous rows.
    for x in 0..4 {
        let p = 16 * x;
        let (a, b, c, d) = fwd_lift_lanes(
            load4(block, p),
            load4(block, p + 4),
            load4(block, p + 8),
            load4(block, p + 12),
        );
        store4(block, p, a);
        store4(block, p + 4, b);
        store4(block, p + 8, c);
        store4(block, p + 12, d);
    }
    // Along x (stride 16): lanes run over z, components are whole planes.
    for y in 0..4 {
        let p = 4 * y;
        let (a, b, c, d) = fwd_lift_lanes(
            load4(block, p),
            load4(block, p + 16),
            load4(block, p + 32),
            load4(block, p + 48),
        );
        store4(block, p, a);
        store4(block, p + 16, b);
        store4(block, p + 32, c);
        store4(block, p + 48, d);
    }
}

/// Inverse 3-D transform (reverse axis order of [`fwd_xform_body`]).
#[inline(always)]
fn inv_xform_body(block: &mut [i64; 64]) {
    for y in 0..4 {
        let p = 4 * y;
        let (a, b, c, d) = inv_lift_lanes(
            load4(block, p),
            load4(block, p + 16),
            load4(block, p + 32),
            load4(block, p + 48),
        );
        store4(block, p, a);
        store4(block, p + 16, b);
        store4(block, p + 32, c);
        store4(block, p + 48, d);
    }
    for x in 0..4 {
        let p = 16 * x;
        let (a, b, c, d) = inv_lift_lanes(
            load4(block, p),
            load4(block, p + 4),
            load4(block, p + 8),
            load4(block, p + 12),
        );
        store4(block, p, a);
        store4(block, p + 4, b);
        store4(block, p + 8, c);
        store4(block, p + 12, d);
    }
    for x in 0..4 {
        let p = 16 * x;
        let rows =
            [load4(block, p), load4(block, p + 4), load4(block, p + 8), load4(block, p + 12)];
        let [cx, cy, cz, cw] = transpose4_i64(rows);
        let (cx, cy, cz, cw) = inv_lift_lanes(cx, cy, cz, cw);
        let rows = transpose4_i64([cx, cy, cz, cw]);
        store4(block, p, rows[0]);
        store4(block, p + 4, rows[1]);
        store4(block, p + 8, rows[2]);
        store4(block, p + 12, rows[3]);
    }
}

/// Bit `b` of all 64 coefficients as one mask word (`mask bit i` =
/// `nb[i] >> b & 1`): the group-test significance scan's inner loop.
#[inline(always)]
fn plane_mask_body(nb: &[u64; 64], b: u32) -> u64 {
    let one = u64x4::splat(1);
    let mut acc = u64x4::splat(0);
    let mut i = 0u32;
    while i < 64 {
        let v = u64x4::from_slice(&nb[i as usize..i as usize + 4]);
        acc = acc.or(v.shr(b).and(one).shl_each([i, i + 1, i + 2, i + 3]));
        i += 4;
    }
    acc.or_lanes()
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    #[target_feature(enable = "avx2")]
    pub unsafe fn fwd_xform(block: &mut [i64; 64]) {
        super::fwd_xform_body(block);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn inv_xform(block: &mut [i64; 64]) {
        super::inv_xform_body(block);
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn plane_mask(nb: &[u64; 64], b: u32) -> u64 {
        super::plane_mask_body(nb, b)
    }
}

#[cfg(target_arch = "x86_64")]
#[inline]
fn have_avx2() -> bool {
    std::arch::is_x86_feature_detected!("avx2")
}

/// Forward transform with the best compiled clone for this host.
pub(crate) fn fwd_xform_simd(block: &mut [i64; 64]) {
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 support verified on this exact host above.
        return unsafe { avx2::fwd_xform(block) };
    }
    fwd_xform_body(block);
}

/// Inverse transform with the best compiled clone for this host.
pub(crate) fn inv_xform_simd(block: &mut [i64; 64]) {
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 support verified on this exact host above.
        return unsafe { avx2::inv_xform(block) };
    }
    inv_xform_body(block);
}

/// Plane-mask scan with the best compiled clone for this host.
pub(crate) fn plane_mask_simd(nb: &[u64; 64], b: u32) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if have_avx2() {
        // SAFETY: AVX2 support verified on this exact host above.
        return unsafe { avx2::plane_mask(nb, b) };
    }
    plane_mask_body(nb, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transform::{fwd_xform, inv_xform};

    fn rand_block(seed: u64, amp: i64) -> [i64; 64] {
        let mut state = seed;
        let mut out = [0i64; 64];
        for o in &mut out {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *o = ((state >> 33) as i64 % (2 * amp)) - amp;
        }
        out
    }

    #[test]
    fn lanes_lift_matches_scalar_lift() {
        for seed in 0..50 {
            let mut a = rand_block(seed, 1 << 40);
            let mut b = a;
            fwd_xform(&mut a);
            fwd_xform_simd(&mut b);
            assert_eq!(a, b, "forward diverged at seed {seed}");
            inv_xform(&mut a);
            inv_xform_simd(&mut b);
            assert_eq!(a, b, "inverse diverged at seed {seed}");
        }
    }

    #[test]
    fn lanes_lift_matches_scalar_at_codec_magnitudes() {
        // The codec feeds |q| < 2^50 (Q_BITS); the lift grows a few bits
        // beyond that. Parity must hold across the whole working range.
        for seed in 0..20 {
            let mut a = rand_block(seed, 1 << 50);
            let mut b = a;
            fwd_xform(&mut a);
            fwd_xform_simd(&mut b);
            assert_eq!(a, b);
            inv_xform(&mut a);
            inv_xform_simd(&mut b);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn plane_mask_matches_bit_loop() {
        for seed in 0..20 {
            let nb: [u64; 64] = rand_block(seed, i64::MAX / 4).map(|v| v as u64);
            for b in 0..64 {
                let mut want = 0u64;
                for (i, u) in nb.iter().enumerate() {
                    want |= ((u >> b) & 1) << i;
                }
                assert_eq!(plane_mask_simd(&nb, b), want, "plane {b} seed {seed}");
            }
        }
    }
}
