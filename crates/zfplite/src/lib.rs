//! # zfplite — a simplified fixed-rate block-transform codec
//!
//! The paper contrasts SZ with ZFP: a transform-based compressor whose
//! fixed-rate mode trades a hard size guarantee for the *absence* of an
//! absolute error bound (the reason the authors pick SZ, §2.2), and whose
//! rate curves are less consistent than prediction-based SZ (Fig. 10(b)).
//! To reproduce those comparisons without FFI we implement the ZFP recipe
//! in miniature:
//!
//! 1. partition the field into 4×4×4 blocks (edge blocks padded by
//!    replication),
//! 2. block-normalise to a common exponent and promote to fixed point,
//! 3. apply ZFP's reversible integer lifting transform along each axis
//!    ([`transform`]),
//! 4. reorder coefficients by total sequency, convert to negabinary, and
//!    emit bit planes MSB-first until the per-block bit budget is spent
//!    ([`codec`]).
//!
//! Decompression mirrors the steps; whatever bit planes were cut simply
//! stay zero, which is where the (unbounded, data-dependent) error comes
//! from.

pub mod codec;
pub mod transform;

pub use codec::{zfp_compress, zfp_decompress, ZfpCompressed, ZfpConfig, ZfpError};
