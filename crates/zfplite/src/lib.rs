//! # zfplite — a simplified fixed-rate block-transform codec
//!
//! The paper contrasts SZ with ZFP: a transform-based compressor whose
//! fixed-rate mode trades a hard size guarantee for the *absence* of an
//! absolute error bound (the reason the authors pick SZ, §2.2), and whose
//! rate curves are less consistent than prediction-based SZ (Fig. 10(b)).
//! To reproduce those comparisons without FFI we implement the ZFP recipe
//! in miniature:
//!
//! 1. partition the field into 4×4×4 blocks (edge blocks padded by
//!    replication),
//! 2. block-normalise to a common exponent and promote to fixed point,
//! 3. apply ZFP's reversible integer lifting transform along each axis
//!    ([`transform`]),
//! 4. reorder coefficients by total sequency, convert to negabinary, and
//!    emit bit planes MSB-first — either until the per-block bit budget is
//!    spent (fixed-rate mode) or until a *verified* per-block absolute
//!    error bound is met (accuracy mode, [`codec::ZfpMode::Accuracy`]),
//!    with ZFP's group-testing significance coding squeezing sparse planes
//!    ([`codec`]).
//!
//! Decompression mirrors the steps; whatever bit planes were cut simply
//! stay zero. In fixed-rate mode that error is unbounded and data-dependent
//! (the paper's contrast case); accuracy mode bounds it per block, which is
//! what lets the multi-codec pipeline (`codec-core`) treat zfplite as an
//! error-bounded backend alongside `rsz`.

//!
//! **SIMD backends**: the integer lifting transform and the bit-plane
//! significance scans have lane-parallel variants ([`simd`]) dispatched at
//! runtime through `vendor/portable_simd`; integer arithmetic is exact, so
//! scalar and SIMD paths emit byte-identical containers. Force a path
//! process-wide with `HPDC21_SIMD=force|off`, or per call via
//! [`zfp_compress_slice_backend`]/[`zfp_decompress_slice_backend`].

pub mod codec;
mod simd;
pub mod transform;

pub use codec::{
    zfp_compress, zfp_compress_slice, zfp_compress_slice_backend, zfp_compress_slice_with,
    zfp_decompress, zfp_decompress_slice, zfp_decompress_slice_backend, ZfpCompressed, ZfpConfig,
    ZfpError, ZfpMode, ZfpScratch,
};
pub use portable_simd::Backend;
