//! Block codec: normalisation, bit-plane coding, container.
//!
//! Two modes share the block machinery (gather → fixed-point → lifting
//! transform → sequency reorder → negabinary → MSB-first bit planes):
//!
//! * **Fixed-rate** ([`ZfpMode::FixedRate`]) — every 4×4×4 block consumes
//!   exactly `64·rate` bits (hard size guarantee, unbounded error; the
//!   paper's §2.2 contrast case). Planes are emitted verbatim until the
//!   block budget is spent.
//! * **Accuracy** ([`ZfpMode::Accuracy`]) — error-bounded: each block emits
//!   bit planes until its own *verified* reconstruction error is within the
//!   absolute bound, mirroring ZFP's fixed-accuracy mode. The plane count is
//!   found by binary search over candidate cuts, each verified by running
//!   the exact decoder arithmetic (integer transform + negabinary), so the
//!   bound holds by construction for all finite inputs with
//!   `eb ≳ 2^(e_block − 44)` (below that, fixed-point rounding and lifting
//!   truncation dominate and the codec emits every plane — best effort).
//!   Planes are entropy-squeezed with ZFP's group-testing scheme
//!   (significance-ordered unary runs), so sparse high-sequency planes cost
//!   a few bits instead of 64.
//!
//! Non-finite values cannot be bounded: a block containing NaN/∞ is stored
//! as the empty block (reconstructs as zeros) in both modes.
//!
//! ## Scratch reuse
//! The only per-call heap allocation besides the output container is the
//! encoder's bit buffer; [`ZfpScratch`] owns it and is fetched thread-
//! locally by [`zfp_compress_slice`] (or passed explicitly to
//! [`zfp_compress_slice_with`]), so compressing many partitions — one
//! scoped worker per core — does not allocate per call, matching
//! `rsz::SzScratch`.

use crate::simd;
use crate::transform::{from_negabinary, fwd_xform, inv_xform, sequency_order, to_negabinary};
use gridlab::{Dim3, Field3, Scalar};
use portable_simd::Backend;
use std::cell::RefCell;

const MAGIC: &[u8; 4] = b"ZFL2";
/// Fixed-point position: block values are scaled so `|q| < 2^Q_BITS`.
const Q_BITS: i32 = 50;
/// Bits of per-block header inside the fixed-rate budget
/// (flag + exponent + top plane).
const BLOCK_HEADER_BITS: usize = 1 + 16 + 6;

/// Rate/accuracy mode of one compression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZfpMode {
    /// Bits per value; every 4×4×4 block consumes exactly `64·rate` bits.
    FixedRate(f64),
    /// Absolute error bound `|x' − x| ≤ eb` (verified per block).
    Accuracy(f64),
}

/// Configuration: mode plus its parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZfpConfig {
    pub mode: ZfpMode,
}

impl ZfpConfig {
    /// Fixed-rate mode at `rate` bits per value.
    pub fn fixed_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 64.0, "rate must be in (0, 64]");
        Self { mode: ZfpMode::FixedRate(rate) }
    }

    /// Accuracy (error-bounded) mode with absolute bound `eb`.
    pub fn accuracy(eb: f64) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        Self { mode: ZfpMode::Accuracy(eb) }
    }

    fn block_bits(&self) -> usize {
        match self.mode {
            ZfpMode::FixedRate(rate) => ((rate * 64.0).ceil() as usize).max(BLOCK_HEADER_BITS + 1),
            ZfpMode::Accuracy(_) => 0,
        }
    }

    fn mode_tag(&self) -> u8 {
        match self.mode {
            ZfpMode::FixedRate(_) => 0,
            ZfpMode::Accuracy(_) => 1,
        }
    }

    fn param(&self) -> f64 {
        match self.mode {
            ZfpMode::FixedRate(r) => r,
            ZfpMode::Accuracy(e) => e,
        }
    }
}

/// Errors from decoding a zfplite container.
#[derive(Debug)]
pub enum ZfpError {
    Format(String),
}

impl std::fmt::Display for ZfpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZfpError::Format(m) => write!(f, "zfplite container error: {m}"),
        }
    }
}

impl std::error::Error for ZfpError {}

/// A compressed field.
#[derive(Debug, Clone)]
pub struct ZfpCompressed {
    bytes: Vec<u8>,
    dims: Dim3,
    mode: ZfpMode,
}

impl ZfpCompressed {
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Take ownership of the container bytes without copying.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Re-wrap container bytes (e.g. read back from storage). Validates the
    /// header only; payload integrity is checked at decode time.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, ZfpError> {
        let h = Header::parse(&bytes)?;
        Ok(Self { dims: h.dims, mode: h.mode, bytes })
    }

    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// The configured mode (rate or error bound).
    pub fn mode(&self) -> ZfpMode {
        self.mode
    }

    /// The mode parameter: bits/value for fixed-rate, the error bound for
    /// accuracy mode.
    pub fn rate(&self) -> f64 {
        match self.mode {
            ZfpMode::FixedRate(r) => r,
            ZfpMode::Accuracy(e) => e,
        }
    }

    /// Achieved compression ratio against a `T`-typed original.
    pub fn ratio<T: Scalar>(&self) -> f64 {
        (self.dims.len() * T::BYTES) as f64 / self.bytes.len() as f64
    }
}

// --- header ----------------------------------------------------------------

struct Header {
    dims: Dim3,
    mode: ZfpMode,
    budget: usize,
    payload_at: usize,
    tag: String,
}

impl Header {
    fn parse(bytes: &[u8]) -> Result<Header, ZfpError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ZfpError> {
            if *pos + n > bytes.len() {
                return Err(ZfpError::Format("truncated header".into()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(ZfpError::Format("bad magic".into()));
        }
        let tag_len = take(&mut pos, 1)?[0] as usize;
        let tag = std::str::from_utf8(take(&mut pos, tag_len)?)
            .map_err(|_| ZfpError::Format("bad tag".into()))?
            .to_string();
        let mut dims = [0usize; 3];
        for d in &mut dims {
            *d = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
            if *d == 0 {
                return Err(ZfpError::Format("zero dimension".into()));
            }
        }
        let mode_tag = take(&mut pos, 1)?[0];
        let param = f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let mode = match mode_tag {
            0 => ZfpMode::FixedRate(param),
            1 => ZfpMode::Accuracy(param),
            t => return Err(ZfpError::Format(format!("unknown mode tag {t}"))),
        };
        let budget = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        Ok(Header {
            dims: Dim3::new(dims[0], dims[1], dims[2]),
            mode,
            budget,
            payload_at: pos,
            tag,
        })
    }
}

fn write_header<T: Scalar>(cfg: &ZfpConfig, dims: Dim3, out: &mut Vec<u8>) {
    out.extend_from_slice(MAGIC);
    out.push(T::TAG.len() as u8);
    out.extend_from_slice(T::TAG.as_bytes());
    for n in [dims.nx, dims.ny, dims.nz] {
        out.extend_from_slice(&(n as u64).to_le_bytes());
    }
    out.push(cfg.mode_tag());
    out.extend_from_slice(&cfg.param().to_le_bytes());
    out.extend_from_slice(&(cfg.block_bits() as u32).to_le_bytes());
}

// --- minimal MSB-first bit I/O (local: zfplite is independent of rsz) ---

#[derive(Default, Debug)]
struct Bits {
    buf: Vec<u8>,
    used: u8,
}

impl Bits {
    fn clear(&mut self) {
        self.buf.clear();
        self.used = 0;
    }

    fn push(&mut self, bit: u64) {
        if self.used == 0 || self.used == 8 {
            self.buf.push(0);
            self.used = 0;
        }
        if bit & 1 != 0 {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << (7 - self.used);
        }
        self.used += 1;
    }

    #[inline]
    fn at_byte_boundary(&self) -> bool {
        self.used == 0 || self.used == 8
    }

    /// MSB-first fixed-width field. Word-batched: once the write head is
    /// byte-aligned, whole bytes of `v` land directly (the stream a
    /// bit-at-a-time loop would produce, byte for byte).
    fn push_bits(&mut self, v: u64, mut n: usize) {
        while n > 0 && !self.at_byte_boundary() {
            n -= 1;
            self.push((v >> n) & 1);
        }
        while n >= 8 {
            n -= 8;
            self.buf.push(((v >> n) & 0xff) as u8);
            self.used = 8;
        }
        while n > 0 {
            n -= 1;
            self.push((v >> n) & 1);
        }
    }

    /// LSB-first prefix of `v` (the group-coding convention: coefficient
    /// index 0 first). Word-batched like [`Bits::push_bits`]; LSB-first
    /// push order into MSB-first bytes is a per-byte bit reversal.
    fn push_bits_lsb(&mut self, mut v: u64, mut n: usize) {
        while n > 0 && !self.at_byte_boundary() {
            self.push(v & 1);
            v >>= 1;
            n -= 1;
        }
        while n >= 8 {
            self.buf.push((v as u8).reverse_bits());
            self.used = 8;
            v >>= 8;
            n -= 8;
        }
        while n > 0 {
            self.push(v & 1);
            v >>= 1;
            n -= 1;
        }
    }

    fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.used as usize
        }
    }
}

struct BitCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BitCursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn seek(&mut self, bit: usize) {
        self.pos = bit;
    }

    fn read(&mut self) -> Option<u64> {
        let byte = self.buf.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit as u64)
    }

    fn read_bits(&mut self, n: usize) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read()?;
        }
        Some(v)
    }
}

// --- reusable scratch ------------------------------------------------------

/// Reusable per-thread working memory for compression: owns the encoder's
/// bit buffer so a loop over many partitions allocates only the output
/// container itself (parity with `rsz::SzScratch`).
#[derive(Debug, Default)]
pub struct ZfpScratch {
    bits: Bits,
}

thread_local! {
    static TLS_SCRATCH: RefCell<ZfpScratch> = RefCell::new(ZfpScratch::default());
}

fn with_tls_scratch<R>(f: impl FnOnce(&mut ZfpScratch) -> R) -> R {
    TLS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut ZfpScratch::default()),
    })
}

// --- block gather/scatter with edge replication ---

fn gather_block<T: Scalar>(values: &[T], d: Dim3, bx: usize, by: usize, bz: usize) -> [f64; 64] {
    let mut out = [0.0f64; 64];
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                let x = (4 * bx + i).min(d.nx - 1);
                let y = (4 * by + j).min(d.ny - 1);
                let z = (4 * bz + k).min(d.nz - 1);
                out[16 * i + 4 * j + k] = values[(x * d.ny + y) * d.nz + z].to_f64();
            }
        }
    }
    out
}

fn scatter_block<T: Scalar>(
    values: &mut [T],
    d: Dim3,
    bx: usize,
    by: usize,
    bz: usize,
    vals: &[f64; 64],
) {
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                let x = 4 * bx + i;
                let y = 4 * by + j;
                let z = 4 * bz + k;
                if x < d.nx && y < d.ny && z < d.nz {
                    values[(x * d.ny + y) * d.nz + z] = T::from_f64(vals[16 * i + 4 * j + k]);
                }
            }
        }
    }
}

// --- shared block quantisation ---------------------------------------------

/// Fixed-point quantise + transform + sequency reorder + negabinary.
/// Returns `(exponent, nb, top)` or `None` for the empty block (all zeros
/// or any non-finite value).
fn block_to_planes(
    vals: &[f64; 64],
    order: &[usize; 64],
    backend: Backend,
) -> Option<(i32, [u64; 64], usize)> {
    // NaN must be caught explicitly: `f64::max` ignores it.
    if vals.iter().any(|v| !v.is_finite()) {
        return None;
    }
    let maxabs = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if maxabs == 0.0 {
        return None;
    }
    // e such that max|v| < 2^e.
    let e = maxabs.log2().floor() as i32 + 1;
    // The header stores e with a 16-bit +1024 bias; blocks entirely below
    // 2^-1024 (deep f64 subnormal range) would wrap it, so they round to
    // the empty block instead — an error < 2^-1024, below any positive
    // normal bound.
    if e + 1024 < 0 {
        return None;
    }
    let scale = 2f64.powi(Q_BITS - e);
    let mut q = [0i64; 64];
    for (qi, v) in q.iter_mut().zip(vals) {
        *qi = (v * scale).round() as i64;
    }
    if backend != Backend::Scalar {
        simd::fwd_xform_simd(&mut q);
    } else {
        fwd_xform(&mut q);
    }
    let mut nb = [0u64; 64];
    for (slot, &src) in nb.iter_mut().zip(order.iter()) {
        *slot = to_negabinary(q[src]);
    }
    let top = nb.iter().map(|u| 64 - u.leading_zeros()).max().unwrap_or(0) as usize;
    Some((e, nb, top.min(63)))
}

/// The exact decoder arithmetic for a truncated block: negabinary →
/// inverse sequency → inverse transform → value domain. Used both by the
/// decoder and by the encoder's per-block bound verification.
fn planes_to_block(
    e: i32,
    nb: &[u64; 64],
    cut: usize,
    order: &[usize; 64],
    out: &mut [f64; 64],
    backend: Backend,
) {
    let keep = if cut == 0 { !0u64 } else { !0u64 << cut };
    let mut q = [0i64; 64];
    for (slot, &dst) in nb.iter().zip(order.iter()) {
        q[dst] = from_negabinary(*slot & keep);
    }
    if backend != Backend::Scalar {
        simd::inv_xform_simd(&mut q);
    } else {
        inv_xform(&mut q);
    }
    let scale = 2f64.powi(e - Q_BITS);
    for (o, &qi) in out.iter_mut().zip(q.iter()) {
        *o = qi as f64 * scale;
    }
}

// --- fixed-rate block coding (verbatim planes, hard budget) ---------------

fn encode_block_fixed(
    vals: &[f64; 64],
    budget: usize,
    order: &[usize; 64],
    bits: &mut Bits,
    backend: Backend,
) {
    let start = bits.bit_len();
    match block_to_planes(vals, order, backend) {
        None => bits.push(0), // empty block
        Some((e, nb, top)) => {
            bits.push(1);
            bits.push_bits((e + 1024) as u64, 16);
            bits.push_bits(top as u64, 6);
            // MSB-first bit planes until the block budget is spent.
            let mut plane = top;
            while plane > 0 {
                if bits.bit_len() - start + 64 > budget {
                    break;
                }
                let b = plane - 1;
                if backend != Backend::Scalar {
                    // Coefficient order is mask bit order, so one LSB-first
                    // word push emits the plane the bit loop would.
                    bits.push_bits_lsb(simd::plane_mask_simd(&nb, b as u32), 64);
                } else {
                    for u in &nb {
                        bits.push((u >> b) & 1);
                    }
                }
                plane -= 1;
            }
        }
    }
    // Pad to the exact fixed-rate boundary.
    while bits.bit_len() - start < budget {
        bits.push(0);
    }
    debug_assert_eq!(bits.bit_len() - start, budget);
}

fn decode_block_fixed(
    cur: &mut BitCursor<'_>,
    budget: usize,
    order: &[usize; 64],
    backend: Backend,
) -> Option<[f64; 64]> {
    let start = cur.pos;
    let flag = cur.read()?;
    let mut out = [0.0f64; 64];
    if flag == 1 {
        let e = cur.read_bits(16)? as i32 - 1024;
        let top = (cur.read_bits(6)? as usize).min(63);
        let mut nb = [0u64; 64];
        let mut consumed = cur.pos - start;
        let mut plane = top;
        while plane > 0 {
            if consumed + 64 > budget {
                break;
            }
            let b = plane - 1;
            for u in nb.iter_mut() {
                *u |= cur.read()? << b;
            }
            consumed += 64;
            plane -= 1;
        }
        planes_to_block(e, &nb, 0, order, &mut out, backend);
    }
    cur.seek(start + budget);
    Some(out)
}

// --- accuracy-mode block coding (group-tested planes, verified bound) -----

/// ZFP's per-plane embedded coding: the first `n` (already-significant)
/// coefficient bits verbatim, then unary-coded significance groups. `n`
/// persists across planes and only grows.
fn encode_plane_grouped(bits: &mut Bits, mut x: u64, n: &mut usize) {
    bits.push_bits_lsb(x, *n);
    if *n < 64 {
        x >>= *n;
    } else {
        return;
    }
    while *n < 64 {
        let any = (x != 0) as u64;
        bits.push(any);
        if any == 0 {
            return;
        }
        while *n < 63 {
            let b = x & 1;
            bits.push(b);
            if b != 0 {
                break;
            }
            x >>= 1;
            *n += 1;
        }
        // The significant coefficient itself (written above, or implied at
        // position 63).
        x >>= 1;
        *n += 1;
    }
}

/// Mirror of [`encode_plane_grouped`].
fn decode_plane_grouped(cur: &mut BitCursor<'_>, n: &mut usize) -> Option<u64> {
    let mut x = 0u64;
    for i in 0..*n {
        x |= cur.read()? << i;
    }
    while *n < 64 {
        if cur.read()? == 0 {
            return Some(x);
        }
        while *n < 63 {
            if cur.read()? != 0 {
                break;
            }
            *n += 1;
        }
        x |= 1u64 << *n;
        *n += 1;
    }
    Some(x)
}

/// Max |cast(recon) − original| of the block when planes below `cut` are
/// dropped, in the original value domain through `T`'s precision.
fn truncation_error<T: Scalar>(
    vals: &[f64; 64],
    e: i32,
    nb: &[u64; 64],
    cut: usize,
    order: &[usize; 64],
    backend: Backend,
) -> f64 {
    let mut recon = [0.0f64; 64];
    planes_to_block(e, nb, cut, order, &mut recon, backend);
    vals.iter()
        .zip(recon.iter())
        .map(|(&v, &r)| (T::from_f64(r).to_f64() - v).abs())
        .fold(0.0f64, f64::max)
}

fn encode_block_accuracy<T: Scalar>(
    vals: &[f64; 64],
    eb: f64,
    order: &[usize; 64],
    bits: &mut Bits,
    backend: Backend,
) {
    match block_to_planes(vals, order, backend) {
        None => bits.push(0),
        Some((e, nb, top)) => {
            bits.push(1);
            bits.push_bits((e + 1024) as u64, 16);
            bits.push_bits(top as u64, 6);
            // Smallest plane count meeting the bound: binary search over the
            // cut (error is monotone in practice), then a verified walk-down
            // so the final choice always passes the exact decoder check.
            let mut lo = 0usize; // cut=0 ⇒ all planes (best effort floor)
            let mut hi = top; // cut=top ⇒ no planes
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                if truncation_error::<T>(vals, e, &nb, mid, order, backend) <= eb {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            let mut cut = lo;
            while cut > 0 && truncation_error::<T>(vals, e, &nb, cut, order, backend) > eb {
                cut -= 1;
            }
            let nplanes = top - cut;
            bits.push_bits(nplanes as u64, 6);
            let mut n = 0usize;
            for b in (cut..top).rev() {
                let mask = if backend != Backend::Scalar {
                    simd::plane_mask_simd(&nb, b as u32)
                } else {
                    let mut mask = 0u64;
                    for (i, u) in nb.iter().enumerate() {
                        mask |= ((u >> b) & 1) << i;
                    }
                    mask
                };
                encode_plane_grouped(bits, mask, &mut n);
            }
        }
    }
}

fn decode_block_accuracy(
    cur: &mut BitCursor<'_>,
    order: &[usize; 64],
    backend: Backend,
) -> Option<[f64; 64]> {
    let flag = cur.read()?;
    let mut out = [0.0f64; 64];
    if flag == 1 {
        let e = cur.read_bits(16)? as i32 - 1024;
        let top = (cur.read_bits(6)? as usize).min(63);
        let nplanes = (cur.read_bits(6)? as usize).min(top);
        let cut = top - nplanes;
        let mut nb = [0u64; 64];
        let mut n = 0usize;
        for b in (cut..top).rev() {
            let mask = decode_plane_grouped(cur, &mut n)?;
            for (i, u) in nb.iter_mut().enumerate() {
                *u |= ((mask >> i) & 1) << b;
            }
        }
        planes_to_block(e, &nb, 0, order, &mut out, backend);
    }
    Some(out)
}

// --- public API ------------------------------------------------------------

/// Compress a field under `cfg`.
pub fn zfp_compress<T: Scalar>(field: &Field3<T>, cfg: &ZfpConfig) -> ZfpCompressed {
    zfp_compress_slice(field.as_slice(), field.dims(), cfg)
}

/// Compress a raw slice laid out as `dims` (z fastest), using the calling
/// thread's scratch buffer.
pub fn zfp_compress_slice<T: Scalar>(values: &[T], dims: Dim3, cfg: &ZfpConfig) -> ZfpCompressed {
    with_tls_scratch(|scratch| zfp_compress_slice_with(values, dims, cfg, scratch))
}

/// [`zfp_compress_slice`] with caller-owned scratch. Uses the process-wide
/// SIMD dispatch decision ([`portable_simd::backend`]).
pub fn zfp_compress_slice_with<T: Scalar>(
    values: &[T],
    dims: Dim3,
    cfg: &ZfpConfig,
    scratch: &mut ZfpScratch,
) -> ZfpCompressed {
    zfp_compress_slice_backend(values, dims, cfg, scratch, portable_simd::backend())
}

/// [`zfp_compress_slice_with`] with an explicit kernel backend (parity-test
/// hook). Both backends produce byte-identical containers on every input.
pub fn zfp_compress_slice_backend<T: Scalar>(
    values: &[T],
    dims: Dim3,
    cfg: &ZfpConfig,
    scratch: &mut ZfpScratch,
    backend: Backend,
) -> ZfpCompressed {
    assert_eq!(values.len(), dims.len(), "slice length must match dims");
    let d = dims;
    let (bx, by, bz) = (d.nx.div_ceil(4), d.ny.div_ceil(4), d.nz.div_ceil(4));
    let order = sequency_order();

    let bits = &mut scratch.bits;
    bits.clear();
    for i in 0..bx {
        for j in 0..by {
            for k in 0..bz {
                let block = gather_block(values, d, i, j, k);
                match cfg.mode {
                    ZfpMode::FixedRate(_) => {
                        encode_block_fixed(&block, cfg.block_bits(), &order, bits, backend)
                    }
                    ZfpMode::Accuracy(eb) => {
                        encode_block_accuracy::<T>(&block, eb, &order, bits, backend)
                    }
                }
            }
        }
    }

    let mut bytes = Vec::with_capacity(64 + bits.buf.len());
    write_header::<T>(cfg, d, &mut bytes);
    bytes.extend_from_slice(&bits.buf);
    ZfpCompressed { bytes, dims: d, mode: cfg.mode }
}

/// Parse just the header of container bytes and return the grid dims —
/// a borrowing probe for readers that must not pay a payload copy.
pub fn probe_dims(bytes: &[u8]) -> Result<Dim3, ZfpError> {
    Ok(Header::parse(bytes)?.dims)
}

/// Decompress a container produced by [`zfp_compress`].
pub fn zfp_decompress<T: Scalar>(c: &ZfpCompressed) -> Result<Field3<T>, ZfpError> {
    let (values, dims) = zfp_decompress_slice(c.as_bytes())?;
    Field3::from_vec(dims, values).map_err(|e| ZfpError::Format(e.to_string()))
}

/// Decompress raw container bytes; returns the values and their dims.
/// Uses the process-wide SIMD dispatch decision ([`portable_simd::backend`]).
pub fn zfp_decompress_slice<T: Scalar>(bytes: &[u8]) -> Result<(Vec<T>, Dim3), ZfpError> {
    zfp_decompress_slice_backend(bytes, portable_simd::backend())
}

/// [`zfp_decompress_slice`] with an explicit kernel backend (parity-test
/// hook). Both backends reconstruct bit-identical values.
pub fn zfp_decompress_slice_backend<T: Scalar>(
    bytes: &[u8],
    backend: Backend,
) -> Result<(Vec<T>, Dim3), ZfpError> {
    let h = Header::parse(bytes)?;
    if h.tag != T::TAG {
        return Err(ZfpError::Format(format!("tag {} != {}", h.tag, T::TAG)));
    }
    let d = h.dims;
    let payload = &bytes[h.payload_at..];
    let (nbx, nby, nbz) = (d.nx.div_ceil(4), d.ny.div_ceil(4), d.nz.div_ceil(4));
    let order = sequency_order();
    let mut cur = BitCursor::new(payload);
    let mut out = vec![T::zero(); d.len()];
    match h.mode {
        ZfpMode::FixedRate(_) => {
            let total_bits = nbx * nby * nbz * h.budget;
            if payload.len() * 8 < total_bits {
                return Err(ZfpError::Format("payload shorter than block budget".into()));
            }
            for i in 0..nbx {
                for j in 0..nby {
                    for k in 0..nbz {
                        let block = decode_block_fixed(&mut cur, h.budget, &order, backend)
                            .ok_or_else(|| ZfpError::Format("block truncated".into()))?;
                        scatter_block(&mut out, d, i, j, k, &block);
                    }
                }
            }
        }
        ZfpMode::Accuracy(_) => {
            for i in 0..nbx {
                for j in 0..nby {
                    for k in 0..nbz {
                        let block = decode_block_accuracy(&mut cur, &order, backend)
                            .ok_or_else(|| ZfpError::Format("block truncated".into()))?;
                        scatter_block(&mut out, d, i, j, k, &block);
                    }
                }
            }
        }
    }
    Ok((out, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_field(n: usize) -> Field3<f32> {
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            ((x as f32) * 0.2).sin() * 30.0
                + ((y as f32) * 0.15).cos() * 20.0
                + ((z as f32) * 0.1).sin() * 10.0
        })
    }

    #[test]
    fn high_rate_is_near_lossless() {
        let f = smooth_field(16);
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(32.0));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        let err = f.max_abs_diff(&g);
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn rate_controls_size_exactly() {
        let f = smooth_field(16);
        for rate in [2.0, 4.0, 8.0] {
            let c = zfp_compress(&f, &ZfpConfig::fixed_rate(rate));
            let blocks = 4 * 4 * 4;
            let expected_payload_bits = blocks * (rate as usize) * 64;
            let header = 4 + 1 + 3 + 24 + 1 + 8 + 4;
            let got_bits = (c.len() - header) * 8;
            assert!(
                got_bits >= expected_payload_bits && got_bits < expected_payload_bits + 8,
                "rate {rate}: {got_bits} vs {expected_payload_bits}"
            );
        }
    }

    #[test]
    fn lower_rate_means_more_error() {
        let f = smooth_field(16);
        let hi = zfp_decompress::<f32>(&zfp_compress(&f, &ZfpConfig::fixed_rate(16.0))).unwrap();
        let lo = zfp_decompress::<f32>(&zfp_compress(&f, &ZfpConfig::fixed_rate(2.0))).unwrap();
        assert!(f.max_abs_diff(&lo) >= f.max_abs_diff(&hi));
    }

    #[test]
    fn zero_field_roundtrip() {
        let f = Field3::<f32>::zeros(Dim3::cube(8));
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(1.0));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        assert_eq!(f.max_abs_diff(&g), 0.0);
    }

    #[test]
    fn non_multiple_of_four_dims() {
        let f = Field3::from_fn(Dim3::new(5, 7, 9), |x, y, z| (x + y + z) as f32);
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(24.0));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        assert_eq!(g.dims(), f.dims());
        assert!(f.max_abs_diff(&g) < 1e-2);
    }

    #[test]
    fn ratio_reflects_rate() {
        let f = smooth_field(32);
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(4.0));
        // 32 bits/value originally, 4 bits/value now → ratio ≈ 8 (minus header).
        let r = c.ratio::<f32>();
        assert!(r > 7.0 && r <= 8.1, "ratio {r}");
    }

    #[test]
    fn no_error_bound_guarantee_at_low_rate() {
        // The contrast with rsz: a spiky field at a starved rate shows
        // errors far above what an ABS bound would allow.
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| {
            if (x, y, z) == (3, 3, 3) {
                1e6f32
            } else {
                (x as f32 * 0.01).sin()
            }
        });
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(1.0));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) > 1.0);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let f = smooth_field(8);
        let mut c = zfp_compress(&f, &ZfpConfig::fixed_rate(8.0));
        c.bytes[0] = b'Q';
        assert!(zfp_decompress::<f32>(&c).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let f = smooth_field(8);
        let mut c = zfp_compress(&f, &ZfpConfig::fixed_rate(8.0));
        c.bytes.truncate(c.bytes.len() / 2);
        assert!(zfp_decompress::<f32>(&c).is_err());
    }

    #[test]
    fn f64_roundtrip() {
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| ((x * y + z) as f64).sqrt());
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(40.0));
        let g: Field3<f64> = zfp_decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) < 1e-6);
    }

    // --- accuracy mode ----------------------------------------------------

    fn lcg_field(dims: Dim3, seed: u64, amplitude: f32) -> Field3<f32> {
        let mut state = seed;
        Field3::from_fn(dims, |_, _, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 40) as f32 / (1u32 << 24) as f32 - 0.5) * amplitude
        })
    }

    #[test]
    fn accuracy_mode_respects_bound() {
        let f = smooth_field(16);
        for eb in [10.0, 1.0, 0.1, 1e-3] {
            let c = zfp_compress(&f, &ZfpConfig::accuracy(eb));
            let g: Field3<f32> = zfp_decompress(&c).unwrap();
            let err = f.max_abs_diff(&g);
            assert!(err <= eb, "eb={eb} got {err}");
        }
    }

    #[test]
    fn accuracy_mode_bounds_rough_data() {
        let f = lcg_field(Dim3::cube(12), 7, 2.0e4);
        let eb = 5.0;
        let c = zfp_compress(&f, &ZfpConfig::accuracy(eb));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) <= eb, "err {}", f.max_abs_diff(&g));
    }

    #[test]
    fn accuracy_looser_bound_is_smaller() {
        let f = smooth_field(16);
        let tight = zfp_compress(&f, &ZfpConfig::accuracy(0.01));
        let loose = zfp_compress(&f, &ZfpConfig::accuracy(1.0));
        assert!(loose.len() < tight.len(), "{} vs {}", loose.len(), tight.len());
    }

    #[test]
    fn accuracy_smooth_data_compresses_well() {
        let f = smooth_field(32);
        let c = zfp_compress(&f, &ZfpConfig::accuracy(0.5));
        let ratio = c.ratio::<f32>();
        assert!(ratio > 8.0, "ratio {ratio}");
    }

    #[test]
    fn accuracy_mode_is_deterministic() {
        let f = lcg_field(Dim3::new(6, 10, 15), 99, 3.0e3);
        let a = zfp_compress(&f, &ZfpConfig::accuracy(0.25));
        let b = zfp_compress(&f, &ZfpConfig::accuracy(0.25));
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn accuracy_container_roundtrips_through_bytes() {
        let f = smooth_field(8);
        let c = zfp_compress(&f, &ZfpConfig::accuracy(0.1));
        let c2 = ZfpCompressed::from_bytes(c.as_bytes().to_vec()).unwrap();
        assert_eq!(c2.dims(), f.dims());
        assert_eq!(c2.mode(), ZfpMode::Accuracy(0.1));
        let a: Field3<f32> = zfp_decompress(&c).unwrap();
        let b: Field3<f32> = zfp_decompress(&c2).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn scratch_reuse_is_byte_identical() {
        let mut scratch = ZfpScratch::default();
        for (dims, eb) in [
            (Dim3::cube(12), 0.1),
            (Dim3::new(1, 1, 40), 0.5),
            (Dim3::new(5, 9, 2), 0.05),
            (Dim3::cube(12), 0.1),
        ] {
            let f = lcg_field(dims, 42, 100.0);
            let cfg = ZfpConfig::accuracy(eb);
            let fresh =
                zfp_compress_slice_with(f.as_slice(), dims, &cfg, &mut ZfpScratch::default());
            let reused = zfp_compress_slice_with(f.as_slice(), dims, &cfg, &mut scratch);
            assert_eq!(fresh.as_bytes(), reused.as_bytes(), "scratch leak on {dims:?}");
        }
    }

    #[test]
    fn grouped_plane_roundtrip() {
        // Direct encode/decode mirror check over adversarial masks,
        // including the implied-1 at position 63 and the all-ones plane.
        let masks = [
            0u64,
            1,
            1 << 63,
            0x8000_0000_0000_0001,
            !0u64,
            0xAAAA_5555_0000_FFFF,
            0x0000_0000_0001_0000,
        ];
        for window in 1..=masks.len() {
            let seq = &masks[..window];
            let mut bits = Bits::default();
            let mut n = 0usize;
            for &m in seq {
                encode_plane_grouped(&mut bits, m, &mut n);
            }
            let mut cur = BitCursor::new(&bits.buf);
            let mut n2 = 0usize;
            for &m in seq {
                let got = decode_plane_grouped(&mut cur, &mut n2).expect("bits available");
                assert_eq!(got, m, "mask {m:#x} in window {window}");
            }
            assert_eq!(n, n2);
        }
    }

    #[test]
    fn bits_word_batching_matches_bit_loop() {
        // The batched push_bits/push_bits_lsb must reproduce the byte
        // stream of the one-bit-at-a-time loops exactly, across every
        // alignment of the write head.
        let mut state = 0xdeadbeefu64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        for _ in 0..200 {
            let mut fast = Bits::default();
            let mut slow = Bits::default();
            for _ in 0..20 {
                let v = rng();
                let n = (rng() % 65) as usize;
                match rng() % 3 {
                    0 => {
                        fast.push_bits(v, n);
                        for i in (0..n).rev() {
                            slow.push((v >> i) & 1);
                        }
                    }
                    1 => {
                        fast.push_bits_lsb(v, n);
                        for i in 0..n {
                            slow.push((v >> i) & 1);
                        }
                    }
                    _ => {
                        fast.push(v & 1);
                        slow.push(v & 1);
                    }
                }
                assert_eq!(fast.bit_len(), slow.bit_len());
            }
            assert_eq!(fast.buf, slow.buf);
        }
    }

    #[test]
    fn simd_and_scalar_backends_are_byte_identical() {
        // Integer kernels are exact, so this is a plumbing check: every
        // mode and an awkward shape, poisoned cells included. (On non-AVX2
        // hosts the Avx2 request runs the baseline lane clone — the
        // comparison still bites.)
        let mut f = lcg_field(Dim3::new(5, 9, 14), 31, 4.0e3);
        f.as_mut_slice()[17] = f32::NAN;
        f.as_mut_slice()[100] = f32::INFINITY;
        for cfg in [ZfpConfig::accuracy(0.5), ZfpConfig::accuracy(1e-8), ZfpConfig::fixed_rate(7.0)]
        {
            let a = zfp_compress_slice_backend(
                f.as_slice(),
                f.dims(),
                &cfg,
                &mut ZfpScratch::default(),
                Backend::Scalar,
            );
            let b = zfp_compress_slice_backend(
                f.as_slice(),
                f.dims(),
                &cfg,
                &mut ZfpScratch::default(),
                Backend::Avx2,
            );
            assert_eq!(a.as_bytes(), b.as_bytes(), "compress diverged under {cfg:?}");
            let (da, _) =
                zfp_decompress_slice_backend::<f32>(a.as_bytes(), Backend::Scalar).unwrap();
            let (db, _) = zfp_decompress_slice_backend::<f32>(a.as_bytes(), Backend::Avx2).unwrap();
            let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&da), bits(&db), "decompress diverged under {cfg:?}");
        }
    }

    #[test]
    fn deep_subnormal_f64_blocks_round_to_zero_not_nan() {
        // max|v| < 2^-1024 under-runs the 16-bit biased exponent; the
        // block must become the empty block (zeros), never wrap the bias
        // and decode to NaN/inf.
        let f = Field3::from_fn(Dim3::cube(4), |_, _, _| 2.0f64.powi(-1060));
        for cfg in [ZfpConfig::accuracy(1e-300), ZfpConfig::fixed_rate(8.0)] {
            let c = zfp_compress(&f, &cfg);
            let g: Field3<f64> = zfp_decompress(&c).unwrap();
            assert!(g.as_slice().iter().all(|&x| x == 0.0), "{cfg:?}: {:?}", &g.as_slice()[..2]);
        }
    }

    #[test]
    fn non_finite_values_become_zeros() {
        let mut v = vec![1.0f32; 64];
        v[13] = f32::NAN;
        let f = Field3::from_vec(Dim3::cube(4), v).unwrap();
        let c = zfp_compress(&f, &ZfpConfig::accuracy(0.1));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        assert!(g.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn infinities_quarantine_like_nan_in_accuracy_mode() {
        // ±∞ hits the same empty-block path as NaN: the containing block
        // decodes to zeros, blocks elsewhere are untouched, and accuracy
        // mode never panics on poisoned input.
        let n = 8; // 2×2×2 blocks of 4³
        let mut f = Field3::from_fn(Dim3::cube(n), |x, y, z| (x + 2 * y + 3 * z) as f32);
        f.as_mut_slice()[0] = f32::INFINITY;
        f.as_mut_slice()[1] = f32::NEG_INFINITY;
        let c = zfp_compress(&f, &ZfpConfig::accuracy(0.1));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        assert!(g.as_slice().iter().all(|v| v.is_finite()), "no non-finite value survives");
        // The poisoned block is zeroed...
        assert_eq!(g.get(0, 0, 0), 0.0);
        // ...while a far block still honours the bound.
        assert!((g.get(7, 7, 7) - f.get(7, 7, 7)).abs() <= 0.1 + 1e-6);
    }
}
