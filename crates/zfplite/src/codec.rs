//! Fixed-rate block codec: normalisation, bit-plane coding, container.

use crate::transform::{
    from_negabinary, fwd_xform, inv_xform, sequency_order, to_negabinary,
};
use gridlab::{Dim3, Field3, Scalar};

const MAGIC: &[u8; 4] = b"ZFL1";
/// Fixed-point position: block values are scaled so `|q| < 2^Q_BITS`.
const Q_BITS: i32 = 50;
/// Bits of per-block header inside the budget (flag + exponent + top plane).
const BLOCK_HEADER_BITS: usize = 1 + 16 + 6;

/// Configuration: target rate in bits per value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZfpConfig {
    /// Bits per value; every 4×4×4 block consumes exactly `64·rate` bits.
    pub rate: f64,
}

impl ZfpConfig {
    pub fn fixed_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate <= 64.0, "rate must be in (0, 64]");
        Self { rate }
    }

    fn block_bits(&self) -> usize {
        ((self.rate * 64.0).ceil() as usize).max(BLOCK_HEADER_BITS + 1)
    }
}

/// Errors from decoding a zfplite container.
#[derive(Debug)]
pub enum ZfpError {
    Format(String),
}

impl std::fmt::Display for ZfpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZfpError::Format(m) => write!(f, "zfplite container error: {m}"),
        }
    }
}

impl std::error::Error for ZfpError {}

/// A fixed-rate compressed field.
#[derive(Debug, Clone)]
pub struct ZfpCompressed {
    bytes: Vec<u8>,
    dims: Dim3,
    rate: f64,
}

impl ZfpCompressed {
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Re-wrap container bytes (e.g. read back from storage). Validates the
    /// header only; payload integrity is checked at decode time.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, ZfpError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], ZfpError> {
            if *pos + n > bytes.len() {
                return Err(ZfpError::Format("truncated header".into()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(ZfpError::Format("bad magic".into()));
        }
        let tag_len = take(&mut pos, 1)?[0] as usize;
        let _tag = take(&mut pos, tag_len)?;
        let mut dims = [0usize; 3];
        for d in &mut dims {
            *d = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
            if *d == 0 {
                return Err(ZfpError::Format("zero dimension".into()));
            }
        }
        let rate = f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        Ok(Self { dims: Dim3::new(dims[0], dims[1], dims[2]), rate, bytes })
    }

    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// The configured rate (bits/value over whole blocks).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Achieved compression ratio against a `T`-typed original.
    pub fn ratio<T: Scalar>(&self) -> f64 {
        (self.dims.len() * T::BYTES) as f64 / self.bytes.len() as f64
    }
}

// --- minimal MSB-first bit I/O (local: zfplite is independent of rsz) ---

#[derive(Default)]
struct Bits {
    buf: Vec<u8>,
    used: u8,
}

impl Bits {
    fn push(&mut self, bit: u64) {
        if self.used == 0 || self.used == 8 {
            self.buf.push(0);
            self.used = 0;
        }
        if bit & 1 != 0 {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << (7 - self.used);
        }
        self.used += 1;
    }

    fn push_bits(&mut self, v: u64, n: usize) {
        for i in (0..n).rev() {
            self.push((v >> i) & 1);
        }
    }

    fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.used as usize
        }
    }
}

struct BitCursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BitCursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn seek(&mut self, bit: usize) {
        self.pos = bit;
    }

    fn read(&mut self) -> Option<u64> {
        let byte = self.buf.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit as u64)
    }

    fn read_bits(&mut self, n: usize) -> Option<u64> {
        let mut v = 0u64;
        for _ in 0..n {
            v = (v << 1) | self.read()?;
        }
        Some(v)
    }
}

// --- block gather/scatter with edge replication ---

fn gather_block<T: Scalar>(f: &Field3<T>, bx: usize, by: usize, bz: usize) -> [f64; 64] {
    let d = f.dims();
    let mut out = [0.0f64; 64];
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                let x = (4 * bx + i).min(d.nx - 1);
                let y = (4 * by + j).min(d.ny - 1);
                let z = (4 * bz + k).min(d.nz - 1);
                out[16 * i + 4 * j + k] = f.get(x, y, z).to_f64();
            }
        }
    }
    out
}

fn scatter_block<T: Scalar>(f: &mut Field3<T>, bx: usize, by: usize, bz: usize, vals: &[f64; 64]) {
    let d = f.dims();
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                let x = 4 * bx + i;
                let y = 4 * by + j;
                let z = 4 * bz + k;
                if x < d.nx && y < d.ny && z < d.nz {
                    f.set(x, y, z, T::from_f64(vals[16 * i + 4 * j + k]));
                }
            }
        }
    }
}

fn encode_block(vals: &[f64; 64], budget: usize, order: &[usize; 64], bits: &mut Bits) {
    let start = bits.bit_len();
    let maxabs = vals.iter().fold(0.0f64, |m, v| m.max(v.abs()));
    if maxabs == 0.0 || !maxabs.is_finite() {
        bits.push(0); // empty block
    } else {
        bits.push(1);
        // e such that max|v| < 2^e.
        let e = maxabs.log2().floor() as i32 + 1;
        bits.push_bits((e + 1024) as u64, 16);
        let scale = 2f64.powi(Q_BITS - e);
        let mut q = [0i64; 64];
        for (qi, v) in q.iter_mut().zip(vals) {
            *qi = (v * scale).round() as i64;
        }
        fwd_xform(&mut q);
        let mut nb = [0u64; 64];
        for (slot, &src) in nb.iter_mut().zip(order.iter()) {
            *slot = to_negabinary(q[src]);
        }
        let top = nb.iter().map(|u| 64 - u.leading_zeros()).max().unwrap_or(0) as usize;
        bits.push_bits(top as u64, 6); // 0..=63 (top plane index + 1, capped)
        let top = top.min(63);
        // MSB-first bit planes until the block budget is spent.
        let mut plane = top;
        while plane > 0 {
            if bits.bit_len() - start + 64 > budget {
                break;
            }
            let b = plane - 1;
            for u in &nb {
                bits.push((u >> b) & 1);
            }
            plane -= 1;
        }
    }
    // Pad to the exact fixed-rate boundary.
    while bits.bit_len() - start < budget {
        bits.push(0);
    }
    debug_assert_eq!(bits.bit_len() - start, budget);
}

fn decode_block(cur: &mut BitCursor<'_>, budget: usize, order: &[usize; 64]) -> Option<[f64; 64]> {
    let start = cur.pos;
    let flag = cur.read()?;
    let mut out = [0.0f64; 64];
    if flag == 1 {
        let e = cur.read_bits(16)? as i32 - 1024;
        let top = cur.read_bits(6)? as usize;
        let top = top.min(63);
        let mut nb = [0u64; 64];
        let mut consumed = cur.pos - start;
        let mut plane = top;
        while plane > 0 {
            if consumed + 64 > budget {
                break;
            }
            let b = plane - 1;
            for u in nb.iter_mut() {
                *u |= cur.read()? << b;
            }
            consumed += 64;
            plane -= 1;
        }
        let mut q = [0i64; 64];
        for (slot, &dst) in nb.iter().zip(order.iter()) {
            q[dst] = from_negabinary(*slot);
        }
        inv_xform(&mut q);
        let scale = 2f64.powi(e - Q_BITS);
        for (o, &qi) in out.iter_mut().zip(q.iter()) {
            *o = qi as f64 * scale;
        }
    }
    cur.seek(start + budget);
    Some(out)
}

/// Compress a field at the configured fixed rate.
pub fn zfp_compress<T: Scalar>(field: &Field3<T>, cfg: &ZfpConfig) -> ZfpCompressed {
    let d = field.dims();
    let (bx, by, bz) = (d.nx.div_ceil(4), d.ny.div_ceil(4), d.nz.div_ceil(4));
    let budget = cfg.block_bits();
    let order = sequency_order();

    let mut bits = Bits::default();
    for i in 0..bx {
        for j in 0..by {
            for k in 0..bz {
                let block = gather_block(field, i, j, k);
                encode_block(&block, budget, &order, &mut bits);
            }
        }
    }

    let mut bytes = Vec::new();
    bytes.extend_from_slice(MAGIC);
    bytes.push(T::TAG.len() as u8);
    bytes.extend_from_slice(T::TAG.as_bytes());
    for n in [d.nx, d.ny, d.nz] {
        bytes.extend_from_slice(&(n as u64).to_le_bytes());
    }
    bytes.extend_from_slice(&cfg.rate.to_le_bytes());
    bytes.extend_from_slice(&(budget as u32).to_le_bytes());
    bytes.extend_from_slice(&bits.buf);
    ZfpCompressed { bytes, dims: d, rate: cfg.rate }
}

/// Decompress a container produced by [`zfp_compress`].
pub fn zfp_decompress<T: Scalar>(c: &ZfpCompressed) -> Result<Field3<T>, ZfpError> {
    let bytes = &c.bytes;
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], ZfpError> {
        if *pos + n > bytes.len() {
            return Err(ZfpError::Format("truncated".into()));
        }
        let s = &bytes[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };
    if take(&mut pos, 4)? != MAGIC {
        return Err(ZfpError::Format("bad magic".into()));
    }
    let tag_len = take(&mut pos, 1)?[0] as usize;
    let tag = std::str::from_utf8(take(&mut pos, tag_len)?)
        .map_err(|_| ZfpError::Format("bad tag".into()))?;
    if tag != T::TAG {
        return Err(ZfpError::Format(format!("tag {tag} != {}", T::TAG)));
    }
    let mut dims = [0usize; 3];
    for d in &mut dims {
        *d = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
        if *d == 0 {
            return Err(ZfpError::Format("zero dimension".into()));
        }
    }
    let d = Dim3::new(dims[0], dims[1], dims[2]);
    let _rate = f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
    let budget = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
    let payload = &bytes[pos..];

    let (nbx, nby, nbz) = (d.nx.div_ceil(4), d.ny.div_ceil(4), d.nz.div_ceil(4));
    let total_bits = nbx * nby * nbz * budget;
    if payload.len() * 8 < total_bits {
        return Err(ZfpError::Format("payload shorter than block budget".into()));
    }

    let order = sequency_order();
    let mut cur = BitCursor::new(payload);
    let mut out = Field3::<T>::zeros(d);
    for i in 0..nbx {
        for j in 0..nby {
            for k in 0..nbz {
                let block = decode_block(&mut cur, budget, &order)
                    .ok_or_else(|| ZfpError::Format("block truncated".into()))?;
                scatter_block(&mut out, i, j, k, &block);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_field(n: usize) -> Field3<f32> {
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            ((x as f32) * 0.2).sin() * 30.0 + ((y as f32) * 0.15).cos() * 20.0
                + ((z as f32) * 0.1).sin() * 10.0
        })
    }

    #[test]
    fn high_rate_is_near_lossless() {
        let f = smooth_field(16);
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(32.0));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        let err = f.max_abs_diff(&g);
        assert!(err < 1e-3, "err {err}");
    }

    #[test]
    fn rate_controls_size_exactly() {
        let f = smooth_field(16);
        for rate in [2.0, 4.0, 8.0] {
            let c = zfp_compress(&f, &ZfpConfig::fixed_rate(rate));
            let blocks = 4 * 4 * 4;
            let expected_payload_bits = blocks * (rate as usize) * 64;
            let header = 4 + 1 + 3 + 24 + 8 + 4;
            let got_bits = (c.len() - header) * 8;
            assert!(
                got_bits >= expected_payload_bits && got_bits < expected_payload_bits + 8,
                "rate {rate}: {got_bits} vs {expected_payload_bits}"
            );
        }
    }

    #[test]
    fn lower_rate_means_more_error() {
        let f = smooth_field(16);
        let hi = zfp_decompress::<f32>(&zfp_compress(&f, &ZfpConfig::fixed_rate(16.0))).unwrap();
        let lo = zfp_decompress::<f32>(&zfp_compress(&f, &ZfpConfig::fixed_rate(2.0))).unwrap();
        assert!(f.max_abs_diff(&lo) >= f.max_abs_diff(&hi));
    }

    #[test]
    fn zero_field_roundtrip() {
        let f = Field3::<f32>::zeros(Dim3::cube(8));
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(1.0));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        assert_eq!(f.max_abs_diff(&g), 0.0);
    }

    #[test]
    fn non_multiple_of_four_dims() {
        let f = Field3::from_fn(Dim3::new(5, 7, 9), |x, y, z| (x + y + z) as f32);
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(24.0));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        assert_eq!(g.dims(), f.dims());
        assert!(f.max_abs_diff(&g) < 1e-2);
    }

    #[test]
    fn ratio_reflects_rate() {
        let f = smooth_field(32);
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(4.0));
        // 32 bits/value originally, 4 bits/value now → ratio ≈ 8 (minus header).
        let r = c.ratio::<f32>();
        assert!(r > 7.0 && r <= 8.1, "ratio {r}");
    }

    #[test]
    fn no_error_bound_guarantee_at_low_rate() {
        // The contrast with rsz: a spiky field at a starved rate shows
        // errors far above what an ABS bound would allow.
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| {
            if (x, y, z) == (3, 3, 3) {
                1e6f32
            } else {
                (x as f32 * 0.01).sin()
            }
        });
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(1.0));
        let g: Field3<f32> = zfp_decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) > 1.0);
    }

    #[test]
    fn corrupt_magic_rejected() {
        let f = smooth_field(8);
        let mut c = zfp_compress(&f, &ZfpConfig::fixed_rate(8.0));
        c.bytes[0] = b'Q';
        assert!(zfp_decompress::<f32>(&c).is_err());
    }

    #[test]
    fn truncated_payload_rejected() {
        let f = smooth_field(8);
        let mut c = zfp_compress(&f, &ZfpConfig::fixed_rate(8.0));
        c.bytes.truncate(c.bytes.len() / 2);
        assert!(zfp_decompress::<f32>(&c).is_err());
    }

    #[test]
    fn f64_roundtrip() {
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| ((x * y + z) as f64).sqrt());
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(40.0));
        let g: Field3<f64> = zfp_decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) < 1e-6);
    }
}
