//! ZFP's reversible integer lifting transform on 4-point vectors, extended
//! to 4×4×4 blocks by applying it along each axis.
//!
//! The forward transform is the non-orthogonal lifted approximation of the
//! DCT used by ZFP (Lindstrom 2014); its inverse reverses the lifting steps
//! exactly in integer arithmetic, so transform ∘ inverse is the identity —
//! all loss in the codec comes from bit-plane truncation, never from the
//! transform.

/// Forward lifting on a stride-`s` 4-vector starting at `p` within `data`.
#[inline]
pub fn fwd_lift(data: &mut [i64], p: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (data[p], data[p + s], data[p + 2 * s], data[p + 3 * s]);
    // Lifted transform from the ZFP reference implementation.
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    data[p] = x;
    data[p + s] = y;
    data[p + 2 * s] = z;
    data[p + 3 * s] = w;
}

/// Inverse lifting (exact inverse of [`fwd_lift`]).
#[inline]
pub fn inv_lift(data: &mut [i64], p: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) = (data[p], data[p + s], data[p + 2 * s], data[p + 3 * s]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    data[p] = x;
    data[p + s] = y;
    data[p + 2 * s] = z;
    data[p + 3 * s] = w;
}

/// Forward 3-D transform of a 64-element block (x stride 16, y stride 4,
/// z stride 1 — matching the row-major z-fastest layout).
pub fn fwd_xform(block: &mut [i64; 64]) {
    // Along z.
    for x in 0..4 {
        for y in 0..4 {
            fwd_lift(block, 16 * x + 4 * y, 1);
        }
    }
    // Along y.
    for x in 0..4 {
        for z in 0..4 {
            fwd_lift(block, 16 * x + z, 4);
        }
    }
    // Along x.
    for y in 0..4 {
        for z in 0..4 {
            fwd_lift(block, 4 * y + z, 16);
        }
    }
}

/// Inverse 3-D transform (reverse axis order).
pub fn inv_xform(block: &mut [i64; 64]) {
    for y in 0..4 {
        for z in 0..4 {
            inv_lift(block, 4 * y + z, 16);
        }
    }
    for x in 0..4 {
        for z in 0..4 {
            inv_lift(block, 16 * x + z, 4);
        }
    }
    for x in 0..4 {
        for y in 0..4 {
            inv_lift(block, 16 * x + 4 * y, 1);
        }
    }
}

/// Total-sequency permutation: coefficient order sorted by `i + j + k`
/// (low frequencies first), so early bit planes carry the smoothest
/// structure. Computed once.
pub fn sequency_order() -> [usize; 64] {
    let mut idx: Vec<usize> = (0..64).collect();
    idx.sort_by_key(|&i| {
        let (x, y, z) = (i / 16, (i / 4) % 4, i % 4);
        (x + y + z, i)
    });
    let mut out = [0usize; 64];
    out.copy_from_slice(&idx);
    out
}

/// Negabinary encoding of a signed coefficient (ZFP's sign-free bit planes).
#[inline]
pub fn to_negabinary(v: i64) -> u64 {
    const MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
    ((v as u64).wrapping_add(MASK)) ^ MASK
}

/// Inverse of [`to_negabinary`].
#[inline]
pub fn from_negabinary(u: u64) -> i64 {
    const MASK: u64 = 0xaaaa_aaaa_aaaa_aaaa;
    ((u ^ MASK).wrapping_sub(MASK)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_block(seed: u64, amp: i64) -> [i64; 64] {
        let mut state = seed;
        let mut out = [0i64; 64];
        for o in &mut out {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *o = ((state >> 33) as i64 % (2 * amp)) - amp;
        }
        out
    }

    #[test]
    fn lift_roundtrip_exact_on_aligned_values() {
        // The lifting pair truncates low bits in `>>`; values with enough
        // trailing zeros survive the full roundtrip exactly.
        for seed in 0..20 {
            let mut v = rand_block(seed, 1 << 20);
            for x in v.iter_mut() {
                *x <<= 16;
            }
            let orig = v;
            fwd_lift(&mut v, 0, 1);
            inv_lift(&mut v, 0, 1);
            assert_eq!(&v[..4], &orig[..4]);
        }
    }

    #[test]
    fn lift_roundtrip_near_exact_in_general() {
        // On arbitrary integers the truncation error stays O(1) per value —
        // far below the coded precision of 2^50-scaled blocks.
        for seed in 0..20 {
            let mut v = rand_block(seed, 1 << 24);
            let orig = v;
            fwd_lift(&mut v, 0, 1);
            inv_lift(&mut v, 0, 1);
            for (a, b) in v[..4].iter().zip(&orig[..4]) {
                assert!((a - b).abs() <= 4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn xform_roundtrip_3d_bounded_truncation() {
        for seed in 0..10 {
            let mut b = rand_block(seed, 1 << 24);
            let orig = b;
            fwd_xform(&mut b);
            inv_xform(&mut b);
            for (a, o) in b.iter().zip(&orig) {
                assert!((a - o).abs() <= 64, "{a} vs {o}");
            }
        }
    }

    #[test]
    fn xform_roundtrip_3d_exact_on_aligned() {
        for seed in 0..10 {
            let mut b = rand_block(seed, 1 << 20);
            for x in b.iter_mut() {
                *x <<= 24;
            }
            let orig = b;
            fwd_xform(&mut b);
            inv_xform(&mut b);
            assert_eq!(b, orig);
        }
    }

    #[test]
    fn constant_block_concentrates_at_dc() {
        let mut b = [1024i64; 64];
        fwd_xform(&mut b);
        assert_ne!(b[0], 0);
        assert!(b[1..].iter().all(|&v| v == 0), "AC leakage: {:?}", &b[..8]);
    }

    #[test]
    fn smooth_ramp_energy_compacts() {
        let mut b = [0i64; 64];
        for x in 0..4 {
            for y in 0..4 {
                for z in 0..4 {
                    b[16 * x + 4 * y + z] = (1000 * (x + y + z)) as i64;
                }
            }
        }
        fwd_xform(&mut b);
        let order = sequency_order();
        let low: i64 = order[..8].iter().map(|&i| b[i].abs()).sum();
        let high: i64 = order[32..].iter().map(|&i| b[i].abs()).sum();
        assert!(low > 10 * high.max(1), "low {low} high {high}");
    }

    #[test]
    fn sequency_order_is_permutation() {
        let order = sequency_order();
        let mut seen = [false; 64];
        for &i in &order {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert_eq!(order[0], 0); // DC first
    }

    #[test]
    fn negabinary_roundtrip() {
        for v in [-5i64, -1, 0, 1, 7, 123456, -987654, i32::MAX as i64, i32::MIN as i64] {
            assert_eq!(from_negabinary(to_negabinary(v)), v);
        }
    }

    #[test]
    fn negabinary_small_values_have_few_bits() {
        // Negabinary keeps small-magnitude values in low bit planes, which
        // is what makes MSB-first truncation graceful.
        assert!(to_negabinary(0).leading_zeros() == 64);
        assert!(to_negabinary(1).leading_zeros() >= 62);
        assert!(to_negabinary(-1).leading_zeros() >= 62);
    }
}
