//! Deterministic-seed round-trip tests for the zfplite codec on the shapes
//! most likely to break boundary-block logic: a single cell, non-power-of-
//! two bricks, 4096-cell pencils, and all-constant fields — the same
//! coverage rsz's edge-shape suite provides. Accuracy mode additionally
//! carries a hard bound assertion on every shape.

use gridlab::{Dim3, Field3};
use zfplite::{zfp_compress, zfp_decompress, ZfpConfig};

/// Deterministic pseudo-random field from an LCG — no RNG crate involved,
/// so these inputs are stable across toolchains and shim changes.
fn lcg_field(dims: Dim3, seed: u64, amplitude: f32) -> Field3<f32> {
    let mut state = seed;
    Field3::from_fn(dims, |_, _, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 40) as f32 / (1u32 << 24) as f32 - 0.5) * amplitude
    })
}

fn assert_bound_roundtrip(field: &Field3<f32>, eb: f64) {
    let c = zfp_compress(field, &ZfpConfig::accuracy(eb));
    let recon: Field3<f32> = zfp_decompress(&c).expect("self-produced container decodes");
    assert_eq!(recon.dims(), field.dims());
    let err = field.max_abs_diff(&recon);
    assert!(err <= eb, "bound violated: {err} > {eb} on {:?}", field.dims());
}

fn assert_fixed_rate_roundtrip(field: &Field3<f32>, rate: f64) {
    let c = zfp_compress(field, &ZfpConfig::fixed_rate(rate));
    let recon: Field3<f32> = zfp_decompress(&c).expect("decodes");
    assert_eq!(recon.dims(), field.dims());
    assert!(recon.as_slice().iter().all(|v| v.is_finite()));
}

#[test]
fn one_cell_field_roundtrips() {
    for value in [0.0f32, 1.0, -3.5e6, 4.2e-12] {
        let field = Field3::from_vec(Dim3::new(1, 1, 1), vec![value]).expect("sized");
        assert_bound_roundtrip(&field, f64::max(1e-3, value.abs() as f64 * 1e-6));
        assert_fixed_rate_roundtrip(&field, 8.0);
    }
}

#[test]
fn one_cell_tight_bound() {
    let field = Field3::from_vec(Dim3::new(1, 1, 1), vec![123.456f32]).expect("sized");
    assert_bound_roundtrip(&field, 1e-4);
}

#[test]
fn degenerate_pencils_and_slabs_roundtrip() {
    // Shapes thinner than one 4×4×4 block in one or two axes exercise the
    // edge-replication gather/scatter on every block.
    for dims in [
        Dim3::new(17, 1, 1),
        Dim3::new(1, 23, 1),
        Dim3::new(1, 1, 31),
        Dim3::new(13, 7, 1),
        Dim3::new(1, 11, 5),
        Dim3::new(9, 1, 19),
    ] {
        let field = lcg_field(dims, 0xE1, 2.0e4);
        assert_bound_roundtrip(&field, 20.0);
        assert_fixed_rate_roundtrip(&field, 12.0);
    }
}

#[test]
fn non_power_of_two_cube_roundtrips() {
    for (n, seed) in [(3usize, 7u64), (5, 11), (7, 13), (13, 17)] {
        let field = lcg_field(Dim3::cube(n), seed, 1.0e5);
        assert_bound_roundtrip(&field, 50.0);
        assert_fixed_rate_roundtrip(&field, 10.0);
    }
}

#[test]
fn ragged_dims_roundtrip() {
    let field = lcg_field(Dim3::new(6, 10, 15), 0xBEEF, 3.0e3);
    assert_bound_roundtrip(&field, 2.0);
}

#[test]
fn all_constant_field_compresses_tiny() {
    let dims = Dim3::cube(16);
    let field = Field3::from_fn(dims, |_, _, _| 42.0f32);
    let c = zfp_compress(&field, &ZfpConfig::accuracy(1e-3));
    let recon: Field3<f32> = zfp_decompress(&c).expect("decodes");
    assert!(field.max_abs_diff(&recon) <= 1e-3);
    // A constant block concentrates at DC; group testing must leave the
    // 63 AC planes nearly free.
    let raw = dims.len() * std::mem::size_of::<f32>();
    assert!(c.len() * 20 < raw, "constant field barely compressed: {} of {raw}", c.len());
}

#[test]
fn all_zero_field_roundtrips() {
    let field = Field3::<f32>::zeros(Dim3::new(4, 1, 9));
    assert_bound_roundtrip(&field, 1e-6);
    let c = zfp_compress(&field, &ZfpConfig::accuracy(1e-6));
    let recon: Field3<f32> = zfp_decompress(&c).expect("decodes");
    assert!(recon.as_slice().iter().all(|&v| v == 0.0));
}

#[test]
fn long_pencils_roundtrip() {
    // 4096-cell pencils: every block replicates along two axes, and the
    // plane coder sees long runs of identical blocks.
    for dims in [Dim3::new(1, 1, 4096), Dim3::new(1, 4096, 1), Dim3::new(4096, 1, 1)] {
        let smooth = Field3::from_fn(dims, |x, y, z| ((x + y + z) as f32 * 0.01).sin() * 3.0);
        assert_bound_roundtrip(&smooth, 0.05);
        let rough = lcg_field(dims, 0xFACE, 5.0e3);
        assert_bound_roundtrip(&rough, 5.0);
        assert_fixed_rate_roundtrip(&rough, 6.0);
    }
}

#[test]
fn compression_is_bitwise_deterministic_on_edge_shapes() {
    for dims in [Dim3::new(1, 1, 1), Dim3::cube(5), Dim3::new(6, 10, 15)] {
        let field = lcg_field(dims, 99, 1.0e4);
        let a = zfp_compress(&field, &ZfpConfig::accuracy(1.0));
        let b = zfp_compress(&field, &ZfpConfig::accuracy(1.0));
        assert_eq!(a.as_bytes(), b.as_bytes(), "nondeterministic container on {dims:?}");
    }
}

#[test]
fn tight_bound_on_high_dynamic_range() {
    // A bright spike next to tiny values inside one block: the shared
    // block exponent forces many planes; the bound must still hold on the
    // small values (absolute, not relative).
    let mut v = vec![1e-3f32; 64];
    v[21] = 5.0e5;
    let field = Field3::from_vec(Dim3::cube(4), v).unwrap();
    assert_bound_roundtrip(&field, 0.5);
}

#[test]
fn recompression_is_stable() {
    // Compressing a decompressed pencil at the same bound must stay within
    // the bound again (fixed-point of the block quantiser).
    let dims = Dim3::new(1, 1, 513);
    let field = lcg_field(dims, 0x51, 800.0);
    let cfg = ZfpConfig::accuracy(1.0);
    let c1 = zfp_compress(&field, &cfg);
    let r1: Field3<f32> = zfp_decompress(&c1).expect("decodes");
    let c2 = zfp_compress(&r1, &cfg);
    let r2: Field3<f32> = zfp_decompress(&c2).expect("decodes");
    assert!(r1.max_abs_diff(&r2) <= 1.0);
}
