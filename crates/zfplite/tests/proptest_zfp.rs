//! Property tests for the zfplite baseline: the fixed-rate size guarantee
//! must hold for every input, and high rates must be near-lossless.

use gridlab::{Dim3, Field3};
use proptest::prelude::*;
use zfplite::{zfp_compress, zfp_decompress, ZfpConfig};

fn arb_field() -> impl Strategy<Value = Field3<f32>> {
    (1usize..=9, 1usize..=9, 1usize..=9).prop_flat_map(|(nx, ny, nz)| {
        let d = Dim3::new(nx, ny, nz);
        proptest::collection::vec(-1.0e6f32..1.0e6f32, d.len())
            .prop_map(move |v| Field3::from_vec(d, v).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fixed_rate_size_is_exact(f in arb_field(), rate in 1.0f64..32.0) {
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(rate));
        let d = f.dims();
        let blocks = d.nx.div_ceil(4) * d.ny.div_ceil(4) * d.nz.div_ceil(4);
        let budget_bits = ((rate * 64.0).ceil() as usize).max(24) * blocks;
        let header = 4 + 1 + 3 + 24 + 1 + 8 + 4;
        let payload = c.len() - header;
        prop_assert!(payload * 8 >= budget_bits);
        prop_assert!(payload * 8 < budget_bits + 8, "payload {} bits vs {}", payload * 8, budget_bits);
    }

    #[test]
    fn decode_never_fails_on_own_output(f in arb_field(), rate in 1.0f64..48.0) {
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(rate));
        let g: Field3<f32> = zfp_decompress(&c).expect("self-produced container decodes");
        prop_assert_eq!(g.dims(), f.dims());
        prop_assert!(g.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn high_rate_is_accurate(f in arb_field()) {
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(44.0));
        let g: Field3<f32> = zfp_decompress(&c).expect("decodes");
        let amp = f.as_slice().iter().fold(0.0f32, |m, v| m.max(v.abs())) as f64;
        prop_assert!(f.max_abs_diff(&g) <= 1e-4 * amp.max(1e-6), "err {}", f.max_abs_diff(&g));
    }

    #[test]
    fn more_rate_never_more_error(f in arb_field()) {
        let lo = zfp_decompress::<f32>(&zfp_compress(&f, &ZfpConfig::fixed_rate(4.0))).expect("decodes");
        let hi = zfp_decompress::<f32>(&zfp_compress(&f, &ZfpConfig::fixed_rate(24.0))).expect("decodes");
        // Allow a hair of slack: bit-plane truncation is not strictly
        // monotone point-wise, but the max error must not invert badly.
        prop_assert!(f.max_abs_diff(&hi) <= f.max_abs_diff(&lo) * 1.01 + 1e-12);
    }

    #[test]
    fn truncation_is_detected(f in arb_field(), cut in 1usize..64) {
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(8.0));
        let bytes = c.as_bytes().len();
        prop_assume!(cut < bytes);
        let mut truncated = c.as_bytes().to_vec();
        truncated.truncate(bytes - cut);
        // Header parsed: the payload-length check at decode must fire.
        // A truncated header (Err) is also a detected failure.
        if let Ok(short) = zfplite::ZfpCompressed::from_bytes(truncated) {
            prop_assert!(zfp_decompress::<f32>(&short).is_err());
        }
    }

    #[test]
    fn container_roundtrips_through_bytes(f in arb_field(), rate in 2.0f64..16.0) {
        let c = zfp_compress(&f, &ZfpConfig::fixed_rate(rate));
        let c2 = zfplite::ZfpCompressed::from_bytes(c.as_bytes().to_vec()).expect("parses");
        prop_assert_eq!(c2.dims(), f.dims());
        prop_assert!((c2.rate() - rate).abs() < 1e-12);
        let a: Field3<f32> = zfp_decompress(&c).expect("decodes");
        let b: Field3<f32> = zfp_decompress(&c2).expect("decodes");
        prop_assert_eq!(a.as_slice(), b.as_slice());
    }
}
