//! Snapshot *series* with pinned drift-detector expectations.
//!
//! A [`ScenarioSeries`] is an ordered run of snapshots plus the
//! behaviour the `StreamSession` drift detector must show on it — the
//! true-positive/false-positive envelope that `tests/chaos_matrix.rs`
//! asserts and CI pins. The registry lives in [`scenario_matrix`] so the
//! chaos harness and the fixture regenerator iterate the exact same
//! scenarios.

use crate::{amr_nested, shock_front, shot_noise, smooth_grf};
use gridlab::Field3;

/// How the drift detector must behave across a series. Indices count
/// *post-calibration* snapshots: snapshot 0 calibrates the bank, so the
/// detector's first verdict is on snapshot 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriftExpectation {
    /// Healthy evolution: no refresh may fire anywhere in the series
    /// (false-positive envelope).
    Quiet,
    /// A regime shift at this snapshot index: a refresh MUST fire at
    /// `at` (true-positive envelope). Earlier snapshots must stay quiet.
    FiresAt(usize),
    /// Persistent mis-pricing or continual motion: at least `min`
    /// refreshes across the series, first one no later than snapshot
    /// `by`.
    Continual { min: usize, by: usize },
}

/// A named, seeded run of snapshots with its pinned drift expectation.
pub struct ScenarioSeries {
    pub name: &'static str,
    pub fields: Vec<Field3<f32>>,
    pub expect: DriftExpectation,
}

impl ScenarioSeries {
    fn new(name: &'static str, fields: Vec<Field3<f32>>, expect: DriftExpectation) -> Self {
        assert!(fields.len() >= 3, "a series needs calibration + at least two verdicts");
        Self { name, fields, expect }
    }
}

/// Healthy baseline: the same universe forming structure smoothly —
/// amplitude creeps up a few percent per step, same modes, same seed.
pub fn healthy_smooth_series(n: usize, steps: usize) -> ScenarioSeries {
    let fields = (0..steps).map(|s| smooth_grf(n, 42, 3.0 * (1.0 + 0.03 * s as f64))).collect();
    ScenarioSeries::new("healthy_smooth", fields, DriftExpectation::Quiet)
}

/// Healthy AMR run: the patch layout is frozen (same seed) and only the
/// patch detail amplitude breathes slightly — high contrast, but the
/// per-partition statistics the models were calibrated on barely move.
pub fn healthy_amr_series(n: usize, steps: usize) -> ScenarioSeries {
    let fields = (0..steps).map(|_| amr_nested(n, 17, 3)).collect();
    ScenarioSeries::new("healthy_amr", fields, DriftExpectation::Quiet)
}

/// Merger event: a calm smooth universe up to `shift_at`, then the field
/// jumps to a violently different regime — amplitude ×40 and a
/// different mode set (new seed) — and stays there. The detector must
/// fire exactly when the regime flips.
pub fn regime_shift_series(n: usize, steps: usize, shift_at: usize) -> ScenarioSeries {
    assert!((1..steps).contains(&shift_at));
    let fields = (0..steps)
        .map(|s| {
            if s < shift_at {
                smooth_grf(n, 42, 3.0 * (1.0 + 0.03 * s as f64))
            } else {
                smooth_grf(n, 4242, 120.0)
            }
        })
        .collect();
    ScenarioSeries::new("regime_shift_merger", fields, DriftExpectation::FiresAt(shift_at))
}

/// A shock front sweeping through the volume, crossing new partitions
/// every step — continual, *localised* drift: only the partitions the
/// front is crossing mis-predict, the rest stay calm.
pub fn moving_shock_series(n: usize, steps: usize) -> ScenarioSeries {
    let fields =
        (0..steps).map(|s| shock_front(n, 9, 0.15 + 0.7 * s as f64 / (steps - 1) as f64)).collect();
    // The detector needs the front to cross a few partition boundaries
    // before the accumulated mis-prediction trips the mean residual, so
    // the first guaranteed fire is mid-series, not on the second step.
    ScenarioSeries::new("moving_shock", fields, DriftExpectation::Continual { min: 1, by: 3 })
}

/// Particle counts with particle number growing each step (infall):
/// discrete shot noise the power-law rate model was never fit for. The
/// steady-state residual on this series is the documented mis-pricing
/// that motivates the next modeling PR.
pub fn shot_noise_series(n: usize, steps: usize) -> ScenarioSeries {
    let cells = n * n * n;
    // Start sparse (a quarter-particle per cell: mostly zeros with rare
    // spikes — the worst case for a power-law fit on the mean) and
    // double the load each step, an infall the snapshot-0 models have no
    // way to extrapolate.
    let fields = (0..steps).map(|s| shot_noise(n, 7 + s as u64, (cells / 4) << s.min(8))).collect();
    ScenarioSeries::new("shot_noise_infall", fields, DriftExpectation::Continual { min: 1, by: 3 })
}

/// The full scenario matrix at grid size `n` — the single source of
/// truth iterated by `tests/chaos_matrix.rs` and `diag_scenario_fixture`.
pub fn scenario_matrix(n: usize) -> Vec<ScenarioSeries> {
    vec![
        healthy_smooth_series(n, 6),
        healthy_amr_series(n, 5),
        regime_shift_series(n, 6, 3),
        moving_shock_series(n, 6),
        shot_noise_series(n, 5),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_is_deterministic_and_well_formed() {
        let a = scenario_matrix(8);
        let b = scenario_matrix(8);
        assert_eq!(a.len(), b.len());
        for (sa, sb) in a.iter().zip(&b) {
            assert_eq!(sa.name, sb.name);
            assert_eq!(sa.expect, sb.expect);
            assert_eq!(sa.fields.len(), sb.fields.len());
            for (fa, fb) in sa.fields.iter().zip(&sb.fields) {
                let bits =
                    |f: &Field3<f32>| f.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(fa), bits(fb), "{} must regenerate bit-identically", sa.name);
            }
        }
    }

    #[test]
    fn regime_shift_actually_shifts() {
        let s = regime_shift_series(8, 6, 3);
        let spread = |f: &Field3<f32>| {
            let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
            for &v in f.as_slice() {
                lo = lo.min(v);
                hi = hi.max(v);
            }
            (hi - lo) as f64
        };
        assert!(spread(&s.fields[3]) > 10.0 * spread(&s.fields[2]));
    }

    #[test]
    fn matrix_fields_are_finite() {
        for s in scenario_matrix(8) {
            for f in &s.fields {
                assert!(f.as_slice().iter().all(|v| v.is_finite()), "{} must be finite", s.name);
            }
        }
    }
}
