//! # scenarios — the workload zoo
//!
//! Every quality and drift number in the repo's early PRs came from
//! smooth Nyx-style GRF fields — the paper's home turf. This crate is
//! the other turf: deterministic, seeded generators for the field
//! families an adaptive compression service actually meets in the wild,
//! plus a registry of snapshot *series* with a pinned expectation of how
//! the [`StreamSession`] drift detector must behave on each
//! (fire on regime shifts, stay quiet on healthy evolution).
//!
//! The root `tests/chaos_matrix.rs` harness drives every scenario
//! through `StreamSession` and `StreamServer` and asserts the
//! true-positive/false-positive envelope; `diag_scenario_fixture` pins
//! every generator's exact output bytes (FNV checksums) so the matrix
//! stays deterministic across platforms and refactors.
//!
//! ## Field families
//!
//! | generator | stresses |
//! |---|---|
//! | [`smooth_grf`] | baseline: the paper's operating regime |
//! | [`amr_nested`] | nested-refinement contrast (AMR-style patches) |
//! | [`shot_noise`] | particle-deposited counts — discrete, spiky |
//! | [`shock_front`] | a high-contrast moving discontinuity |
//! | [`constant_padded`] | zero-variance partitions (σ = 0 edge) |
//! | [`all_constant`] | the fully degenerate field |
//! | [`nan_laced`] / [`inf_laced`] | non-finite ingestion hardening |
//!
//! All generators are pure functions of `(n, seed, params)` — no global
//! RNG, no platform floats beyond IEEE ops — so the same call always
//! returns bit-identical fields.
//!
//! [`StreamSession`]: https://docs.rs/adaptive-config

use gridlab::{Dim3, Field3};

mod series;

pub use series::{scenario_matrix, DriftExpectation, ScenarioSeries};

/// Deterministic 64-bit mixer (splitmix64): the crate's only randomness
/// primitive. Every generator derives its stream from one of these.
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed.wrapping_add(0x9e3779b97f4a7c15) }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn index(&mut self, n: usize) -> usize {
        (self.uniform() * n as f64) as usize % n.max(1)
    }
}

/// Smooth low-frequency field — the healthy baseline. A few incoherent
/// sinusoidal modes plus weak white noise; `amp` scales the contrast
/// (structure "forms" as amp grows, like lowering redshift).
pub fn smooth_grf(n: usize, seed: u64, amp: f64) -> Field3<f32> {
    let mut rng = Rng64::new(seed);
    // 4 random low-k modes with random phases.
    let modes: Vec<(f64, f64, f64, f64)> = (0..4)
        .map(|_| {
            let kx = 1.0 + rng.uniform() * 2.0;
            let ky = 1.0 + rng.uniform() * 2.0;
            let kz = 1.0 + rng.uniform() * 2.0;
            let phase = rng.uniform() * std::f64::consts::TAU;
            (kx, ky, kz, phase)
        })
        .collect();
    let inv = std::f64::consts::TAU / n as f64;
    let mut noise_rng = Rng64::new(seed ^ 0x5eed);
    Field3::from_fn(Dim3::cube(n), |x, y, z| {
        let mut v = 10.0;
        for &(kx, ky, kz, phase) in &modes {
            v += amp * (inv * (kx * x as f64 + ky * y as f64 + kz * z as f64) + phase).sin();
        }
        v += 0.05 * amp * (noise_rng.uniform() - 0.5);
        v as f32
    })
}

/// AMR-style nested refinement: a smooth base with `levels` nested cubic
/// patches, each half the size of its parent and carrying progressively
/// higher-frequency, higher-amplitude detail — the partition-to-partition
/// contrast profile of an adaptively refined mesh flattened to a uniform
/// grid.
pub fn amr_nested(n: usize, seed: u64, levels: usize) -> Field3<f32> {
    let mut rng = Rng64::new(seed);
    // Patch ℓ spans [origin, origin + n/2^(ℓ+1)) per axis.
    let mut patches = Vec::with_capacity(levels);
    let mut span = n;
    for level in 0..levels {
        span = (span / 2).max(2);
        let origin = (
            rng.index(n.saturating_sub(span).max(1)),
            rng.index(n.saturating_sub(span).max(1)),
            rng.index(n.saturating_sub(span).max(1)),
        );
        let freq = 0.7 * (level + 1) as f64;
        let amp = 4.0 * (level + 1) as f64;
        patches.push((origin, span, freq, amp));
    }
    let mut noise_rng = Rng64::new(seed ^ 0xa317);
    let inv = std::f64::consts::TAU / n as f64;
    Field3::from_fn(Dim3::cube(n), |x, y, z| {
        let mut v = 12.0 + 2.0 * (inv * (x + y + z) as f64).sin();
        let jitter = noise_rng.uniform() - 0.5;
        for &((ox, oy, oz), span, freq, amp) in &patches {
            let inside = (ox..ox + span).contains(&x)
                && (oy..oy + span).contains(&y)
                && (oz..oz + span).contains(&z);
            if inside {
                v += amp * ((freq * x as f64).sin() * (freq * y as f64).cos() + 0.3 * jitter);
            }
        }
        v as f32
    })
}

/// Particle-deposited density: `particles` pseudo-random points dropped
/// onto the grid nearest-grid-point style, yielding Poisson-like integer
/// counts — discrete, spiky, and nothing like the smooth fields the
/// power-law rate model was calibrated against.
pub fn shot_noise(n: usize, seed: u64, particles: usize) -> Field3<f32> {
    let mut rng = Rng64::new(seed);
    let mut counts = vec![0u32; n * n * n];
    for _ in 0..particles {
        // Clustered deposit: half the particles land uniformly, half near
        // one of 8 cluster centres (r ~ n/8 Gaussian-ish via CLT of 4).
        let (x, y, z) = if rng.uniform() < 0.5 {
            (rng.index(n), rng.index(n), rng.index(n))
        } else {
            let c = rng.index(8);
            let cx = (c & 1) * (n / 2) + n / 4;
            let cy = ((c >> 1) & 1) * (n / 2) + n / 4;
            let cz = ((c >> 2) & 1) * (n / 2) + n / 4;
            let spread = (n / 8).max(1) as f64;
            let mut g = |centre: usize| {
                let u = (0..4).map(|_| rng.uniform()).sum::<f64>() / 2.0 - 1.0; // ~N-ish in [-1,1]
                ((centre as f64 + u * spread).rem_euclid(n as f64)) as usize % n
            };
            (g(cx), g(cy), g(cz))
        };
        counts[(z * n + y) * n + x] += 1;
    }
    Field3::from_fn(Dim3::cube(n), |x, y, z| counts[(z * n + y) * n + x] as f32)
}

/// Shock front: a smooth background split by a high-contrast `tanh`
/// discontinuity at plane `x = pos · n`. Sweeping `pos` across snapshots
/// yields a moving discontinuity — localized drift, partition by
/// partition, as the front crosses them.
pub fn shock_front(n: usize, seed: u64, pos: f64) -> Field3<f32> {
    let mut noise_rng = Rng64::new(seed ^ 0xf207);
    let front = pos * n as f64;
    let inv = std::f64::consts::TAU / n as f64;
    Field3::from_fn(Dim3::cube(n), |x, y, z| {
        let base = 8.0 + (inv * (y + z) as f64).sin();
        // Post-shock side: 30× denser and much rougher.
        let s = 0.5 * (1.0 + ((x as f64 - front) / 1.5).tanh());
        let rough = 6.0 * (noise_rng.uniform() - 0.5);
        (base + s * (240.0 + rough)) as f32
    })
}

/// A smooth field whose lower `pad_fraction` of z-slabs is overwritten
/// with one exact constant — zero-variance partitions next to live ones
/// (sensor dropouts, halo-exchange ghost padding, masked regions).
pub fn constant_padded(n: usize, seed: u64, pad_fraction: f64) -> Field3<f32> {
    let base = smooth_grf(n, seed, 3.0);
    let cut = ((pad_fraction * n as f64) as usize).min(n);
    Field3::from_fn(Dim3::cube(n), |x, y, z| if z < cut { 7.25 } else { base.get(x, y, z) })
}

/// The fully degenerate field: every cell the same value (σ = 0).
pub fn all_constant(n: usize, value: f32) -> Field3<f32> {
    Field3::from_fn(Dim3::cube(n), |_, _, _| value)
}

/// A smooth field with `fraction` of cells replaced by NaN at seeded
/// pseudo-random sites — the classic missing-data / uninitialised-ghost
/// ingestion hazard.
pub fn nan_laced(n: usize, seed: u64, fraction: f64) -> Field3<f32> {
    lace(n, seed, fraction, |_| f32::NAN)
}

/// Like [`nan_laced`] but with alternating `±∞` (overflowed cells).
pub fn inf_laced(n: usize, seed: u64, fraction: f64) -> Field3<f32> {
    lace(n, seed, fraction, |i| if i % 2 == 0 { f32::INFINITY } else { f32::NEG_INFINITY })
}

fn lace(n: usize, seed: u64, fraction: f64, poison: impl Fn(usize) -> f32) -> Field3<f32> {
    assert!((0.0..=1.0).contains(&fraction));
    let base = smooth_grf(n, seed, 2.0);
    let cells = n * n * n;
    let hits = ((cells as f64 * fraction).ceil() as usize).clamp(1, cells);
    let mut rng = Rng64::new(seed ^ 0xdead);
    let mut poisoned: Vec<f32> = base.as_slice().to_vec();
    for i in 0..hits {
        let at = rng.index(cells);
        poisoned[at] = poison(i);
    }
    Field3::from_vec(Dim3::cube(n), poisoned).expect("cells match")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_are_deterministic() {
        for (a, b) in [
            (smooth_grf(8, 3, 2.0), smooth_grf(8, 3, 2.0)),
            (amr_nested(8, 5, 3), amr_nested(8, 5, 3)),
            (shot_noise(8, 7, 4096), shot_noise(8, 7, 4096)),
            (shock_front(8, 9, 0.5), shock_front(8, 9, 0.5)),
            (constant_padded(8, 11, 0.5), constant_padded(8, 11, 0.5)),
            (nan_laced(8, 13, 0.01), nan_laced(8, 13, 0.01)),
            (inf_laced(8, 15, 0.01), inf_laced(8, 15, 0.01)),
        ] {
            let bits =
                |f: &Field3<f32>| f.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&a), bits(&b));
        }
    }

    #[test]
    fn seeds_change_the_field() {
        assert_ne!(smooth_grf(8, 1, 2.0).as_slice(), smooth_grf(8, 2, 2.0).as_slice());
    }

    #[test]
    fn finite_generators_are_finite() {
        for f in [
            smooth_grf(8, 3, 2.0),
            amr_nested(8, 5, 3),
            shot_noise(8, 7, 4096),
            shock_front(8, 9, 0.3),
            constant_padded(8, 11, 0.4),
            all_constant(8, 7.25),
        ] {
            assert!(f.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn laced_generators_contain_the_advertised_poison() {
        let nan = nan_laced(8, 21, 0.02);
        assert!(nan.as_slice().iter().any(|v| v.is_nan()));
        let inf = inf_laced(8, 23, 0.02);
        assert!(inf.as_slice().iter().any(|v| v.is_infinite() && *v > 0.0));
        assert!(inf.as_slice().iter().any(|v| v.is_infinite() && *v < 0.0));
    }

    #[test]
    fn constant_padded_has_a_zero_variance_slab() {
        let f = constant_padded(8, 11, 0.5);
        for z in 0..4 {
            for y in 0..8 {
                for x in 0..8 {
                    assert_eq!(f.get(x, y, z), 7.25);
                }
            }
        }
        // And the live half actually varies.
        let live: Vec<f32> = (4..8)
            .flat_map(|z| (0..8).flat_map(move |y| (0..8).map(move |x| (x, y, z))))
            .map(|(x, y, z)| f.get(x, y, z))
            .collect();
        assert!(live.iter().any(|&v| v != live[0]));
    }

    #[test]
    fn shock_front_separates_two_regimes() {
        let f = shock_front(16, 9, 0.5);
        let lo = f.get(1, 8, 8);
        let hi = f.get(14, 8, 8);
        assert!(hi > lo + 100.0, "post-shock {hi} should dwarf pre-shock {lo}");
    }

    #[test]
    fn shot_noise_deposits_every_particle() {
        let f = shot_noise(8, 7, 4096);
        let total: f64 = f.as_slice().iter().map(|&v| v as f64).sum();
        assert_eq!(total, 4096.0);
    }
}
