//! The pipeline's determinism contract: compressing partitions through the
//! parallel brick map must produce containers **byte-identical** to a
//! strictly serial walk over the same partitions, and reconstructions must
//! be bit-identical — including when the optimizer mixes codec backends
//! within one snapshot. This is what makes the parallel engine a pure
//! performance change — simulation outputs cannot depend on the worker
//! count or scheduling order.

use adaptive_config::optimizer::QualityTarget;
use adaptive_config::pipeline::{InSituPipeline, PipelineConfig};
use codec_core::{CodecId, CodecScratch, Container};
use gridlab::{Decomposition, Dim3, Field3};

/// Mixed smooth/rough field so partitions differ wildly in cost and
/// unpredictable-cell counts (the load-imbalance case the dynamic
/// scheduler exists for) — and so the multi-codec optimizer genuinely
/// mixes backends.
fn contrast_field(n: usize) -> Field3<f32> {
    let mut state = 3u64;
    Field3::from_fn(Dim3::cube(n), |x, y, z| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
        if x >= n / 2 && y >= n / 2 {
            (200.0 + 80.0 * noise + (z as f64 * 0.9).sin() * 40.0) as f32
        } else {
            (10.0 + 0.5 * (x as f64 * 0.2).sin() + 0.1 * noise) as f32
        }
    })
}

/// Serial reference for `InSituPipeline::compress_with`: one partition at a
/// time, in id order, on the calling thread, through one reused scratch.
fn serial_containers(
    field: &Field3<f32>,
    dec: &Decomposition,
    codecs: &[CodecId],
    ebs: &[f64],
) -> Vec<Container> {
    let mut scratch = CodecScratch::default();
    dec.iter()
        .map(|p| {
            let brick = field.extract(p.origin, p.dims);
            Container::compress_with(
                codecs[p.id],
                brick.as_slice(),
                brick.dims(),
                ebs[p.id],
                &mut scratch,
            )
        })
        .collect()
}

fn pipeline(
    n: usize,
    parts: usize,
    eb_avg: f64,
    codecs: &[CodecId],
) -> (InSituPipeline, Field3<f32>) {
    let field = contrast_field(n);
    let dec = Decomposition::cubic(n, parts).unwrap();
    let cfg = PipelineConfig::new(dec, QualityTarget::fft_only(eb_avg)).with_codecs(codecs);
    let (p, _) = InSituPipeline::calibrate(cfg, &field, 3, &[0.05, 0.1, 0.2, 0.4, 0.8])
        .expect("finite field calibrates");
    (p, field)
}

#[test]
fn parallel_adaptive_containers_match_serial_bytes() {
    let (p, field) = pipeline(32, 4, 0.2, &[CodecId::Rsz]);
    let run = p.run_adaptive(&field);
    let reference = serial_containers(&field, &p.config().dec, &run.codecs, &run.ebs);
    assert_eq!(run.containers.len(), reference.len());
    for (id, (par, ser)) in run.containers.iter().zip(&reference).enumerate() {
        assert_eq!(
            par.as_bytes(),
            ser.as_bytes(),
            "partition {id}: parallel container differs from serial"
        );
    }
}

#[test]
fn parallel_traditional_containers_match_serial_bytes() {
    let (p, field) = pipeline(32, 4, 0.2, &[CodecId::Rsz]);
    let run = p.run_traditional(&field, 0.15);
    let reference = serial_containers(&field, &p.config().dec, &run.codecs, &run.ebs);
    for (id, (par, ser)) in run.containers.iter().zip(&reference).enumerate() {
        assert_eq!(par.as_bytes(), ser.as_bytes(), "partition {id} differs");
    }
}

#[test]
fn mixed_codec_parallel_containers_match_serial_bytes() {
    // The multi-codec path: workers pick up partitions with *different*
    // codecs in scheduler order, all through one per-thread CodecScratch —
    // cross-codec scratch state must never leak into the bytes.
    let (p, field) = pipeline(32, 4, 0.2, &CodecId::ALL);
    let run = p.run_adaptive(&field);
    let reference = serial_containers(&field, &p.config().dec, &run.codecs, &run.ebs);
    assert_eq!(run.containers.len(), reference.len());
    for (id, (par, ser)) in run.containers.iter().zip(&reference).enumerate() {
        assert_eq!(
            par.as_bytes(),
            ser.as_bytes(),
            "partition {id} ({}): parallel v2 container differs from serial",
            run.codecs[id]
        );
    }
}

#[test]
fn repeated_parallel_runs_are_stable() {
    // Scheduling order varies run to run; output must not — codec
    // assignment included.
    let (p, field) = pipeline(16, 2, 0.3, &CodecId::ALL);
    let first = p.run_adaptive(&field);
    for round in 0..3 {
        let again = p.run_adaptive(&field);
        assert_eq!(again.ebs, first.ebs, "round {round}: optimizer drifted");
        assert_eq!(again.codecs, first.codecs, "round {round}: codec choice drifted");
        for (id, (a, b)) in again.containers.iter().zip(&first.containers).enumerate() {
            assert_eq!(a.as_bytes(), b.as_bytes(), "round {round}, partition {id}");
        }
    }
}

#[test]
fn parallel_reconstruction_is_bit_identical_to_serial_decode() {
    let (p, field) = pipeline(32, 4, 0.2, &CodecId::ALL);
    let run = p.run_adaptive(&field);
    // Parallel path: PipelineResult::reconstruct (par_iter decode).
    let recon_par: Field3<f32> = run.reconstruct(&p.config().dec).unwrap();
    // Serial path: decode each container on this thread, assemble.
    let bricks: Vec<Field3<f32>> =
        run.containers.iter().map(|c| c.decode_field::<f32>().unwrap()).collect();
    let recon_ser = p.config().dec.assemble(&bricks).unwrap();
    let a = recon_par.as_slice();
    let b = recon_ser.as_slice();
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        assert!(
            a[i].to_bits() == b[i].to_bits(),
            "cell {i}: parallel {} vs serial {} differ in bits",
            a[i],
            b[i]
        );
    }
}
