//! Cheap CI tripwire: calibrate + run the adaptive pipeline on a 16³
//! snapshot and sanity-check the result, fast enough (<1s) that every
//! `cargo test` run exercises the full in-situ path even when the heavier
//! integration suites are filtered out.

use adaptive_config::optimizer::QualityTarget;
use adaptive_config::pipeline::{InSituPipeline, PipelineConfig};
use gridlab::{Decomposition, Field3};
use nyxlite::NyxConfig;
use std::time::Instant;

#[test]
fn calibrate_and_run_adaptive_on_16_cubed() {
    let start = Instant::now();

    let snap = NyxConfig::new(16, 2024).generate(42.0);
    let field = &snap.baryon_density;
    let dec = Decomposition::cubic(16, 2).expect("divides");
    let sigma = gridlab::stats::summarize(field.as_slice()).std_dev();
    let eb_avg = 0.1 * sigma;
    let sweep: Vec<f64> = [0.25, 0.5, 1.0, 2.0, 4.0].iter().map(|m| m * eb_avg).collect();

    let cfg = PipelineConfig::new(dec.clone(), QualityTarget::fft_only(eb_avg));
    let (pipeline, _report) =
        InSituPipeline::calibrate(cfg, field, 2, &sweep).expect("finite field calibrates");
    let result = pipeline.run_adaptive(field);

    // One eb per partition, all positive/finite, mean within the budget.
    assert_eq!(result.ebs.len(), dec.num_partitions());
    assert!(result.ebs.iter().all(|&e| e > 0.0 && e.is_finite()));
    let mean_eb = result.ebs.iter().sum::<f64>() / result.ebs.len() as f64;
    assert!(mean_eb <= eb_avg * (1.0 + 1e-6), "budget exceeded: {mean_eb} > {eb_avg}");

    // The per-partition bound holds on the reconstruction.
    let recon: Field3<f32> = result.reconstruct(&dec).expect("assembles");
    for ((orig, rec), &eb) in dec.split(field).iter().zip(dec.split(&recon).iter()).zip(&result.ebs)
    {
        assert!(orig.max_abs_diff(rec) <= eb + 1e-9);
    }

    // Compression actually happened.
    assert!(result.ratio() > 1.0, "ratio {}", result.ratio());

    let elapsed = start.elapsed();
    assert!(
        elapsed.as_secs_f64() < 1.0,
        "16^3 smoke pipeline took {elapsed:?}; the cheap CI tripwire must stay under 1s"
    );
}
