//! The in situ flow (paper §3.6 & §4.3): feature extraction → optimization
//! → per-partition compression, plus the traditional single-bound baseline
//! and the timing breakdown behind the "≈1 % overhead" claim.
//!
//! ## Parallel execution & determinism
//! Compression ([`InSituPipeline::run_adaptive`]/[`run_traditional`]) and
//! decompression ([`PipelineResult::reconstruct`]) shard across partitions:
//! each brick is handled by a scoped worker from the rayon shim's dynamic
//! scheduler (bounded by `available_parallelism`), and per-worker scratch
//! buffers inside `rsz` keep the hot loop allocation-free. Partition
//! results are merged in id order and each partition's walk is independent
//! of every other's, so the containers are **byte-identical** to a serial
//! run — worker count and scheduling order can never leak into simulation
//! output (enforced by `tests/parallel_determinism.rs`).
//!
//! [`run_traditional`]: InSituPipeline::run_traditional

use crate::optimizer::{OptimizedConfig, Optimizer, QualityTarget};
use crate::ratio_model::{extract_features, sample_bricks, CalibrationReport, RatioModel};
use gridlab::{Decomposition, Field3, GridError, Scalar};
use rayon::prelude::*;
use rsz::{compress_slice, decompress, Compressed, SzConfig};
use std::time::{Duration, Instant};

/// Static configuration of the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Domain decomposition (one partition per simulated rank).
    pub dec: Decomposition,
    /// Quality budget per snapshot.
    pub target: QualityTarget,
    /// Base compressor settings (the mode's bound is overridden per
    /// partition).
    pub sz_base: SzConfig,
    /// Reference bound for the boundary-cell feature extraction.
    pub eb_ref: f64,
}

impl PipelineConfig {
    pub fn new(dec: Decomposition, target: QualityTarget) -> Self {
        Self { dec, target, sz_base: SzConfig::abs(1.0), eb_ref: 1.0 }
    }
}

/// Wall-clock breakdown of one pipeline run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Per-partition feature extraction (mean + boundary cells).
    pub features: Duration,
    /// Error-bound optimization.
    pub optimize: Duration,
    /// Actual compression.
    pub compress: Duration,
}

impl Timings {
    /// Overhead of the adaptive machinery relative to compression —
    /// the paper reports ≈1 % (mean only) to ≈5 % (with boundary cells).
    pub fn overhead_fraction(&self) -> f64 {
        let extra = self.features.as_secs_f64() + self.optimize.as_secs_f64();
        let base = self.compress.as_secs_f64();
        if base == 0.0 {
            0.0
        } else {
            extra / base
        }
    }
}

/// Outcome of compressing one field through the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Per-partition bounds used (uniform for the traditional baseline).
    pub ebs: Vec<f64>,
    /// Per-partition containers (partition-id order).
    pub containers: Vec<Compressed>,
    /// Uncompressed size in bytes.
    pub original_bytes: usize,
    /// Total compressed size in bytes.
    pub compressed_bytes: usize,
    /// The optimizer's full decision (None for the traditional baseline).
    pub decision: Option<OptimizedConfig>,
    /// Phase timings.
    pub timings: Timings,
}

impl PipelineResult {
    /// Overall compression ratio.
    pub fn ratio(&self) -> f64 {
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    /// Overall bit rate, assuming `bits` per original value.
    pub fn bit_rate(&self, bits: f64) -> f64 {
        bits * self.compressed_bytes as f64 / self.original_bytes as f64
    }

    /// Decompress every partition and reassemble the full field.
    pub fn reconstruct<T: Scalar>(&self, dec: &Decomposition) -> Result<Field3<T>, GridError> {
        let bricks: Vec<Field3<T>> = self
            .containers
            .par_iter()
            .map(|c| decompress::<T>(c).expect("self-produced container decodes"))
            .collect();
        dec.assemble(&bricks)
    }
}

/// The adaptive in situ pipeline.
#[derive(Debug, Clone)]
pub struct InSituPipeline {
    pub cfg: PipelineConfig,
    pub optimizer: Optimizer,
}

impl InSituPipeline {
    /// Build with an already-fitted rate model.
    pub fn with_model(cfg: PipelineConfig, model: RatioModel) -> Self {
        Self { cfg, optimizer: Optimizer::new(model) }
    }

    /// Calibrate the rate model on sample partitions of `field` (every
    /// `sample_stride`-th partition, compressed at each bound in `sweep`),
    /// then build the pipeline. This is the one-off trial step; it replaces
    /// the traditional per-snapshot trial-and-error.
    pub fn calibrate<T: Scalar>(
        cfg: PipelineConfig,
        field: &Field3<T>,
        sample_stride: usize,
        sweep: &[f64],
    ) -> (Self, CalibrationReport) {
        let bricks = sample_bricks(field, &cfg.dec, sample_stride);
        let refs: Vec<&Field3<T>> = bricks.iter().collect();
        let (model, report) = RatioModel::calibrate(&refs, sweep, &cfg.sz_base);
        (Self::with_model(cfg, model), report)
    }

    /// Run the full adaptive flow on one field.
    pub fn run_adaptive<T: Scalar>(&self, field: &Field3<T>) -> PipelineResult {
        let dec = &self.cfg.dec;
        let t_boundary = self.cfg.target.halo.map(|h| h.t_boundary).unwrap_or(0.0);

        let t0 = Instant::now();
        let features = extract_features(field, dec, t_boundary, self.cfg.eb_ref);
        let t_features = t0.elapsed();

        let t1 = Instant::now();
        let decision = self.optimizer.optimize(&features, &self.cfg.target);
        let t_optimize = t1.elapsed();

        let (containers, t_compress) = self.compress_with(field, &decision.ebs);
        let compressed_bytes = containers.iter().map(|c| c.len()).sum();
        PipelineResult {
            ebs: decision.ebs.clone(),
            containers,
            original_bytes: field.len() * T::BYTES,
            compressed_bytes,
            decision: Some(decision),
            timings: Timings { features: t_features, optimize: t_optimize, compress: t_compress },
        }
    }

    /// The traditional baseline: the same uniform bound everywhere.
    pub fn run_traditional<T: Scalar>(&self, field: &Field3<T>, eb: f64) -> PipelineResult {
        assert!(eb > 0.0);
        let ebs = vec![eb; self.cfg.dec.num_partitions()];
        let (containers, t_compress) = self.compress_with(field, &ebs);
        let compressed_bytes = containers.iter().map(|c| c.len()).sum();
        PipelineResult {
            ebs,
            containers,
            original_bytes: field.len() * T::BYTES,
            compressed_bytes,
            decision: None,
            timings: Timings { compress: t_compress, ..Timings::default() },
        }
    }

    fn compress_with<T: Scalar>(
        &self,
        field: &Field3<T>,
        ebs: &[f64],
    ) -> (Vec<Compressed>, Duration) {
        let dec = &self.cfg.dec;
        assert_eq!(ebs.len(), dec.num_partitions());
        let base = self.cfg.sz_base;
        let t = Instant::now();
        let containers = dec.par_map(field, |p, brick| {
            let mut cfg = base;
            cfg.mode = rsz::ErrorMode::Abs(ebs[p.id]);
            compress_slice(brick.as_slice(), brick.dims(), &cfg)
        });
        (containers, t.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Dim3;

    /// A field with strong partition-to-partition contrast: smooth low
    /// background with a few rough bright octants — the regime where
    /// adaptive configuration pays off.
    fn contrast_field(n: usize) -> Field3<f32> {
        let mut state = 3u64;
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let bright = x >= n / 2 && y >= n / 2;
            if bright {
                (200.0 + 80.0 * noise + (z as f64 * 0.9).sin() * 40.0) as f32
            } else {
                (10.0 + 0.5 * (x as f64 * 0.2).sin() + 0.1 * noise) as f32
            }
        })
    }

    fn pipeline(n: usize, parts: usize, eb_avg: f64) -> (InSituPipeline, Field3<f32>) {
        let field = contrast_field(n);
        let dec = Decomposition::cubic(n, parts).unwrap();
        let cfg = PipelineConfig::new(dec, QualityTarget::fft_only(eb_avg));
        let (p, _) =
            InSituPipeline::calibrate(cfg, &field, 3, &[0.05, 0.1, 0.2, 0.4, 0.8]);
        (p, field)
    }

    #[test]
    fn adaptive_matches_mean_budget_and_beats_traditional() {
        let (p, field) = pipeline(32, 4, 0.2);
        let adaptive = p.run_adaptive(&field);
        let traditional = p.run_traditional(&field, 0.2);
        // Same modeled FFT quality (mean eb equal) but better ratio.
        let mean_eb = adaptive.ebs.iter().sum::<f64>() / adaptive.ebs.len() as f64;
        assert!(mean_eb <= 0.2 * 1.000001, "mean {mean_eb}");
        assert!(
            adaptive.ratio() > traditional.ratio(),
            "adaptive {} vs traditional {}",
            adaptive.ratio(),
            traditional.ratio()
        );
    }

    #[test]
    fn bounds_vary_across_partitions() {
        let (p, field) = pipeline(32, 4, 0.2);
        let r = p.run_adaptive(&field);
        let min = r.ebs.iter().fold(f64::MAX, |a, &b| a.min(b));
        let max = r.ebs.iter().fold(f64::MIN, |a, &b| a.max(b));
        assert!(max > min * 1.5, "bounds did not adapt: [{min}, {max}]");
    }

    #[test]
    fn reconstruction_respects_per_partition_bounds() {
        let (p, field) = pipeline(16, 2, 0.3);
        let r = p.run_adaptive(&field);
        let recon: Field3<f32> = r.reconstruct(&p.cfg.dec).unwrap();
        let bricks_o = p.cfg.dec.split(&field);
        let bricks_r = p.cfg.dec.split(&recon);
        for ((bo, br), &eb) in bricks_o.iter().zip(&bricks_r).zip(&r.ebs) {
            let err = bo.max_abs_diff(br);
            assert!(err <= eb + 1e-9, "partition err {err} > eb {eb}");
        }
    }

    #[test]
    fn traditional_run_has_uniform_bounds() {
        let (p, field) = pipeline(16, 2, 0.3);
        let r = p.run_traditional(&field, 0.25);
        assert!(r.ebs.iter().all(|&e| e == 0.25));
        assert!(r.decision.is_none());
        let recon: Field3<f32> = r.reconstruct(&p.cfg.dec).unwrap();
        assert!(field.max_abs_diff(&recon) <= 0.25 + 1e-9);
    }

    #[test]
    fn timings_are_populated_and_overhead_small() {
        let (p, field) = pipeline(32, 4, 0.2);
        let r = p.run_adaptive(&field);
        assert!(r.timings.compress > Duration::ZERO);
        // Sanity only: at unit-test grid sizes (32³) thread-pool fixed
        // costs dominate both phases, so the paper's 1–5 % figure is
        // checked by the release-mode perf experiment at realistic scale;
        // here we just require the overhead not to exceed compression
        // wholesale.
        assert!(
            r.timings.overhead_fraction() < 2.0,
            "overhead {}",
            r.timings.overhead_fraction()
        );
    }

    #[test]
    fn ratio_math_is_consistent() {
        let (p, field) = pipeline(16, 2, 0.2);
        let r = p.run_adaptive(&field);
        assert_eq!(r.original_bytes, 16 * 16 * 16 * 4);
        assert!((r.ratio() - r.original_bytes as f64 / r.compressed_bytes as f64).abs() < 1e-12);
        assert!((r.bit_rate(32.0) - 32.0 / r.ratio()).abs() < 1e-9);
    }

    #[test]
    fn adaptive_improves_at_multiple_partition_counts() {
        // The full Fig. 18 sweep (improvement grows as partitions shrink)
        // needs paper-scale bricks where container headers are negligible;
        // it lives in the bench crate. At unit-test scale we verify the
        // weaker invariant: adaptive ≥ traditional at every granularity.
        let field = contrast_field(32);
        let improvement = |parts: usize| {
            let dec = Decomposition::cubic(32, parts).unwrap();
            let cfg = PipelineConfig::new(dec, QualityTarget::fft_only(0.2));
            let (p, _) = InSituPipeline::calibrate(
                cfg,
                &field,
                1.max(parts / 2),
                &[0.05, 0.1, 0.2, 0.4, 0.8],
            );
            let a = p.run_adaptive(&field).ratio();
            let t = p.run_traditional(&field, 0.2).ratio();
            a / t
        };
        for parts in [2usize, 4, 8] {
            let imp = improvement(parts);
            // Matched-bound comparison: adaptive must never lose more than
            // model-fit noise (a few %); real gains need paper-scale data
            // (bench crate experiments).
            assert!(imp > 0.95, "parts {parts}: improvement {imp}");
        }
    }
}
