//! The in situ flow (paper §3.6 & §4.3): feature extraction → joint
//! (codec, bound) optimization → per-partition compression, plus the
//! traditional single-bound baseline and the timing breakdown behind the
//! "≈1 % overhead" claim.
//!
//! ## Multi-codec emission
//! Partitions are stored as versioned [`Container`]s (v2: codec tag +
//! payload checksum, see `codec_core::container`), so a snapshot may mix
//! backends freely — the optimizer picks, per partition, both the codec
//! and its bound against the global quality target. Legacy v1 containers
//! (bare rsz bytes) still decode through the same path. The enabled
//! backend set is [`PipelineConfig::codecs`]; the default is rsz-only,
//! which reproduces the paper's single-codec behaviour, and
//! [`PipelineConfig::with_codecs`] opens the selection space.
//!
//! ## Parallel execution & determinism
//! Compression ([`InSituPipeline::run_adaptive`]/[`run_traditional`]) and
//! decompression ([`PipelineResult::reconstruct`]) shard across partitions:
//! each brick is handled by a scoped worker from the rayon shim's dynamic
//! scheduler (bounded by `available_parallelism`), and per-worker scratch
//! buffers (`codec_core::CodecScratch`, bundling every backend's) keep the
//! hot loops allocation-free. Partition results are merged in id order and
//! each partition's walk is independent of every other's, so the
//! containers are **byte-identical** to a serial run — worker count and
//! scheduling order can never leak into simulation output (enforced by
//! `tests/parallel_determinism.rs`, including the mixed-codec case).
//!
//! [`run_traditional`]: InSituPipeline::run_traditional

use crate::optimizer::{OptimizedConfig, Optimizer, QualityTarget};
use crate::ratio_model::{
    extract_features, sample_bricks, CalibrationError, CalibrationReport, CodecModelBank,
    PartitionFeature,
};
use codec_core::{CodecId, Container};
use gridlab::{Decomposition, Field3, GridError, Scalar};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Static configuration of the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Domain decomposition (one partition per simulated rank).
    pub dec: Decomposition,
    /// Quality budget per snapshot.
    pub target: QualityTarget,
    /// Enabled codec backends, in selection-priority order; the first is
    /// the primary (traditional-baseline) codec.
    pub codecs: Vec<CodecId>,
    /// Reference bound for the boundary-cell feature extraction.
    pub eb_ref: f64,
}

impl PipelineConfig {
    /// Single-codec (rsz) pipeline — the paper's configuration.
    pub fn new(dec: Decomposition, target: QualityTarget) -> Self {
        Self { dec, target, codecs: vec![CodecId::Rsz], eb_ref: 1.0 }
    }

    /// Builder-style: open the codec selection space.
    pub fn with_codecs(mut self, codecs: &[CodecId]) -> Self {
        assert!(!codecs.is_empty(), "need at least one codec");
        self.codecs = codecs.to_vec();
        self
    }
}

/// Wall-clock breakdown of one pipeline run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Per-partition feature extraction (mean + boundary cells).
    pub features: Duration,
    /// Error-bound optimization.
    pub optimize: Duration,
    /// Actual compression.
    pub compress: Duration,
}

impl Timings {
    /// Overhead of the adaptive machinery relative to compression —
    /// the paper reports ≈1 % (mean only) to ≈5 % (with boundary cells).
    pub fn overhead_fraction(&self) -> f64 {
        let extra = self.features.as_secs_f64() + self.optimize.as_secs_f64();
        let base = self.compress.as_secs_f64();
        if base == 0.0 {
            0.0
        } else {
            extra / base
        }
    }
}

/// Outcome of compressing one field through the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Per-partition features the optimizer priced (empty for the
    /// traditional baseline, which never extracts them). The streaming
    /// session's drift detector reads these to compare predicted vs
    /// measured per-partition bit rates.
    pub features: Vec<PartitionFeature>,
    /// Per-partition bounds used (uniform for the traditional baseline).
    pub ebs: Vec<f64>,
    /// Per-partition codec assignment (uniform for the traditional
    /// baseline).
    pub codecs: Vec<CodecId>,
    /// Per-partition v2 containers (partition-id order).
    pub containers: Vec<Container>,
    /// Uncompressed size in bytes.
    pub original_bytes: usize,
    /// Total compressed size in bytes.
    pub compressed_bytes: usize,
    /// The optimizer's full decision (None for the traditional baseline).
    pub decision: Option<OptimizedConfig>,
    /// Phase timings.
    pub timings: Timings,
}

impl PipelineResult {
    /// Overall compression ratio.
    pub fn ratio(&self) -> f64 {
        self.original_bytes as f64 / self.compressed_bytes as f64
    }

    /// Overall bit rate, assuming `bits` per original value.
    pub fn bit_rate(&self, bits: f64) -> f64 {
        bits * self.compressed_bytes as f64 / self.original_bytes as f64
    }

    /// How many partitions each codec won.
    pub fn codec_counts(&self) -> Vec<(CodecId, usize)> {
        codec_core::codec_counts(self.codecs.iter().copied())
    }

    /// `(min, max)` of the per-partition bounds, ignoring NaNs; `None`
    /// when no partition carries a finite bound (or there are none).
    pub fn eb_range(&self) -> Option<(f64, f64)> {
        self.ebs.iter().filter(|e| !e.is_nan()).fold(None, |acc, &e| match acc {
            None => Some((e, e)),
            Some((lo, hi)) => Some((lo.min(e), hi.max(e))),
        })
    }

    /// Per-partition **measured** bit rate (bits/value) of the codec
    /// payloads — the wrapper overhead is excluded, matching what the rate
    /// models calibrate on, so this is directly comparable to
    /// [`RatioModel::predict_bitrate`](crate::ratio_model::RatioModel::predict_bitrate).
    pub fn measured_bitrates(&self) -> Vec<f64> {
        self.containers
            .iter()
            .map(|c| 8.0 * c.payload_len() as f64 / c.dims().len() as f64)
            .collect()
    }

    /// Decompress every partition and reassemble the full field.
    pub fn reconstruct<T: Scalar>(&self, dec: &Decomposition) -> Result<Field3<T>, GridError> {
        let bricks: Vec<Field3<T>> = self
            .containers
            .par_iter()
            .map(|c| c.decode_field::<T>().expect("self-produced container decodes"))
            .collect();
        dec.assemble(&bricks)
    }
}

/// The adaptive in situ pipeline.
///
/// The configuration is deliberately not public: between-run retargeting
/// goes through [`InSituPipeline::set_target`], and time-series loops
/// should drive a [`StreamSession`](crate::session::StreamSession), whose
/// [`QualityPolicy`](crate::session::QualityPolicy) is the sanctioned way
/// to evolve the target across snapshots.
#[derive(Debug, Clone)]
pub struct InSituPipeline {
    cfg: PipelineConfig,
    pub optimizer: Optimizer,
}

impl InSituPipeline {
    /// Build with an already-fitted model bank.
    pub fn with_models(cfg: PipelineConfig, models: CodecModelBank) -> Self {
        for &codec in &cfg.codecs {
            assert!(models.get(codec).is_some(), "no model fitted for enabled codec {codec}");
        }
        Self { cfg, optimizer: Optimizer::with_models(models) }
    }

    /// Calibrate one rate model per enabled codec on sample partitions of
    /// `field` (every `sample_stride`-th partition, compressed at each
    /// bound in `sweep`), then build the pipeline. This is the one-off
    /// trial step; it replaces the traditional per-snapshot
    /// trial-and-error. Returns the primary codec's diagnostics; see
    /// [`InSituPipeline::calibrate_all`] for every backend's. Fails with
    /// a typed [`CalibrationError`] when the sample bricks carry
    /// non-finite cells (the fit would be silently poisoned).
    pub fn calibrate<T: Scalar>(
        cfg: PipelineConfig,
        field: &Field3<T>,
        sample_stride: usize,
        sweep: &[f64],
    ) -> Result<(Self, CalibrationReport), CalibrationError> {
        let (pipeline, mut reports) = Self::calibrate_all(cfg, field, sample_stride, sweep)?;
        let primary = reports.remove(0).1;
        Ok((pipeline, primary))
    }

    /// [`InSituPipeline::calibrate`] returning the per-codec diagnostics
    /// for every enabled backend (bank priority order).
    pub fn calibrate_all<T: Scalar>(
        cfg: PipelineConfig,
        field: &Field3<T>,
        sample_stride: usize,
        sweep: &[f64],
    ) -> Result<(Self, Vec<(CodecId, CalibrationReport)>), CalibrationError> {
        let bricks = sample_bricks(field, &cfg.dec, sample_stride);
        let refs: Vec<&Field3<T>> = bricks.iter().collect();
        let (models, reports) = CodecModelBank::calibrate(&cfg.codecs, &refs, sweep)?;
        Ok((Self::with_models(cfg, models), reports))
    }

    /// Read-only view of the pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// Retarget the quality budget between runs — the one sanctioned
    /// mutation of a built pipeline. For snapshot series prefer
    /// [`StreamSession`](crate::session::StreamSession), which derives the
    /// target each snapshot from a [`QualityPolicy`](crate::session::QualityPolicy).
    pub fn set_target(&mut self, target: QualityTarget) {
        self.cfg.target = target;
    }

    /// Swap the fitted model bank (drift-triggered recalibration installs
    /// refreshed models through this), preserving the rest of the
    /// optimizer's state (e.g. a tuned `clamp_factor`). Panics if an
    /// enabled codec has no model, mirroring
    /// [`InSituPipeline::with_models`].
    pub fn set_models(&mut self, models: CodecModelBank) {
        for &codec in &self.cfg.codecs {
            assert!(models.get(codec).is_some(), "no model fitted for enabled codec {codec}");
        }
        self.optimizer.models = models;
    }

    /// Extract the per-partition features the optimizer prices, honouring
    /// the configured halo threshold and reference bound.
    pub fn extract_features<T: Scalar>(&self, field: &Field3<T>) -> Vec<PartitionFeature> {
        let t_boundary = self.cfg.target.halo.map(|h| h.t_boundary).unwrap_or(0.0);
        extract_features(field, &self.cfg.dec, t_boundary, self.cfg.eb_ref)
    }

    /// Run the full adaptive flow on one field.
    pub fn run_adaptive<T: Scalar>(&self, field: &Field3<T>) -> PipelineResult {
        let t0 = Instant::now();
        let features = self.extract_features(field);
        let t_features = t0.elapsed();
        let mut r = self.run_with_features(field, features);
        r.timings.features = t_features;
        r
    }

    /// The optimize + compress tail of the adaptive flow over
    /// already-extracted features (the streaming session extracts features
    /// once per snapshot and reuses them for policy resolution). The
    /// returned feature timing is zero; callers that measured extraction
    /// themselves patch it in.
    pub fn run_with_features<T: Scalar>(
        &self,
        field: &Field3<T>,
        features: Vec<PartitionFeature>,
    ) -> PipelineResult {
        assert_eq!(features.len(), self.cfg.dec.num_partitions());
        let t1 = Instant::now();
        let decision = self.optimizer.optimize(&features, &self.cfg.target);
        let t_optimize = t1.elapsed();

        let (containers, t_compress) = self.compress_with(field, &decision.ebs, &decision.codecs);
        let compressed_bytes = containers.iter().map(|c| c.len()).sum();
        PipelineResult {
            features,
            ebs: decision.ebs.clone(),
            codecs: decision.codecs.clone(),
            containers,
            original_bytes: field.len() * T::BYTES,
            compressed_bytes,
            decision: Some(decision),
            timings: Timings {
                features: Duration::ZERO,
                optimize: t_optimize,
                compress: t_compress,
            },
        }
    }

    /// The traditional baseline: the primary codec at the same uniform
    /// bound everywhere.
    pub fn run_traditional<T: Scalar>(&self, field: &Field3<T>, eb: f64) -> PipelineResult {
        assert!(eb > 0.0);
        let m = self.cfg.dec.num_partitions();
        let ebs = vec![eb; m];
        let codecs = vec![self.cfg.codecs[0]; m];
        let (containers, t_compress) = self.compress_with(field, &ebs, &codecs);
        let compressed_bytes = containers.iter().map(|c| c.len()).sum();
        PipelineResult {
            features: Vec::new(),
            ebs,
            codecs,
            containers,
            original_bytes: field.len() * T::BYTES,
            compressed_bytes,
            decision: None,
            timings: Timings { compress: t_compress, ..Timings::default() },
        }
    }

    /// Run the adaptive flow restricted to a single backend (for
    /// codec-vs-codec comparisons at the same quality target).
    pub fn run_adaptive_single<T: Scalar>(
        &self,
        field: &Field3<T>,
        codec: CodecId,
    ) -> PipelineResult {
        let model = *self
            .optimizer
            .models
            .get(codec)
            .unwrap_or_else(|| panic!("no model fitted for codec {codec}"));
        let mut cfg = self.cfg.clone();
        cfg.codecs = vec![codec];
        let single = Self::with_models(cfg, CodecModelBank::single(codec, model));
        single.run_adaptive(field)
    }

    fn compress_with<T: Scalar>(
        &self,
        field: &Field3<T>,
        ebs: &[f64],
        codecs: &[CodecId],
    ) -> (Vec<Container>, Duration) {
        let dec = &self.cfg.dec;
        assert_eq!(ebs.len(), dec.num_partitions());
        assert_eq!(codecs.len(), dec.num_partitions());
        let t = Instant::now();
        let containers = dec.par_map(field, |p, brick| {
            Container::compress(codecs[p.id], brick.as_slice(), brick.dims(), ebs[p.id])
        });
        (containers, t.elapsed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Dim3;

    /// A field with strong partition-to-partition contrast: smooth low
    /// background with a few rough bright octants — the regime where
    /// adaptive configuration pays off.
    fn contrast_field(n: usize) -> Field3<f32> {
        let mut state = 3u64;
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let bright = x >= n / 2 && y >= n / 2;
            if bright {
                (200.0 + 80.0 * noise + (z as f64 * 0.9).sin() * 40.0) as f32
            } else {
                (10.0 + 0.5 * (x as f64 * 0.2).sin() + 0.1 * noise) as f32
            }
        })
    }

    fn pipeline(n: usize, parts: usize, eb_avg: f64) -> (InSituPipeline, Field3<f32>) {
        let field = contrast_field(n);
        let dec = Decomposition::cubic(n, parts).unwrap();
        let cfg = PipelineConfig::new(dec, QualityTarget::fft_only(eb_avg));
        let (p, _) = InSituPipeline::calibrate(cfg, &field, 3, &[0.05, 0.1, 0.2, 0.4, 0.8])
            .expect("finite field calibrates");
        (p, field)
    }

    fn multi_pipeline(n: usize, parts: usize, eb_avg: f64) -> (InSituPipeline, Field3<f32>) {
        let field = contrast_field(n);
        let dec = Decomposition::cubic(n, parts).unwrap();
        let cfg =
            PipelineConfig::new(dec, QualityTarget::fft_only(eb_avg)).with_codecs(&CodecId::ALL);
        let (p, _) = InSituPipeline::calibrate(cfg, &field, 3, &[0.05, 0.1, 0.2, 0.4, 0.8])
            .expect("finite field calibrates");
        (p, field)
    }

    #[test]
    fn adaptive_matches_mean_budget_and_beats_traditional() {
        let (p, field) = pipeline(32, 4, 0.2);
        let adaptive = p.run_adaptive(&field);
        let traditional = p.run_traditional(&field, 0.2);
        // Same modeled FFT quality (mean eb equal) but better ratio.
        let mean_eb = adaptive.ebs.iter().sum::<f64>() / adaptive.ebs.len() as f64;
        assert!(mean_eb <= 0.2 * 1.000001, "mean {mean_eb}");
        assert!(
            adaptive.ratio() > traditional.ratio(),
            "adaptive {} vs traditional {}",
            adaptive.ratio(),
            traditional.ratio()
        );
    }

    #[test]
    fn bounds_vary_across_partitions() {
        let (p, field) = pipeline(32, 4, 0.2);
        let r = p.run_adaptive(&field);
        let min = r.ebs.iter().fold(f64::MAX, |a, &b| a.min(b));
        let max = r.ebs.iter().fold(f64::MIN, |a, &b| a.max(b));
        assert!(max > min * 1.5, "bounds did not adapt: [{min}, {max}]");
    }

    #[test]
    fn reconstruction_respects_per_partition_bounds() {
        let (p, field) = pipeline(16, 2, 0.3);
        let r = p.run_adaptive(&field);
        let recon: Field3<f32> = r.reconstruct(&p.cfg.dec).unwrap();
        let bricks_o = p.cfg.dec.split(&field);
        let bricks_r = p.cfg.dec.split(&recon);
        for ((bo, br), &eb) in bricks_o.iter().zip(&bricks_r).zip(&r.ebs) {
            let err = bo.max_abs_diff(br);
            assert!(err <= eb + 1e-9, "partition err {err} > eb {eb}");
        }
    }

    #[test]
    fn traditional_run_has_uniform_bounds() {
        let (p, field) = pipeline(16, 2, 0.3);
        let r = p.run_traditional(&field, 0.25);
        assert!(r.ebs.iter().all(|&e| e == 0.25));
        assert!(r.codecs.iter().all(|&c| c == CodecId::Rsz));
        assert!(r.decision.is_none());
        let recon: Field3<f32> = r.reconstruct(&p.cfg.dec).unwrap();
        assert!(field.max_abs_diff(&recon) <= 0.25 + 1e-9);
    }

    #[test]
    fn timings_are_populated_and_overhead_small() {
        let (p, field) = pipeline(32, 4, 0.2);
        let r = p.run_adaptive(&field);
        assert!(r.timings.compress > Duration::ZERO);
        // Sanity only: at unit-test grid sizes (32³) thread-pool fixed
        // costs dominate both phases, so the paper's 1–5 % figure is
        // checked by the release-mode perf experiment at realistic scale;
        // here we just require the overhead not to exceed compression
        // wholesale.
        assert!(r.timings.overhead_fraction() < 2.0, "overhead {}", r.timings.overhead_fraction());
    }

    #[test]
    fn eb_range_spans_the_bounds() {
        let (p, field) = pipeline(32, 4, 0.2);
        let r = p.run_adaptive(&field);
        let (lo, hi) = r.eb_range().expect("non-empty run");
        assert!(lo <= hi);
        assert!(r.ebs.iter().all(|&e| (lo..=hi).contains(&e)));
        // NaN-safe: poisoning one entry must not poison the range.
        let mut poisoned = r.clone();
        poisoned.ebs[0] = f64::NAN;
        let (plo, phi) = poisoned.eb_range().expect("other entries remain");
        assert!(plo.is_finite() && phi.is_finite());
    }

    #[test]
    fn eb_range_on_empty_and_single_partition_results() {
        let empty = PipelineResult {
            features: Vec::new(),
            ebs: Vec::new(),
            codecs: Vec::new(),
            containers: Vec::new(),
            original_bytes: 0,
            compressed_bytes: 0,
            decision: None,
            timings: Timings::default(),
        };
        assert_eq!(empty.eb_range(), None);
        let mut all_nan = empty.clone();
        all_nan.ebs = vec![f64::NAN];
        assert_eq!(all_nan.eb_range(), None);

        // Single partition: a 16³ domain decomposed 1×1×1 (calibration
        // needs ≥ 2 sample bricks, so install a model directly).
        let field = contrast_field(16);
        let dec = Decomposition::cubic(16, 1).unwrap();
        let cfg = PipelineConfig::new(dec, QualityTarget::fft_only(0.3));
        let model = crate::ratio_model::RatioModel { c: -0.5, a0: 0.5, a1: 0.3 };
        let p = InSituPipeline::with_models(cfg, CodecModelBank::single(CodecId::Rsz, model));
        let r = p.run_traditional(&field, 0.3);
        assert_eq!(r.eb_range(), Some((0.3, 0.3)));
    }

    #[test]
    fn ratio_math_is_consistent() {
        let (p, field) = pipeline(16, 2, 0.2);
        let r = p.run_adaptive(&field);
        assert_eq!(r.original_bytes, 16 * 16 * 16 * 4);
        assert!((r.ratio() - r.original_bytes as f64 / r.compressed_bytes as f64).abs() < 1e-12);
        assert!((r.bit_rate(32.0) - 32.0 / r.ratio()).abs() < 1e-9);
    }

    #[test]
    fn adaptive_improves_at_multiple_partition_counts() {
        // The full Fig. 18 sweep (improvement grows as partitions shrink)
        // needs paper-scale bricks where container headers are negligible;
        // it lives in the bench crate. At unit-test scale we verify the
        // weaker invariant: adaptive ≥ traditional at every granularity.
        let field = contrast_field(32);
        let improvement = |parts: usize| {
            let dec = Decomposition::cubic(32, parts).unwrap();
            let cfg = PipelineConfig::new(dec, QualityTarget::fft_only(0.2));
            let (p, _) = InSituPipeline::calibrate(
                cfg,
                &field,
                1.max(parts / 2),
                &[0.05, 0.1, 0.2, 0.4, 0.8],
            )
            .expect("finite field calibrates");
            let a = p.run_adaptive(&field).ratio();
            let t = p.run_traditional(&field, 0.2).ratio();
            a / t
        };
        for parts in [2usize, 4, 8] {
            let imp = improvement(parts);
            // Matched-bound comparison: adaptive must never lose more than
            // model-fit noise (a few %); real gains need paper-scale data
            // (bench crate experiments).
            assert!(imp > 0.95, "parts {parts}: improvement {imp}");
        }
    }

    // --- multi-codec ------------------------------------------------------

    #[test]
    fn containers_are_v2_and_tagged() {
        let (p, field) = multi_pipeline(16, 2, 0.3);
        let r = p.run_adaptive(&field);
        for (c, codec) in r.containers.iter().zip(&r.codecs) {
            assert_eq!(c.version(), codec_core::CONTAINER_VERSION);
            assert_eq!(c.codec(), *codec);
            assert!(c.checksum().is_some());
        }
    }

    #[test]
    fn multi_codec_reconstruction_respects_bounds() {
        let (p, field) = multi_pipeline(16, 2, 0.3);
        let r = p.run_adaptive(&field);
        let recon: Field3<f32> = r.reconstruct(&p.cfg.dec).unwrap();
        let bricks_o = p.cfg.dec.split(&field);
        let bricks_r = p.cfg.dec.split(&recon);
        for (((bo, br), &eb), codec) in bricks_o.iter().zip(&bricks_r).zip(&r.ebs).zip(&r.codecs) {
            let err = bo.max_abs_diff(br);
            assert!(err <= eb + 1e-9, "{codec} partition err {err} > eb {eb}");
        }
    }

    #[test]
    fn single_codec_restriction_uses_one_backend() {
        let (p, field) = multi_pipeline(16, 2, 0.3);
        for codec in CodecId::ALL {
            let r = p.run_adaptive_single(&field, codec);
            assert!(r.codecs.iter().all(|&c| c == codec), "{codec}: {:?}", r.codec_counts());
            let recon: Field3<f32> = r.reconstruct(&p.cfg.dec).unwrap();
            let worst = field.max_abs_diff(&recon);
            let max_eb = r.ebs.iter().fold(0.0f64, |a, &b| a.max(b));
            assert!(worst <= max_eb + 1e-9, "{codec}: {worst} > {max_eb}");
        }
    }

    #[test]
    fn codec_counts_sum_to_partitions() {
        let (p, field) = multi_pipeline(32, 4, 0.2);
        let r = p.run_adaptive(&field);
        let total: usize = r.codec_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, p.cfg.dec.num_partitions());
    }

    #[test]
    fn set_models_preserves_optimizer_tuning() {
        let (mut p, _) = pipeline(16, 2, 0.3);
        p.optimizer.clamp_factor = 8.0;
        let bank = p.optimizer.models.clone();
        p.set_models(bank);
        assert_eq!(p.optimizer.clamp_factor, 8.0, "swapping models must not reset tuning");
    }

    #[test]
    fn with_models_rejects_missing_codec() {
        let field = contrast_field(16);
        let dec = Decomposition::cubic(16, 2).unwrap();
        let cfg = PipelineConfig::new(dec.clone(), QualityTarget::fft_only(0.2));
        let (p, _) = InSituPipeline::calibrate(cfg, &field, 2, &[0.1, 0.2, 0.4])
            .expect("finite field calibrates");
        // rsz-only bank, but a config that enables both codecs:
        let both =
            PipelineConfig::new(dec, QualityTarget::fft_only(0.2)).with_codecs(&CodecId::ALL);
        let bank = p.optimizer.models.clone();
        assert!(std::panic::catch_unwind(move || InSituPipeline::with_models(both, bank)).is_err());
    }
}
