//! Per-partition error-bound optimization (paper §3.6, Eq. 16).
//!
//! Given the quality budget expressed as an **average** bound `eb_avg`
//! (from the FFT model's Eq. 10 inversion), the optimizer equalises the
//! marginal bit-cost `∂b_m/∂eb_m` across partitions — the paper's stated
//! condition ("their derivatives of bit-rate to error-bound curve are the
//! same", §3.6). For the power-law rate model `b_m = C_m·eb^c` under the
//! constraint `mean(eb_m) = eb_avg`, the stationary point is
//!
//! ```text
//! eb_m = eb_avg · (C_m / C_a)^(1/(1−c)) · κ
//! ```
//!
//! with `C_a` the coefficient at the average of the partition means and
//! `κ` a normaliser restoring the mean budget. (The paper's Eq. 16 as
//! typeset uses `exp(ln(C_m/C_a)/c)`, which *decreases* in `C_m` for
//! `c < 0` — the opposite of both the derivative-equalisation condition it
//! is derived from and the paper's own narrative of trading quality on
//! low-compressibility partitions; we implement the stationarity condition
//! of their Eq. 15, and DESIGN.md records the discrepancy.)
//! Outlier partitions that fit the model badly would otherwise get absurd
//! bounds, so each `eb_m` is clamped to `[eb_avg/4, 4·eb_avg]` (§3.6), and
//! the vector is rescaled so the *mean* bound still meets the budget.
//! When a halo-finder constraint is present, the modeled mass fault of the
//! chosen combination is checked and, if violated, the whole vector is
//! scaled down to the halo boundary condition.

use crate::error_model::halo::HaloErrorModel;
use crate::ratio_model::{PartitionFeature, RatioModel};
use serde::{Deserialize, Serialize};

/// Quality budget for one field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityTarget {
    /// Average error bound allowed by the FFT/power-spectrum model.
    pub eb_avg: f64,
    /// Optional halo-finder constraint (baryon density only).
    pub halo: Option<HaloTarget>,
}

/// Halo-finder boundary condition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HaloTarget {
    /// Candidate threshold of the halo finder.
    pub t_boundary: f64,
    /// Acceptable total |mass| fault (same units as cell density × cells).
    pub mass_fault_budget: f64,
}

impl QualityTarget {
    /// FFT-only target.
    pub fn fft_only(eb_avg: f64) -> Self {
        assert!(eb_avg > 0.0);
        Self { eb_avg, halo: None }
    }

    /// FFT target plus a halo mass-fault budget.
    pub fn with_halo(eb_avg: f64, t_boundary: f64, mass_fault_budget: f64) -> Self {
        assert!(eb_avg > 0.0 && mass_fault_budget >= 0.0);
        Self { eb_avg, halo: Some(HaloTarget { t_boundary, mass_fault_budget }) }
    }
}

/// The optimizer: rate model + clamp policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Optimizer {
    pub ratio_model: RatioModel,
    /// Clamp factor `f`: bounds stay within `[eb_avg/f, f·eb_avg]`.
    pub clamp_factor: f64,
}

/// The optimizer's decision for one field/snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizedConfig {
    /// Per-partition absolute error bounds (partition-id order).
    pub ebs: Vec<f64>,
    /// The average bound actually realised (≤ target's `eb_avg` + ε).
    pub eb_avg: f64,
    /// Model-predicted overall bit rate (bits/value).
    pub predicted_bitrate: f64,
    /// Modeled halo mass fault of this combination, when a halo target
    /// was supplied.
    pub predicted_mass_fault: Option<f64>,
    /// True when the halo boundary condition forced a down-scale.
    pub halo_limited: bool,
}

impl Optimizer {
    pub fn new(ratio_model: RatioModel) -> Self {
        Self { ratio_model, clamp_factor: 4.0 }
    }

    /// Compute the optimized per-partition bounds for the given features.
    pub fn optimize(
        &self,
        features: &[PartitionFeature],
        target: &QualityTarget,
    ) -> OptimizedConfig {
        assert!(!features.is_empty(), "no partitions to optimize");
        assert!(self.clamp_factor > 1.0);
        let m = features.len() as f64;
        let eb_avg = target.eb_avg;
        let model = &self.ratio_model;

        // Derivative-equalising form of Eq. 16 with C_a at the average
        // mean: eb_m ∝ C_m^(1/(1−c)).
        let avg_mean = features.iter().map(|f| f.mean).sum::<f64>() / m;
        let c_a = model.coefficient(avg_mean);
        let exponent = 1.0 / (1.0 - model.c);
        let mut ebs: Vec<f64> = features
            .iter()
            .map(|f| {
                let c_m = model.coefficient(f.mean);
                eb_avg * (c_m / c_a).powf(exponent)
            })
            .collect();

        // Clamp outliers, then restore the mean budget. Scaling down never
        // violates the upper clamp, so a few iterations settle.
        let lo = eb_avg / self.clamp_factor;
        let hi = eb_avg * self.clamp_factor;
        for _ in 0..8 {
            for e in &mut ebs {
                *e = e.clamp(lo, hi);
            }
            let mean = ebs.iter().sum::<f64>() / m;
            if (mean - eb_avg).abs() <= 1e-12 * eb_avg {
                break;
            }
            let s = eb_avg / mean;
            for e in &mut ebs {
                *e *= s;
            }
        }
        // Final guarantee: the budget is never exceeded.
        let mean = ebs.iter().sum::<f64>() / m;
        if mean > eb_avg {
            let s = eb_avg / mean;
            for e in &mut ebs {
                *e *= s;
            }
        }

        // Halo boundary condition (§3.6): scale the combination down if its
        // modeled mass fault exceeds the budget.
        let mut halo_limited = false;
        let predicted_mass_fault = target.halo.map(|h| {
            let hm = HaloErrorModel::new(h.t_boundary);
            let fault_at = |ebs: &[f64]| {
                let nbc: Vec<f64> = features
                    .iter()
                    .zip(ebs)
                    .map(|(f, &e)| HaloErrorModel::boundary_cells_at(f.boundary_cells_ref, f.eb_ref, e))
                    .collect();
                hm.expected_mass_fault(&nbc)
            };
            let fault = fault_at(&ebs);
            if fault > h.mass_fault_budget && fault > 0.0 {
                let s = h.mass_fault_budget / fault;
                for e in &mut ebs {
                    *e *= s;
                }
                halo_limited = true;
                fault_at(&ebs)
            } else {
                fault
            }
        });

        let means: Vec<f64> = features.iter().map(|f| f.mean).collect();
        let predicted_bitrate = model.predict_overall_bitrate(&means, &ebs);
        let eb_avg_real = ebs.iter().sum::<f64>() / m;
        OptimizedConfig {
            ebs,
            eb_avg: eb_avg_real,
            predicted_bitrate,
            predicted_mass_fault,
            halo_limited,
        }
    }

    /// The traditional static configuration: one bound everywhere.
    pub fn traditional(&self, features: &[PartitionFeature], eb: f64) -> OptimizedConfig {
        assert!(!features.is_empty() && eb > 0.0);
        let means: Vec<f64> = features.iter().map(|f| f.mean).collect();
        let ebs = vec![eb; features.len()];
        OptimizedConfig {
            predicted_bitrate: self.ratio_model.predict_overall_bitrate(&means, &ebs),
            ebs,
            eb_avg: eb,
            predicted_mass_fault: None,
            halo_limited: false,
        }
    }
}

/// Bit-quality ratio of a partition — the derivative `db/d(eb)` of the
/// modeled rate curve at the chosen bound (Fig. 12's y-axis). After
/// optimization every partition should sit at a similar value.
pub fn bit_quality_ratio(model: &RatioModel, mean: f64, eb: f64) -> f64 {
    // d/d(eb) [C·eb^c] = C·c·eb^(c−1)
    model.coefficient(mean) * model.c * eb.powf(model.c - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RatioModel {
        // b = C·eb^-0.5, C = 0.5 + 0.3·ln(mean+1e-9)
        RatioModel { c: -0.5, a0: 0.5, a1: 0.3 }
    }

    fn feats(means: &[f64]) -> Vec<PartitionFeature> {
        means
            .iter()
            .map(|&m| PartitionFeature {
                mean: m,
                boundary_cells_ref: m, // proportional for test purposes
                eb_ref: 1.0,
                cells: 4096,
            })
            .collect()
    }

    #[test]
    fn equal_partitions_get_equal_bounds() {
        let opt = Optimizer::new(model());
        let cfg = opt.optimize(&feats(&[10.0, 10.0, 10.0]), &QualityTarget::fft_only(0.2));
        for &e in &cfg.ebs {
            assert!((e - 0.2).abs() < 1e-9);
        }
        assert!((cfg.eb_avg - 0.2).abs() < 1e-9);
        assert!(!cfg.halo_limited);
    }

    #[test]
    fn compressible_partitions_get_larger_bounds() {
        // With c < 0 and C increasing in mean: high-mean (hard) partitions
        // get eb above average, trading their quality for ratio — and the
        // optimizer's direction is consistent with Eq. 16.
        let opt = Optimizer::new(model());
        let f = feats(&[1.0, 1000.0]);
        let cfg = opt.optimize(&f, &QualityTarget::fft_only(0.2));
        let c0 = model().coefficient(1.0);
        let c1 = model().coefficient(1000.0);
        assert!(c1 > c0);
        assert!(cfg.ebs[1] > cfg.ebs[0], "{:?}", cfg.ebs);
    }

    #[test]
    fn mean_budget_is_respected() {
        let opt = Optimizer::new(model());
        let means: Vec<f64> = (1..=64).map(|i| i as f64 * 7.0).collect();
        let cfg = opt.optimize(&feats(&means), &QualityTarget::fft_only(0.1));
        let mean_eb = cfg.ebs.iter().sum::<f64>() / cfg.ebs.len() as f64;
        assert!(mean_eb <= 0.1 * (1.0 + 1e-9), "mean {mean_eb}");
        assert!(mean_eb >= 0.09, "budget left unused: {mean_eb}");
    }

    #[test]
    fn clamping_bounds_extremes() {
        let opt = Optimizer::new(model());
        // Huge spread in means would produce wild bounds without clamps.
        let cfg = opt.optimize(&feats(&[1e-6, 1.0, 1e12]), &QualityTarget::fft_only(0.2));
        for &e in &cfg.ebs {
            assert!((0.2 / 4.0 - 1e-12..=0.2 * 4.0 + 1e-12).contains(&e), "eb {e}");
        }
    }

    #[test]
    fn equalizes_bit_quality_ratio() {
        // Fig. 12's claim: after optimization the |d bitrate/d eb| spread
        // across partitions shrinks versus the traditional configuration.
        let m = model();
        let opt = Optimizer::new(m);
        let means = [2.0, 8.0, 32.0, 128.0, 512.0];
        let f = feats(&means);
        let adaptive = opt.optimize(&f, &QualityTarget::fft_only(0.2));
        let spread = |ebs: &[f64]| {
            let qs: Vec<f64> = means
                .iter()
                .zip(ebs)
                .map(|(&mean, &e)| bit_quality_ratio(&m, mean, e).abs())
                .collect();
            let max = qs.iter().fold(f64::MIN, |a, &b| a.max(b));
            let min = qs.iter().fold(f64::MAX, |a, &b| a.min(b));
            max / min
        };
        let uniform = vec![0.2; 5];
        assert!(spread(&adaptive.ebs) < spread(&uniform), "adaptive should equalise");
    }

    #[test]
    fn adaptive_beats_traditional_in_predicted_ratio() {
        let opt = Optimizer::new(model());
        let means = [1.0, 5.0, 50.0, 500.0, 5000.0, 50000.0];
        let f = feats(&means);
        let adaptive = opt.optimize(&f, &QualityTarget::fft_only(0.2));
        let traditional = opt.traditional(&f, 0.2);
        assert!(
            adaptive.predicted_bitrate < traditional.predicted_bitrate,
            "adaptive {} vs traditional {}",
            adaptive.predicted_bitrate,
            traditional.predicted_bitrate
        );
    }

    #[test]
    fn halo_constraint_scales_down() {
        let opt = Optimizer::new(model());
        let f = feats(&[100.0, 100.0]);
        // boundary_cells_ref = 100 at eb_ref = 1; at eb ≈ 0.2 the modeled
        // fault is t_b · (2·100·0.2)/4 = t_b·10. Set budget below that.
        let t_b = 88.16;
        let unconstrained =
            opt.optimize(&f, &QualityTarget::fft_only(0.2)).predicted_bitrate;
        let tgt = QualityTarget::with_halo(0.2, t_b, 100.0);
        let cfg = opt.optimize(&f, &tgt);
        assert!(cfg.halo_limited);
        let fault = cfg.predicted_mass_fault.unwrap();
        assert!(fault <= 100.0 * (1.0 + 1e-9), "fault {fault}");
        // Tighter bounds ⇒ more bits than the unconstrained solution.
        assert!(cfg.predicted_bitrate > unconstrained);
    }

    #[test]
    fn halo_constraint_inactive_when_loose() {
        let opt = Optimizer::new(model());
        let f = feats(&[100.0, 100.0]);
        let tgt = QualityTarget::with_halo(0.2, 88.16, 1e9);
        let cfg = opt.optimize(&f, &tgt);
        assert!(!cfg.halo_limited);
        assert!(cfg.predicted_mass_fault.unwrap() < 1e9);
    }

    #[test]
    fn traditional_uses_uniform_bound() {
        let opt = Optimizer::new(model());
        let cfg = opt.traditional(&feats(&[1.0, 10.0]), 0.3);
        assert_eq!(cfg.ebs, vec![0.3, 0.3]);
        assert_eq!(cfg.eb_avg, 0.3);
    }
}
