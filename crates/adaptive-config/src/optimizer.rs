//! Per-partition (codec, error-bound) optimization (paper §3.6, Eq. 16,
//! generalised to multiple codec backends).
//!
//! Given the quality budget expressed as an **average** bound `eb_avg`
//! (from the FFT model's Eq. 10 inversion), the optimizer equalises the
//! marginal bit-cost `∂b_m/∂eb_m` across partitions — the paper's stated
//! condition ("their derivatives of bit-rate to error-bound curve are the
//! same", §3.6). For the power-law rate model `b_m = C_m·eb^c` under the
//! constraint `mean(eb_m) = eb_avg`, the single-codec stationary point is
//!
//! ```text
//! eb_m = eb_avg · (C_m / C_a)^(1/(1−c)) · κ
//! ```
//!
//! with `C_a` the coefficient at the average of the partition means and
//! `κ` a normaliser restoring the mean budget. (The paper's Eq. 16 as
//! typeset uses `exp(ln(C_m/C_a)/c)`, which *decreases* in `C_m` for
//! `c < 0` — the opposite of both the derivative-equalisation condition it
//! is derived from and the paper's own narrative of trading quality on
//! low-compressibility partitions; we implement the stationarity condition
//! of their Eq. 15, and DESIGN.md records the discrepancy.)
//!
//! ## The codec dimension
//!
//! With a [`CodecModelBank`] holding one fitted rate model per backend,
//! the decision becomes joint: pick for each partition both a codec and a
//! bound. The optimizer alternates two exact sub-steps (a small
//! coordinate descent, deterministic and convergent in ≤ 4 rounds):
//!
//! 1. **Assignment** — at the current bounds, each partition takes the
//!    codec with the lowest predicted bit rate (ties to the bank's
//!    priority order, so the primary/bound-guaranteed backend wins).
//! 2. **Bounds** — with codecs fixed, derivative equalisation across
//!    *heterogeneous* power laws: `C_m·c_m·eb_m^(c_m−1) = −μ` for a global
//!    multiplier `μ > 0`, solved for `mean(eb_m) = eb_avg` by bisection on
//!    `ln μ` (each `eb_m` is strictly decreasing in `μ`, so the mean is
//!    too).
//!
//! Outlier partitions that fit the model badly would otherwise get absurd
//! bounds, so each `eb_m` is clamped to `[eb_avg/4, 4·eb_avg]` (§3.6), and
//! the vector is rescaled so the *mean* bound still meets the budget.
//! When a halo-finder constraint is present, the modeled mass fault of the
//! chosen combination is checked and, if violated, the whole vector is
//! scaled down to the halo boundary condition. A single-codec bank takes
//! the legacy closed-form path, so existing rsz-only flows are unchanged.

use crate::error_model::halo::HaloErrorModel;
use crate::ratio_model::{CodecModelBank, PartitionFeature, RatioModel};
use codec_core::CodecId;
use serde::{Deserialize, Serialize};

/// Quality budget for one field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityTarget {
    /// Average error bound allowed by the FFT/power-spectrum model.
    pub eb_avg: f64,
    /// Optional halo-finder constraint (baryon density only).
    pub halo: Option<HaloTarget>,
}

/// Halo-finder boundary condition.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HaloTarget {
    /// Candidate threshold of the halo finder.
    pub t_boundary: f64,
    /// Acceptable total |mass| fault (same units as cell density × cells).
    pub mass_fault_budget: f64,
}

impl QualityTarget {
    /// FFT-only target.
    pub fn fft_only(eb_avg: f64) -> Self {
        assert!(eb_avg > 0.0);
        Self { eb_avg, halo: None }
    }

    /// FFT target plus a halo mass-fault budget.
    pub fn with_halo(eb_avg: f64, t_boundary: f64, mass_fault_budget: f64) -> Self {
        assert!(eb_avg > 0.0 && mass_fault_budget >= 0.0);
        Self { eb_avg, halo: Some(HaloTarget { t_boundary, mass_fault_budget }) }
    }
}

/// The optimizer: per-codec rate models + clamp policy.
#[derive(Debug, Clone, PartialEq)]
pub struct Optimizer {
    pub models: CodecModelBank,
    /// Clamp factor `f`: bounds stay within `[eb_avg/f, f·eb_avg]`.
    pub clamp_factor: f64,
}

/// The optimizer's decision for one field/snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OptimizedConfig {
    /// Per-partition absolute error bounds (partition-id order).
    pub ebs: Vec<f64>,
    /// Per-partition codec assignment (partition-id order).
    pub codecs: Vec<CodecId>,
    /// The average bound actually realised (≤ target's `eb_avg` + ε).
    pub eb_avg: f64,
    /// Model-predicted overall bit rate (bits/value).
    pub predicted_bitrate: f64,
    /// Modeled halo mass fault of this combination, when a halo target
    /// was supplied.
    pub predicted_mass_fault: Option<f64>,
    /// True when the halo boundary condition forced a down-scale.
    pub halo_limited: bool,
}

impl OptimizedConfig {
    /// How many partitions each codec won (first-appearance order; handy
    /// for asserting genuine mixing).
    pub fn codec_counts(&self) -> Vec<(CodecId, usize)> {
        codec_core::codec_counts(self.codecs.iter().copied())
    }
}

/// Power-law exponents this close to 0 (or positive, from degenerate fits
/// on incompressible/constant samples) break the stationarity algebra;
/// they are pulled to this ceiling before use.
const C_CEILING: f64 = -0.01;

fn effective_c(model: &RatioModel) -> f64 {
    model.c.min(C_CEILING)
}

impl Optimizer {
    /// Single-codec (rsz) optimizer — the legacy constructor.
    pub fn new(ratio_model: RatioModel) -> Self {
        Self::with_models(CodecModelBank::single(CodecId::Rsz, ratio_model))
    }

    /// Multi-codec optimizer over a fitted bank.
    pub fn with_models(models: CodecModelBank) -> Self {
        Self { models, clamp_factor: 4.0 }
    }

    /// The primary codec's fitted model (what legacy single-codec call
    /// sites previously read as `optimizer.ratio_model`).
    pub fn primary_model(&self) -> RatioModel {
        *self.models.primary().1
    }

    /// Compute the optimized per-partition (codec, bound) pairs.
    pub fn optimize(
        &self,
        features: &[PartitionFeature],
        target: &QualityTarget,
    ) -> OptimizedConfig {
        assert!(!features.is_empty(), "no partitions to optimize");
        assert!(self.clamp_factor > 1.0);
        let m = features.len() as f64;
        let eb_avg = target.eb_avg;

        // --- joint (codec, bound) decision -------------------------------
        let mut codecs = self.assign_codecs(features, &vec![eb_avg; features.len()]);
        let mut ebs = self.stationary_bounds(features, &codecs, eb_avg);
        if self.models.len() > 1 {
            // Coordinate descent: re-price codecs at the optimized bounds,
            // re-optimize bounds under the new assignment; deterministic
            // and settled within a few rounds (kept bounded regardless).
            for _ in 0..3 {
                let next = self.assign_codecs(features, &ebs);
                if next == codecs {
                    break;
                }
                codecs = next;
                ebs = self.stationary_bounds(features, &codecs, eb_avg);
            }
        }

        // Clamp outliers, then restore the mean budget. Scaling down never
        // violates the upper clamp, so a few iterations settle.
        let lo = eb_avg / self.clamp_factor;
        let hi = eb_avg * self.clamp_factor;
        for _ in 0..8 {
            for e in &mut ebs {
                *e = e.clamp(lo, hi);
            }
            let mean = ebs.iter().sum::<f64>() / m;
            if (mean - eb_avg).abs() <= 1e-12 * eb_avg {
                break;
            }
            let s = eb_avg / mean;
            for e in &mut ebs {
                *e *= s;
            }
        }
        // Final guarantee: the budget is never exceeded.
        let mean = ebs.iter().sum::<f64>() / m;
        if mean > eb_avg {
            let s = eb_avg / mean;
            for e in &mut ebs {
                *e *= s;
            }
        }

        // Halo boundary condition (§3.6): scale the combination down if its
        // modeled mass fault exceeds the budget.
        let mut halo_limited = false;
        let predicted_mass_fault = target.halo.map(|h| {
            let hm = HaloErrorModel::new(h.t_boundary);
            let fault_at = |ebs: &[f64]| {
                let nbc: Vec<f64> = features
                    .iter()
                    .zip(ebs)
                    .map(|(f, &e)| {
                        HaloErrorModel::boundary_cells_at(f.boundary_cells_ref, f.eb_ref, e)
                    })
                    .collect();
                hm.expected_mass_fault(&nbc)
            };
            let fault = fault_at(&ebs);
            if fault > h.mass_fault_budget && fault > 0.0 {
                let s = h.mass_fault_budget / fault;
                for e in &mut ebs {
                    *e *= s;
                }
                halo_limited = true;
                fault_at(&ebs)
            } else {
                fault
            }
        });

        let predicted_bitrate = self.predict_bitrate(features, &codecs, &ebs);
        let eb_avg_real = ebs.iter().sum::<f64>() / m;
        OptimizedConfig {
            ebs,
            codecs,
            eb_avg: eb_avg_real,
            predicted_bitrate,
            predicted_mass_fault,
            halo_limited,
        }
    }

    /// The traditional static configuration: the primary codec at one
    /// uniform bound everywhere.
    pub fn traditional(&self, features: &[PartitionFeature], eb: f64) -> OptimizedConfig {
        assert!(!features.is_empty() && eb > 0.0);
        let (primary, _) = self.models.primary();
        let codecs = vec![primary; features.len()];
        let ebs = vec![eb; features.len()];
        OptimizedConfig {
            predicted_bitrate: self.predict_bitrate(features, &codecs, &ebs),
            ebs,
            codecs,
            eb_avg: eb,
            predicted_mass_fault: None,
            halo_limited: false,
        }
    }

    /// Cheapest codec per partition at the given bounds (ties to bank
    /// priority order).
    fn assign_codecs(&self, features: &[PartitionFeature], ebs: &[f64]) -> Vec<CodecId> {
        features
            .iter()
            .zip(ebs)
            .map(|(f, &eb)| {
                let mut best = self.models.primary().0;
                let mut best_rate = f64::INFINITY;
                for (codec, model) in self.models.entries() {
                    let rate = model.predict_bitrate(f.mean, eb);
                    if rate < best_rate {
                        best_rate = rate;
                        best = *codec;
                    }
                }
                best
            })
            .collect()
    }

    /// Derivative-equalising bounds under a fixed codec assignment, with
    /// `mean(eb) = eb_avg` (pre-clamp).
    fn stationary_bounds(
        &self,
        features: &[PartitionFeature],
        codecs: &[CodecId],
        eb_avg: f64,
    ) -> Vec<f64> {
        if self.models.len() == 1 {
            // Legacy closed form: C_a at the average mean, shared exponent.
            let model = self.models.primary().1;
            let m = features.len() as f64;
            let avg_mean = features.iter().map(|f| f.mean).sum::<f64>() / m;
            let c_a = model.coefficient(avg_mean);
            let exponent = 1.0 / (1.0 - effective_c(model));
            return features
                .iter()
                .map(|f| {
                    let c_m = model.coefficient(f.mean);
                    eb_avg * (c_m / c_a).powf(exponent)
                })
                .collect();
        }

        // Heterogeneous exponents: solve C_m·|c_m|·eb_m^(c_m−1) = μ.
        // ln eb_m = (ln μ − ln(C_m·|c_m|)) / (c_m − 1), strictly decreasing
        // in ln μ, so the mean is bisectable.
        let params: Vec<(f64, f64)> = features
            .iter()
            .zip(codecs)
            .map(|(f, codec)| {
                let model = self.models.get(*codec).expect("assigned codec is in the bank");
                let c = effective_c(model);
                (model.coefficient(f.mean) * c.abs(), c)
            })
            .collect();
        let mean_at = |ln_mu: f64| -> f64 {
            params
                .iter()
                .map(|&(a, c)| ((ln_mu - a.ln()) / (c - 1.0)).clamp(-80.0, 80.0).exp())
                .sum::<f64>()
                / params.len() as f64
        };
        let (mut lo, mut hi) = (-120.0f64, 120.0f64); // ln μ bracket
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if mean_at(mid) > eb_avg {
                lo = mid; // mean too large ⇒ μ too small
            } else {
                hi = mid;
            }
        }
        let ln_mu = 0.5 * (lo + hi);
        params
            .iter()
            .map(|&(a, c)| ((ln_mu - a.ln()) / (c - 1.0)).clamp(-80.0, 80.0).exp())
            .collect()
    }

    /// Modeled overall bit rate of a (codec, bound) combination (Eq. 15:
    /// `B = Σ b_m / M`, each term priced by its partition's codec model).
    fn predict_bitrate(
        &self,
        features: &[PartitionFeature],
        codecs: &[CodecId],
        ebs: &[f64],
    ) -> f64 {
        assert_eq!(features.len(), codecs.len());
        assert_eq!(features.len(), ebs.len());
        features
            .iter()
            .zip(codecs)
            .zip(ebs)
            .map(|((f, codec), &eb)| {
                self.models
                    .get(*codec)
                    .expect("assigned codec is in the bank")
                    .predict_bitrate(f.mean, eb)
            })
            .sum::<f64>()
            / features.len() as f64
    }
}

/// Bit-quality ratio of a partition — the derivative `db/d(eb)` of the
/// modeled rate curve at the chosen bound (Fig. 12's y-axis). After
/// optimization every partition should sit at a similar value.
pub fn bit_quality_ratio(model: &RatioModel, mean: f64, eb: f64) -> f64 {
    // d/d(eb) [C·eb^c] = C·c·eb^(c−1)
    model.coefficient(mean) * model.c * eb.powf(model.c - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> RatioModel {
        // b = C·eb^-0.5, C = 0.5 + 0.3·ln(mean+1e-9)
        RatioModel { c: -0.5, a0: 0.5, a1: 0.3 }
    }

    fn feats(means: &[f64]) -> Vec<PartitionFeature> {
        means
            .iter()
            .map(|&m| PartitionFeature {
                mean: m,
                boundary_cells_ref: m, // proportional for test purposes
                eb_ref: 1.0,
                cells: 4096,
            })
            .collect()
    }

    /// A two-codec bank where codec choice flips with the partition mean:
    /// rsz prices low-mean partitions cheaper, zfp high-mean ones.
    fn mixed_bank() -> CodecModelBank {
        CodecModelBank::new(vec![
            (CodecId::Rsz, RatioModel { c: -0.5, a0: 0.5, a1: 0.6 }),
            (CodecId::Zfp, RatioModel { c: -0.4, a0: 1.5, a1: 0.3 }),
        ])
    }

    #[test]
    fn equal_partitions_get_equal_bounds() {
        let opt = Optimizer::new(model());
        let cfg = opt.optimize(&feats(&[10.0, 10.0, 10.0]), &QualityTarget::fft_only(0.2));
        for &e in &cfg.ebs {
            assert!((e - 0.2).abs() < 1e-9);
        }
        assert!((cfg.eb_avg - 0.2).abs() < 1e-9);
        assert!(!cfg.halo_limited);
        assert!(cfg.codecs.iter().all(|&c| c == CodecId::Rsz));
    }

    #[test]
    fn compressible_partitions_get_larger_bounds() {
        // With c < 0 and C increasing in mean: high-mean (hard) partitions
        // get eb above average, trading their quality for ratio — and the
        // optimizer's direction is consistent with Eq. 16.
        let opt = Optimizer::new(model());
        let f = feats(&[1.0, 1000.0]);
        let cfg = opt.optimize(&f, &QualityTarget::fft_only(0.2));
        let c0 = model().coefficient(1.0);
        let c1 = model().coefficient(1000.0);
        assert!(c1 > c0);
        assert!(cfg.ebs[1] > cfg.ebs[0], "{:?}", cfg.ebs);
    }

    #[test]
    fn mean_budget_is_respected() {
        let opt = Optimizer::new(model());
        let means: Vec<f64> = (1..=64).map(|i| i as f64 * 7.0).collect();
        let cfg = opt.optimize(&feats(&means), &QualityTarget::fft_only(0.1));
        let mean_eb = cfg.ebs.iter().sum::<f64>() / cfg.ebs.len() as f64;
        assert!(mean_eb <= 0.1 * (1.0 + 1e-9), "mean {mean_eb}");
        assert!(mean_eb >= 0.09, "budget left unused: {mean_eb}");
    }

    #[test]
    fn clamping_bounds_extremes() {
        let opt = Optimizer::new(model());
        // Huge spread in means would produce wild bounds without clamps.
        let cfg = opt.optimize(&feats(&[1e-6, 1.0, 1e12]), &QualityTarget::fft_only(0.2));
        for &e in &cfg.ebs {
            assert!((0.2 / 4.0 - 1e-12..=0.2 * 4.0 + 1e-12).contains(&e), "eb {e}");
        }
    }

    #[test]
    fn equalizes_bit_quality_ratio() {
        // Fig. 12's claim: after optimization the |d bitrate/d eb| spread
        // across partitions shrinks versus the traditional configuration.
        let m = model();
        let opt = Optimizer::new(m);
        let means = [2.0, 8.0, 32.0, 128.0, 512.0];
        let f = feats(&means);
        let adaptive = opt.optimize(&f, &QualityTarget::fft_only(0.2));
        let spread = |ebs: &[f64]| {
            let qs: Vec<f64> = means
                .iter()
                .zip(ebs)
                .map(|(&mean, &e)| bit_quality_ratio(&m, mean, e).abs())
                .collect();
            let max = qs.iter().fold(f64::MIN, |a, &b| a.max(b));
            let min = qs.iter().fold(f64::MAX, |a, &b| a.min(b));
            max / min
        };
        let uniform = vec![0.2; 5];
        assert!(spread(&adaptive.ebs) < spread(&uniform), "adaptive should equalise");
    }

    #[test]
    fn adaptive_beats_traditional_in_predicted_ratio() {
        let opt = Optimizer::new(model());
        let means = [1.0, 5.0, 50.0, 500.0, 5000.0, 50000.0];
        let f = feats(&means);
        let adaptive = opt.optimize(&f, &QualityTarget::fft_only(0.2));
        let traditional = opt.traditional(&f, 0.2);
        assert!(
            adaptive.predicted_bitrate < traditional.predicted_bitrate,
            "adaptive {} vs traditional {}",
            adaptive.predicted_bitrate,
            traditional.predicted_bitrate
        );
    }

    #[test]
    fn halo_constraint_scales_down() {
        let opt = Optimizer::new(model());
        let f = feats(&[100.0, 100.0]);
        // boundary_cells_ref = 100 at eb_ref = 1; at eb ≈ 0.2 the modeled
        // fault is t_b · (2·100·0.2)/4 = t_b·10. Set budget below that.
        let t_b = 88.16;
        let unconstrained = opt.optimize(&f, &QualityTarget::fft_only(0.2)).predicted_bitrate;
        let tgt = QualityTarget::with_halo(0.2, t_b, 100.0);
        let cfg = opt.optimize(&f, &tgt);
        assert!(cfg.halo_limited);
        let fault = cfg.predicted_mass_fault.unwrap();
        assert!(fault <= 100.0 * (1.0 + 1e-9), "fault {fault}");
        // Tighter bounds ⇒ more bits than the unconstrained solution.
        assert!(cfg.predicted_bitrate > unconstrained);
    }

    #[test]
    fn halo_constraint_inactive_when_loose() {
        let opt = Optimizer::new(model());
        let f = feats(&[100.0, 100.0]);
        let tgt = QualityTarget::with_halo(0.2, 88.16, 1e9);
        let cfg = opt.optimize(&f, &tgt);
        assert!(!cfg.halo_limited);
        assert!(cfg.predicted_mass_fault.unwrap() < 1e9);
    }

    #[test]
    fn traditional_uses_uniform_bound_and_primary_codec() {
        let opt = Optimizer::with_models(mixed_bank());
        let cfg = opt.traditional(&feats(&[1.0, 10.0]), 0.3);
        assert_eq!(cfg.ebs, vec![0.3, 0.3]);
        assert_eq!(cfg.eb_avg, 0.3);
        assert!(cfg.codecs.iter().all(|&c| c == CodecId::Rsz));
    }

    // --- the codec dimension ------------------------------------------------

    #[test]
    fn disagreeing_models_mix_codecs() {
        let opt = Optimizer::with_models(mixed_bank());
        // At eb = 0.2: rsz is cheaper below the crossover mean, zfp above.
        let f = feats(&[1.0, 2.0, 1e6, 1e7]);
        let cfg = opt.optimize(&f, &QualityTarget::fft_only(0.2));
        assert_eq!(cfg.codecs[0], CodecId::Rsz, "{:?}", cfg.codecs);
        assert_eq!(cfg.codecs[3], CodecId::Zfp, "{:?}", cfg.codecs);
        let counts = cfg.codec_counts();
        assert_eq!(counts.iter().map(|(_, n)| n).sum::<usize>(), 4);
        assert!(counts.len() == 2, "expected a genuine mix: {counts:?}");
    }

    #[test]
    fn mixed_choice_beats_either_single_codec_in_predicted_rate() {
        let bank = mixed_bank();
        let f = feats(&[1.0, 3.0, 1e5, 1e6, 1e7, 2.0]);
        let tgt = QualityTarget::fft_only(0.2);
        let mixed = Optimizer::with_models(bank.clone()).optimize(&f, &tgt);
        for (codec, m) in bank.entries() {
            let single =
                Optimizer::with_models(CodecModelBank::single(*codec, *m)).optimize(&f, &tgt);
            assert!(
                mixed.predicted_bitrate <= single.predicted_bitrate * (1.0 + 1e-9),
                "mixed {} vs {codec}-only {}",
                mixed.predicted_bitrate,
                single.predicted_bitrate
            );
        }
    }

    #[test]
    fn mixed_budget_is_still_respected() {
        let opt = Optimizer::with_models(mixed_bank());
        let means: Vec<f64> = (0..32).map(|i| 10f64.powi(i % 8)).collect();
        let cfg = opt.optimize(&feats(&means), &QualityTarget::fft_only(0.15));
        let mean_eb = cfg.ebs.iter().sum::<f64>() / cfg.ebs.len() as f64;
        assert!(mean_eb <= 0.15 * (1.0 + 1e-9), "mean {mean_eb}");
        assert!(mean_eb >= 0.9 * 0.15, "budget left unused: {mean_eb}");
        for &e in &cfg.ebs {
            assert!((0.15 / 4.0 - 1e-12..=0.15 * 4.0 + 1e-12).contains(&e), "eb {e}");
        }
    }

    #[test]
    fn mixed_decision_is_deterministic() {
        let opt = Optimizer::with_models(mixed_bank());
        let means: Vec<f64> = (0..16).map(|i| 3f64.powi(i)).collect();
        let a = opt.optimize(&feats(&means), &QualityTarget::fft_only(0.2));
        let b = opt.optimize(&feats(&means), &QualityTarget::fft_only(0.2));
        assert_eq!(a, b);
    }

    #[test]
    fn degenerate_exponent_is_guarded() {
        // A flat (c ≈ 0) fit must not explode the stationarity algebra.
        let bank = CodecModelBank::new(vec![
            (CodecId::Rsz, RatioModel { c: -0.5, a0: 0.5, a1: 0.3 }),
            (CodecId::Zfp, RatioModel { c: 0.3, a0: 0.4, a1: 0.1 }),
        ]);
        let opt = Optimizer::with_models(bank);
        let cfg = opt.optimize(&feats(&[1.0, 100.0, 1e4]), &QualityTarget::fft_only(0.2));
        assert!(cfg.ebs.iter().all(|e| e.is_finite() && *e > 0.0));
        let mean_eb = cfg.ebs.iter().sum::<f64>() / cfg.ebs.len() as f64;
        assert!(mean_eb <= 0.2 * (1.0 + 1e-9));
    }

    #[test]
    fn primary_model_matches_legacy_accessor() {
        let opt = Optimizer::new(model());
        assert_eq!(opt.primary_model(), model());
    }
}
