//! Thread-per-rank communicator — the MPI stand-in.
//!
//! The paper's only collective is an `MPI_Allreduce` of per-rank scalar
//! means (§3.6, §4.3); everything else is rank-local. [`run_ranks`] spawns
//! one thread per rank and hands each a [`Comm`] supporting `barrier`,
//! `allreduce_sum` and `allgather` with the same blocking semantics MPI
//! gives, so in situ code reads like its MPI counterpart.
//!
//! [`CommGroup`] is the spawn-free half: it owns the collective state and
//! mints a [`Comm`] per rank on demand, so rank handles can attach to
//! threads that already exist — simulation ranks feeding a
//! `stream_server::StreamServer`, a test harness's own workers — instead
//! of the group owning its threads. [`run_ranks`] is now a thin wrapper
//! that builds a group and spawns one scoped thread per handle.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    size: usize,
}

struct State {
    arrived: usize,
    generation: u64,
    sum: f64,
    result: f64,
    gathered: Vec<f64>,
    gather_result: Vec<f64>,
}

/// Per-rank handle to the collective state.
#[derive(Clone)]
pub struct Comm {
    shared: Arc<Shared>,
    rank: usize,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Block until every rank has entered the barrier.
    pub fn barrier(&self) {
        let _ = self.allreduce_sum(0.0);
    }

    /// Sum `value` across all ranks; every rank receives the total.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        let sh = &self.shared;
        let mut st = sh.state.lock();
        let gen = st.generation;
        st.sum += value;
        st.arrived += 1;
        if st.arrived == sh.size {
            st.result = st.sum;
            st.sum = 0.0;
            st.arrived = 0;
            st.generation += 1;
            sh.cv.notify_all();
        } else {
            while st.generation == gen {
                sh.cv.wait(&mut st);
            }
        }
        st.result
    }

    /// Mean of `value` across ranks (the collective the paper actually
    /// performs for the global mean).
    pub fn allreduce_mean(&self, value: f64) -> f64 {
        self.allreduce_sum(value) / self.shared.size as f64
    }

    /// Gather one value from each rank; every rank receives the full
    /// rank-ordered vector.
    pub fn allgather(&self, value: f64) -> Vec<f64> {
        let sh = &self.shared;
        let mut st = sh.state.lock();
        let gen = st.generation;
        st.gathered[self.rank] = value;
        st.arrived += 1;
        if st.arrived == sh.size {
            st.gather_result = st.gathered.clone();
            st.arrived = 0;
            st.generation += 1;
            sh.cv.notify_all();
        } else {
            while st.generation == gen {
                sh.cv.wait(&mut st);
            }
        }
        st.gather_result.clone()
    }
}

/// A rank group without threads: collective state plus a [`Comm`] factory.
///
/// Where [`run_ranks`] owns the threads it spawns, a `CommGroup` lets the
/// caller own them — create a group of `size`, hand `group.comm(rank)` to
/// each of `size` pre-existing threads, and the collectives work exactly
/// as under `run_ranks`. Every collective still blocks until all `size`
/// handles arrive, so the caller must drive all ranks concurrently.
pub struct CommGroup {
    shared: Arc<Shared>,
}

impl CommGroup {
    /// A group of `size` ranks (panics on `size == 0`).
    pub fn new(size: usize) -> Self {
        assert!(size > 0);
        Self {
            shared: Arc::new(Shared {
                state: Mutex::new(State {
                    arrived: 0,
                    generation: 0,
                    sum: 0.0,
                    result: 0.0,
                    gathered: vec![0.0; size],
                    gather_result: Vec::new(),
                }),
                cv: Condvar::new(),
                size,
            }),
        }
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The handle for `rank` (panics when out of range). Handles are
    /// cheap `Arc` clones; minting the same rank twice is allowed but the
    /// two handles then count as one rank — do not use both in the same
    /// collective.
    pub fn comm(&self, rank: usize) -> Comm {
        assert!(rank < self.shared.size, "rank {rank} out of 0..{}", self.shared.size);
        Comm { shared: Arc::clone(&self.shared), rank }
    }
}

/// Run `f(rank, comm)` on `size` OS threads; returns per-rank results in
/// rank order. Uses std scoped threads so `f` can borrow.
///
/// Deliberately **not** bounded by `available_parallelism`, unlike the
/// rayon shim's data-parallel scheduler: every rank may block inside a
/// collective waiting for all `size` peers, so capping the thread count
/// below `size` would deadlock the barrier generation. Oversubscription is
/// the faithful price of MPI semantics; keep rank counts test-sized.
pub fn run_ranks<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &Comm) -> R + Sync,
{
    let group = CommGroup::new(size);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let comm = group.comm(rank);
                let f = &f;
                s.spawn(move || f(rank, &comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        let out = run_ranks(8, |rank, comm| comm.allreduce_sum(rank as f64));
        let expect = (0..8).sum::<usize>() as f64;
        assert!(out.iter().all(|&v| v == expect));
    }

    #[test]
    fn allreduce_mean_matches() {
        let out = run_ranks(4, |rank, comm| comm.allreduce_mean((rank + 1) as f64));
        assert!(out.iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }

    #[test]
    fn repeated_collectives_reuse_state() {
        let out = run_ranks(4, |rank, comm| {
            let a = comm.allreduce_sum(1.0);
            comm.barrier();
            let b = comm.allreduce_sum(rank as f64);
            (a, b)
        });
        for &(a, b) in &out {
            assert_eq!(a, 4.0);
            assert_eq!(b, 6.0);
        }
    }

    #[test]
    fn allgather_is_rank_ordered() {
        let out = run_ranks(5, |rank, comm| comm.allgather(rank as f64 * 10.0));
        for v in out {
            assert_eq!(v, vec![0.0, 10.0, 20.0, 30.0, 40.0]);
        }
    }

    #[test]
    fn results_are_rank_ordered() {
        let out = run_ranks(6, |rank, _| rank * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn comm_group_attaches_to_caller_owned_threads() {
        // The server-transport shape: threads exist first, handles are
        // minted after — no run_ranks fan-out.
        let group = CommGroup::new(3);
        assert_eq!(group.size(), 3);
        let out = std::thread::scope(|s| {
            let handles: Vec<_> = (0..3)
                .map(|rank| {
                    let comm = group.comm(rank);
                    s.spawn(move || comm.allreduce_sum((rank + 1) as f64))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        assert_eq!(out, vec![6.0, 6.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "out of 0..2")]
    fn comm_group_rejects_out_of_range_rank() {
        CommGroup::new(2).comm(2);
    }

    #[test]
    fn single_rank_degenerates() {
        let out = run_ranks(1, |_, comm| {
            comm.barrier();
            comm.allreduce_sum(7.0)
        });
        assert_eq!(out, vec![7.0]);
    }
}
