//! Thread-per-rank communicator — the MPI stand-in.
//!
//! The paper's only collective is an `MPI_Allreduce` of per-rank scalar
//! means (§3.6, §4.3); everything else is rank-local. [`run_ranks`] spawns
//! one thread per rank and hands each a [`Comm`] supporting `barrier`,
//! `allreduce_sum` and `allgather` with the same blocking semantics MPI
//! gives, so in situ code reads like its MPI counterpart.

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

struct Shared {
    state: Mutex<State>,
    cv: Condvar,
    size: usize,
}

struct State {
    arrived: usize,
    generation: u64,
    sum: f64,
    result: f64,
    gathered: Vec<f64>,
    gather_result: Vec<f64>,
}

/// Per-rank handle to the collective state.
#[derive(Clone)]
pub struct Comm {
    shared: Arc<Shared>,
    rank: usize,
}

impl Comm {
    /// This rank's id in `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the group.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// Block until every rank has entered the barrier.
    pub fn barrier(&self) {
        let _ = self.allreduce_sum(0.0);
    }

    /// Sum `value` across all ranks; every rank receives the total.
    pub fn allreduce_sum(&self, value: f64) -> f64 {
        let sh = &self.shared;
        let mut st = sh.state.lock();
        let gen = st.generation;
        st.sum += value;
        st.arrived += 1;
        if st.arrived == sh.size {
            st.result = st.sum;
            st.sum = 0.0;
            st.arrived = 0;
            st.generation += 1;
            sh.cv.notify_all();
        } else {
            while st.generation == gen {
                sh.cv.wait(&mut st);
            }
        }
        st.result
    }

    /// Mean of `value` across ranks (the collective the paper actually
    /// performs for the global mean).
    pub fn allreduce_mean(&self, value: f64) -> f64 {
        self.allreduce_sum(value) / self.shared.size as f64
    }

    /// Gather one value from each rank; every rank receives the full
    /// rank-ordered vector.
    pub fn allgather(&self, value: f64) -> Vec<f64> {
        let sh = &self.shared;
        let mut st = sh.state.lock();
        let gen = st.generation;
        st.gathered[self.rank] = value;
        st.arrived += 1;
        if st.arrived == sh.size {
            st.gather_result = st.gathered.clone();
            st.arrived = 0;
            st.generation += 1;
            sh.cv.notify_all();
        } else {
            while st.generation == gen {
                sh.cv.wait(&mut st);
            }
        }
        st.gather_result.clone()
    }
}

/// Run `f(rank, comm)` on `size` OS threads; returns per-rank results in
/// rank order. Uses std scoped threads so `f` can borrow.
///
/// Deliberately **not** bounded by `available_parallelism`, unlike the
/// rayon shim's data-parallel scheduler: every rank may block inside a
/// collective waiting for all `size` peers, so capping the thread count
/// below `size` would deadlock the barrier generation. Oversubscription is
/// the faithful price of MPI semantics; keep rank counts test-sized.
pub fn run_ranks<R, F>(size: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &Comm) -> R + Sync,
{
    assert!(size > 0);
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            arrived: 0,
            generation: 0,
            sum: 0.0,
            result: 0.0,
            gathered: vec![0.0; size],
            gather_result: Vec::new(),
        }),
        cv: Condvar::new(),
        size,
    });

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..size)
            .map(|rank| {
                let comm = Comm { shared: Arc::clone(&shared), rank };
                let f = &f;
                s.spawn(move || f(rank, &comm))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allreduce_sums_across_ranks() {
        let out = run_ranks(8, |rank, comm| comm.allreduce_sum(rank as f64));
        let expect = (0..8).sum::<usize>() as f64;
        assert!(out.iter().all(|&v| v == expect));
    }

    #[test]
    fn allreduce_mean_matches() {
        let out = run_ranks(4, |rank, comm| comm.allreduce_mean((rank + 1) as f64));
        assert!(out.iter().all(|&v| (v - 2.5).abs() < 1e-12));
    }

    #[test]
    fn repeated_collectives_reuse_state() {
        let out = run_ranks(4, |rank, comm| {
            let a = comm.allreduce_sum(1.0);
            comm.barrier();
            let b = comm.allreduce_sum(rank as f64);
            (a, b)
        });
        for &(a, b) in &out {
            assert_eq!(a, 4.0);
            assert_eq!(b, 6.0);
        }
    }

    #[test]
    fn allgather_is_rank_ordered() {
        let out = run_ranks(5, |rank, comm| comm.allgather(rank as f64 * 10.0));
        for v in out {
            assert_eq!(v, vec![0.0, 10.0, 20.0, 30.0, 40.0]);
        }
    }

    #[test]
    fn results_are_rank_ordered() {
        let out = run_ranks(6, |rank, _| rank * 2);
        assert_eq!(out, vec![0, 2, 4, 6, 8, 10]);
    }

    #[test]
    fn single_rank_degenerates() {
        let out = run_ranks(1, |_, comm| {
            comm.barrier();
            comm.allreduce_sum(7.0)
        });
        assert_eq!(out, vec![7.0]);
    }
}
