//! Compression-ratio (bit-rate) modeling — paper §3.5, Eq. 15, Fig. 9/10.
//!
//! Empirically, SZ's bit rate against the error bound follows a power law
//! per partition, `b_m = C_m · eb^c`, with the exponent `c` shared across
//! partitions/fields/snapshots and only the coefficient `C_m` varying.
//! Measuring `C_m` per partition by trial compression would defeat the
//! purpose, so the paper predicts it from the partition **mean value**
//! through a logarithmic fit — the single cheapest feature that tracks
//! compressibility on Nyx-like data.
//!
//! [`RatioModel::calibrate`] performs the paper's two-step procedure on a
//! handful of sample partitions (one-off, offline or first-snapshot):
//! 1. sweep a few bounds per sample, fit per-partition `(C_m, c_m)` in
//!    log-log space, share `c = mean(c_m)`;
//! 2. re-fit each `C_m` under the shared `c`, then fit
//!    `C(mean) = a₀ + a₁·ln(mean)` across samples.
//!
//! The law is codec-agnostic: any error-bounded backend traces a
//! rate-vs-bound curve the power law can approximate (transform codecs
//! trace a flatter, log-like curve — the paper's Fig. 10(b) observes
//! exactly this looser fit for ZFP). [`RatioModel::calibrate_codec`] fits
//! the same model against any [`codec_core::CodecId`] backend, measuring
//! each codec's intrinsic payload bytes, and [`CodecModelBank`] holds one
//! fitted model per enabled codec so the optimizer can price every
//! (codec, bound) combination.

use crate::math::{linear_fit, r_squared};
use codec_core::{CodecId, Container};
use gridlab::{Dim3, Field3, Scalar};
use rsz::{compress_slice, SzConfig};
use serde::{Deserialize, Serialize};

/// The per-partition features the in situ layer ships to the optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionFeature {
    /// Mean value of the partition (bit-rate model input).
    pub mean: f64,
    /// Boundary cells measured at `eb_ref` (halo model input; 0 for
    /// non-density fields).
    pub boundary_cells_ref: f64,
    /// Reference bound for `boundary_cells_ref`.
    pub eb_ref: f64,
    /// Cells in the partition.
    pub cells: usize,
}

impl From<gridlab::stats::PartitionFeatures> for PartitionFeature {
    fn from(f: gridlab::stats::PartitionFeatures) -> Self {
        Self {
            mean: f.mean,
            boundary_cells_ref: f.boundary_cells as f64,
            eb_ref: f.eb_ref,
            cells: f.cells,
        }
    }
}

/// Fitted bit-rate model `b(mean, eb) = C(mean) · eb^c`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RatioModel {
    /// Shared power-law exponent (negative: bigger bound ⇒ fewer bits).
    pub c: f64,
    /// Intercept of the logarithmic coefficient fit.
    pub a0: f64,
    /// Slope of the logarithmic coefficient fit.
    pub a1: f64,
}

/// Floor for predicted coefficients/bit rates so inversions stay finite.
const C_FLOOR: f64 = 1e-4;

/// Why a calibration attempt was rejected. Non-finite inputs used to
/// leak NaN coefficients into the bank (where `NaN > threshold` is
/// silently `false` and the drift detector goes blind); they are now a
/// typed error at the fit boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibrationError {
    /// A sample partition's mean is NaN/∞ — the field carries non-finite
    /// cells and the `mean → C` fit would be poisoned.
    NonFiniteMean { brick: usize, mean: f64 },
    /// A trial compression reported a NaN/∞ bit rate at this bound.
    NonFiniteRate { brick: usize, eb: f64, rate: f64 },
}

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFiniteMean { brick, mean } => {
                write!(f, "sample brick {brick} has non-finite mean {mean}")
            }
            Self::NonFiniteRate { brick, eb, rate } => {
                write!(f, "sample brick {brick} measured non-finite bit rate {rate} at eb {eb}")
            }
        }
    }
}

impl std::error::Error for CalibrationError {}

/// Per-sample diagnostics from calibration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// `(mean, fitted C_m)` per sample partition.
    pub samples: Vec<(f64, f64)>,
    /// Per-sample exponents before sharing.
    pub exponents: Vec<f64>,
    /// R² of the `C(mean)` logarithmic fit.
    pub c_fit_r2: f64,
}

impl RatioModel {
    /// Coefficient for a partition with the given mean.
    pub fn coefficient(&self, mean: f64) -> f64 {
        let x = ln_mean(mean);
        (self.a0 + self.a1 * x).max(C_FLOOR)
    }

    /// Predicted bit rate (bits/value) for one partition.
    pub fn predict_bitrate(&self, mean: f64, eb: f64) -> f64 {
        assert!(eb > 0.0);
        self.coefficient(mean) * eb.powf(self.c)
    }

    /// Predicted overall bit rate for equal-size partitions (Eq. 15:
    /// `B = Σ b_m / M`).
    pub fn predict_overall_bitrate(&self, means: &[f64], ebs: &[f64]) -> f64 {
        assert_eq!(means.len(), ebs.len());
        assert!(!means.is_empty());
        means.iter().zip(ebs).map(|(&m, &e)| self.predict_bitrate(m, e)).sum::<f64>()
            / means.len() as f64
    }

    /// Predicted compression ratio against `bits_per_value` originals.
    pub fn predict_ratio(&self, means: &[f64], ebs: &[f64], bits_per_value: f64) -> f64 {
        bits_per_value / self.predict_overall_bitrate(means, ebs)
    }

    /// Invert the per-partition law: bound that hits a target bit rate.
    pub fn eb_for_bitrate(&self, mean: f64, bitrate: f64) -> f64 {
        assert!(bitrate > 0.0);
        (bitrate / self.coefficient(mean)).powf(1.0 / self.c)
    }

    /// Calibrate on sample bricks with an error-bound sweep, measuring
    /// through bare `rsz` containers under `base` (the legacy single-codec
    /// path; radius/lossless settings of `base` are honoured).
    ///
    /// `bricks` should be a representative handful of partitions (the
    /// paper samples 16 of 512 for Fig. 9); `eb_sweep` needs ≥ 2 bounds.
    pub fn calibrate<T: Scalar>(
        bricks: &[&Field3<T>],
        eb_sweep: &[f64],
        base: &SzConfig,
    ) -> Result<(RatioModel, CalibrationReport), CalibrationError> {
        Self::calibrate_by(bricks, eb_sweep, |brick, eb| {
            let mut cfg = *base;
            cfg.mode = rsz::ErrorMode::Abs(eb);
            let c = compress_slice(brick.as_slice(), brick.dims(), &cfg);
            8.0 * c.len() as f64 / brick.len() as f64
        })
    }

    /// Calibrate against a codec backend, measuring its intrinsic payload
    /// bytes (the constant v2 wrapper overhead is excluded so it cannot
    /// pollute the power-law fit; for `rsz` this reproduces the legacy
    /// single-codec calibration exactly).
    pub fn calibrate_codec<T: Scalar>(
        codec: CodecId,
        bricks: &[&Field3<T>],
        eb_sweep: &[f64],
    ) -> Result<(RatioModel, CalibrationReport), CalibrationError> {
        Self::calibrate_by(bricks, eb_sweep, |brick, eb| {
            let c = Container::compress(codec, brick.as_slice(), brick.dims(), eb);
            8.0 * c.payload_len() as f64 / brick.len() as f64
        })
    }

    /// The paper's two-step fit over an arbitrary bit-rate measurement
    /// (bits/value at a given bound).
    ///
    /// Rejects non-finite sample means and measured rates with a typed
    /// [`CalibrationError`] (a NaN anywhere in the fit would otherwise
    /// propagate into every later prediction, where `NaN > threshold`
    /// comparisons silently disable the drift detector). Zero-variance
    /// sample sets — all bricks sharing one mean, e.g. a constant field —
    /// degrade to a flat `C(mean)` fit instead of panicking the
    /// least-squares solver on degenerate abscissae.
    pub fn calibrate_by<T: Scalar>(
        bricks: &[&Field3<T>],
        eb_sweep: &[f64],
        measure: impl Fn(&Field3<T>, f64) -> f64,
    ) -> Result<(RatioModel, CalibrationReport), CalibrationError> {
        assert!(bricks.len() >= 2, "need at least two sample partitions");
        assert!(eb_sweep.len() >= 2, "need at least two bounds in the sweep");
        let ln_ebs: Vec<f64> = eb_sweep.iter().map(|e| e.ln()).collect();

        // Pass 1: measure bit rates, fit per-brick exponents.
        let mut exponents = Vec::with_capacity(bricks.len());
        let mut ln_rates: Vec<Vec<f64>> = Vec::with_capacity(bricks.len());
        let mut means = Vec::with_capacity(bricks.len());
        for (b, brick) in bricks.iter().enumerate() {
            let mean = gridlab::stats::mean(brick.as_slice());
            if !mean.is_finite() {
                return Err(CalibrationError::NonFiniteMean { brick: b, mean });
            }
            means.push(mean);
            let mut rates = Vec::with_capacity(eb_sweep.len());
            for &eb in eb_sweep {
                let rate = measure(brick, eb);
                if !rate.is_finite() {
                    return Err(CalibrationError::NonFiniteRate { brick: b, eb, rate });
                }
                rates.push(rate.max(1e-6).ln());
            }
            let (_, slope) = linear_fit(&ln_ebs, &rates);
            exponents.push(slope);
            ln_rates.push(rates);
        }
        let c_shared = exponents.iter().sum::<f64>() / exponents.len() as f64;

        // Pass 2: C_m under the shared exponent, then the logarithmic fit.
        let coeffs: Vec<f64> = ln_rates
            .iter()
            .map(|rates| {
                let ln_c =
                    rates.iter().zip(&ln_ebs).map(|(lb, le)| lb - c_shared * le).sum::<f64>()
                        / rates.len() as f64;
                ln_c.exp()
            })
            .collect();
        let xs: Vec<f64> = means.iter().map(|&m| ln_mean(m)).collect();
        let spread = xs.iter().fold(f64::NEG_INFINITY, |a, &x| a.max(x))
            - xs.iter().fold(f64::INFINITY, |a, &x| a.min(x));
        let (a0, a1) = if spread > 1e-12 {
            linear_fit(&xs, &coeffs)
        } else {
            // Identical means (constant field): C cannot depend on the
            // mean, so fit the constant model C(mean) = mean(C_m).
            (coeffs.iter().sum::<f64>() / coeffs.len() as f64, 0.0)
        };
        let r2 = r_squared(&xs, &coeffs, a0, a1);

        Ok((
            RatioModel { c: c_shared, a0, a1 },
            CalibrationReport {
                samples: means.into_iter().zip(coeffs).collect(),
                exponents,
                c_fit_r2: r2,
            },
        ))
    }
}

/// Log-feature of a mean value, guarded for non-positive means (velocity
/// fields can average near zero; the guard keeps the feature finite).
fn ln_mean(mean: f64) -> f64 {
    (mean.abs() + 1e-9).ln()
}

/// Extract [`PartitionFeature`]s for every brick of a decomposed field in
/// one parallel pass — the in situ feature-extraction step.
pub fn extract_features<T: Scalar>(
    field: &Field3<T>,
    dec: &gridlab::Decomposition,
    t_boundary: f64,
    eb_ref: f64,
) -> Vec<PartitionFeature> {
    dec.par_map(field, |_, brick| {
        gridlab::stats::PartitionFeatures::extract(brick.as_slice(), t_boundary, eb_ref).into()
    })
}

/// Measure the actual bit rate of one brick at one bound (ground truth for
/// model validation).
pub fn measured_bitrate<T: Scalar>(brick: &Field3<T>, eb: f64) -> f64 {
    let c = compress_slice(brick.as_slice(), brick.dims(), &SzConfig::abs(eb));
    8.0 * c.len() as f64 / brick.len() as f64
}

/// Convenience: split a field and return the per-partition bricks that
/// calibration samples from (every `stride`-th partition).
pub fn sample_bricks<T: Scalar>(
    field: &Field3<T>,
    dec: &gridlab::Decomposition,
    stride: usize,
) -> Vec<Field3<T>> {
    assert!(stride >= 1);
    dec.iter()
        .enumerate()
        .filter(|(i, _)| i % stride == 0)
        .map(|(_, p)| field.extract(p.origin, p.dims))
        .collect()
}

/// Extract the bricks for an explicit partition-id list — the localised
/// drift-refresh path samples exactly the partitions whose residual
/// tripped the threshold rather than a blind stride.
pub fn bricks_at<T: Scalar>(
    field: &Field3<T>,
    dec: &gridlab::Decomposition,
    ids: &[usize],
) -> Vec<Field3<T>> {
    ids.iter()
        .map(|&id| {
            let p = dec.partition(id).expect("partition id in range");
            field.extract(p.origin, p.dims)
        })
        .collect()
}

/// Dimensions helper re-exported for the bench crate's workload builders.
pub fn brick_dims(dec: &gridlab::Decomposition) -> Dim3 {
    dec.brick()
}

/// One fitted [`RatioModel`] per enabled codec backend — the optimizer's
/// pricing table for the joint (codec, bound) decision. The first entry is
/// the **primary** codec: the baseline for traditional runs and the model
/// legacy single-codec call sites read.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecModelBank {
    entries: Vec<(CodecId, RatioModel)>,
}

/// Serialized as the (priority-ordered) entry list — the shape a session
/// checkpoint persists so a restarted run skips recalibration.
impl Serialize for CodecModelBank {
    fn to_value(&self) -> serde::Value {
        self.entries.to_value()
    }
}

/// The inverse of the [`Serialize`] impl, with the constructor's
/// invariants re-checked as *errors*: a corrupted or hand-edited
/// checkpoint must fail the restore, not panic it.
impl Deserialize for CodecModelBank {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        let entries = Vec::<(CodecId, RatioModel)>::from_value(v)?;
        if entries.is_empty() {
            return Err(serde::Error::custom("model bank needs at least one codec model"));
        }
        for (i, (a, _)) in entries.iter().enumerate() {
            if entries[..i].iter().any(|(b, _)| b == a) {
                return Err(serde::Error::custom(format!("duplicate codec {a} in model bank")));
            }
        }
        Ok(Self { entries })
    }
}

impl CodecModelBank {
    /// Build from per-codec fits. Order is selection-priority order: ties
    /// in predicted cost go to the earlier entry.
    pub fn new(entries: Vec<(CodecId, RatioModel)>) -> Self {
        assert!(!entries.is_empty(), "bank needs at least one codec model");
        for (i, (a, _)) in entries.iter().enumerate() {
            assert!(entries[..i].iter().all(|(b, _)| b != a), "duplicate codec {a} in bank");
        }
        Self { entries }
    }

    /// A single-codec bank (the legacy shape).
    pub fn single(codec: CodecId, model: RatioModel) -> Self {
        Self::new(vec![(codec, model)])
    }

    /// Calibrate one model per codec on the same sample bricks/sweep.
    /// Returns the bank plus every codec's diagnostics.
    pub fn calibrate<T: Scalar>(
        codecs: &[CodecId],
        bricks: &[&Field3<T>],
        eb_sweep: &[f64],
    ) -> Result<(Self, Vec<(CodecId, CalibrationReport)>), CalibrationError> {
        assert!(!codecs.is_empty(), "need at least one codec");
        let mut entries = Vec::with_capacity(codecs.len());
        let mut reports = Vec::with_capacity(codecs.len());
        for &codec in codecs {
            let (model, report) = RatioModel::calibrate_codec(codec, bricks, eb_sweep)?;
            entries.push((codec, model));
            reports.push((codec, report));
        }
        Ok((Self::new(entries), reports))
    }

    /// The model fitted for `codec`, if enabled.
    pub fn get(&self, codec: CodecId) -> Option<&RatioModel> {
        self.entries.iter().find(|(c, _)| *c == codec).map(|(_, m)| m)
    }

    /// The primary (first) codec and its model.
    pub fn primary(&self) -> (CodecId, &RatioModel) {
        let (c, m) = &self.entries[0];
        (*c, m)
    }

    /// All `(codec, model)` pairs in priority order.
    pub fn entries(&self) -> &[(CodecId, RatioModel)] {
        &self.entries
    }

    /// Number of enabled codecs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Decomposition;

    /// Bricks with controllable roughness: higher `amp` ⇒ more bits.
    fn brick(n: usize, amp: f64, offset: f64, seed: u64) -> Field3<f32> {
        let mut state = seed;
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            (offset
                + amp
                    * ((x as f64 * 0.8).sin()
                        + (y as f64 * 0.6).cos()
                        + (z as f64 * 0.9).sin()
                        + noise)) as f32
        })
    }

    fn calibrated() -> (RatioModel, CalibrationReport) {
        // Mean tracks amplitude so the mean→C relation is learnable,
        // mirroring lognormal density data where bright partitions are
        // also rough partitions.
        let bricks: Vec<Field3<f32>> = (0..6)
            .map(|i| {
                let amp = 2.0f64.powi(i);
                brick(12, amp, 10.0 * amp, 17 + i as u64)
            })
            .collect();
        let refs: Vec<&Field3<f32>> = bricks.iter().collect();
        RatioModel::calibrate(&refs, &[0.05, 0.1, 0.2, 0.4, 0.8], &SzConfig::abs(1.0))
            .expect("finite bricks calibrate")
    }

    #[test]
    fn exponent_is_negative() {
        let (model, report) = calibrated();
        assert!(model.c < 0.0, "c = {}", model.c);
        assert!(report.exponents.iter().all(|&e| e < 0.0));
    }

    #[test]
    fn bitrate_prediction_tracks_measurement() {
        let (model, _) = calibrated();
        // Validate on a held-out brick inside the calibration range.
        let held = brick(12, 3.0, 30.0, 999);
        let mean = gridlab::stats::mean(held.as_slice());
        for eb in [0.1, 0.4] {
            let predicted = model.predict_bitrate(mean, eb);
            let measured = measured_bitrate(&held, eb);
            let rel = (predicted - measured).abs() / measured;
            assert!(rel < 0.5, "eb {eb}: predicted {predicted}, measured {measured}");
        }
    }

    #[test]
    fn coefficient_grows_with_mean_on_this_family() {
        let (model, report) = calibrated();
        assert!(report.c_fit_r2 > 0.6, "r2 {}", report.c_fit_r2);
        assert!(model.coefficient(100.0) > model.coefficient(1.0));
    }

    #[test]
    fn overall_bitrate_is_partition_average() {
        let (model, _) = calibrated();
        let means = [5.0, 50.0];
        let ebs = [0.1, 0.1];
        let overall = model.predict_overall_bitrate(&means, &ebs);
        let manual = (model.predict_bitrate(5.0, 0.1) + model.predict_bitrate(50.0, 0.1)) / 2.0;
        assert!((overall - manual).abs() < 1e-12);
    }

    #[test]
    fn eb_for_bitrate_inverts_prediction() {
        let (model, _) = calibrated();
        let mean = 20.0;
        let eb = 0.3;
        let b = model.predict_bitrate(mean, eb);
        let back = model.eb_for_bitrate(mean, b);
        assert!((back - eb).abs() < 1e-9, "{back} vs {eb}");
    }

    #[test]
    fn ratio_is_bits_over_bitrate() {
        let (model, _) = calibrated();
        let means = [10.0, 20.0];
        let ebs = [0.2, 0.2];
        let r = model.predict_ratio(&means, &ebs, 32.0);
        assert!((r - 32.0 / model.predict_overall_bitrate(&means, &ebs)).abs() < 1e-12);
    }

    #[test]
    fn features_extraction_matches_manual() {
        let f = brick(16, 2.0, 20.0, 5);
        let dec = Decomposition::cubic(16, 2).unwrap();
        let feats = extract_features(&f, &dec, 20.0, 1.0);
        assert_eq!(feats.len(), 8);
        let bricks = dec.split(&f);
        for (feat, b) in feats.iter().zip(&bricks) {
            assert!((feat.mean - gridlab::stats::mean(b.as_slice())).abs() < 1e-9);
            assert_eq!(feat.cells, 8 * 8 * 8);
        }
    }

    #[test]
    fn sample_bricks_stride() {
        let f = brick(16, 1.0, 0.0, 2);
        let dec = Decomposition::cubic(16, 4).unwrap();
        assert_eq!(sample_bricks(&f, &dec, 1).len(), 64);
        assert_eq!(sample_bricks(&f, &dec, 4).len(), 16);
        assert_eq!(brick_dims(&dec), Dim3::cube(4));
    }

    #[test]
    fn coefficient_floor_keeps_model_finite() {
        let model = RatioModel { c: -0.5, a0: -100.0, a1: 0.0 };
        assert!(model.coefficient(1.0) >= 1e-4);
        assert!(model.predict_bitrate(1.0, 0.1).is_finite());
        assert!(model.eb_for_bitrate(1.0, 0.5).is_finite());
    }

    #[test]
    fn per_codec_calibration_fits_both_backends() {
        let bricks: Vec<Field3<f32>> = (0..4)
            .map(|i| {
                let amp = 3.0f64.powi(i);
                brick(12, amp, 10.0 * amp, 31 + i as u64)
            })
            .collect();
        let refs: Vec<&Field3<f32>> = bricks.iter().collect();
        let sweep = [0.05, 0.1, 0.2, 0.4, 0.8];
        let (bank, reports) =
            CodecModelBank::calibrate(&CodecId::ALL, &refs, &sweep).expect("finite bricks");
        assert_eq!(bank.len(), 2);
        assert_eq!(reports.len(), 2);
        for (codec, model) in bank.entries() {
            assert!(model.c < 0.0, "{codec}: rate must fall with the bound, c = {}", model.c);
        }
        assert_eq!(bank.primary().0, CodecId::Rsz);
        assert!(bank.get(CodecId::Zfp).is_some());
    }

    #[test]
    fn nan_laced_bricks_are_a_typed_error_not_a_nan_model() {
        let good = brick(8, 2.0, 20.0, 1);
        let mut bad = brick(8, 2.0, 20.0, 2);
        bad.as_mut_slice()[7] = f32::NAN;
        let refs = [&good, &bad];
        let err = RatioModel::calibrate(&refs, &[0.1, 0.4], &SzConfig::abs(1.0)).unwrap_err();
        assert!(matches!(err, CalibrationError::NonFiniteMean { brick: 1, .. }), "{err}");
    }

    #[test]
    fn non_finite_measured_rate_is_a_typed_error() {
        let a = brick(8, 2.0, 20.0, 1);
        let b = brick(8, 2.0, 40.0, 2);
        let refs = [&a, &b];
        let err = RatioModel::calibrate_by(&refs, &[0.1, 0.4], |_, eb| {
            if eb > 0.2 {
                f64::INFINITY
            } else {
                4.0
            }
        })
        .unwrap_err();
        assert!(matches!(err, CalibrationError::NonFiniteRate { brick: 0, .. }), "{err}");
        assert!(err.to_string().contains("non-finite"));
    }

    #[test]
    fn constant_bricks_calibrate_to_a_flat_finite_model() {
        // All sample means identical → degenerate ln-mean abscissae. This
        // used to panic linear_fit ("x values are degenerate"); now it
        // must degrade to a mean-independent coefficient.
        let a = Field3::<f32>::constant(Dim3::cube(8), 7.25);
        let b = Field3::<f32>::constant(Dim3::cube(8), 7.25);
        let refs = [&a, &b];
        let (model, _) =
            RatioModel::calibrate(&refs, &[0.1, 0.4], &SzConfig::abs(1.0)).expect("flat fit");
        assert_eq!(model.a1, 0.0);
        assert!(model.a0.is_finite() && model.c.is_finite());
        assert!(model.predict_bitrate(7.25, 0.1).is_finite());
    }

    #[test]
    fn bricks_at_extracts_the_requested_partitions() {
        let f = brick(16, 1.0, 0.0, 2);
        let dec = Decomposition::cubic(16, 4).unwrap();
        let picked = bricks_at(&f, &dec, &[3, 17]);
        assert_eq!(picked.len(), 2);
        let all = dec.split(&f);
        assert_eq!(picked[0].as_slice(), all[3].as_slice());
        assert_eq!(picked[1].as_slice(), all[17].as_slice());
    }

    #[test]
    fn bank_rejects_duplicates_and_empties() {
        let m = RatioModel { c: -0.5, a0: 0.5, a1: 0.3 };
        assert!(std::panic::catch_unwind(|| CodecModelBank::new(vec![])).is_err());
        assert!(std::panic::catch_unwind(|| CodecModelBank::new(vec![
            (CodecId::Rsz, m),
            (CodecId::Rsz, m),
        ]))
        .is_err());
        let bank = CodecModelBank::single(CodecId::Zfp, m);
        assert_eq!(bank.primary().0, CodecId::Zfp);
        assert!(bank.get(CodecId::Rsz).is_none());
    }
}
