//! Streaming session engine — the paper's deployment mode made first-class.
//!
//! The real in situ workflow is a time-series loop (Fig. 16): calibrate
//! once on an early snapshot, then compress every subsequent snapshot as
//! structure evolves. [`StreamSession`] owns everything that loop needs to
//! persist across snapshots:
//!
//! * the fitted [`CodecModelBank`] (one rate model per enabled backend),
//!   trained by a **single full calibration** on the first snapshot;
//! * a [`QualityPolicy`] that derives each snapshot's quality target from
//!   the evolving field instead of ad-hoc config mutation;
//! * a **drift detector**: each snapshot the per-partition bit rates the
//!   models predicted are compared against what the codecs actually
//!   produced. While the mean relative residual stays under
//!   [`SessionConfig::drift_threshold`], later snapshots pay *zero*
//!   modeling cost (the paper's Fig. 10(b) transfer claim, now checked
//!   instead of assumed). When structure formation drifts the rate curves
//!   past the threshold, the session runs an **incremental recalibration**:
//!   a sampled refresh over a small brick subset and a short bound sweep
//!   (reusing [`sample_bricks`] + the [`RatioModel::calibrate_by`]
//!   plumbing via [`CodecModelBank::calibrate`]), several times cheaper
//!   than the first-snapshot calibration. The refreshed models take effect
//!   from the next snapshot — no snapshot is ever compressed twice.
//!
//! Per-snapshot outcomes ([`SnapshotRecord`]) carry the containers (ready
//! for a `codec_core::StreamWriter` frame) plus [`SnapshotStats`] with the
//! calibration event, the measured drift residual and the modeling cost,
//! so the amortization claim is auditable from the session history alone.
//!
//! [`RatioModel::calibrate_by`]: crate::ratio_model::RatioModel::calibrate_by

use crate::optimizer::{HaloTarget, QualityTarget};
use crate::pipeline::{InSituPipeline, PipelineConfig, PipelineResult, Timings};
use crate::ratio_model::{sample_bricks, CalibrationReport, CodecModelBank};
use codec_core::CodecId;
use gridlab::{Decomposition, Field3, Scalar};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// How a session derives each snapshot's average-bound budget.
///
/// This replaces the hand-rolled `pipeline.cfg.target = ...` mutation the
/// redshift-series example used to perform: the policy is declared once
/// and the session re-evaluates it against every incoming field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityPolicy {
    /// The same absolute average bound for every snapshot.
    FixedEb(f64),
    /// `eb_avg = fraction × σ(field)` — the budget tracks the evolving
    /// field amplitude (the Fig. 16/17 workflow, where growing contrast
    /// at lower redshift widens the usable bound).
    SigmaScaled(f64),
    /// `eb_avg` chosen so the **model-predicted** overall bit rate equals
    /// this budget (bits/value): a storage-budget contract instead of a
    /// quality contract, inverted through the fitted model bank each
    /// snapshot.
    BitrateBudget(f64),
}

impl QualityPolicy {
    /// Panic on non-positive policy parameters — run at session
    /// construction so a `FixedEb(0.0)` fails where the user wrote it, not
    /// as an `eb > 0` assert deep inside the optimizer mid-series.
    fn validate(&self) {
        let (name, v) = match *self {
            QualityPolicy::FixedEb(eb) => ("FixedEb bound", eb),
            QualityPolicy::SigmaScaled(fraction) => ("SigmaScaled fraction", fraction),
            QualityPolicy::BitrateBudget(budget) => ("BitrateBudget bits/value", budget),
        };
        assert!(v > 0.0 && v.is_finite(), "{name} must be positive and finite, got {v}");
    }

    /// The bound used to centre the first-snapshot calibration sweep,
    /// before any model exists. For [`QualityPolicy::BitrateBudget`] this
    /// is a σ-scaled guess probing the paper's operating regime; the
    /// actual budget inversion starts with the fitted bank.
    fn bootstrap_eb(&self, sigma: f64) -> f64 {
        let eb = match *self {
            QualityPolicy::FixedEb(eb) => eb,
            QualityPolicy::SigmaScaled(fraction) => fraction * sigma,
            QualityPolicy::BitrateBudget(_) => 0.1 * sigma,
        };
        eb.max(1e-12)
    }

    /// Resolve the snapshot's budget against the current models.
    fn resolve(
        &self,
        sigma: f64,
        means: impl Iterator<Item = f64> + Clone,
        bank: &CodecModelBank,
    ) -> f64 {
        match *self {
            QualityPolicy::FixedEb(eb) => eb,
            QualityPolicy::SigmaScaled(fraction) => (fraction * sigma).max(1e-12),
            QualityPolicy::BitrateBudget(budget) => {
                // Cheapest-codec pricing at a uniform bound is decreasing
                // in the bound for healthy fits (exponent < 0), so the
                // budget inverts by bisection on ln eb.
                let rate_at = |ln_eb: f64| {
                    let eb = ln_eb.exp();
                    let mut sum = 0.0;
                    let mut n = 0usize;
                    for mean in means.clone() {
                        let cheapest = bank
                            .entries()
                            .iter()
                            .map(|(_, m)| m.predict_bitrate(mean, eb))
                            .fold(f64::INFINITY, f64::min);
                        sum += cheapest;
                        n += 1;
                    }
                    sum / n.max(1) as f64
                };
                let (mut lo, mut hi) = (-60.0f64, 60.0f64);
                // Degenerate curves (near-constant fields fit c ≈ 0, so
                // the rate barely moves with the bound) cannot bracket the
                // budget; bisection would silently converge to a domain
                // edge like e^±60. Fall back to the σ-scaled bootstrap
                // guess instead of an absurd bound.
                if rate_at(lo) <= budget || rate_at(hi) >= budget {
                    return self.bootstrap_eb(sigma);
                }
                while hi - lo > 1e-12 {
                    let mid = 0.5 * (lo + hi);
                    if rate_at(mid) > budget {
                        lo = mid; // rate too high ⇒ bound too tight
                    } else {
                        hi = mid;
                    }
                }
                (0.5 * (lo + hi)).exp()
            }
        }
    }
}

/// Static configuration of a [`StreamSession`].
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Domain decomposition shared by every snapshot.
    pub dec: Decomposition,
    /// Enabled codec backends (selection-priority order).
    pub codecs: Vec<CodecId>,
    /// Per-snapshot budget derivation.
    pub policy: QualityPolicy,
    /// Optional halo-finder constraint applied to every snapshot's target.
    pub halo: Option<HaloTarget>,
    /// Mean relative |predicted − measured| per-partition bit-rate
    /// residual above which the session refreshes its models.
    pub drift_threshold: f64,
    /// Sample-every-Nth-partition stride of the first-snapshot (full)
    /// calibration.
    pub calib_stride: usize,
    /// Stride of the drift-triggered sampled refresh (larger ⇒ fewer
    /// bricks ⇒ cheaper).
    pub refresh_stride: usize,
    /// Full-calibration sweep, as multipliers of the bootstrap bound.
    pub sweep_multipliers: Vec<f64>,
    /// Refresh sweep, as multipliers of the current bound (short: the
    /// shared exponent is re-fit from two points per brick).
    pub refresh_multipliers: Vec<f64>,
    /// Reference bound for boundary-cell feature extraction.
    pub eb_ref: f64,
}

impl SessionConfig {
    /// Defaults: rsz-only, 50 % drift threshold, stride-4 full calibration
    /// with the standard 5-point sweep, stride-8 refresh with a 2-point
    /// sweep.
    ///
    /// The threshold is calibrated against the rate model's honest
    /// accuracy: healthy fits on Nyx-like contrast fields sit at a mean
    /// relative residual of 0.1–0.45 (the paper tolerates per-partition
    /// errors up to ~50 %), genuine regime change pushes past 0.6, and a
    /// miscalibrated model reads in the 1–25 range — 0.5 separates the
    /// populations without churning on fit noise.
    pub fn new(dec: Decomposition, policy: QualityPolicy) -> Self {
        Self {
            dec,
            codecs: vec![CodecId::Rsz],
            policy,
            halo: None,
            drift_threshold: 0.5,
            calib_stride: 4,
            refresh_stride: 8,
            sweep_multipliers: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            refresh_multipliers: vec![0.5, 2.0],
            eb_ref: 1.0,
        }
    }

    /// Builder-style: open the codec selection space.
    pub fn with_codecs(mut self, codecs: &[CodecId]) -> Self {
        assert!(!codecs.is_empty(), "need at least one codec");
        self.codecs = codecs.to_vec();
        self
    }

    /// Builder-style: set the drift threshold.
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "drift threshold must be positive");
        self.drift_threshold = threshold;
        self
    }

    /// Builder-style: attach a halo-finder constraint to every snapshot.
    pub fn with_halo(mut self, t_boundary: f64, mass_fault_budget: f64) -> Self {
        self.halo = Some(HaloTarget { t_boundary, mass_fault_budget });
        self
    }
}

/// What the modeling layer did for one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recalibration {
    /// First snapshot: full calibration (sweep × full sample set).
    Full,
    /// Drift exceeded the threshold: sampled refresh (short sweep × small
    /// sample subset); the refreshed models apply from the next snapshot.
    Refreshed,
    /// Models transferred — zero modeling cost this snapshot.
    Skipped,
}

/// Per-snapshot session diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStats {
    /// 0-based snapshot index within the session.
    pub snapshot: usize,
    /// The budget the policy resolved for this snapshot.
    pub eb_avg: f64,
    /// What the modeling layer did.
    pub recalibration: Recalibration,
    /// Mean relative |predicted − measured| per-partition bit-rate
    /// residual observed on this snapshot (with the models that
    /// compressed it).
    pub drift_residual: f64,
    /// Wall-clock cost of calibration/refresh work this snapshot (zero
    /// when [`Recalibration::Skipped`]).
    pub model_cost: Duration,
    /// The pipeline run's phase timings (features / optimize / compress).
    pub timings: Timings,
}

impl SnapshotStats {
    /// Everything the adaptive machinery cost on top of compression this
    /// snapshot: calibration/refresh + feature extraction + optimization.
    /// The amortization claim is that after snapshot 0 this is dominated
    /// by the (cheap) feature + optimize terms.
    pub fn adaptive_cost(&self) -> Duration {
        self.model_cost + self.timings.features + self.timings.optimize
    }
}

/// One snapshot's outcome: the compressed result (containers in
/// partition-id order, ready to become a stream frame) plus diagnostics.
#[derive(Debug, Clone)]
pub struct SnapshotRecord {
    pub result: PipelineResult,
    pub stats: SnapshotStats,
}

/// Measured bit rates this small (bits/value) are treated as the floor
/// when normalising drift residuals, so empty-ish partitions cannot blow
/// the mean up.
const BITRATE_FLOOR: f64 = 1e-3;

/// The streaming session engine. See the module docs for the lifecycle.
#[derive(Debug, Clone)]
pub struct StreamSession {
    cfg: SessionConfig,
    pipeline: Option<InSituPipeline>,
    history: Vec<SnapshotStats>,
    calibration_reports: Vec<(CodecId, CalibrationReport)>,
}

impl StreamSession {
    /// Create an idle session; the first [`StreamSession::push_snapshot`]
    /// performs the one full calibration.
    pub fn new(cfg: SessionConfig) -> Self {
        assert!(cfg.dec.num_partitions() >= 2, "a session needs at least two partitions");
        assert!(!cfg.codecs.is_empty(), "need at least one codec");
        cfg.policy.validate();
        assert!(cfg.drift_threshold > 0.0, "drift threshold must be positive");
        assert!(cfg.calib_stride >= 1 && cfg.refresh_stride >= 1, "strides start at 1");
        assert!(cfg.sweep_multipliers.len() >= 2, "full calibration needs ≥ 2 bounds");
        assert!(cfg.refresh_multipliers.len() >= 2, "refresh needs ≥ 2 bounds");
        Self { cfg, pipeline: None, history: Vec::new(), calibration_reports: Vec::new() }
    }

    /// Compress the next snapshot of the series.
    pub fn push_snapshot<T: Scalar>(&mut self, field: &Field3<T>) -> SnapshotRecord {
        let sigma = gridlab::stats::summarize(field.as_slice()).std_dev();
        let mut model_cost = Duration::ZERO;
        let mut recalibration = Recalibration::Skipped;

        if self.pipeline.is_none() {
            let t = Instant::now();
            let eb0 = self.cfg.policy.bootstrap_eb(sigma);
            let sweep: Vec<f64> = self.cfg.sweep_multipliers.iter().map(|m| m * eb0).collect();
            let bank = self.fit_bank(field, self.cfg.calib_stride, &sweep, true);
            let target = Self::target_for(self.cfg.halo, eb0);
            let pc = PipelineConfig {
                dec: self.cfg.dec.clone(),
                target,
                codecs: self.cfg.codecs.clone(),
                eb_ref: self.cfg.eb_ref,
            };
            self.pipeline = Some(InSituPipeline::with_models(pc, bank));
            model_cost += t.elapsed();
            recalibration = Recalibration::Full;
        }
        let pipeline = self.pipeline.as_mut().expect("calibrated above");

        let t_features = Instant::now();
        let features = pipeline.extract_features(field);
        let features_time = t_features.elapsed();

        let eb_avg = self.cfg.policy.resolve(
            sigma,
            features.iter().map(|f| f.mean),
            &pipeline.optimizer.models,
        );
        pipeline.set_target(Self::target_for(self.cfg.halo, eb_avg));

        let mut result = pipeline.run_with_features(field, features);
        result.timings.features = features_time;

        let drift_residual = drift_residual(&result, &pipeline.optimizer.models);
        if recalibration == Recalibration::Skipped && drift_residual > self.cfg.drift_threshold {
            let t = Instant::now();
            let sweep: Vec<f64> = self.cfg.refresh_multipliers.iter().map(|m| m * eb_avg).collect();
            let bank = self.fit_bank(field, self.cfg.refresh_stride, &sweep, false);
            self.pipeline.as_mut().expect("calibrated").set_models(bank);
            model_cost += t.elapsed();
            recalibration = Recalibration::Refreshed;
        }

        let stats = SnapshotStats {
            snapshot: self.history.len(),
            eb_avg,
            recalibration,
            drift_residual,
            model_cost,
            timings: result.timings,
        };
        self.history.push(stats);
        SnapshotRecord { result, stats }
    }

    /// Fit one model per enabled codec on a sampled brick subset. The
    /// stride is clamped so at least two bricks are sampled (the fit's
    /// minimum).
    fn fit_bank<T: Scalar>(
        &mut self,
        field: &Field3<T>,
        stride: usize,
        sweep: &[f64],
        keep_reports: bool,
    ) -> CodecModelBank {
        let parts = self.cfg.dec.num_partitions();
        let stride = stride.min(parts - 1).max(1);
        let bricks = sample_bricks(field, &self.cfg.dec, stride);
        let refs: Vec<&Field3<T>> = bricks.iter().collect();
        let (bank, reports) = CodecModelBank::calibrate(&self.cfg.codecs, &refs, sweep);
        if keep_reports {
            self.calibration_reports = reports;
        }
        bank
    }

    fn target_for(halo: Option<HaloTarget>, eb_avg: f64) -> QualityTarget {
        match halo {
            Some(h) => QualityTarget::with_halo(eb_avg, h.t_boundary, h.mass_fault_budget),
            None => QualityTarget::fft_only(eb_avg),
        }
    }

    /// Session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The underlying pipeline, once the first snapshot calibrated it.
    pub fn pipeline(&self) -> Option<&InSituPipeline> {
        self.pipeline.as_ref()
    }

    /// The fitted model bank, once calibrated.
    pub fn models(&self) -> Option<&CodecModelBank> {
        self.pipeline.as_ref().map(|p| &p.optimizer.models)
    }

    /// Diagnostics of the full calibration (per codec, bank order).
    pub fn calibration_reports(&self) -> &[(CodecId, CalibrationReport)] {
        &self.calibration_reports
    }

    /// Per-snapshot stats, oldest first.
    pub fn history(&self) -> &[SnapshotStats] {
        &self.history
    }

    /// Snapshots pushed so far.
    pub fn snapshots(&self) -> usize {
        self.history.len()
    }

    /// How many snapshots ran a full calibration (must be ≤ 1: only the
    /// first snapshot ever pays it).
    pub fn full_calibrations(&self) -> usize {
        self.history.iter().filter(|s| s.recalibration == Recalibration::Full).count()
    }

    /// How many snapshots triggered a sampled refresh.
    pub fn refreshes(&self) -> usize {
        self.history.iter().filter(|s| s.recalibration == Recalibration::Refreshed).count()
    }
}

/// Mean relative |predicted − measured| per-partition bit rate of one run
/// under the models that produced it — the session's drift signal.
pub fn drift_residual(result: &PipelineResult, bank: &CodecModelBank) -> f64 {
    if result.features.is_empty() {
        return 0.0;
    }
    let measured = result.measured_bitrates();
    let mut acc = 0.0;
    for (((f, &eb), codec), &m) in
        result.features.iter().zip(&result.ebs).zip(&result.codecs).zip(&measured)
    {
        let predicted =
            bank.get(*codec).expect("run's codec is in the bank").predict_bitrate(f.mean, eb);
        acc += (predicted - m).abs() / m.max(BITRATE_FLOOR);
    }
    acc / result.features.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Dim3;

    /// A field family whose contrast scales with `amp` — structure
    /// "forms" as amp grows, like lowering redshift.
    fn evolving_field(n: usize, amp: f64, seed: u64) -> Field3<f32> {
        let mut state = seed;
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let bright = x >= n / 2 && y >= n / 2;
            let base = if bright { 40.0 * amp } else { 8.0 };
            (base + amp * ((z as f64 * 0.9).sin() * 3.0 + noise)) as f32
        })
    }

    fn session(n: usize, parts: usize, policy: QualityPolicy) -> StreamSession {
        let dec = Decomposition::cubic(n, parts).unwrap();
        StreamSession::new(SessionConfig::new(dec, policy))
    }

    #[test]
    fn first_snapshot_calibrates_fully_then_models_transfer() {
        let mut s = session(32, 4, QualityPolicy::SigmaScaled(0.1));
        for i in 0..4 {
            let field = evolving_field(32, 1.0 + 0.01 * i as f64, 9);
            let rec = s.push_snapshot(&field);
            if i == 0 {
                assert_eq!(rec.stats.recalibration, Recalibration::Full);
                assert!(rec.stats.model_cost > Duration::ZERO);
            } else {
                // Near-identical snapshots: the model transfers.
                assert_eq!(rec.stats.recalibration, Recalibration::Skipped, "snapshot {i}");
                assert_eq!(rec.stats.model_cost, Duration::ZERO);
            }
        }
        assert_eq!(s.full_calibrations(), 1);
        assert_eq!(s.snapshots(), 4);
        assert!(!s.calibration_reports().is_empty());
    }

    #[test]
    fn fixed_policy_keeps_the_budget_fixed() {
        let mut s = session(16, 2, QualityPolicy::FixedEb(0.3));
        for amp in [1.0, 3.0] {
            let rec = s.push_snapshot(&evolving_field(16, amp, 3));
            assert_eq!(rec.stats.eb_avg, 0.3);
            let mean = rec.result.ebs.iter().sum::<f64>() / rec.result.ebs.len() as f64;
            assert!(mean <= 0.3 * (1.0 + 1e-9), "mean {mean}");
        }
    }

    #[test]
    fn sigma_policy_tracks_field_amplitude() {
        let mut s = session(16, 2, QualityPolicy::SigmaScaled(0.1));
        let lo = s.push_snapshot(&evolving_field(16, 1.0, 5)).stats.eb_avg;
        let hi = s.push_snapshot(&evolving_field(16, 6.0, 5)).stats.eb_avg;
        assert!(hi > lo * 2.0, "budget should scale with contrast: {lo} → {hi}");
    }

    #[test]
    fn bitrate_budget_policy_hits_the_predicted_budget() {
        let mut s = session(24, 2, QualityPolicy::BitrateBudget(2.0));
        let rec = s.push_snapshot(&evolving_field(24, 2.0, 11));
        let predicted = rec.result.decision.as_ref().unwrap().predicted_bitrate;
        // The optimizer redistributes bounds at the resolved eb_avg, so the
        // realised prediction sits near (at or below) the budget.
        assert!(
            predicted <= 2.0 * 1.05 && predicted > 0.5,
            "predicted bitrate {predicted} should sit near the 2.0 budget"
        );
    }

    #[test]
    fn drift_triggers_a_sampled_refresh_not_a_full_recalibration() {
        let dec = Decomposition::cubic(24, 2).unwrap();
        let cfg =
            SessionConfig::new(dec, QualityPolicy::SigmaScaled(0.1)).with_drift_threshold(0.05);
        let mut s = StreamSession::new(cfg);
        s.push_snapshot(&evolving_field(24, 1.0, 21));
        // A violently different field: the transferred model must misfit.
        let rec = s.push_snapshot(&evolving_field(24, 50.0, 77));
        assert_eq!(rec.stats.recalibration, Recalibration::Refreshed);
        assert!(rec.stats.drift_residual > 0.05);
        assert_eq!(s.full_calibrations(), 1, "refresh must not count as full");
        assert_eq!(s.refreshes(), 1);
        // The refreshed model applies from the NEXT snapshot and fits the
        // new regime better.
        let rec2 = s.push_snapshot(&evolving_field(24, 50.0, 78));
        assert!(
            rec2.stats.drift_residual < rec.stats.drift_residual,
            "refresh should reduce the residual: {} → {}",
            rec.stats.drift_residual,
            rec2.stats.drift_residual
        );
    }

    #[test]
    fn steady_state_adaptive_cost_is_below_full_calibration_cost() {
        let mut s = session(32, 4, QualityPolicy::SigmaScaled(0.1));
        let first = s.push_snapshot(&evolving_field(32, 2.0, 31));
        let mut steady = Duration::ZERO;
        for i in 0..3 {
            let rec = s.push_snapshot(&evolving_field(32, 2.0 + 0.01 * i as f64, 31));
            steady = steady.max(rec.stats.adaptive_cost());
        }
        assert!(
            steady < first.stats.model_cost,
            "steady adaptive cost {steady:?} should undercut the full calibration \
             {:?}",
            first.stats.model_cost
        );
    }

    #[test]
    fn session_respects_per_partition_bounds_every_snapshot() {
        let mut s = session(16, 2, QualityPolicy::SigmaScaled(0.15));
        for amp in [1.0, 4.0, 9.0] {
            let field = evolving_field(16, amp, 41);
            let rec = s.push_snapshot(&field);
            let dec = &s.pipeline().unwrap().config().dec;
            let recon: Field3<f32> = rec.result.reconstruct(dec).unwrap();
            for ((bo, br), &eb) in
                dec.split(&field).iter().zip(&dec.split(&recon)[..]).zip(&rec.result.ebs)
            {
                assert!(bo.max_abs_diff(br) <= eb + 1e-9);
            }
        }
    }

    #[test]
    fn multi_codec_session_mixes_backends() {
        let dec = Decomposition::cubic(32, 4).unwrap();
        let cfg =
            SessionConfig::new(dec, QualityPolicy::SigmaScaled(0.1)).with_codecs(&CodecId::ALL);
        let mut s = StreamSession::new(cfg);
        let rec = s.push_snapshot(&evolving_field(32, 3.0, 13));
        let total: usize = rec.result.codec_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 64);
        assert!(s.models().unwrap().get(CodecId::Zfp).is_some());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let dec = Decomposition::cubic(8, 2).unwrap();
        let base = SessionConfig::new(dec.clone(), QualityPolicy::FixedEb(0.1));
        let mut bad = base.clone();
        bad.refresh_multipliers = vec![1.0];
        assert!(std::panic::catch_unwind(move || StreamSession::new(bad)).is_err());
        let mut bad = base.clone();
        bad.drift_threshold = 0.0;
        assert!(std::panic::catch_unwind(move || StreamSession::new(bad)).is_err());
        let one = Decomposition::cubic(8, 1).unwrap();
        let bad = SessionConfig::new(one, QualityPolicy::FixedEb(0.1));
        assert!(std::panic::catch_unwind(move || StreamSession::new(bad)).is_err());
        // Non-positive policy parameters fail at construction, not deep in
        // the optimizer mid-series.
        for policy in [
            QualityPolicy::FixedEb(0.0),
            QualityPolicy::SigmaScaled(-0.1),
            QualityPolicy::BitrateBudget(f64::NAN),
        ] {
            let bad = SessionConfig::new(dec.clone(), policy);
            assert!(
                std::panic::catch_unwind(move || StreamSession::new(bad)).is_err(),
                "{policy:?} accepted"
            );
        }
    }

    #[test]
    fn bitrate_budget_falls_back_on_degenerate_rate_curves() {
        // A near-constant field fits c ≈ 0: the rate curve barely moves
        // with the bound, the budget cannot be bracketed, and resolve must
        // fall back to the σ-scaled bootstrap instead of converging to an
        // absurd e^±60 domain edge.
        let dec = Decomposition::cubic(16, 2).unwrap();
        let mut s = StreamSession::new(SessionConfig::new(dec, QualityPolicy::BitrateBudget(2.0)));
        // A gentle gradient: brick means differ (so the C(mean) fit is
        // well-posed), but Lorenzo predicts the field perfectly at every
        // bound, so the rate curve is flat (c ≈ 0) and cannot be inverted
        // for the budget.
        let flat = Field3::from_fn(Dim3::cube(16), |x, y, z| 5.0 + (x + y + z) as f32 * 1e-3);
        let rec = s.push_snapshot(&flat);
        assert!(
            rec.stats.eb_avg > 1e-13 && rec.stats.eb_avg < 1e3,
            "degenerate curve must not produce an absurd bound: {}",
            rec.stats.eb_avg
        );
    }

    #[test]
    fn drift_residual_of_traditional_run_is_zero() {
        // Traditional runs carry no features; the signal degrades to 0
        // rather than panicking.
        let mut s = session(16, 2, QualityPolicy::FixedEb(0.2));
        s.push_snapshot(&evolving_field(16, 1.0, 7));
        let p = s.pipeline().unwrap();
        let r = p.run_traditional(&evolving_field(16, 1.0, 7), 0.2);
        assert_eq!(drift_residual(&r, &p.optimizer.models), 0.0);
    }
}
