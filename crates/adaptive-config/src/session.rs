//! Streaming session engine — the paper's deployment mode made first-class.
//!
//! The real in situ workflow is a time-series loop (Fig. 16): calibrate
//! once on an early snapshot, then compress every subsequent snapshot as
//! structure evolves. [`StreamSession`] owns everything that loop needs to
//! persist across snapshots:
//!
//! * the fitted [`CodecModelBank`] (one rate model per enabled backend),
//!   trained by a **single full calibration** on the first snapshot;
//! * a [`QualityPolicy`] that derives each snapshot's quality target from
//!   the evolving field instead of ad-hoc config mutation;
//! * a **drift detector**: each snapshot the per-partition bit rates the
//!   models predicted are compared against what the codecs actually
//!   produced. While the mean relative residual stays under
//!   [`SessionConfig::drift_threshold`], later snapshots pay *zero*
//!   modeling cost (the paper's Fig. 10(b) transfer claim, now checked
//!   instead of assumed). When structure formation drifts the rate curves
//!   past the threshold, the session runs an **incremental recalibration**:
//!   a sampled refresh over a small brick subset and a short bound sweep
//!   (reusing the [`RatioModel::calibrate_by`] plumbing via
//!   [`CodecModelBank::calibrate`]), several times cheaper than the
//!   first-snapshot calibration. The refreshed models take effect
//!   from the next snapshot — no snapshot is ever compressed twice.
//!
//! ## Per-partition drift localisation
//!
//! The drift signal is per-partition before it is a mean:
//! [`drift_residuals`] reports each partition's relative
//! |predicted − measured| bit-rate error, and [`drift_residual`] is its
//! mean. When the mean trips [`SessionConfig::drift_threshold`], the
//! refresh samples **only the partitions whose own residual exceeds the
//! threshold** (padded to the fit's two-brick minimum with the
//! worst-residual partitions, and evenly subsampled down to the old
//! stride-derived brick count if a global shift trips *every*
//! partition). The sample always includes the two **calmest** partitions
//! as healthy anchors: the refreshed models replace the bank globally,
//! and a fit drawn only from anomalous bricks would mis-price every
//! partition that never drifted. A moving shock front therefore refits
//! from the handful of bricks it is crossing plus two anchors, while a
//! full regime shift degrades to exactly the old whole-bank sampled
//! refresh — the localised path's worst case *is* the previous
//! behaviour, never more. The deferred
//! [`RefreshTask`] captures the same partition list, so inline and
//! deferred refreshes stay bit-for-bit identical.
//! [`SnapshotStats::refreshed_partitions`] and
//! [`SnapshotRecord::residuals`] expose the localisation for audit.
//!
//! ## Non-finite ingestion
//!
//! A field carrying NaN/∞ cells cannot be modeled: partition means go
//! NaN, the fit poisons the bank, and every later `residual > threshold`
//! comparison is silently `false` — a blinded drift detector, the worst
//! failure mode of all. [`StreamSession::push_snapshot`] therefore
//! screens the field and rejects non-finite input with a typed
//! [`PushError::NonFiniteInput`] before any state changes; the session
//! stays usable for the next (finite) snapshot. Residual terms are also
//! saturated: a non-finite prediction or an invalid bound reads as a
//! huge residual (drift **fires**) rather than a NaN comparison (drift
//! silently disabled). The chaos harness (`tests/chaos_matrix.rs`,
//! driven by the `scenarios` workload zoo) pins both behaviours, plus
//! the true-positive/false-positive envelope of the detector on every
//! scenario series.
//!
//! Per-snapshot outcomes ([`SnapshotRecord`]) carry the containers (ready
//! for a `codec_core::StreamWriter` frame) plus [`SnapshotStats`] with the
//! calibration event, the measured drift residual and the modeling cost,
//! so the amortization claim is auditable from the session history alone.
//!
//! ## Checkpoint / restore
//!
//! Long-running simulations die; without persistence a restart repays the
//! full first-snapshot calibration the session exists to amortize.
//! [`StreamSession::save`] serialises everything the modeling layer
//! learned — the fitted [`CodecModelBank`], the [`QualityPolicy`] and the
//! rest of the [`SessionConfig`] (including the partition geometry), the
//! optimizer's clamp tuning, and the drift state — into a versioned
//! `CKPT` blob ([`SessionCheckpoint`] is the typed form).
//! [`StreamSession::restore`] rebuilds a session that **skips
//! recalibration entirely**: its next [`StreamSession::push_snapshot`]
//! transfers the checkpointed models exactly as the uninterrupted run
//! would have, so resumed frames are byte-identical to never having
//! crashed. Every corruption of the blob surfaces as a typed
//! [`CheckpointError`], never a panic. Versioning rule: the `CKPT`
//! version byte bumps on any layout/semantics change, and old readers
//! reject newer blobs loudly (no silent best-effort decode of models that
//! would then misprice every partition).
//!
//! Pairing rule for durable streams: persist the blob only after the
//! matching frame's `append_frame` returns, so the checkpoint on disk
//! always corresponds to the stream's recoverable prefix. A checkpoint
//! taken after a frame that did *not* survive the crash may already carry
//! a drift-refreshed bank (refreshes fire inside the push that detects
//! them) and re-pushing the lost snapshot against it would not reproduce
//! the uninterrupted bytes.
//!
//! [`RatioModel::calibrate_by`]: crate::ratio_model::RatioModel::calibrate_by

use crate::optimizer::{HaloTarget, QualityTarget};
use crate::pipeline::{InSituPipeline, PipelineConfig, PipelineResult, Timings};
use crate::ratio_model::{
    bricks_at, sample_bricks, CalibrationError, CalibrationReport, CodecModelBank, RatioModel,
};
use codec_core::{fnv1a64, CodecId, Container};
use gridlab::{Decomposition, Field3, Scalar};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};
use telemetry::{Counter, Event, Gauge, Histogram, MetricsRegistry};

/// Why a snapshot push was rejected. The session state is untouched by a
/// rejected push — the caller can fix or drop the offending snapshot and
/// continue the series.
#[derive(Debug, Clone, PartialEq)]
pub enum PushError {
    /// The field carries NaN/∞ cells; modeling it would silently corrupt
    /// the bank (see the module's non-finite ingestion notes).
    NonFiniteInput {
        /// How many cells are NaN/∞.
        non_finite: usize,
        /// Total cells in the field.
        cells: usize,
    },
    /// Model calibration rejected the sampled bricks.
    Calibration(CalibrationError),
}

impl std::fmt::Display for PushError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::NonFiniteInput { non_finite, cells } => {
                write!(f, "field has {non_finite} non-finite of {cells} cells")
            }
            PushError::Calibration(e) => write!(f, "calibration failed: {e}"),
        }
    }
}

impl std::error::Error for PushError {}

impl From<CalibrationError> for PushError {
    fn from(e: CalibrationError) -> Self {
        PushError::Calibration(e)
    }
}

/// How a session derives each snapshot's average-bound budget.
///
/// This replaces the hand-rolled `pipeline.cfg.target = ...` mutation the
/// redshift-series example used to perform: the policy is declared once
/// and the session re-evaluates it against every incoming field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum QualityPolicy {
    /// The same absolute average bound for every snapshot.
    FixedEb(f64),
    /// `eb_avg = fraction × σ(field)` — the budget tracks the evolving
    /// field amplitude (the Fig. 16/17 workflow, where growing contrast
    /// at lower redshift widens the usable bound).
    SigmaScaled(f64),
    /// `eb_avg` chosen so the **model-predicted** overall bit rate equals
    /// this budget (bits/value): a storage-budget contract instead of a
    /// quality contract, inverted through the fitted model bank each
    /// snapshot.
    BitrateBudget(f64),
}

impl QualityPolicy {
    /// Non-panicking invariant check — the restore path must reject a
    /// corrupt policy with a typed error, not a panic.
    fn check(&self) -> Result<(), String> {
        let (name, v) = match *self {
            QualityPolicy::FixedEb(eb) => ("FixedEb bound", eb),
            QualityPolicy::SigmaScaled(fraction) => ("SigmaScaled fraction", fraction),
            QualityPolicy::BitrateBudget(budget) => ("BitrateBudget bits/value", budget),
        };
        if v > 0.0 && v.is_finite() {
            Ok(())
        } else {
            Err(format!("{name} must be positive and finite, got {v}"))
        }
    }

    /// One rung down a quality-degradation ladder: the same contract,
    /// `factor` times looser. Quality policies loosen by *widening* the
    /// bound (`FixedEb`, `SigmaScaled` multiply by `factor`); a storage
    /// contract loosens by *shrinking* the budget (`BitrateBudget`
    /// divides by `factor`) — both directions mean "spend fewer bits".
    /// This is the primitive an overloaded server steps through instead
    /// of stalling its callers.
    pub fn relax(&self, factor: f64) -> QualityPolicy {
        assert!(factor >= 1.0 && factor.is_finite(), "relax factor must be ≥ 1, got {factor}");
        match *self {
            QualityPolicy::FixedEb(eb) => QualityPolicy::FixedEb(eb * factor),
            QualityPolicy::SigmaScaled(f) => QualityPolicy::SigmaScaled(f * factor),
            QualityPolicy::BitrateBudget(b) => QualityPolicy::BitrateBudget(b / factor),
        }
    }

    /// The bound used to centre the first-snapshot calibration sweep,
    /// before any model exists. For [`QualityPolicy::BitrateBudget`] this
    /// is a σ-scaled guess probing the paper's operating regime; the
    /// actual budget inversion starts with the fitted bank.
    fn bootstrap_eb(&self, sigma: f64) -> f64 {
        let eb = match *self {
            QualityPolicy::FixedEb(eb) => eb,
            QualityPolicy::SigmaScaled(fraction) => fraction * sigma,
            QualityPolicy::BitrateBudget(_) => 0.1 * sigma,
        };
        eb.max(1e-12)
    }

    /// Resolve the snapshot's budget against the current models.
    fn resolve(
        &self,
        sigma: f64,
        means: impl Iterator<Item = f64> + Clone,
        bank: &CodecModelBank,
    ) -> f64 {
        match *self {
            QualityPolicy::FixedEb(eb) => eb,
            QualityPolicy::SigmaScaled(fraction) => (fraction * sigma).max(1e-12),
            QualityPolicy::BitrateBudget(budget) => {
                // Cheapest-codec pricing at a uniform bound is decreasing
                // in the bound for healthy fits (exponent < 0), so the
                // budget inverts by bisection on ln eb.
                let rate_at = |ln_eb: f64| {
                    let eb = ln_eb.exp();
                    let mut sum = 0.0;
                    let mut n = 0usize;
                    for mean in means.clone() {
                        let cheapest = bank
                            .entries()
                            .iter()
                            .map(|(_, m)| m.predict_bitrate(mean, eb))
                            .fold(f64::INFINITY, f64::min);
                        sum += cheapest;
                        n += 1;
                    }
                    sum / n.max(1) as f64
                };
                let (mut lo, mut hi) = (-60.0f64, 60.0f64);
                // Degenerate curves (near-constant fields fit c ≈ 0, so
                // the rate barely moves with the bound) cannot bracket the
                // budget; bisection would silently converge to a domain
                // edge like e^±60. Fall back to the σ-scaled bootstrap
                // guess instead of an absurd bound.
                if rate_at(lo) <= budget || rate_at(hi) >= budget {
                    return self.bootstrap_eb(sigma);
                }
                while hi - lo > 1e-12 {
                    let mid = 0.5 * (lo + hi);
                    if rate_at(mid) > budget {
                        lo = mid; // rate too high ⇒ bound too tight
                    } else {
                        hi = mid;
                    }
                }
                (0.5 * (lo + hi)).exp()
            }
        }
    }
}

/// Static configuration of a [`StreamSession`]. Serializable: the whole
/// config (decomposition geometry included) rides along in a session
/// checkpoint so a restarted run cannot resume against the wrong layout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Domain decomposition shared by every snapshot.
    pub dec: Decomposition,
    /// Enabled codec backends (selection-priority order).
    pub codecs: Vec<CodecId>,
    /// Per-snapshot budget derivation.
    pub policy: QualityPolicy,
    /// Optional halo-finder constraint applied to every snapshot's target.
    pub halo: Option<HaloTarget>,
    /// Mean relative |predicted − measured| per-partition bit-rate
    /// residual above which the session refreshes its models.
    pub drift_threshold: f64,
    /// Sample-every-Nth-partition stride of the first-snapshot (full)
    /// calibration.
    pub calib_stride: usize,
    /// Stride of the drift-triggered sampled refresh (larger ⇒ fewer
    /// bricks ⇒ cheaper).
    pub refresh_stride: usize,
    /// Full-calibration sweep, as multipliers of the bootstrap bound.
    pub sweep_multipliers: Vec<f64>,
    /// Refresh sweep, as multipliers of the current bound (short: the
    /// shared exponent is re-fit from two points per brick).
    pub refresh_multipliers: Vec<f64>,
    /// Reference bound for boundary-cell feature extraction.
    pub eb_ref: f64,
    /// Auto-checkpoint cadence: `Some(k)` asks the embedding layer to
    /// persist a checkpoint every `k` accepted snapshots (see
    /// [`StreamSession::should_checkpoint`]/[`StreamSession::save_to`]),
    /// so the saved `CKPT` can never drift arbitrarily far behind the
    /// durable stream prefix. `None` (the default) keeps persistence
    /// fully caller-driven.
    pub checkpoint_every: Option<usize>,
}

impl SessionConfig {
    /// Defaults: rsz-only, 50 % drift threshold, stride-4 full calibration
    /// with the standard 5-point sweep, stride-8 refresh with a 2-point
    /// sweep.
    ///
    /// The threshold is calibrated against the rate model's honest
    /// accuracy: healthy fits on Nyx-like contrast fields sit at a mean
    /// relative residual of 0.1–0.45 (the paper tolerates per-partition
    /// errors up to ~50 %), genuine regime change pushes past 0.6, and a
    /// miscalibrated model reads in the 1–25 range — 0.5 separates the
    /// populations without churning on fit noise.
    pub fn new(dec: Decomposition, policy: QualityPolicy) -> Self {
        Self {
            dec,
            codecs: vec![CodecId::Rsz],
            policy,
            halo: None,
            drift_threshold: 0.5,
            calib_stride: 4,
            refresh_stride: 8,
            sweep_multipliers: vec![0.25, 0.5, 1.0, 2.0, 4.0],
            refresh_multipliers: vec![0.5, 2.0],
            eb_ref: 1.0,
            checkpoint_every: None,
        }
    }

    /// Builder-style: auto-checkpoint every `every` accepted snapshots.
    pub fn with_checkpoint_every(mut self, every: usize) -> Self {
        assert!(every > 0, "checkpoint cadence starts at 1");
        self.checkpoint_every = Some(every);
        self
    }

    /// Builder-style: open the codec selection space.
    pub fn with_codecs(mut self, codecs: &[CodecId]) -> Self {
        assert!(!codecs.is_empty(), "need at least one codec");
        self.codecs = codecs.to_vec();
        self
    }

    /// Builder-style: set the drift threshold.
    pub fn with_drift_threshold(mut self, threshold: f64) -> Self {
        assert!(threshold > 0.0, "drift threshold must be positive");
        self.drift_threshold = threshold;
        self
    }

    /// Builder-style: attach a halo-finder constraint to every snapshot.
    pub fn with_halo(mut self, t_boundary: f64, mass_fault_budget: f64) -> Self {
        self.halo = Some(HaloTarget { t_boundary, mass_fault_budget });
        self
    }

    /// Every invariant [`StreamSession::new`] asserts, as a `Result` — the
    /// one implementation behind both the constructor's panics (caller
    /// bugs fail where they were written) and the checkpoint-restore
    /// validation (corrupt blobs fail with a typed error).
    fn check(&self) -> Result<(), String> {
        if self.dec.num_partitions() < 2 {
            return Err("a session needs at least two partitions".into());
        }
        if self.codecs.is_empty() {
            return Err("need at least one codec".into());
        }
        self.policy.check()?;
        if !(self.drift_threshold > 0.0 && self.drift_threshold.is_finite()) {
            return Err(format!(
                "drift threshold must be positive and finite, got {}",
                self.drift_threshold
            ));
        }
        if self.calib_stride < 1 || self.refresh_stride < 1 {
            return Err("strides start at 1".into());
        }
        if self.sweep_multipliers.len() < 2 {
            return Err("full calibration needs >= 2 bounds".into());
        }
        if self.refresh_multipliers.len() < 2 {
            return Err("refresh needs >= 2 bounds".into());
        }
        for m in self.sweep_multipliers.iter().chain(&self.refresh_multipliers) {
            if !(*m > 0.0 && m.is_finite()) {
                return Err(format!("sweep multipliers must be positive and finite, got {m}"));
            }
        }
        if !(self.eb_ref > 0.0 && self.eb_ref.is_finite()) {
            return Err(format!("eb_ref must be positive and finite, got {}", self.eb_ref));
        }
        if self.checkpoint_every == Some(0) {
            return Err("checkpoint cadence starts at 1".into());
        }
        Ok(())
    }
}

/// What the modeling layer did for one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Recalibration {
    /// First snapshot: full calibration (sweep × full sample set).
    Full,
    /// Drift exceeded the threshold: sampled refresh (short sweep × small
    /// sample subset); the refreshed models apply from the next snapshot.
    Refreshed,
    /// Models transferred — zero modeling cost this snapshot.
    Skipped,
}

/// Per-snapshot session diagnostics.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotStats {
    /// 0-based snapshot index within the session.
    pub snapshot: usize,
    /// The budget the policy resolved for this snapshot.
    pub eb_avg: f64,
    /// What the modeling layer did.
    pub recalibration: Recalibration,
    /// Mean relative |predicted − measured| per-partition bit-rate
    /// residual observed on this snapshot (with the models that
    /// compressed it).
    pub drift_residual: f64,
    /// Wall-clock cost of calibration/refresh work this snapshot (zero
    /// when [`Recalibration::Skipped`]).
    pub model_cost: Duration,
    /// How many partitions this snapshot's refresh sampled (0 unless
    /// [`Recalibration::Refreshed`]) — the localisation audit trail: a
    /// localised drift refits from few bricks, a global regime shift from
    /// the full stride-derived sample set.
    pub refreshed_partitions: usize,
    /// The pipeline run's phase timings (features / optimize / compress).
    pub timings: Timings,
}

impl SnapshotStats {
    /// Everything the adaptive machinery cost on top of compression this
    /// snapshot: calibration/refresh + feature extraction + optimization.
    /// The amortization claim is that after snapshot 0 this is dominated
    /// by the (cheap) feature + optimize terms.
    pub fn adaptive_cost(&self) -> Duration {
        self.model_cost + self.timings.features + self.timings.optimize
    }
}

/// One snapshot's outcome: the compressed result (containers in
/// partition-id order, ready to become a stream frame) plus diagnostics.
#[derive(Debug, Clone)]
pub struct SnapshotRecord {
    pub result: PipelineResult,
    pub stats: SnapshotStats,
    /// Per-partition drift residuals of this snapshot (the terms whose
    /// mean is `stats.drift_residual`) — which partitions the models
    /// mis-priced, and by how much.
    pub residuals: Vec<f64>,
}

/// Measured bit rates this small (bits/value) are treated as the floor
/// when normalising drift residuals, so empty-ish partitions cannot blow
/// the mean up.
const BITRATE_FLOOR: f64 = 1e-3;

/// Telemetry handles a session caches when a registry is attached via
/// [`StreamSession::attach_metrics`]. Handles are resolved once at
/// attach time (registration takes the registry mutex); per-push updates
/// are lock-free. Cloning shares the handles — clones report into the
/// same series.
#[derive(Debug, Clone)]
pub struct SessionMetrics {
    registry: Arc<MetricsRegistry>,
    stream: u64,
    /// `session_drift_residual{stream}`: drift residual of the latest
    /// push (gauge — the instantaneous drift signal).
    drift_gauge: Arc<Gauge>,
    /// `session_model_ns{kind="calibration"}`: full-calibration cost.
    model_calibration_ns: Arc<Histogram>,
    /// `session_model_ns{kind="refresh"}`: localized-refresh cost
    /// (sampling only, for deferred refreshes).
    model_refresh_ns: Arc<Histogram>,
    /// `session_steady_ns`: steady-state modeling per push (feature
    /// extraction + optimizer resolve — the no-recalibration cost).
    steady_ns: Arc<Histogram>,
    /// `span_self_ns{phase="session_push"}`: the push's self time, i.e.
    /// excluding the codec compress spans nested inside it.
    push_span_ns: Arc<Histogram>,
    refresh_partitions: Arc<Counter>,
    refreshes: Arc<Counter>,
}

impl SessionMetrics {
    fn new(registry: Arc<MetricsRegistry>, stream: u64) -> Self {
        let s = stream.to_string();
        let by_stream: &[(&str, &str)] = &[("stream", s.as_str())];
        Self {
            drift_gauge: registry.gauge("session_drift_residual", by_stream),
            model_calibration_ns: registry
                .histogram("session_model_ns", &[("stream", &s), ("kind", "calibration")]),
            model_refresh_ns: registry
                .histogram("session_model_ns", &[("stream", &s), ("kind", "refresh")]),
            steady_ns: registry.histogram("session_steady_ns", by_stream),
            push_span_ns: registry
                .histogram("span_self_ns", &[("stream", &s), ("phase", "session_push")]),
            refresh_partitions: registry.counter("session_refresh_partitions_total", by_stream),
            refreshes: registry.counter("session_refreshes_total", by_stream),
            registry,
            stream,
        }
    }

    /// The registry these handles report into.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// The stream id used as the `stream` label.
    pub fn stream(&self) -> u64 {
        self.stream
    }
}

/// The streaming session engine. See the module docs for the lifecycle.
#[derive(Debug, Clone)]
pub struct StreamSession {
    cfg: SessionConfig,
    pipeline: Option<InSituPipeline>,
    history: Vec<SnapshotStats>,
    calibration_reports: Vec<(CodecId, CalibrationReport)>,
    /// Lifetime counters carried over from the checkpoint a restored
    /// session resumed from (all zero for a fresh session): snapshots,
    /// full calibrations, refreshes before the restart.
    prior: (usize, usize, usize),
    /// Drift residual of the most recent snapshot (restored included).
    last_drift: f64,
    /// Telemetry handles, when a registry is attached. Purely
    /// observational: never serialized (checkpoints carry no metrics —
    /// a restored session starts detached) and never affects the
    /// compressed bytes.
    metrics: Option<SessionMetrics>,
}

impl StreamSession {
    /// Create an idle session; the first [`StreamSession::push_snapshot`]
    /// performs the one full calibration.
    pub fn new(cfg: SessionConfig) -> Self {
        if let Err(m) = cfg.check() {
            panic!("{m}");
        }
        Self {
            cfg,
            pipeline: None,
            history: Vec::new(),
            calibration_reports: Vec::new(),
            prior: (0, 0, 0),
            last_drift: 0.0,
            metrics: None,
        }
    }

    /// Attach a metrics registry: per-push modeling timings, the drift
    /// gauge, refresh counters, and the drift/refresh/checkpoint events
    /// start reporting under the `stream` label. The multi-tenant server
    /// attaches its own registry per tenant; standalone sessions may
    /// attach [`telemetry::global`]. Observational only — attaching (or
    /// not) never changes the compressed bytes.
    pub fn attach_metrics(&mut self, registry: Arc<MetricsRegistry>, stream: u64) {
        self.metrics = Some(SessionMetrics::new(registry, stream));
    }

    /// The attached metrics handles, if any.
    pub fn metrics(&self) -> Option<&SessionMetrics> {
        self.metrics.as_ref()
    }

    /// Compress the next snapshot of the series. Rejects non-finite
    /// fields with a typed [`PushError`] (session state untouched).
    pub fn push_snapshot<T: Scalar>(
        &mut self,
        field: &Field3<T>,
    ) -> Result<SnapshotRecord, PushError> {
        let (record, task) = self.push_inner(field, false)?;
        debug_assert!(task.is_none(), "inline pushes complete their refresh in place");
        Ok(record)
    }

    /// [`push_snapshot`](StreamSession::push_snapshot), with drift-
    /// triggered refreshes **deferred**: instead of recalibrating inline
    /// (which can take several times the compress cost and, in a
    /// multi-tenant server, starve neighbouring streams), a detected
    /// drift returns a [`RefreshTask`] capturing the sampled bricks at
    /// detection time. The caller steps the task at its own pace —
    /// interleaving other sessions' pushes between steps — and hands the
    /// finished task back through
    /// [`install_refresh`](StreamSession::install_refresh) *before this
    /// session's next push*. Driven to completion, the deferred path
    /// installs a bank bit-identical to what the inline path would have
    /// fitted, so the compressed series is byte-identical either way.
    ///
    /// The returned record is exactly what `push_snapshot` would have
    /// produced for this snapshot (the refresh only ever affects *later*
    /// snapshots); its stats already say [`Recalibration::Refreshed`],
    /// with `model_cost` covering only the brick sampling.
    pub fn push_snapshot_deferred<T: Scalar>(
        &mut self,
        field: &Field3<T>,
    ) -> Result<(SnapshotRecord, Option<RefreshTask<T>>), PushError> {
        self.push_inner(field, true)
    }

    fn push_inner<T: Scalar>(
        &mut self,
        field: &Field3<T>,
        defer_refresh: bool,
    ) -> Result<(SnapshotRecord, Option<RefreshTask<T>>), PushError> {
        // Screen before touching any state: a NaN/∞ cell would poison the
        // Welford σ, the partition means, and ultimately the model bank.
        let non_finite = field.as_slice().iter().filter(|v| !v.is_finite()).count();
        if non_finite > 0 {
            return Err(PushError::NonFiniteInput { non_finite, cells: field.len() });
        }
        // Span over the whole (accepted) push: its recorded self time
        // excludes the codec compress spans nested inside, so the phase
        // breakdown push → compress sums instead of double-counting. The
        // handle is cloned out so the guard's borrow cannot pin `self`.
        let push_span_hist = self.metrics.as_ref().map(|m| Arc::clone(&m.push_span_ns));
        let _push_span = push_span_hist.as_ref().map(|h| telemetry::span(h));
        let sigma = gridlab::stats::summarize(field.as_slice()).std_dev();
        let mut model_cost = Duration::ZERO;
        let mut recalibration = Recalibration::Skipped;
        let mut deferred = None;

        if self.pipeline.is_none() {
            let t = Instant::now();
            let eb0 = self.cfg.policy.bootstrap_eb(sigma);
            let sweep: Vec<f64> = self.cfg.sweep_multipliers.iter().map(|m| m * eb0).collect();
            let bank = self.fit_bank(field, self.cfg.calib_stride, &sweep, true)?;
            let target = Self::target_for(self.cfg.halo, eb0);
            let pc = PipelineConfig {
                dec: self.cfg.dec.clone(),
                target,
                codecs: self.cfg.codecs.clone(),
                eb_ref: self.cfg.eb_ref,
            };
            self.pipeline = Some(InSituPipeline::with_models(pc, bank));
            model_cost += t.elapsed();
            recalibration = Recalibration::Full;
        }
        let pipeline = self.pipeline.as_mut().expect("calibrated above");

        let t_features = Instant::now();
        let features = pipeline.extract_features(field);
        let features_time = t_features.elapsed();

        let eb_avg = self.cfg.policy.resolve(
            sigma,
            features.iter().map(|f| f.mean),
            &pipeline.optimizer.models,
        );
        pipeline.set_target(Self::target_for(self.cfg.halo, eb_avg));

        let mut result = pipeline.run_with_features(field, features);
        result.timings.features = features_time;

        let residuals = drift_residuals(&result, &pipeline.optimizer.models);
        let drift_residual = mean_residual(&residuals);
        let mut refreshed_partitions = 0usize;
        if recalibration == Recalibration::Skipped && drift_residual > self.cfg.drift_threshold {
            let t = Instant::now();
            let sweep: Vec<f64> = self.cfg.refresh_multipliers.iter().map(|m| m * eb_avg).collect();
            let ids = localized_refresh_ids(
                &residuals,
                self.cfg.drift_threshold,
                self.cfg.refresh_stride,
            );
            refreshed_partitions = ids.len();
            if defer_refresh {
                deferred = Some(self.refresh_task(field, &ids, &sweep));
            } else {
                let bank = self.fit_bank_at(field, &ids, &sweep)?;
                self.pipeline.as_mut().expect("calibrated").set_models(bank);
            }
            model_cost += t.elapsed();
            recalibration = Recalibration::Refreshed;
        }

        let stats = SnapshotStats {
            snapshot: self.snapshots(),
            eb_avg,
            recalibration,
            drift_residual,
            model_cost,
            refreshed_partitions,
            timings: result.timings,
        };
        if let Some(m) = &self.metrics {
            m.drift_gauge.set(drift_residual);
            let steady = stats.timings.features + stats.timings.optimize;
            m.steady_ns.record(steady.as_nanos() as u64);
            match recalibration {
                Recalibration::Full => {
                    m.model_calibration_ns.record(model_cost.as_nanos() as u64);
                }
                Recalibration::Refreshed => {
                    m.model_refresh_ns.record(model_cost.as_nanos() as u64);
                    m.refreshes.inc();
                    m.refresh_partitions.add(refreshed_partitions as u64);
                    m.registry.record_event(Event::DriftDetected {
                        stream: m.stream,
                        residual: drift_residual,
                        partitions: refreshed_partitions as u64,
                    });
                    if deferred.is_none() {
                        // Inline refreshes complete within this push; the
                        // deferred path completes in `install_refresh`.
                        m.registry.record_event(Event::RefreshCompleted { stream: m.stream });
                    }
                }
                Recalibration::Skipped => {}
            }
        }
        self.history.push(stats);
        self.last_drift = drift_residual;
        Ok((SnapshotRecord { result, stats, residuals }, deferred))
    }

    /// Capture a deferred refresh: the same localised brick subset and
    /// sweep the inline path would use, cloned at detection time so later
    /// field mutations cannot leak into the fit.
    fn refresh_task<T: Scalar>(
        &self,
        field: &Field3<T>,
        ids: &[usize],
        sweep: &[f64],
    ) -> RefreshTask<T> {
        RefreshTask {
            codecs: self.cfg.codecs.clone(),
            bricks: bricks_at(field, &self.cfg.dec, ids),
            sweep: sweep.to_vec(),
            measured: Vec::new(),
        }
    }

    /// Install the bank a completed [`RefreshTask`] fitted — the deferred
    /// counterpart of the inline refresh's `set_models`. Panics if the
    /// task still has steps left (installing a half-measured fit would
    /// silently misprice every partition) or if the session was never
    /// calibrated (a refresh implies a fitted bank to replace).
    pub fn install_refresh<T: Scalar>(&mut self, task: RefreshTask<T>) {
        assert!(task.is_done(), "refresh task has {} steps left", task.remaining());
        let bank = task.into_bank();
        self.pipeline.as_mut().expect("a refresh implies a calibrated session").set_models(bank);
        if let Some(m) = &self.metrics {
            m.registry.record_event(Event::RefreshCompleted { stream: m.stream });
        }
    }

    /// Swap the quality policy mid-series — the hook a multi-tenant
    /// budget arbiter uses to impose an externally computed share (e.g.
    /// a [`QualityPolicy::BitrateBudget`] slice of a global storage
    /// contract), and the degradation ladder uses to shed quality under
    /// load ([`QualityPolicy::relax`]). Takes effect from the next push;
    /// panics on invalid parameters exactly like the constructor.
    pub fn set_policy(&mut self, policy: QualityPolicy) {
        if let Err(m) = policy.check() {
            panic!("{m}");
        }
        self.cfg.policy = policy;
    }

    /// Fit one model per enabled codec on a sampled brick subset. The
    /// stride is clamped so at least two bricks are sampled (the fit's
    /// minimum).
    fn fit_bank<T: Scalar>(
        &mut self,
        field: &Field3<T>,
        stride: usize,
        sweep: &[f64],
        keep_reports: bool,
    ) -> Result<CodecModelBank, CalibrationError> {
        let parts = self.cfg.dec.num_partitions();
        let stride = stride.min(parts - 1).max(1);
        let bricks = sample_bricks(field, &self.cfg.dec, stride);
        let refs: Vec<&Field3<T>> = bricks.iter().collect();
        let (bank, reports) = CodecModelBank::calibrate(&self.cfg.codecs, &refs, sweep)?;
        if keep_reports {
            self.calibration_reports = reports;
        }
        Ok(bank)
    }

    /// Fit one model per enabled codec from an explicit partition-id list
    /// — the localised refresh path.
    fn fit_bank_at<T: Scalar>(
        &self,
        field: &Field3<T>,
        ids: &[usize],
        sweep: &[f64],
    ) -> Result<CodecModelBank, CalibrationError> {
        let bricks = bricks_at(field, &self.cfg.dec, ids);
        let refs: Vec<&Field3<T>> = bricks.iter().collect();
        let (bank, _) = CodecModelBank::calibrate(&self.cfg.codecs, &refs, sweep)?;
        Ok(bank)
    }

    fn target_for(halo: Option<HaloTarget>, eb_avg: f64) -> QualityTarget {
        match halo {
            Some(h) => QualityTarget::with_halo(eb_avg, h.t_boundary, h.mass_fault_budget),
            None => QualityTarget::fft_only(eb_avg),
        }
    }

    /// Session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.cfg
    }

    /// The underlying pipeline, once the first snapshot calibrated it.
    pub fn pipeline(&self) -> Option<&InSituPipeline> {
        self.pipeline.as_ref()
    }

    /// The fitted model bank, once calibrated.
    pub fn models(&self) -> Option<&CodecModelBank> {
        self.pipeline.as_ref().map(|p| &p.optimizer.models)
    }

    /// Diagnostics of the full calibration (per codec, bank order).
    pub fn calibration_reports(&self) -> &[(CodecId, CalibrationReport)] {
        &self.calibration_reports
    }

    /// Per-snapshot stats since this process started, oldest first. A
    /// restored session's history restarts empty (wall-clock diagnostics
    /// do not survive a checkpoint); the lifetime counters below include
    /// the pre-restart snapshots.
    pub fn history(&self) -> &[SnapshotStats] {
        &self.history
    }

    /// Snapshots pushed over the session's lifetime, restarts included.
    pub fn snapshots(&self) -> usize {
        self.prior.0 + self.history.len()
    }

    /// How many snapshots ran a full calibration over the session's
    /// lifetime (must be ≤ 1: only the first snapshot of the *series* ever
    /// pays it — a restore does not reset this).
    pub fn full_calibrations(&self) -> usize {
        self.prior.1
            + self.history.iter().filter(|s| s.recalibration == Recalibration::Full).count()
    }

    /// How many snapshots triggered a sampled refresh, restarts included.
    pub fn refreshes(&self) -> usize {
        self.prior.2
            + self.history.iter().filter(|s| s.recalibration == Recalibration::Refreshed).count()
    }

    /// Drift residual of the most recent snapshot (0 before the first).
    pub fn last_drift(&self) -> f64 {
        self.last_drift
    }

    /// Snapshot the session's learned state as a typed checkpoint. See
    /// [`StreamSession::save`] for the serialized form.
    pub fn checkpoint(&self) -> SessionCheckpoint {
        SessionCheckpoint {
            config: self.cfg.clone(),
            bank: self.models().cloned(),
            clamp_factor: self
                .pipeline
                .as_ref()
                .map_or(DEFAULT_CLAMP_FACTOR, |p| p.optimizer.clamp_factor),
            snapshots: self.snapshots(),
            full_calibrations: self.full_calibrations(),
            refreshes: self.refreshes(),
            last_drift: self.last_drift,
        }
    }

    /// Serialise the session into a versioned `CKPT` blob: everything a
    /// restarted run needs to resume **without recalibrating** — the
    /// fitted model bank, the quality policy and partition geometry, the
    /// optimizer tuning, and the drift state.
    pub fn save(&self) -> Vec<u8> {
        let bytes = self.checkpoint().to_bytes();
        if let Some(m) = &self.metrics {
            m.registry.record_event(Event::CheckpointSaved {
                stream: m.stream,
                bytes: bytes.len() as u64,
            });
        }
        bytes
    }

    /// True when [`SessionConfig::checkpoint_every`] says the current
    /// snapshot count is a checkpoint boundary. Embedding layers call
    /// this after each accepted snapshot and persist via
    /// [`StreamSession::save_to`], so the saved `CKPT` tracks the durable
    /// stream prefix at the configured cadence instead of silently going
    /// stale.
    pub fn should_checkpoint(&self) -> bool {
        self.cfg.checkpoint_every.is_some_and(|k| {
            let n = self.snapshots();
            n > 0 && n.is_multiple_of(k)
        })
    }

    /// Persist [`StreamSession::save`] bytes to `path` atomically
    /// (write-temp + rename): a crash mid-save leaves the previous
    /// checkpoint intact, never a torn blob next to a newer stream.
    /// Returns the bytes written.
    pub fn save_to(&self, path: impl AsRef<std::path::Path>) -> Result<u64, CheckpointError> {
        let path = path.as_ref();
        let bytes = self.save();
        let mut tmp_os = path.to_path_buf().into_os_string();
        tmp_os.push(".tmp");
        let tmp: std::path::PathBuf = tmp_os.into();
        let io = |what: &str, e: std::io::Error| CheckpointError::Io(format!("{what}: {e}"));
        std::fs::write(&tmp, &bytes).map_err(|e| io("write checkpoint temp file", e))?;
        if let Err(e) = std::fs::rename(&tmp, path) {
            let _ = std::fs::remove_file(&tmp);
            return Err(io("publish checkpoint", e));
        }
        Ok(bytes.len() as u64)
    }

    /// Rebuild a session from [`StreamSession::save`] bytes. The restored
    /// session's next [`StreamSession::push_snapshot`] transfers the
    /// checkpointed models — no full calibration — and compresses
    /// byte-identically to the uninterrupted run. All corruption surfaces
    /// as a typed [`CheckpointError`].
    pub fn restore(bytes: &[u8]) -> Result<Self, CheckpointError> {
        Self::from_checkpoint(SessionCheckpoint::from_bytes(bytes)?)
    }

    /// [`StreamSession::restore`] over an already-parsed checkpoint.
    pub fn from_checkpoint(ckpt: SessionCheckpoint) -> Result<Self, CheckpointError> {
        ckpt.validate()?;
        let SessionCheckpoint {
            config: cfg,
            bank,
            clamp_factor,
            snapshots,
            full_calibrations,
            refreshes,
            last_drift,
        } = ckpt;
        let pipeline = match bank {
            Some(bank) => {
                // The eb_avg placeholder is overwritten by the policy
                // before the optimizer ever prices against it; the halo
                // constraint must survive, it drives feature extraction.
                let pc = PipelineConfig {
                    dec: cfg.dec.clone(),
                    target: Self::target_for(cfg.halo, 1.0),
                    codecs: cfg.codecs.clone(),
                    eb_ref: cfg.eb_ref,
                };
                let mut p = InSituPipeline::with_models(pc, bank);
                p.optimizer.clamp_factor = clamp_factor;
                Some(p)
            }
            None => None,
        };
        Ok(Self {
            cfg,
            pipeline,
            history: Vec::new(),
            calibration_reports: Vec::new(),
            prior: (snapshots, full_calibrations, refreshes),
            last_drift,
            metrics: None,
        })
    }
}

/// A drift-triggered model refresh, sliced into yieldable units so a
/// scheduler can interleave other work between steps — the primitive that
/// keeps one drifting stream's recalibration from starving its
/// neighbours in a multi-tenant server.
///
/// Each [`step`](RefreshTask::step) performs exactly one trial
/// compression (one `(codec, brick, bound)` measurement — the unit the
/// whole refresh cost is made of); everything else (means, the two-pass
/// fit) is arithmetic too cheap to slice. The task owns clones of the
/// sampled bricks, so it stays valid however long the scheduler delays
/// it. Once done, [`StreamSession::install_refresh`] fits and installs
/// the bank; the fit replays the stored measurements through the *same*
/// [`RatioModel::calibrate_by`] code path the inline refresh uses, so a
/// completed deferred refresh is bit-identical to the inline one.
#[derive(Debug, Clone)]
pub struct RefreshTask<T: Scalar> {
    codecs: Vec<CodecId>,
    bricks: Vec<Field3<T>>,
    sweep: Vec<f64>,
    /// Raw bits/value measurements in calibration order: codec-major,
    /// then brick, then sweep bound.
    measured: Vec<f64>,
}

impl<T: Scalar> RefreshTask<T> {
    /// Total yieldable units (trial compressions) in this refresh.
    pub fn total_steps(&self) -> usize {
        self.codecs.len() * self.bricks.len() * self.sweep.len()
    }

    /// How many partitions this refresh samples — the localisation
    /// audit: few for a localised drift, the stride-derived full sample
    /// count for a global regime shift.
    pub fn sampled_partitions(&self) -> usize {
        self.bricks.len()
    }

    /// Steps not yet performed.
    pub fn remaining(&self) -> usize {
        self.total_steps() - self.measured.len()
    }

    /// True once every measurement has been taken.
    pub fn is_done(&self) -> bool {
        self.measured.len() == self.total_steps()
    }

    /// Perform one trial compression (no-op when already done). Returns
    /// `true` when the task is complete.
    pub fn step(&mut self) -> bool {
        if !self.is_done() {
            let i = self.measured.len();
            let per_codec = self.bricks.len() * self.sweep.len();
            let codec = self.codecs[i / per_codec];
            let brick = &self.bricks[(i % per_codec) / self.sweep.len()];
            let eb = self.sweep[i % self.sweep.len()];
            let c = Container::compress(codec, brick.as_slice(), brick.dims(), eb);
            self.measured.push(8.0 * c.payload_len() as f64 / brick.len() as f64);
        }
        self.is_done()
    }

    /// Drive every remaining step back-to-back (what an idle scheduler —
    /// or a single-tenant caller — does).
    pub fn run_to_completion(&mut self) {
        while !self.step() {}
    }

    /// Fit the bank from the completed measurements, replaying them
    /// through the standard calibration so the arithmetic (and therefore
    /// the bank, bit for bit) matches the inline refresh.
    fn into_bank(self) -> CodecModelBank {
        assert!(self.is_done(), "cannot fit an incomplete refresh");
        let refs: Vec<&Field3<T>> = self.bricks.iter().collect();
        let next = std::cell::Cell::new(0usize);
        let mut entries = Vec::with_capacity(self.codecs.len());
        for &codec in &self.codecs {
            // calibrate_by queries measurements in exactly the order step()
            // recorded them (brick-major, sweep inner), so a replay cursor
            // stands in for the compressor.
            let (model, _) = RatioModel::calibrate_by(&refs, &self.sweep, |_, _| {
                let i = next.get();
                next.set(i + 1);
                self.measured[i]
            })
            .expect("measurements of a screened (finite) field replay finitely");
            entries.push((codec, model));
        }
        CodecModelBank::new(entries)
    }
}

/// `Optimizer::with_models`'s clamp default, mirrored for checkpoints of
/// never-calibrated sessions (no optimizer exists to read it from yet).
const DEFAULT_CLAMP_FACTOR: f64 = 4.0;

/// Current `CKPT` blob version. Bumps on any layout or semantics change;
/// readers reject other versions loudly. v2 added
/// [`SessionConfig::checkpoint_every`] to the config document.
pub const CHECKPOINT_VERSION: u8 = 2;
const CKPT_MAGIC: &[u8; 4] = b"CKPT";
/// Fixed wrapper bytes preceding the checkpoint payload.
const CKPT_HEADER_LEN: usize = 4 + 1 + 3 + 8 + 8;

/// Why a checkpoint failed to restore. Corruption must never panic the
/// restore path — the fault-injection suite drives every byte of the blob
/// through these.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointError {
    /// Wrapper-level problem: magic, version, length, or checksum.
    Format(String),
    /// The payload is not a valid checkpoint document.
    Parse(String),
    /// Decoded fine but violates a session invariant (e.g. a codec with
    /// no fitted model, a non-finite threshold).
    Invalid(String),
    /// Persisting or loading the blob failed at the filesystem layer
    /// ([`StreamSession::save_to`]).
    Io(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Format(m) => write!(f, "checkpoint format error: {m}"),
            CheckpointError::Parse(m) => write!(f, "checkpoint parse error: {m}"),
            CheckpointError::Invalid(m) => write!(f, "checkpoint invalid: {m}"),
            CheckpointError::Io(m) => write!(f, "checkpoint io error: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// The typed contents of a `CKPT` blob — what a [`StreamSession`] needs
/// to resume a series without recalibrating.
///
/// ## `CKPT` v2 layout
///
/// ```text
/// offset  size  field
/// 0       4     magic "CKPT"
/// 4       1     version (= 2)
/// 5       3     reserved (zero)
/// 8       8     FNV-1a-64 checksum of the payload, little-endian
/// 16      8     payload length, little-endian u64
/// 24      n     payload: the checkpoint document, serialized through the
///               vendored serde shims (JSON text; field order is
///               declaration order, floats round-trip exactly)
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionCheckpoint {
    /// Full session configuration, partition geometry included.
    pub config: SessionConfig,
    /// The fitted per-codec model bank; `None` for a session checkpointed
    /// before its first snapshot (restore then calibrates as usual).
    pub bank: Option<CodecModelBank>,
    /// The optimizer's clamp tuning at checkpoint time.
    pub clamp_factor: f64,
    /// Lifetime snapshot count at checkpoint time.
    pub snapshots: usize,
    /// Lifetime full-calibration count (≤ 1 for a healthy series).
    pub full_calibrations: usize,
    /// Lifetime drift-refresh count.
    pub refreshes: usize,
    /// Drift residual of the last snapshot before the checkpoint.
    pub last_drift: f64,
}

impl SessionCheckpoint {
    /// Serialise into a `CKPT` blob (wrapper + checksummed payload).
    pub fn to_bytes(&self) -> Vec<u8> {
        let payload = serde_json::to_string(self).expect("shim serialization is total");
        let payload = payload.as_bytes();
        let mut bytes = Vec::with_capacity(CKPT_HEADER_LEN + payload.len());
        bytes.extend_from_slice(CKPT_MAGIC);
        bytes.push(CHECKPOINT_VERSION);
        bytes.extend_from_slice(&[0u8; 3]);
        bytes.extend_from_slice(&fnv1a64(payload).to_le_bytes());
        bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        bytes.extend_from_slice(payload);
        bytes
    }

    /// Parse and validate a `CKPT` blob: structure, checksum, document,
    /// then session invariants. Total — every corruption is a typed error.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < CKPT_HEADER_LEN {
            return Err(CheckpointError::Format("checkpoint shorter than header".into()));
        }
        if &bytes[..4] != CKPT_MAGIC {
            return Err(CheckpointError::Format("bad checkpoint magic".into()));
        }
        if bytes[4] != CHECKPOINT_VERSION {
            return Err(CheckpointError::Format(format!(
                "unsupported checkpoint version {}",
                bytes[4]
            )));
        }
        let stored_fnv = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));
        let payload_len = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
        if payload_len != (bytes.len() - CKPT_HEADER_LEN) as u64 {
            return Err(CheckpointError::Format(format!(
                "payload length {payload_len} does not match blob size {}",
                bytes.len()
            )));
        }
        let payload = &bytes[CKPT_HEADER_LEN..];
        let actual_fnv = fnv1a64(payload);
        if actual_fnv != stored_fnv {
            return Err(CheckpointError::Format(format!(
                "payload checksum mismatch: stored {stored_fnv:#018x}, computed {actual_fnv:#018x}"
            )));
        }
        let text = std::str::from_utf8(payload)
            .map_err(|e| CheckpointError::Parse(format!("payload is not UTF-8: {e}")))?;
        let ckpt: SessionCheckpoint =
            serde_json::from_str(text).map_err(|e| CheckpointError::Parse(e.to_string()))?;
        ckpt.validate()?;
        Ok(ckpt)
    }

    /// Session invariants a decodable checkpoint can still violate.
    fn validate(&self) -> Result<(), CheckpointError> {
        self.config.check().map_err(CheckpointError::Invalid)?;
        if !(self.clamp_factor > 1.0 && self.clamp_factor.is_finite()) {
            return Err(CheckpointError::Invalid(format!(
                "clamp factor must be finite and > 1, got {}",
                self.clamp_factor
            )));
        }
        if !(self.last_drift >= 0.0 && self.last_drift.is_finite()) {
            return Err(CheckpointError::Invalid(format!(
                "last drift must be finite and non-negative, got {}",
                self.last_drift
            )));
        }
        if self.full_calibrations + self.refreshes > self.snapshots {
            return Err(CheckpointError::Invalid(format!(
                "{} calibrations + {} refreshes exceed {} snapshots",
                self.full_calibrations, self.refreshes, self.snapshots
            )));
        }
        match &self.bank {
            None => {
                if self.snapshots != 0 {
                    return Err(CheckpointError::Invalid(format!(
                        "{} snapshots recorded but no model bank — a pushed-to session is \
                         always calibrated",
                        self.snapshots
                    )));
                }
            }
            Some(bank) => {
                for &codec in &self.config.codecs {
                    if bank.get(codec).is_none() {
                        return Err(CheckpointError::Invalid(format!(
                            "no model in the bank for enabled codec {codec}"
                        )));
                    }
                }
                for (codec, m) in bank.entries() {
                    if !(m.c.is_finite() && m.a0.is_finite() && m.a1.is_finite()) {
                        return Err(CheckpointError::Invalid(format!(
                            "non-finite rate model for codec {codec}"
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Residual value substituted when a partition's prediction cannot be
/// evaluated (non-finite model output, non-finite measurement, or an
/// invalid bound). Any such partition must *fire* the drift detector:
/// the naive arithmetic would produce NaN, and `NaN > threshold` is
/// silently `false` — a broken model would disable its own alarm.
pub const RESIDUAL_SATURATION: f64 = 1e9;

/// Per-partition relative |predicted − measured| bit rate of one run
/// under the models that produced it — the drift signal before
/// averaging, and the input to drift localisation. Partitions whose
/// prediction cannot be evaluated saturate to [`RESIDUAL_SATURATION`].
pub fn drift_residuals(result: &PipelineResult, bank: &CodecModelBank) -> Vec<f64> {
    let measured = result.measured_bitrates();
    result
        .features
        .iter()
        .zip(&result.ebs)
        .zip(&result.codecs)
        .zip(&measured)
        .map(|(((f, &eb), codec), &m)| {
            let model = bank.get(*codec).expect("run's codec is in the bank");
            if !(eb > 0.0 && eb.is_finite()) {
                return RESIDUAL_SATURATION;
            }
            let predicted = model.predict_bitrate(f.mean, eb);
            let term = (predicted - m).abs() / m.max(BITRATE_FLOOR);
            if term.is_finite() {
                term
            } else {
                RESIDUAL_SATURATION
            }
        })
        .collect()
}

/// Mean relative |predicted − measured| per-partition bit rate of one run
/// under the models that produced it — the session's drift signal (the
/// mean of [`drift_residuals`]).
pub fn drift_residual(result: &PipelineResult, bank: &CodecModelBank) -> f64 {
    mean_residual(&drift_residuals(result, bank))
}

fn mean_residual(residuals: &[f64]) -> f64 {
    if residuals.is_empty() {
        return 0.0;
    }
    residuals.iter().sum::<f64>() / residuals.len() as f64
}

/// Which partitions a drift-triggered refresh should sample: every
/// partition over the threshold, padded to the fit's two-brick minimum
/// with the worst offenders, plus the two *calmest* partitions as healthy
/// anchors (a refit sampled only from anomalous bricks would replace the
/// global model with one blind to the undrifted majority), and evenly
/// subsampled down to the stride-derived budget the old whole-bank
/// refresh would have used (so the localised path can never cost more
/// than the previous behaviour).
fn localized_refresh_ids(residuals: &[f64], threshold: f64, refresh_stride: usize) -> Vec<usize> {
    let parts = residuals.len();
    let mut order: Vec<usize> = (0..parts).collect();
    order.sort_by(|&a, &b| {
        residuals[b].partial_cmp(&residuals[a]).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ids: Vec<usize> = (0..parts).filter(|&i| residuals[i] > threshold).collect();
    if ids.len() < 2 {
        // The mean tripped but fewer than two individual partitions did
        // (a broad, shallow shift): fall back to the two worst residuals.
        ids = order.iter().take(2).copied().collect();
    }
    for &anchor in order.iter().rev().take(2) {
        if !ids.contains(&anchor) {
            ids.push(anchor);
        }
    }
    ids.sort_unstable();
    let stride = refresh_stride.min(parts - 1).max(1);
    let budget = parts.div_ceil(stride).max(2);
    if ids.len() > budget {
        ids = (0..budget).map(|k| ids[k * ids.len() / budget]).collect();
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Dim3;

    /// A field family whose contrast scales with `amp` — structure
    /// "forms" as amp grows, like lowering redshift.
    fn evolving_field(n: usize, amp: f64, seed: u64) -> Field3<f32> {
        let mut state = seed;
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            let bright = x >= n / 2 && y >= n / 2;
            let base = if bright { 40.0 * amp } else { 8.0 };
            (base + amp * ((z as f64 * 0.9).sin() * 3.0 + noise)) as f32
        })
    }

    fn session(n: usize, parts: usize, policy: QualityPolicy) -> StreamSession {
        let dec = Decomposition::cubic(n, parts).unwrap();
        StreamSession::new(SessionConfig::new(dec, policy))
    }

    #[test]
    fn first_snapshot_calibrates_fully_then_models_transfer() {
        let mut s = session(32, 4, QualityPolicy::SigmaScaled(0.1));
        for i in 0..4 {
            let field = evolving_field(32, 1.0 + 0.01 * i as f64, 9);
            let rec = s.push_snapshot(&field).unwrap();
            if i == 0 {
                assert_eq!(rec.stats.recalibration, Recalibration::Full);
                assert!(rec.stats.model_cost > Duration::ZERO);
            } else {
                // Near-identical snapshots: the model transfers.
                assert_eq!(rec.stats.recalibration, Recalibration::Skipped, "snapshot {i}");
                assert_eq!(rec.stats.model_cost, Duration::ZERO);
            }
        }
        assert_eq!(s.full_calibrations(), 1);
        assert_eq!(s.snapshots(), 4);
        assert!(!s.calibration_reports().is_empty());
    }

    #[test]
    fn fixed_policy_keeps_the_budget_fixed() {
        let mut s = session(16, 2, QualityPolicy::FixedEb(0.3));
        for amp in [1.0, 3.0] {
            let rec = s.push_snapshot(&evolving_field(16, amp, 3)).unwrap();
            assert_eq!(rec.stats.eb_avg, 0.3);
            let mean = rec.result.ebs.iter().sum::<f64>() / rec.result.ebs.len() as f64;
            assert!(mean <= 0.3 * (1.0 + 1e-9), "mean {mean}");
        }
    }

    #[test]
    fn sigma_policy_tracks_field_amplitude() {
        let mut s = session(16, 2, QualityPolicy::SigmaScaled(0.1));
        let lo = s.push_snapshot(&evolving_field(16, 1.0, 5)).unwrap().stats.eb_avg;
        let hi = s.push_snapshot(&evolving_field(16, 6.0, 5)).unwrap().stats.eb_avg;
        assert!(hi > lo * 2.0, "budget should scale with contrast: {lo} → {hi}");
    }

    #[test]
    fn bitrate_budget_policy_hits_the_predicted_budget() {
        let mut s = session(24, 2, QualityPolicy::BitrateBudget(2.0));
        let rec = s.push_snapshot(&evolving_field(24, 2.0, 11)).unwrap();
        let predicted = rec.result.decision.as_ref().unwrap().predicted_bitrate;
        // The optimizer redistributes bounds at the resolved eb_avg, so the
        // realised prediction sits near (at or below) the budget.
        assert!(
            predicted <= 2.0 * 1.05 && predicted > 0.5,
            "predicted bitrate {predicted} should sit near the 2.0 budget"
        );
    }

    #[test]
    fn drift_triggers_a_sampled_refresh_not_a_full_recalibration() {
        let dec = Decomposition::cubic(24, 2).unwrap();
        let cfg =
            SessionConfig::new(dec, QualityPolicy::SigmaScaled(0.1)).with_drift_threshold(0.05);
        let mut s = StreamSession::new(cfg);
        s.push_snapshot(&evolving_field(24, 1.0, 21)).unwrap();
        // A violently different field: the transferred model must misfit.
        let rec = s.push_snapshot(&evolving_field(24, 50.0, 77)).unwrap();
        assert_eq!(rec.stats.recalibration, Recalibration::Refreshed);
        assert!(rec.stats.drift_residual > 0.05);
        assert_eq!(s.full_calibrations(), 1, "refresh must not count as full");
        assert_eq!(s.refreshes(), 1);
        // The refreshed model applies from the NEXT snapshot and fits the
        // new regime better.
        let rec2 = s.push_snapshot(&evolving_field(24, 50.0, 78)).unwrap();
        assert!(
            rec2.stats.drift_residual < rec.stats.drift_residual,
            "refresh should reduce the residual: {} → {}",
            rec.stats.drift_residual,
            rec2.stats.drift_residual
        );
    }

    #[test]
    fn steady_state_adaptive_cost_is_below_full_calibration_cost() {
        let mut s = session(32, 4, QualityPolicy::SigmaScaled(0.1));
        let first = s.push_snapshot(&evolving_field(32, 2.0, 31)).unwrap();
        let mut steady = Duration::ZERO;
        for i in 0..3 {
            let rec = s.push_snapshot(&evolving_field(32, 2.0 + 0.01 * i as f64, 31)).unwrap();
            steady = steady.max(rec.stats.adaptive_cost());
        }
        assert!(
            steady < first.stats.model_cost,
            "steady adaptive cost {steady:?} should undercut the full calibration \
             {:?}",
            first.stats.model_cost
        );
    }

    #[test]
    fn session_respects_per_partition_bounds_every_snapshot() {
        let mut s = session(16, 2, QualityPolicy::SigmaScaled(0.15));
        for amp in [1.0, 4.0, 9.0] {
            let field = evolving_field(16, amp, 41);
            let rec = s.push_snapshot(&field).unwrap();
            let dec = &s.pipeline().unwrap().config().dec;
            let recon: Field3<f32> = rec.result.reconstruct(dec).unwrap();
            for ((bo, br), &eb) in
                dec.split(&field).iter().zip(&dec.split(&recon)[..]).zip(&rec.result.ebs)
            {
                assert!(bo.max_abs_diff(br) <= eb + 1e-9);
            }
        }
    }

    #[test]
    fn multi_codec_session_mixes_backends() {
        let dec = Decomposition::cubic(32, 4).unwrap();
        let cfg =
            SessionConfig::new(dec, QualityPolicy::SigmaScaled(0.1)).with_codecs(&CodecId::ALL);
        let mut s = StreamSession::new(cfg);
        let rec = s.push_snapshot(&evolving_field(32, 3.0, 13)).unwrap();
        let total: usize = rec.result.codec_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 64);
        assert!(s.models().unwrap().get(CodecId::Zfp).is_some());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let dec = Decomposition::cubic(8, 2).unwrap();
        let base = SessionConfig::new(dec.clone(), QualityPolicy::FixedEb(0.1));
        let mut bad = base.clone();
        bad.refresh_multipliers = vec![1.0];
        assert!(std::panic::catch_unwind(move || StreamSession::new(bad)).is_err());
        let mut bad = base.clone();
        bad.drift_threshold = 0.0;
        assert!(std::panic::catch_unwind(move || StreamSession::new(bad)).is_err());
        let one = Decomposition::cubic(8, 1).unwrap();
        let bad = SessionConfig::new(one, QualityPolicy::FixedEb(0.1));
        assert!(std::panic::catch_unwind(move || StreamSession::new(bad)).is_err());
        // Non-positive policy parameters fail at construction, not deep in
        // the optimizer mid-series.
        for policy in [
            QualityPolicy::FixedEb(0.0),
            QualityPolicy::SigmaScaled(-0.1),
            QualityPolicy::BitrateBudget(f64::NAN),
        ] {
            let bad = SessionConfig::new(dec.clone(), policy);
            assert!(
                std::panic::catch_unwind(move || StreamSession::new(bad)).is_err(),
                "{policy:?} accepted"
            );
        }
    }

    #[test]
    fn bitrate_budget_falls_back_on_degenerate_rate_curves() {
        // A near-constant field fits c ≈ 0: the rate curve barely moves
        // with the bound, the budget cannot be bracketed, and resolve must
        // fall back to the σ-scaled bootstrap instead of converging to an
        // absurd e^±60 domain edge.
        let dec = Decomposition::cubic(16, 2).unwrap();
        let mut s = StreamSession::new(SessionConfig::new(dec, QualityPolicy::BitrateBudget(2.0)));
        // A gentle gradient: brick means differ (so the C(mean) fit is
        // well-posed), but Lorenzo predicts the field perfectly at every
        // bound, so the rate curve is flat (c ≈ 0) and cannot be inverted
        // for the budget.
        let flat = Field3::from_fn(Dim3::cube(16), |x, y, z| 5.0 + (x + y + z) as f32 * 1e-3);
        let rec = s.push_snapshot(&flat).unwrap();
        assert!(
            rec.stats.eb_avg > 1e-13 && rec.stats.eb_avg < 1e3,
            "degenerate curve must not produce an absurd bound: {}",
            rec.stats.eb_avg
        );
    }

    #[test]
    fn drift_residual_of_traditional_run_is_zero() {
        // Traditional runs carry no features; the signal degrades to 0
        // rather than panicking.
        let mut s = session(16, 2, QualityPolicy::FixedEb(0.2));
        s.push_snapshot(&evolving_field(16, 1.0, 7)).unwrap();
        let p = s.pipeline().unwrap();
        let r = p.run_traditional(&evolving_field(16, 1.0, 7), 0.2);
        assert_eq!(drift_residual(&r, &p.optimizer.models), 0.0);
    }

    // --- drift_residual edge cases ---------------------------------------

    use crate::optimizer::QualityTarget;
    use crate::pipeline::PipelineConfig;
    use crate::ratio_model::RatioModel;

    #[test]
    fn drift_residual_of_zero_partition_result_is_zero() {
        // A snapshot with no partitions at all: the signal is 0, never a
        // 0/0 NaN that would poison the threshold compare.
        let empty = PipelineResult {
            features: Vec::new(),
            ebs: Vec::new(),
            codecs: Vec::new(),
            containers: Vec::new(),
            original_bytes: 0,
            compressed_bytes: 0,
            decision: None,
            timings: Timings::default(),
        };
        let bank = CodecModelBank::single(CodecId::Rsz, RatioModel { c: -0.5, a0: 0.5, a1: 0.3 });
        let r = drift_residual(&empty, &bank);
        assert_eq!(r, 0.0);
        assert!(r <= 0.5, "an empty snapshot must never read as drifted");
    }

    #[test]
    fn drift_residual_with_floor_level_rates_stays_finite() {
        // A constant field compresses to a near-zero payload rate and a
        // coefficient-floored model predicts near-zero bits: both sides of
        // the residual sit at their floors and the result must stay
        // finite and comparable, not NaN/inf from a 0-division.
        let dec = Decomposition::cubic(8, 2).unwrap();
        let cfg = PipelineConfig::new(dec, QualityTarget::fft_only(0.1));
        // a0 = -100 pushes C(mean) onto the C_FLOOR: predicted ≈ 0.
        let model = RatioModel { c: -0.5, a0: -100.0, a1: 0.0 };
        let p = crate::pipeline::InSituPipeline::with_models(
            cfg,
            CodecModelBank::single(CodecId::Rsz, model),
        );
        let flat = Field3::from_fn(Dim3::cube(8), |_, _, _| 3.0f32);
        let r = p.run_adaptive(&flat);
        let residual = drift_residual(&r, &p.optimizer.models);
        assert!(residual.is_finite(), "residual {residual}");
        assert!(residual >= 0.0);
        // And the threshold compare is well-defined either way.
        let _ = residual > 0.5;
    }

    #[test]
    fn drift_residual_of_single_partition_result_is_finite() {
        // Sessions require >= 2 partitions, but the drift signal itself
        // must hold up on a 1-partition stream (the mean is one term).
        let dec = Decomposition::cubic(8, 1).unwrap();
        let cfg = PipelineConfig::new(dec, QualityTarget::fft_only(0.2));
        let model = RatioModel { c: -0.6, a0: 1.0, a1: 0.2 };
        let p = crate::pipeline::InSituPipeline::with_models(
            cfg,
            CodecModelBank::single(CodecId::Rsz, model),
        );
        let field = evolving_field(8, 2.0, 3);
        let r = p.run_adaptive(&field);
        assert_eq!(r.features.len(), 1);
        let residual = drift_residual(&r, &p.optimizer.models);
        assert!(residual.is_finite() && residual >= 0.0, "residual {residual}");
    }

    // --- server hooks: deferred refresh, policy swap, relax ladder -------

    #[test]
    fn deferred_refresh_is_bit_identical_to_inline() {
        let make = || {
            let dec = Decomposition::cubic(24, 2).unwrap();
            StreamSession::new(
                SessionConfig::new(dec, QualityPolicy::SigmaScaled(0.1)).with_drift_threshold(0.05),
            )
        };
        let calm = evolving_field(24, 1.0, 21);
        let wild0 = evolving_field(24, 50.0, 77);
        let wild1 = evolving_field(24, 50.0, 78);

        let mut inline = make();
        inline.push_snapshot(&calm).unwrap();
        let i_drift = inline.push_snapshot(&wild0).unwrap();
        let inline_bank = inline.models().cloned();
        let i_after = inline.push_snapshot(&wild1).unwrap();

        let mut deferred = make();
        let (_, t) = deferred.push_snapshot_deferred(&calm).unwrap();
        assert!(t.is_none(), "no drift on the calibration snapshot");
        let (d_drift, t) = deferred.push_snapshot_deferred(&wild0).unwrap();
        let mut task = t.expect("drift must hand back a task");
        assert_eq!(d_drift.stats.recalibration, Recalibration::Refreshed);
        assert_eq!(d_drift.stats.drift_residual, i_drift.stats.drift_residual);
        for (c1, c2) in d_drift.result.containers.iter().zip(&i_drift.result.containers) {
            assert_eq!(c1.as_bytes(), c2.as_bytes(), "the drifted snapshot itself is unaffected");
        }
        // Step one at a time — the yieldable unit is one trial compression.
        let total = task.total_steps();
        assert!(total >= 4, "codecs × bricks × sweep, got {total}");
        let mut steps = 0;
        while !task.step() {
            steps += 1;
            assert_eq!(task.remaining(), total - steps);
        }
        assert!(task.is_done());
        deferred.install_refresh(task);
        assert_eq!(
            deferred.models().cloned(),
            inline_bank,
            "refreshed banks must agree bit-for-bit"
        );

        let (d_after, t) = deferred.push_snapshot_deferred(&wild1).unwrap();
        assert_eq!(
            t.is_some(),
            i_after.stats.recalibration == Recalibration::Refreshed,
            "both paths must agree on whether the next snapshot drifts"
        );
        assert_eq!(d_after.stats.drift_residual, i_after.stats.drift_residual);
        for (c1, c2) in d_after.result.containers.iter().zip(&i_after.result.containers) {
            assert_eq!(c1.as_bytes(), c2.as_bytes(), "post-refresh frames must match inline");
        }
    }

    #[test]
    fn incomplete_refresh_cannot_install() {
        let dec = Decomposition::cubic(24, 2).unwrap();
        let mut s = StreamSession::new(
            SessionConfig::new(dec, QualityPolicy::SigmaScaled(0.1)).with_drift_threshold(0.05),
        );
        s.push_snapshot(&evolving_field(24, 1.0, 21)).unwrap();
        let (_, t) = s.push_snapshot_deferred(&evolving_field(24, 50.0, 77)).unwrap();
        let mut task = t.expect("drift");
        task.step(); // one of several
        assert!(!task.is_done());
        assert!(std::panic::catch_unwind(move || s.install_refresh(task)).is_err());
    }

    #[test]
    fn run_to_completion_equals_stepping() {
        let dec = Decomposition::cubic(24, 2).unwrap();
        let make = || {
            StreamSession::new(
                SessionConfig::new(dec.clone(), QualityPolicy::SigmaScaled(0.1))
                    .with_drift_threshold(0.05),
            )
        };
        let calm = evolving_field(24, 1.0, 21);
        let wild = evolving_field(24, 50.0, 77);
        let mut a = make();
        a.push_snapshot(&calm).unwrap();
        let (_, ta) = a.push_snapshot_deferred(&wild).unwrap();
        let mut ta = ta.unwrap();
        ta.run_to_completion();
        a.install_refresh(ta);
        let mut b = make();
        b.push_snapshot(&calm).unwrap();
        let (_, tb) = b.push_snapshot_deferred(&wild).unwrap();
        let mut tb = tb.unwrap();
        while !tb.step() {}
        b.install_refresh(tb);
        assert_eq!(a.models(), b.models());
    }

    #[test]
    fn set_policy_takes_effect_next_push() {
        let mut s = session(16, 2, QualityPolicy::FixedEb(0.3));
        assert_eq!(s.push_snapshot(&evolving_field(16, 1.0, 3)).unwrap().stats.eb_avg, 0.3);
        s.set_policy(QualityPolicy::FixedEb(0.15));
        assert_eq!(s.push_snapshot(&evolving_field(16, 1.0, 3)).unwrap().stats.eb_avg, 0.15);
        assert_eq!(s.config().policy, QualityPolicy::FixedEb(0.15));
        // Invalid swaps fail like the constructor.
        let mut s2 = session(16, 2, QualityPolicy::FixedEb(0.3));
        assert!(std::panic::catch_unwind(move || {
            s2.set_policy(QualityPolicy::BitrateBudget(-1.0))
        })
        .is_err());
    }

    #[test]
    fn relax_ladder_loosens_every_policy_kind() {
        assert_eq!(QualityPolicy::FixedEb(0.2).relax(2.0), QualityPolicy::FixedEb(0.4));
        assert_eq!(QualityPolicy::SigmaScaled(0.1).relax(2.0), QualityPolicy::SigmaScaled(0.2));
        assert_eq!(QualityPolicy::BitrateBudget(4.0).relax(2.0), QualityPolicy::BitrateBudget(2.0));
        // factor 1 is the identity rung.
        assert_eq!(QualityPolicy::FixedEb(0.2).relax(1.0), QualityPolicy::FixedEb(0.2));
        assert!(std::panic::catch_unwind(|| QualityPolicy::FixedEb(0.2).relax(0.5)).is_err());
    }

    // --- checkpoint / restore --------------------------------------------

    #[test]
    fn checkpoint_roundtrip_preserves_session_state() {
        let mut s = session(32, 4, QualityPolicy::SigmaScaled(0.1));
        s.push_snapshot(&evolving_field(32, 2.0, 9)).unwrap();
        s.push_snapshot(&evolving_field(32, 2.02, 9)).unwrap();
        let ckpt = s.checkpoint();
        let bytes = s.save();
        assert_eq!(&bytes[..4], b"CKPT");
        assert_eq!(bytes[4], CHECKPOINT_VERSION);
        let restored = StreamSession::restore(&bytes).expect("restores");
        assert_eq!(restored.checkpoint(), ckpt);
        assert_eq!(restored.models(), s.models());
        assert_eq!(restored.snapshots(), 2);
        assert_eq!(restored.full_calibrations(), 1);
        assert_eq!(restored.last_drift(), s.last_drift());
        assert!(restored.history().is_empty(), "wall-clock history does not survive");
    }

    #[test]
    fn restore_skips_recalibration_and_matches_uninterrupted_bytes() {
        let fields: Vec<Field3<f32>> =
            (0..4).map(|i| evolving_field(32, 1.5 + 0.02 * i as f64, 13)).collect();
        // Uninterrupted reference run.
        let mut a = session(32, 4, QualityPolicy::SigmaScaled(0.1));
        let a_recs: Vec<_> = fields.iter().map(|f| a.push_snapshot(f).unwrap()).collect();
        // Crash after snapshot 1, restore, resume.
        let mut b = session(32, 4, QualityPolicy::SigmaScaled(0.1));
        b.push_snapshot(&fields[0]).unwrap();
        b.push_snapshot(&fields[1]).unwrap();
        let blob = b.save();
        drop(b);
        let mut b = StreamSession::restore(&blob).expect("restores");
        for (i, f) in fields[2..].iter().enumerate() {
            let rec = b.push_snapshot(f).unwrap();
            let reference = &a_recs[i + 2];
            assert_ne!(
                rec.stats.recalibration,
                Recalibration::Full,
                "restore must never repay the full calibration"
            );
            assert_eq!(rec.stats.recalibration, reference.stats.recalibration);
            assert_eq!(rec.stats.snapshot, reference.stats.snapshot, "numbering continues");
            assert_eq!(rec.stats.eb_avg, reference.stats.eb_avg);
            assert_eq!(rec.stats.drift_residual, reference.stats.drift_residual);
            for (c1, c2) in rec.result.containers.iter().zip(&reference.result.containers) {
                assert_eq!(c1.as_bytes(), c2.as_bytes(), "resumed frames must be byte-identical");
            }
        }
        assert_eq!(b.full_calibrations(), 1, "lifetime count carries the pre-crash calibration");
        assert_eq!(b.snapshots(), 4);
    }

    #[test]
    fn refreshed_bank_after_restore_matches_non_restarted_drift_decisions() {
        // Regression for the restore path: a regime change after the
        // restart must trigger the same sampled refresh, and the refreshed
        // bank must steer the following snapshot identically to a run that
        // never restarted.
        let make = || {
            let dec = Decomposition::cubic(24, 2).unwrap();
            StreamSession::new(
                SessionConfig::new(dec, QualityPolicy::SigmaScaled(0.1)).with_drift_threshold(0.05),
            )
        };
        let calm = evolving_field(24, 1.0, 21);
        let wild0 = evolving_field(24, 50.0, 77);
        let wild1 = evolving_field(24, 50.0, 78);

        let mut a = make();
        a.push_snapshot(&calm).unwrap();
        let a_drift = a.push_snapshot(&wild0).unwrap();
        let a_after = a.push_snapshot(&wild1).unwrap();

        let mut b = make();
        b.push_snapshot(&calm).unwrap();
        let b2 = StreamSession::restore(&b.save()).expect("restores");
        let mut b2 = b2;
        let b_drift = b2.push_snapshot(&wild0).unwrap();
        let b_after = b2.push_snapshot(&wild1).unwrap();

        assert_eq!(a_drift.stats.recalibration, Recalibration::Refreshed);
        assert_eq!(b_drift.stats.recalibration, Recalibration::Refreshed);
        assert_eq!(a_drift.stats.drift_residual, b_drift.stats.drift_residual);
        assert_eq!(b2.models(), a.models(), "refreshed banks must agree");
        assert_eq!(a_after.stats.drift_residual, b_after.stats.drift_residual);
        assert_eq!(a_after.stats.recalibration, b_after.stats.recalibration);
        for (c1, c2) in a_after.result.containers.iter().zip(&b_after.result.containers) {
            assert_eq!(c1.as_bytes(), c2.as_bytes());
        }
        assert_eq!(b2.refreshes(), a.refreshes());
    }

    #[test]
    fn uncalibrated_session_checkpoints_and_restores() {
        let s = session(16, 2, QualityPolicy::FixedEb(0.2));
        let blob = s.save();
        let mut r = StreamSession::restore(&blob).expect("restores");
        assert!(r.models().is_none());
        assert_eq!(r.snapshots(), 0);
        // The restored idle session calibrates on its first push as usual.
        let rec = r.push_snapshot(&evolving_field(16, 1.0, 5)).unwrap();
        assert_eq!(rec.stats.recalibration, Recalibration::Full);
    }

    #[test]
    fn corrupt_checkpoints_fail_with_typed_errors() {
        let mut s = session(16, 2, QualityPolicy::FixedEb(0.2));
        s.push_snapshot(&evolving_field(16, 1.0, 5)).unwrap();
        let good = s.save();
        // Wrapper corruptions.
        let mut b = good.clone();
        b[0] = b'X';
        assert!(matches!(SessionCheckpoint::from_bytes(&b), Err(CheckpointError::Format(_))));
        let mut b = good.clone();
        b[4] = 9;
        assert!(matches!(SessionCheckpoint::from_bytes(&b), Err(CheckpointError::Format(_))));
        // Payload bit flip: checksum catches it.
        let mut b = good.clone();
        let last = b.len() - 1;
        b[last] ^= 0x20;
        let err = SessionCheckpoint::from_bytes(&b).expect_err("flip detected");
        assert!(err.to_string().contains("checksum"), "{err}");
        // Truncation.
        assert!(SessionCheckpoint::from_bytes(&good[..good.len() - 3]).is_err());
        assert!(SessionCheckpoint::from_bytes(&good[..10]).is_err());
        // Semantic violation: a codec without a model.
        let mut ckpt = s.checkpoint();
        ckpt.config.codecs = CodecId::ALL.to_vec();
        assert!(matches!(StreamSession::from_checkpoint(ckpt), Err(CheckpointError::Invalid(_))));
    }
}
