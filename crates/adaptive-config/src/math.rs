//! Small numerical helpers shared by the models: error function, normal
//! tail probabilities, and least-squares line fitting.

/// Error function via the Abramowitz & Stegun 7.1.26 rational approximation
/// (|error| < 1.5e-7 — far tighter than any use here needs).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Probability that a `N(0, σ²)` sample lies within `±k·σ`.
///
/// The paper quotes 95.45 % for `k = 2` (§3.3) when mapping the modeled
/// FFT error σ to an acceptance band.
pub fn prob_within_k_sigma(k: f64) -> f64 {
    assert!(k >= 0.0);
    erf(k / std::f64::consts::SQRT_2)
}

/// Ordinary least squares fit `y = a + b·x`; returns `(a, b)`.
///
/// Panics on fewer than two points or zero variance in `x`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "x values are degenerate");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// Coefficient of determination R² of a fitted line on the same data.
pub fn r_squared(xs: &[f64], ys: &[f64], a: f64, b: f64) -> f64 {
    let my = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    if ss_tot == 0.0 {
        return 1.0;
    }
    let ss_res: f64 = xs.iter().zip(ys).map(|(x, y)| (y - (a + b * x)) * (y - (a + b * x))).sum();
    1.0 - ss_res / ss_tot
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        assert!(erf(0.0).abs() < 1.5e-7); // approximation accuracy, not exact 0
        assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
        assert!((erf(2.0) - 0.9953222650).abs() < 1e-6);
        assert!((erf(-1.0) + 0.8427007929).abs() < 1e-6);
        assert!((erf(5.0) - 1.0).abs() < 1e-7);
    }

    #[test]
    fn two_sigma_is_9545() {
        // The exact number the paper quotes.
        assert!((prob_within_k_sigma(2.0) - 0.9545).abs() < 1e-3);
        assert!((prob_within_k_sigma(1.0) - 0.6827).abs() < 1e-3);
        assert!(prob_within_k_sigma(0.0).abs() < 1.5e-7);
    }

    #[test]
    fn linear_fit_recovers_exact_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 - 2.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 3.0).abs() < 1e-12);
        assert!((b + 2.0).abs() < 1e-12);
        assert!((r_squared(&xs, &ys, a, b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_with_noise_is_close() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.5 * x + if i % 2 == 0 { 0.01 } else { -0.01 })
            .collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 1.0).abs() < 0.02);
        assert!((b - 0.5).abs() < 0.02);
        assert!(r_squared(&xs, &ys, a, b) > 0.99);
    }

    #[test]
    #[should_panic]
    fn degenerate_x_panics() {
        let _ = linear_fit(&[1.0, 1.0], &[2.0, 3.0]);
    }
}
