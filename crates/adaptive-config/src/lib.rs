//! # adaptive-config — fine-grained rate-quality modeling (the paper's core)
//!
//! Implements the HPDC'21 contribution end to end:
//!
//! * [`error_model::fft`] — propagation of the compressor's uniform error
//!   into FFT/power-spectrum results (Eqs. 3–10): the 3-D DFT error is
//!   normal with `σ = √(N/6)·eb` (N = total cells), and under mixed
//!   per-partition bounds `σ = √(N/6)·mean(eb_m)`;
//! * [`error_model::halo`] — halo-finder fault model (Eqs. 11–14):
//!   flipped-candidacy probability 25 % inside the `±eb` band around
//!   `t_boundary`, expected mass fault `t_boundary·Σ n_bc/4`;
//! * [`error_model::sz_error`] — empirical validation hooks for the
//!   uniform-error premise (Fig. 3), per codec backend;
//! * [`ratio_model`] — the bit-rate model `b_m = C_m·eb^c` with shared
//!   exponent `c` and `C_m` predicted from the partition **mean** via a
//!   logarithmic fit (Eq. 15, Fig. 10), fitted **per codec backend**
//!   ([`ratio_model::CodecModelBank`]: one model each for `rsz` and
//!   `zfplite`'s error-bounded accuracy mode, through `codec-core`);
//! * [`optimizer`] — the joint per-partition (codec, bound) decision:
//!   derivative-equalised bounds (`eb_m = eb_avg·exp(ln(C_m/C_a)/c)` with
//!   `[eb/4, 4eb]` clamping for a single codec; a bisected multiplier
//!   across heterogeneous power laws when codecs mix) plus cheapest-codec
//!   assignment, under the halo-finder boundary condition (Eq. 16, §3.6);
//! * [`pipeline`] — the in situ flow: per-rank feature extraction
//!   (mean + boundary-cell count), an `MPI_Allreduce`-style reduction
//!   ([`comm`]), optimization, per-partition compression into versioned
//!   codec-tagged containers (`codec_core::Container`, v2; legacy v1
//!   bare-rsz bytes still decode), and the traditional single-bound
//!   baseline for comparison;
//! * [`comm`] — a thread-per-rank communicator standing in for MPI.
//!
//! The experiment binaries in the `bench` crate drive these pieces to
//! regenerate every figure and table of the paper's evaluation, plus the
//! `codec_select` entries of the BENCH_*.json trajectory.

pub mod comm;
pub mod error_model;
pub mod math;
pub mod optimizer;
pub mod pipeline;
pub mod ratio_model;
pub mod session;
pub mod trial_and_error;

pub use codec_core::{CodecId, Container};
pub use error_model::fft::FftErrorModel;
pub use error_model::halo::HaloErrorModel;
pub use optimizer::{OptimizedConfig, Optimizer, QualityTarget};
pub use pipeline::{InSituPipeline, PipelineConfig, PipelineResult};
pub use ratio_model::{CalibrationError, CodecModelBank, PartitionFeature, RatioModel};
pub use session::{
    PushError, QualityPolicy, Recalibration, RefreshTask, SessionConfig, SessionMetrics,
    SnapshotRecord, SnapshotStats, StreamSession,
};
