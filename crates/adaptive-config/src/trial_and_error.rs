//! The traditional trial-and-error configurator (paper §4.3's foil).
//!
//! Without rate-quality models, the conventional workflow searches a
//! uniform bound by repeatedly compressing, decompressing and re-running
//! the (expensive) post-hoc analysis until the quality check passes. This
//! module implements that loop — both as the honest baseline for the
//! overhead comparison and to let experiments quantify how many full
//! compress+analyse rounds the models avoid.

use gridlab::{Field3, Scalar};
use rsz::{compress, decompress, SzConfig};
use std::time::{Duration, Instant};

/// Outcome of a trial-and-error search.
#[derive(Debug, Clone)]
pub struct TrialSearchResult {
    /// The uniform bound selected (largest tried bound that passed).
    pub eb: f64,
    /// Bounds tried, in order, with their pass/fail verdicts.
    pub trials: Vec<(f64, bool)>,
    /// Wall-clock spent compressing/decompressing during the search.
    pub codec_time: Duration,
    /// Wall-clock spent inside the quality-check callback (the post-hoc
    /// analysis the paper calls "computationally intensive").
    pub analysis_time: Duration,
}

impl TrialSearchResult {
    /// Number of full compress → decompress → analyse rounds performed.
    pub fn rounds(&self) -> usize {
        self.trials.len()
    }

    /// Total search cost.
    pub fn total_time(&self) -> Duration {
        self.codec_time + self.analysis_time
    }
}

/// Bisection search over uniform bounds.
///
/// `quality_ok(original, reconstructed)` is the domain check (e.g. "P(k)
/// ratio within 1 %"). The search brackets `[eb_lo, eb_hi]`, assumes
/// monotonicity (looser bound ⇒ worse quality), and refines for
/// `iterations` rounds, returning the loosest passing bound. If even
/// `eb_lo` fails, that is reported as a zero-width result at `eb_lo` with
/// `trials` showing the failures.
pub fn search_uniform_bound<T, Q>(
    field: &Field3<T>,
    eb_lo: f64,
    eb_hi: f64,
    iterations: usize,
    mut quality_ok: Q,
) -> TrialSearchResult
where
    T: Scalar,
    Q: FnMut(&Field3<T>, &Field3<T>) -> bool,
{
    assert!(eb_lo > 0.0 && eb_hi > eb_lo && iterations > 0);
    let mut codec_time = Duration::ZERO;
    let mut analysis_time = Duration::ZERO;
    let mut trials = Vec::new();

    let mut try_eb = |eb: f64, codec: &mut Duration, analysis: &mut Duration| -> bool {
        let t0 = Instant::now();
        let c = compress(field, &SzConfig::abs(eb));
        let recon: Field3<T> = decompress(&c).expect("self-produced container decodes");
        *codec += t0.elapsed();
        let t1 = Instant::now();
        let ok = quality_ok(field, &recon);
        *analysis += t1.elapsed();
        ok
    };

    let mut lo = eb_lo; // assumed (verified below) passing side
    let mut hi = eb_hi;
    let lo_ok = try_eb(lo, &mut codec_time, &mut analysis_time);
    trials.push((lo, lo_ok));
    if !lo_ok {
        return TrialSearchResult { eb: lo, trials, codec_time, analysis_time };
    }
    let hi_ok = try_eb(hi, &mut codec_time, &mut analysis_time);
    trials.push((hi, hi_ok));
    if hi_ok {
        return TrialSearchResult { eb: hi, trials, codec_time, analysis_time };
    }
    for _ in 0..iterations {
        let mid = (lo * hi).sqrt(); // geometric: the rate curve is log-linear
        let ok = try_eb(mid, &mut codec_time, &mut analysis_time);
        trials.push((mid, ok));
        if ok {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    TrialSearchResult { eb: lo, trials, codec_time, analysis_time }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Dim3;

    fn field() -> Field3<f32> {
        Field3::from_fn(Dim3::cube(12), |x, y, z| {
            ((x as f32) * 0.4).sin() * 30.0 + ((y + z) as f32) * 0.7
        })
    }

    #[test]
    fn finds_loosest_passing_bound() {
        let f = field();
        // Quality check: max error below 0.5 — so the search should settle
        // just under eb = 0.5 (the compressor guarantees err ≤ eb and
        // typically fills most of the band).
        let r = search_uniform_bound(&f, 0.01, 10.0, 8, |a, b| a.max_abs_diff(b) <= 0.5);
        assert!(r.eb >= 0.01 && r.eb <= 0.7, "selected {}", r.eb);
        // The selected bound actually passes.
        let c = compress(&f, &SzConfig::abs(r.eb));
        let recon: Field3<f32> = decompress(&c).unwrap();
        assert!(f.max_abs_diff(&recon) <= 0.5);
        assert!(r.rounds() >= 3);
        assert!(r.total_time() >= r.codec_time);
    }

    #[test]
    fn reports_failure_when_even_tightest_fails() {
        let f = field();
        let r = search_uniform_bound(&f, 0.1, 1.0, 4, |_, _| false);
        assert_eq!(r.eb, 0.1);
        assert_eq!(r.trials.len(), 1);
        assert!(!r.trials[0].1);
    }

    #[test]
    fn short_circuits_when_loosest_passes() {
        let f = field();
        let r = search_uniform_bound(&f, 0.1, 1.0, 8, |_, _| true);
        assert_eq!(r.eb, 1.0);
        assert_eq!(r.rounds(), 2);
    }

    #[test]
    fn more_iterations_never_tighten_the_result_below_truth() {
        let f = field();
        let check = |a: &Field3<f32>, b: &Field3<f32>| a.max_abs_diff(b) <= 1.0;
        let coarse = search_uniform_bound(&f, 0.01, 100.0, 4, check);
        let fine = search_uniform_bound(&f, 0.01, 100.0, 10, check);
        assert!(fine.eb >= coarse.eb * 0.99, "fine {} coarse {}", fine.eb, coarse.eb);
        assert!(fine.rounds() > coarse.rounds());
    }
}
