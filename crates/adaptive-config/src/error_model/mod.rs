//! Post-hoc analysis error-impact models (paper §3.2–§3.4).

pub mod fft;
pub mod halo;
pub mod sz_error;
