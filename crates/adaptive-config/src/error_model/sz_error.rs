//! Empirical validation of the uniform-error premise (paper Fig. 3).
//!
//! Everything downstream (Eqs. 5–14) assumes the compressor's point-wise
//! error is `U[−eb, eb]`. This module measures the actual error
//! distribution of **any codec backend** on a given field so experiments
//! (and tests) can verify how well the premise holds per codec: `rsz`
//! (the paper's compressor) fills the band near-uniformly on busy data,
//! while transform codecs like zfplite's accuracy mode concentrate —
//! exactly the per-codec validation the multi-backend optimizer's quality
//! models need ([`measure_error_distribution_codec`] dispatches through
//! `codec-core`, so a third backend gets validated for free).

use codec_core::{with_scratch, CodecId};
use gridlab::stats::Histogram;
use gridlab::{Field3, Scalar};

/// Measured error distribution of one compression run.
#[derive(Debug, Clone)]
pub struct ErrorDistribution {
    /// Histogram of point-wise errors over `[-eb, eb]`.
    pub histogram: Histogram,
    /// Sample mean of the error.
    pub mean: f64,
    /// Sample variance of the error.
    pub variance: f64,
    /// The bound used.
    pub eb: f64,
    /// Fraction of samples whose |error| exceeded the bound (must be 0).
    pub bound_violations: f64,
}

impl ErrorDistribution {
    /// Ratio of measured variance to the uniform model's `eb²/3`.
    pub fn variance_vs_uniform(&self) -> f64 {
        self.variance / (self.eb * self.eb / 3.0)
    }

    /// Coefficient of variation of the histogram bins (0 = perfectly flat).
    pub fn uniformity_cv(&self) -> f64 {
        self.histogram.uniformity_cv()
    }
}

/// Compress `field` with `rsz` at absolute bound `eb`, decompress, and
/// histogram the point-wise error with `bins` buckets (Fig. 3 uses 100).
pub fn measure_error_distribution<T: Scalar>(
    field: &Field3<T>,
    eb: f64,
    bins: usize,
) -> ErrorDistribution {
    measure_error_distribution_codec(CodecId::Rsz, field, eb, bins)
}

/// [`measure_error_distribution`] against any codec backend, through the
/// `codec-core` dispatch — the per-codec error-distribution validation
/// hook. The measurement uses the backend's intrinsic payload (no
/// container wrapper), matching what the pipeline stores per partition.
pub fn measure_error_distribution_codec<T: Scalar>(
    codec: CodecId,
    field: &Field3<T>,
    eb: f64,
    bins: usize,
) -> ErrorDistribution {
    let recon: Vec<T> = with_scratch(|s| {
        let bytes = codec.compress_slice_with(field.as_slice(), field.dims(), eb, s);
        codec.decompress_slice_with(&bytes, s).expect("self-produced payload decodes").0
    });
    let errs: Vec<f64> =
        field.as_slice().iter().zip(&recon).map(|(&a, &b)| a.to_f64() - b.to_f64()).collect();
    let n = errs.len() as f64;
    let mean = errs.iter().sum::<f64>() / n;
    let variance = errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / n;
    let violations = errs.iter().filter(|e| e.abs() > eb * (1.0 + 1e-12)).count() as f64 / n;
    ErrorDistribution {
        histogram: Histogram::build(&errs, -eb, eb, bins),
        mean,
        variance,
        eb,
        bound_violations: violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::Dim3;

    fn busy_field(n: usize) -> Field3<f32> {
        // Enough small-scale variation that quantisation codes spread and
        // the error fills the band.
        let mut state = 5u64;
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let noise = (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
            ((x as f64 * 0.9).sin() * 50.0
                + (y as f64 * 1.1).cos() * 30.0
                + (z as f64 * 0.7).sin() * 20.0
                + noise * 25.0) as f32
        })
    }

    #[test]
    fn no_bound_violations_ever() {
        let d = measure_error_distribution(&busy_field(16), 0.5, 50);
        assert_eq!(d.bound_violations, 0.0);
    }

    #[test]
    fn error_is_near_uniform_on_busy_data() {
        let d = measure_error_distribution(&busy_field(20), 1.0, 20);
        assert!(d.mean.abs() < 0.05, "mean {}", d.mean);
        let vr = d.variance_vs_uniform();
        assert!(vr > 0.8 && vr < 1.2, "variance ratio {vr}");
        assert!(d.uniformity_cv() < 0.25, "cv {}", d.uniformity_cv());
    }

    #[test]
    fn histogram_covers_full_band() {
        let d = measure_error_distribution(&busy_field(16), 0.8, 10);
        // Every bucket of the error band should be populated.
        assert!(d.histogram.counts.iter().all(|&c| c > 0));
        assert_eq!(d.histogram.total() as usize, 16 * 16 * 16);
    }

    #[test]
    fn zfp_accuracy_mode_has_no_bound_violations() {
        // The generalized hook against the transform backend: zfplite's
        // accuracy mode verifies its bound per block, so well above the
        // fixed-point floor it must hold point-wise like rsz does.
        for eb in [0.25, 1.0] {
            let d = measure_error_distribution_codec(CodecId::Zfp, &busy_field(16), eb, 50);
            assert_eq!(d.bound_violations, 0.0, "zfp eb {eb}");
            assert_eq!(d.histogram.total() as usize, 16 * 16 * 16);
        }
    }

    #[test]
    fn rsz_dispatch_matches_the_legacy_path() {
        // The CodecId::Rsz dispatch must measure the same distribution the
        // direct rsz path always did.
        let f = busy_field(12);
        let a = measure_error_distribution(&f, 0.5, 20);
        let b = measure_error_distribution_codec(CodecId::Rsz, &f, 0.5, 20);
        assert_eq!(a.histogram.counts, b.histogram.counts);
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.variance, b.variance);
    }

    #[test]
    fn codecs_differ_in_shape_but_both_respect_the_band() {
        // Per-codec validation: both backends stay inside the band; the
        // prediction codec fills it (near-uniform), the transform codec
        // concentrates (smaller variance ratio) — the distribution shape
        // the per-codec quality models have to account for.
        let f = busy_field(20);
        let rsz = measure_error_distribution_codec(CodecId::Rsz, &f, 1.0, 20);
        let zfp = measure_error_distribution_codec(CodecId::Zfp, &f, 1.0, 20);
        assert_eq!(rsz.bound_violations, 0.0);
        assert_eq!(zfp.bound_violations, 0.0);
        assert!(
            zfp.variance_vs_uniform() < rsz.variance_vs_uniform(),
            "zfp {} should concentrate below rsz {}",
            zfp.variance_vs_uniform(),
            rsz.variance_vs_uniform()
        );
    }

    #[test]
    fn smooth_data_concentrates_but_stays_bounded() {
        let f = Field3::from_fn(Dim3::cube(12), |x, y, z| (x + y + z) as f32);
        let d = measure_error_distribution(&f, 0.5, 10);
        assert_eq!(d.bound_violations, 0.0);
        // Perfectly Lorenzo-predictable data has near-zero residuals, so
        // the distribution is a spike, not uniform — the model's revised-σ
        // case the paper mentions. CV is large here by design.
        assert!(d.variance_vs_uniform() < 1.0);
    }
}
