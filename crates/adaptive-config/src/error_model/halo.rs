//! Halo-finder error-impact model (paper §3.4, Eqs. 11–14).
//!
//! Lossy error can only change the halo finder's output by flipping the
//! candidacy of *edge cells* — cells whose density lies within `±eb` of
//! `t_boundary`. For uniform error `U[−eb, eb]` and a locally flat value
//! histogram, the flip probability of such a cell is
//!
//! ```text
//! p_fault = ½ ∫₀^eb (x/eb) dx / eb = 25 %          (Eq. 12)
//! ```
//!
//! so a partition with `n_bc` edge cells contributes `e_m = n_bc/4`
//! expected flips (Eq. 13). Each flip changes some halo's mass by roughly
//! the threshold density `t_boundary` (Table 1), giving the aggregate mass
//! fault `M_fault = t_boundary · Σ e_m` (Eq. 11). Per-halo cell-count
//! error is Gaussian with `σ = √(n_bc/3)` by the CLT (Eq. 14).

/// Flip probability of an edge cell (Eq. 12).
pub const P_FAULT: f64 = 0.25;

/// Halo-finder error model for a given boundary threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HaloErrorModel {
    /// The finder's candidate threshold `t_boundary`.
    pub t_boundary: f64,
}

impl HaloErrorModel {
    pub fn new(t_boundary: f64) -> Self {
        assert!(t_boundary > 0.0);
        Self { t_boundary }
    }

    /// Expected fault (flipped) cells in a partition with `n_bc` boundary
    /// cells (Eq. 13).
    pub fn expected_fault_cells(&self, n_bc: f64) -> f64 {
        assert!(n_bc >= 0.0);
        n_bc * P_FAULT
    }

    /// Expected aggregate |mass| fault given per-partition boundary-cell
    /// counts (Eq. 11): `t_boundary · Σ n_bc/4`.
    pub fn expected_mass_fault(&self, boundary_cells: &[f64]) -> f64 {
        self.t_boundary * boundary_cells.iter().map(|&n| self.expected_fault_cells(n)).sum::<f64>()
    }

    /// σ of a large halo's cell-count change when `n_bc` of its edge cells
    /// sit in the flip band (Eq. 14).
    pub fn cell_count_sigma(&self, n_bc: f64) -> f64 {
        assert!(n_bc >= 0.0);
        (n_bc / 3.0).sqrt()
    }

    /// Expected mass change per flipped cell — the paper observes this is
    /// ≈ `t_boundary` itself (Table 1), because a flip moves a whole cell
    /// of ≈ threshold density in or out of the halo.
    pub fn mass_per_flipped_cell(&self) -> f64 {
        self.t_boundary
    }

    /// Expected boundary cells at bound `eb`, scaled linearly from a count
    /// measured at `eb_ref` (the in situ feature extraction measures once
    /// at a reference bound: `n_bc(eb) = n_bc(eb_ref)·eb/eb_ref`).
    pub fn boundary_cells_at(n_ref: f64, eb_ref: f64, eb: f64) -> f64 {
        assert!(eb_ref > 0.0 && eb >= 0.0 && n_ref >= 0.0);
        n_ref * eb / eb_ref
    }

    /// Largest average scale factor `s` such that applying `eb_m = s·eb_ref`
    /// keeps the modeled mass fault within `budget`. Returns `None` when no
    /// boundary cells exist (any bound is safe for the halo metric).
    pub fn max_scale_for_budget(
        &self,
        boundary_cells_at_ref: &[f64],
        eb_ref: f64,
        budget: f64,
    ) -> Option<f64> {
        assert!(budget >= 0.0 && eb_ref > 0.0);
        let total_ref: f64 = boundary_cells_at_ref.iter().sum();
        if total_ref <= 0.0 {
            return None;
        }
        // M_fault(s) = t_b · Σ (n_ref·s)/4 = s · t_b · total_ref / 4.
        Some(budget / (self.t_boundary * total_ref * P_FAULT))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_cells_are_quarter_of_boundary() {
        let m = HaloErrorModel::new(88.16);
        assert!((m.expected_fault_cells(100.0) - 25.0).abs() < 1e-12);
        assert_eq!(m.expected_fault_cells(0.0), 0.0);
    }

    #[test]
    fn mass_fault_is_threshold_times_total_faults() {
        let m = HaloErrorModel::new(88.16);
        let nbc = [100.0, 60.0, 40.0];
        let expect = 88.16 * (100.0 + 60.0 + 40.0) / 4.0;
        assert!((m.expected_mass_fault(&nbc) - expect).abs() < 1e-9);
    }

    #[test]
    fn cell_count_sigma_formula() {
        let m = HaloErrorModel::new(50.0);
        assert!((m.cell_count_sigma(300.0) - 10.0).abs() < 1e-12);
        assert_eq!(m.cell_count_sigma(0.0), 0.0);
    }

    #[test]
    fn boundary_cells_scale_linearly() {
        assert!((HaloErrorModel::boundary_cells_at(200.0, 1.0, 0.25) - 50.0).abs() < 1e-12);
        assert!((HaloErrorModel::boundary_cells_at(200.0, 0.5, 1.0) - 400.0).abs() < 1e-12);
    }

    #[test]
    fn budget_inversion_roundtrips() {
        let m = HaloErrorModel::new(88.16);
        let nbc_ref = [100.0, 50.0];
        let eb_ref = 1.0;
        let budget = 500.0;
        let s = m.max_scale_for_budget(&nbc_ref, eb_ref, budget).unwrap();
        // Applying scale s must produce exactly the budget.
        let scaled: Vec<f64> = nbc_ref.iter().map(|&n| n * s).collect();
        assert!((m.expected_mass_fault(&scaled) - budget).abs() < 1e-9);
    }

    #[test]
    fn no_boundary_cells_means_unconstrained() {
        let m = HaloErrorModel::new(88.16);
        assert!(m.max_scale_for_budget(&[0.0, 0.0], 1.0, 10.0).is_none());
    }

    #[test]
    fn mass_per_cell_matches_threshold() {
        // Table 1: measured "diff per cell" ≈ 81–92 against the threshold
        // 88.16 — the model pins it at the threshold.
        let m = HaloErrorModel::new(88.16);
        assert_eq!(m.mass_per_flipped_cell(), 88.16);
    }
}
