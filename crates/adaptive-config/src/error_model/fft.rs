//! FFT / power-spectrum error propagation (paper §3.3, Eqs. 3–10).
//!
//! The compressor injects error `e ~ U[−eb, eb]` at every cell (Eq. 3).
//! A DFT coefficient is a phase-weighted sum of all cells, so by the CLT
//! its error is Gaussian with mean 0. Averaging the per-term variance of
//! `e·sin(2πnk/N)` over a period gives `Var = eb²/6` per term (Eq. 7 —
//! half the uniform variance `eb²/3` because `E[sin²] = ½`), hence for `N`
//! summed terms
//!
//! ```text
//! σ_DFT = √(N/6) · eb        (real or imaginary axis, Eq. 8/9)
//! ```
//!
//! With per-partition bounds the sum splits over partitions of equal size
//! `N/M` and the variance contributions add:
//! exact: σ² = (N/(6M))·Σ eb_m² ; the paper's working approximation (Eq.
//! 10) replaces this by σ = √(N/6)·mean(eb_m), exact when all `eb_m` are
//! equal and conservative-to-slightly-optimistic otherwise. Both forms are
//! provided; the optimizer constrains `mean(eb_m)` per the paper.

use crate::math::prob_within_k_sigma;

/// Error model for FFT-based analyses over a grid of `total_cells` cells.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FftErrorModel {
    total_cells: usize,
}

impl FftErrorModel {
    /// Model for a full grid (e.g. `512³` cells).
    pub fn new(total_cells: usize) -> Self {
        assert!(total_cells > 0);
        Self { total_cells }
    }

    /// Total number of cells the DFT sums over.
    pub fn total_cells(&self) -> usize {
        self.total_cells
    }

    /// σ of a DFT coefficient's error under a **uniform** bound `eb`
    /// (Eq. 9): `σ = √(N/6)·eb`.
    pub fn sigma_uniform(&self, eb: f64) -> f64 {
        assert!(eb >= 0.0);
        (self.total_cells as f64 / 6.0).sqrt() * eb
    }

    /// σ under per-partition bounds via the paper's Eq. 10
    /// (σ = √(N/6)·mean(eb_m); partitions are assumed equal-sized).
    pub fn sigma_mixed(&self, ebs: &[f64]) -> f64 {
        assert!(!ebs.is_empty());
        let mean = ebs.iter().sum::<f64>() / ebs.len() as f64;
        self.sigma_uniform(mean)
    }

    /// σ under per-partition bounds with exact variance addition:
    /// `σ² = (N/(6M))·Σ eb_m²`. Equals [`Self::sigma_mixed`] when all
    /// bounds coincide; slightly larger when they spread (Cauchy–Schwarz).
    pub fn sigma_mixed_exact(&self, ebs: &[f64]) -> f64 {
        assert!(!ebs.is_empty());
        let m = ebs.len() as f64;
        let sum_sq: f64 = ebs.iter().map(|e| e * e).sum();
        (self.total_cells as f64 / 6.0 * sum_sq / m).sqrt()
    }

    /// Invert Eq. 10: the average bound whose modeled σ equals
    /// `sigma_target`.
    pub fn eb_avg_for_sigma(&self, sigma_target: f64) -> f64 {
        assert!(sigma_target > 0.0);
        sigma_target / (self.total_cells as f64 / 6.0).sqrt()
    }

    /// Probability a DFT error lands within `±k·σ` of zero — the paper maps
    /// `k = 2` to a 95.45 % no-escape confidence (§4.2, Fig. 13).
    pub fn confidence_within(&self, k: f64) -> f64 {
        prob_within_k_sigma(k)
    }

    /// Acceptance σ implied by a power-spectrum ratio tolerance.
    ///
    /// For a mode with amplitude `|X|`, `P'/P ≈ 1 + 2·Re(δX)/|X|`, so a
    /// ratio tolerance `tol` at amplitude floor `amp_floor` with confidence
    /// `k` maps to `σ ≤ tol·amp_floor / (2k)`.
    pub fn sigma_budget_from_ratio_tol(&self, tol: f64, amp_floor: f64, k: f64) -> f64 {
        assert!(tol > 0.0 && amp_floor > 0.0 && k > 0.0);
        tol * amp_floor / (2.0 * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sigma_formula() {
        let m = FftErrorModel::new(512 * 512 * 512);
        let eb = 1.0;
        let expect = ((512f64 * 512.0 * 512.0) / 6.0).sqrt();
        assert!((m.sigma_uniform(eb) - expect).abs() < 1e-9);
        assert_eq!(m.sigma_uniform(0.0), 0.0);
    }

    #[test]
    fn sigma_scales_linearly_in_eb() {
        let m = FftErrorModel::new(64 * 64 * 64);
        assert!((m.sigma_uniform(2.0) - 2.0 * m.sigma_uniform(1.0)).abs() < 1e-12);
    }

    #[test]
    fn larger_grids_are_less_tolerant() {
        // Paper observation (1): higher resolution ⇒ bigger absolute FFT
        // error at the same bound.
        let small = FftErrorModel::new(256usize.pow(3));
        let large = FftErrorModel::new(512usize.pow(3));
        assert!(large.sigma_uniform(0.1) > small.sigma_uniform(0.1));
    }

    #[test]
    fn mixed_equals_uniform_when_bounds_equal() {
        let m = FftErrorModel::new(4096);
        let ebs = vec![0.3; 8];
        assert!((m.sigma_mixed(&ebs) - m.sigma_uniform(0.3)).abs() < 1e-12);
        assert!((m.sigma_mixed_exact(&ebs) - m.sigma_uniform(0.3)).abs() < 1e-12);
    }

    #[test]
    fn exact_mixture_dominates_mean_form() {
        let m = FftErrorModel::new(4096);
        let ebs = [0.1, 0.1, 0.9, 0.9];
        assert!(m.sigma_mixed_exact(&ebs) >= m.sigma_mixed(&ebs));
    }

    #[test]
    fn eb_for_sigma_inverts() {
        let m = FftErrorModel::new(32768);
        let eb = m.eb_avg_for_sigma(100.0);
        assert!((m.sigma_uniform(eb) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn confidence_quotes_match_paper() {
        let m = FftErrorModel::new(8);
        assert!((m.confidence_within(2.0) - 0.9545).abs() < 1e-3);
    }

    #[test]
    fn ratio_tolerance_mapping_monotone() {
        let m = FftErrorModel::new(1 << 20);
        let tight = m.sigma_budget_from_ratio_tol(0.01, 1000.0, 2.0);
        let loose = m.sigma_budget_from_ratio_tol(0.05, 1000.0, 2.0);
        assert!(loose > tight);
        assert!((tight - 0.01 * 1000.0 / 4.0).abs() < 1e-12);
    }
}
