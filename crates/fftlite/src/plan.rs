//! Length-dispatching FFT planner.
//!
//! [`FftPlan`] owns the precomputed state for one transform length and picks
//! the radix-2 kernel for powers of two, Bluestein otherwise. Plans are
//! cheap to clone-share (`Arc` inside) and safe to use from rayon workers.

use crate::bluestein::Bluestein;
use crate::radix2::{fft_in_place, forward_twiddles, ifft_in_place};
use crate::Complex64;
use std::sync::Arc;

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftDirection {
    Forward,
    Inverse,
}

#[derive(Debug, Clone)]
enum Kernel {
    Radix2 { twiddles: Arc<[Complex64]> },
    Bluestein(Arc<Bluestein>),
}

/// A reusable FFT plan for a fixed length.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    kernel: Kernel,
}

impl FftPlan {
    /// Plan a transform of length `n` (> 0).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "FFT length must be positive");
        let kernel = if n.is_power_of_two() {
            Kernel::Radix2 { twiddles: forward_twiddles(n).into() }
        } else {
            Kernel::Bluestein(Arc::new(Bluestein::new(n)))
        };
        Self { n, kernel }
    }

    /// Planned transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Never true: zero-length plans are rejected at construction.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when the fast power-of-two path is in use.
    pub fn is_radix2(&self) -> bool {
        matches!(self.kernel, Kernel::Radix2 { .. })
    }

    /// Execute in place in the given direction.
    pub fn process(&self, data: &mut [Complex64], dir: FftDirection) {
        assert_eq!(data.len(), self.n, "data length does not match plan");
        match (&self.kernel, dir) {
            (Kernel::Radix2 { twiddles }, FftDirection::Forward) => {
                fft_in_place(data, twiddles);
            }
            (Kernel::Radix2 { twiddles }, FftDirection::Inverse) => {
                ifft_in_place(data, twiddles);
            }
            (Kernel::Bluestein(b), FftDirection::Forward) => b.forward(data),
            (Kernel::Bluestein(b), FftDirection::Inverse) => b.inverse(data),
        }
    }

    /// Forward transform in place.
    pub fn forward(&self, data: &mut [Complex64]) {
        self.process(data, FftDirection::Forward);
    }

    /// Inverse transform in place (with `1/N`).
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.process(data, FftDirection::Inverse);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    #[test]
    fn picks_radix2_for_pow2() {
        assert!(FftPlan::new(64).is_radix2());
        assert!(!FftPlan::new(48).is_radix2());
    }

    #[test]
    fn both_kernels_match_dft() {
        for n in [16usize, 24] {
            let x: Vec<Complex64> =
                (0..n).map(|i| Complex64::new((i as f64).cos(), 0.3 * i as f64)).collect();
            let plan = FftPlan::new(n);
            let mut fast = x.clone();
            plan.forward(&mut fast);
            let slow = dft(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-8, "n={n}");
            }
        }
    }

    #[test]
    fn roundtrip_through_plan() {
        for n in [8usize, 11] {
            let x: Vec<Complex64> = (0..n).map(|i| Complex64::real(i as f64)).collect();
            let plan = FftPlan::new(n);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            for (a, b) in x.iter().zip(&y) {
                assert!((*a - *b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn plan_is_shareable_across_threads() {
        let plan = FftPlan::new(32);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let p = plan.clone();
                std::thread::spawn(move || {
                    let mut v: Vec<Complex64> =
                        (0..32).map(|i| Complex64::real((i + t) as f64)).collect();
                    p.forward(&mut v);
                    v[0].re
                })
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().is_finite());
        }
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let plan = FftPlan::new(8);
        let mut v = vec![Complex64::ZERO; 9];
        plan.forward(&mut v);
    }
}
