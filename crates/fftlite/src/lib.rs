//! # fftlite — self-contained FFT for the power-spectrum analysis
//!
//! The paper's power-spectrum post-hoc analysis and its error-propagation
//! model (Eqs. 1–10) are built on the discrete Fourier transform. No FFT
//! crate is assumed available offline, so this crate implements one from
//! scratch:
//!
//! * [`Complex64`] — a small complex number type,
//! * [`dft`] — the O(N²) reference transform used as ground truth in tests,
//! * [`radix2`] — iterative in-place Cooley–Tukey for power-of-two sizes,
//! * [`bluestein`] — chirp-z re-expression so *any* length runs in
//!   O(N log N) through the radix-2 kernel,
//! * [`plan`] — a caching planner choosing between the two,
//! * [`nd`] — 2-D/3-D tensor transforms with rayon-parallel pencil sweeps.
//!
//! The FFT computes the unnormalised forward sum
//! `X(k) = Σ_n x(n)·exp(-2πi·nk/N)` (the convention of the paper's Eq. 1);
//! the inverse divides by `N`.

pub mod bluestein;
pub mod complex;
pub mod dft;
pub mod nd;
pub mod plan;
pub mod radix2;

pub use complex::Complex64;
pub use nd::{fft_3d, fft_3d_inverse, Fft3};
pub use plan::{FftDirection, FftPlan};
