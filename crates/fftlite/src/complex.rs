//! Minimal complex arithmetic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    pub re: f64,
    pub im: f64,
}

impl Complex64 {
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    #[inline]
    pub fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// Purely real value.
    #[inline]
    pub fn real(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `exp(i·theta)` on the unit circle.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self { re: self.re, im: -self.im }
    }

    /// Squared magnitude `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Argument in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scale by a real factor.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self { re: self.re * s, im: self.im * s }
    }
}

impl Add for Complex64 {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl Sub for Complex64 {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl Mul for Complex64 {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl Div for Complex64 {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let d = rhs.norm_sqr();
        Self {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self { re: -self.re, im: -self.im }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Complex64::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn arithmetic_identities() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-3.0, 0.5);
        assert_eq!(a + b, Complex64::new(-2.0, 2.5));
        assert_eq!(a - b, Complex64::new(4.0, 1.5));
        assert_eq!(a * Complex64::ONE, a);
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(2.0, -1.0);
        let b = Complex64::new(0.5, 3.0);
        let c = a * b / b;
        assert!((c - a).abs() < 1e-12);
    }

    #[test]
    fn cis_is_unit_circle() {
        for k in 0..8 {
            let z = Complex64::cis(2.0 * PI * k as f64 / 8.0);
            assert!((z.abs() - 1.0).abs() < 1e-12);
        }
        let z = Complex64::cis(PI / 2.0);
        assert!((z - Complex64::I).abs() < 1e-12);
    }

    #[test]
    fn conj_norm_arg() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!(z.abs(), 5.0);
        assert!((Complex64::I.arg() - PI / 2.0).abs() < 1e-12);
    }

    #[test]
    fn sum_and_scale() {
        let s: Complex64 = (0..4).map(|i| Complex64::new(i as f64, 1.0)).sum();
        assert_eq!(s, Complex64::new(6.0, 4.0));
        assert_eq!(s.scale(0.5), Complex64::new(3.0, 2.0));
    }
}
