//! Bluestein (chirp-z) FFT for arbitrary lengths.
//!
//! Re-expresses a length-`n` DFT as a circular convolution of length
//! `m ≥ 2n − 1` (rounded up to a power of two), which the radix-2 kernel
//! evaluates. This keeps the planner total: partition extents in experiments
//! are usually powers of two, but nothing in the public API requires it.

use crate::radix2::{fft_in_place, forward_twiddles, ifft_in_place};
use crate::Complex64;

/// Precomputed state for Bluestein transforms of a fixed length.
#[derive(Debug, Clone)]
pub struct Bluestein {
    n: usize,
    m: usize,
    /// Chirp `c[k] = exp(-πi·k²/n)`.
    chirp: Vec<Complex64>,
    /// FFT of the zero-padded conjugate-chirp filter.
    filter_spec: Vec<Complex64>,
    twiddles_m: Vec<Complex64>,
}

impl Bluestein {
    /// Plan a forward transform of length `n` (> 0).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "Bluestein length must be positive");
        let m = (2 * n - 1).next_power_of_two();
        // k² mod 2n keeps the phase argument small and exact.
        let chirp: Vec<Complex64> = (0..n)
            .map(|k| {
                let k2 = (k * k) % (2 * n);
                Complex64::cis(-std::f64::consts::PI * k2 as f64 / n as f64)
            })
            .collect();
        let twiddles_m = forward_twiddles(m);
        let mut filter = vec![Complex64::ZERO; m];
        filter[0] = chirp[0].conj();
        for k in 1..n {
            let c = chirp[k].conj();
            filter[k] = c;
            filter[m - k] = c;
        }
        let mut filter_spec = filter;
        fft_in_place(&mut filter_spec, &twiddles_m);
        Self { n, m, chirp, filter_spec, twiddles_m }
    }

    /// Transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True only for the degenerate zero-length plan (which cannot exist).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Forward DFT of `data` (length must equal [`Bluestein::len`]).
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "input length mismatch");
        let mut work = vec![Complex64::ZERO; self.m];
        for k in 0..self.n {
            work[k] = data[k] * self.chirp[k];
        }
        fft_in_place(&mut work, &self.twiddles_m);
        for (w, f) in work.iter_mut().zip(&self.filter_spec) {
            *w *= *f;
        }
        ifft_in_place(&mut work, &self.twiddles_m);
        for k in 0..self.n {
            data[k] = work[k] * self.chirp[k];
        }
    }

    /// Inverse DFT with `1/n` normalisation.
    pub fn inverse(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "input length mismatch");
        for v in data.iter_mut() {
            *v = v.conj();
        }
        self.forward(data);
        let scale = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.conj().scale(scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    #[test]
    fn matches_dft_on_awkward_lengths() {
        for n in [1usize, 2, 3, 5, 7, 12, 15, 17, 31, 33, 60, 100] {
            let x = rand_signal(n, n as u64);
            let plan = Bluestein::new(n);
            let mut fast = x.clone();
            plan.forward(&mut fast);
            let slow = dft(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-7 * (n as f64).max(1.0), "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn matches_dft_on_pow2_too() {
        let n = 64;
        let x = rand_signal(n, 5);
        let plan = Bluestein::new(n);
        let mut fast = x.clone();
        plan.forward(&mut fast);
        let slow = dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for n in [9usize, 20, 49] {
            let x = rand_signal(n, 11 * n as u64);
            let plan = Bluestein::new(n);
            let mut y = x.clone();
            plan.forward(&mut y);
            plan.inverse(&mut y);
            for (a, b) in x.iter().zip(&y) {
                assert!((*a - *b).abs() < 1e-9, "n={n}");
            }
        }
    }

    #[test]
    fn length_accessor() {
        let plan = Bluestein::new(13);
        assert_eq!(plan.len(), 13);
        assert!(!plan.is_empty());
    }

    #[test]
    #[should_panic]
    fn wrong_length_panics() {
        let plan = Bluestein::new(8);
        let mut v = vec![Complex64::ZERO; 7];
        plan.forward(&mut v);
    }
}
