//! Naive O(N²) discrete Fourier transform.
//!
//! This is the textbook sum from the paper's Eq. 1 and serves as the ground
//! truth the fast paths are tested against (FFT must equal DFT exactly up to
//! floating-point roundoff — the paper leans on this equivalence to reason
//! about FFT error with DFT algebra).

use crate::Complex64;

/// Forward DFT: `X(k) = Σ_n x(n)·exp(-2πi·nk/N)`.
pub fn dft(input: &[Complex64]) -> Vec<Complex64> {
    transform(input, -1.0)
}

/// Inverse DFT with `1/N` normalisation.
pub fn idft(input: &[Complex64]) -> Vec<Complex64> {
    let n = input.len();
    let mut out = transform(input, 1.0);
    let scale = 1.0 / n as f64;
    for v in &mut out {
        *v = v.scale(scale);
    }
    out
}

fn transform(input: &[Complex64], sign: f64) -> Vec<Complex64> {
    let n = input.len();
    let mut out = vec![Complex64::ZERO; n];
    if n == 0 {
        return out;
    }
    let base = sign * 2.0 * std::f64::consts::PI / n as f64;
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (i, &x) in input.iter().enumerate() {
            // i*k can exceed 2^53 only for absurd N; reduce mod n first.
            let phase = base * ((i * k) % n) as f64;
            acc += x * Complex64::cis(phase);
        }
        *o = acc;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: &[Complex64], b: &[Complex64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x} != {y}");
        }
    }

    #[test]
    fn dft_of_impulse_is_flat() {
        let mut x = vec![Complex64::ZERO; 8];
        x[0] = Complex64::ONE;
        let spec = dft(&x);
        for v in spec {
            assert!((v - Complex64::ONE).abs() < 1e-12);
        }
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = vec![Complex64::ONE; 8];
        let spec = dft(&x);
        assert!((spec[0] - Complex64::real(8.0)).abs() < 1e-12);
        for v in &spec[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<Complex64> =
            (0..16).map(|i| Complex64::new((i as f64).sin(), (i as f64).cos())).collect();
        let back = idft(&dft(&x));
        approx_eq(&x, &back, 1e-10);
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 32;
        let k0 = 5;
        let x: Vec<Complex64> = (0..n)
            .map(|i| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * i) as f64 / n as f64))
            .collect();
        let spec = dft(&x);
        assert!((spec[k0].abs() - n as f64).abs() < 1e-9);
        for (k, v) in spec.iter().enumerate() {
            if k != k0 {
                assert!(v.abs() < 1e-9, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let x: Vec<Complex64> =
            (0..10).map(|i| Complex64::new(i as f64, -(i as f64) * 0.5)).collect();
        let time: f64 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq: f64 = dft(&x).iter().map(|v| v.norm_sqr()).sum::<f64>() / x.len() as f64;
        assert!((time - freq).abs() < 1e-9);
    }

    #[test]
    fn empty_input_is_empty() {
        assert!(dft(&[]).is_empty());
    }
}
