//! Iterative in-place radix-2 Cooley–Tukey FFT.
//!
//! Decimation-in-time with a bit-reversal permutation followed by log₂N
//! butterfly passes. Twiddle factors are precomputed by the caller
//! ([`crate::plan::FftPlan`]) so repeated transforms of the same length do no
//! trigonometry.

use crate::Complex64;

/// Precompute the twiddle table for length `n` (power of two):
/// `w[j] = exp(-2πi·j/n)` for `j < n/2`.
pub fn forward_twiddles(n: usize) -> Vec<Complex64> {
    assert!(n.is_power_of_two(), "radix-2 FFT requires power-of-two length");
    let half = n / 2;
    let base = -2.0 * std::f64::consts::PI / n as f64;
    (0..half).map(|j| Complex64::cis(base * j as f64)).collect()
}

/// Bit-reversal permutation of `data` (length must be a power of two).
pub fn bit_reverse_permute(data: &mut [Complex64]) {
    let n = data.len();
    if n <= 2 {
        return;
    }
    let shift = usize::BITS - n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if j > i {
            data.swap(i, j);
        }
    }
}

/// In-place forward FFT using a twiddle table from [`forward_twiddles`].
///
/// `data.len()` must equal the table's implied length (`2 × twiddles.len()`).
pub fn fft_in_place(data: &mut [Complex64], twiddles: &[Complex64]) {
    let n = data.len();
    assert!(n.is_power_of_two());
    assert!(n <= 1 || twiddles.len() == n / 2, "twiddle table length mismatch");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(data);
    let mut len = 2usize;
    while len <= n {
        let half = len / 2;
        let step = n / len; // stride into the twiddle table
        for start in (0..n).step_by(len) {
            for j in 0..half {
                let w = twiddles[j * step];
                let a = data[start + j];
                let b = data[start + j + half] * w;
                data[start + j] = a + b;
                data[start + j + half] = a - b;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT (conjugate trick + 1/N scaling).
pub fn ifft_in_place(data: &mut [Complex64], twiddles: &[Complex64]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    for v in data.iter_mut() {
        *v = v.conj();
    }
    fft_in_place(data, twiddles);
    let scale = 1.0 / n as f64;
    for v in data.iter_mut() {
        *v = v.conj().scale(scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::{dft, idft};

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Small deterministic LCG; avoids pulling rand into the hot crate.
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    #[test]
    fn matches_dft_for_all_pow2_up_to_256() {
        for log_n in 0..=8 {
            let n = 1usize << log_n;
            let x = rand_signal(n, 42 + log_n as u64);
            let mut fast = x.clone();
            fft_in_place(&mut fast, &forward_twiddles(n));
            let slow = dft(&x);
            for (a, b) in fast.iter().zip(&slow) {
                assert!((*a - *b).abs() < 1e-8 * (n as f64).max(1.0), "n={n}");
            }
        }
    }

    #[test]
    fn inverse_roundtrip() {
        let n = 128;
        let x = rand_signal(n, 7);
        let tw = forward_twiddles(n);
        let mut y = x.clone();
        fft_in_place(&mut y, &tw);
        ifft_in_place(&mut y, &tw);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn ifft_matches_naive_idft() {
        let n = 64;
        let x = rand_signal(n, 99);
        let tw = forward_twiddles(n);
        let mut fast = x.clone();
        ifft_in_place(&mut fast, &tw);
        let slow = idft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-10);
        }
    }

    #[test]
    fn bit_reversal_is_involution() {
        let n = 64;
        let x = rand_signal(n, 3);
        let mut y = x.clone();
        bit_reverse_permute(&mut y);
        bit_reverse_permute(&mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn bit_reversal_known_order_n8() {
        let mut v: Vec<Complex64> = (0..8).map(|i| Complex64::real(i as f64)).collect();
        bit_reverse_permute(&mut v);
        let order: Vec<f64> = v.iter().map(|z| z.re).collect();
        assert_eq!(order, vec![0.0, 4.0, 2.0, 6.0, 1.0, 5.0, 3.0, 7.0]);
    }

    #[test]
    #[should_panic]
    fn non_pow2_panics() {
        let mut v = vec![Complex64::ZERO; 12];
        let tw = forward_twiddles(16);
        fft_in_place(&mut v, &tw);
    }

    #[test]
    fn trivial_lengths() {
        let tw = forward_twiddles(1);
        assert!(tw.is_empty());
        let mut one = vec![Complex64::real(5.0)];
        fft_in_place(&mut one, &tw);
        assert_eq!(one[0], Complex64::real(5.0));
    }
}
