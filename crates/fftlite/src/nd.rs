//! 2-D/3-D tensor FFTs.
//!
//! A multi-dimensional DFT factors into 1-D transforms along each axis.
//! Layout matches `gridlab`: row-major with z fastest
//! (`idx = (x·ny + y)·nz + z`). The z axis is contiguous and transformed
//! with rayon over rows; the y axis works slab-local with a gather/scatter
//! pencil; the x axis is handled via an explicit transpose so the transforms
//! run on contiguous memory — transposition costs one pass but keeps the
//! kernels cache-friendly and trivially parallel.

use crate::plan::FftPlan;
use crate::{Complex64, FftDirection};
use rayon::prelude::*;

/// Reusable 3-D FFT over an `(nx, ny, nz)` row-major buffer.
#[derive(Debug, Clone)]
pub struct Fft3 {
    nx: usize,
    ny: usize,
    nz: usize,
    plan_x: FftPlan,
    plan_y: FftPlan,
    plan_z: FftPlan,
}

impl Fft3 {
    /// Plan transforms for an `(nx, ny, nz)` grid.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0);
        Self {
            nx,
            ny,
            nz,
            plan_x: FftPlan::new(nx),
            plan_y: FftPlan::new(ny),
            plan_z: FftPlan::new(nz),
        }
    }

    /// Cubic convenience constructor.
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Grid extents.
    pub fn dims(&self) -> (usize, usize, usize) {
        (self.nx, self.ny, self.nz)
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// Never true (extents are validated non-zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Execute in the given direction, in place.
    pub fn process(&self, data: &mut [Complex64], dir: FftDirection) {
        assert_eq!(data.len(), self.len(), "buffer does not match planned dims");
        self.transform_z(data, dir);
        self.transform_y(data, dir);
        self.transform_x(data, dir);
    }

    /// Forward 3-D DFT in place (unnormalised).
    pub fn forward(&self, data: &mut [Complex64]) {
        self.process(data, FftDirection::Forward);
    }

    /// Inverse 3-D DFT in place (each 1-D pass divides by its length, so the
    /// total normalisation is `1/(nx·ny·nz)`).
    pub fn inverse(&self, data: &mut [Complex64]) {
        self.process(data, FftDirection::Inverse);
    }

    fn transform_z(&self, data: &mut [Complex64], dir: FftDirection) {
        let plan = &self.plan_z;
        data.par_chunks_mut(self.nz).for_each(|row| plan.process(row, dir));
    }

    fn transform_y(&self, data: &mut [Complex64], dir: FftDirection) {
        let (ny, nz) = (self.ny, self.nz);
        let plan = &self.plan_y;
        // Each x-slab (ny·nz cells) contains complete y pencils.
        data.par_chunks_mut(ny * nz).for_each(|slab| {
            let mut pencil = vec![Complex64::ZERO; ny];
            for z in 0..nz {
                for (y, p) in pencil.iter_mut().enumerate() {
                    *p = slab[y * nz + z];
                }
                plan.process(&mut pencil, dir);
                for (y, p) in pencil.iter().enumerate() {
                    slab[y * nz + z] = *p;
                }
            }
        });
    }

    fn transform_x(&self, data: &mut [Complex64], dir: FftDirection) {
        let (nx, ny, nz) = (self.nx, self.ny, self.nz);
        if nx == 1 {
            return;
        }
        let plan = &self.plan_x;
        let slab = ny * nz;
        // Transpose to x-contiguous: t[(y·nz+z)·nx + x] = data[x·slab + y·nz + z].
        let mut t = vec![Complex64::ZERO; data.len()];
        t.par_chunks_mut(nx).enumerate().for_each(|(yz, pencil)| {
            for (x, p) in pencil.iter_mut().enumerate() {
                *p = data[x * slab + yz];
            }
            plan.process(pencil, dir);
        });
        // Scatter back, parallel over x-slabs of the destination.
        data.par_chunks_mut(slab).enumerate().for_each(|(x, dst)| {
            for (yz, d) in dst.iter_mut().enumerate() {
                *d = t[yz * nx + x];
            }
        });
    }
}

/// Convert a real-valued slice into a complex buffer.
pub fn real_to_complex(values: &[f64]) -> Vec<Complex64> {
    values.iter().map(|&v| Complex64::real(v)).collect()
}

/// One-shot forward 3-D FFT of a real field; returns the complex spectrum.
pub fn fft_3d(values: &[f64], nx: usize, ny: usize, nz: usize) -> Vec<Complex64> {
    let fft = Fft3::new(nx, ny, nz);
    let mut buf = real_to_complex(values);
    fft.forward(&mut buf);
    buf
}

/// One-shot inverse 3-D FFT; returns the real part (imaginary parts of a
/// spectrum with Hermitian symmetry cancel to roundoff).
pub fn fft_3d_inverse(spectrum: &[Complex64], nx: usize, ny: usize, nz: usize) -> Vec<f64> {
    let fft = Fft3::new(nx, ny, nz);
    let mut buf = spectrum.to_vec();
    fft.inverse(&mut buf);
    buf.iter().map(|z| z.re).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    /// Naive 3-D DFT by directly evaluating the triple sum (tiny sizes only).
    fn dft3_naive(x: &[Complex64], nx: usize, ny: usize, nz: usize) -> Vec<Complex64> {
        let idx = |a: usize, b: usize, c: usize| (a * ny + b) * nz + c;
        let mut out = vec![Complex64::ZERO; x.len()];
        let tau = -2.0 * std::f64::consts::PI;
        for kx in 0..nx {
            for ky in 0..ny {
                for kz in 0..nz {
                    let mut acc = Complex64::ZERO;
                    for a in 0..nx {
                        for b in 0..ny {
                            for c in 0..nz {
                                let phase = tau
                                    * ((a * kx) as f64 / nx as f64
                                        + (b * ky) as f64 / ny as f64
                                        + (c * kz) as f64 / nz as f64);
                                acc += x[idx(a, b, c)] * Complex64::cis(phase);
                            }
                        }
                    }
                    out[idx(kx, ky, kz)] = acc;
                }
            }
        }
        out
    }

    fn rand_complex(n: usize, seed: u64) -> Vec<Complex64> {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    #[test]
    fn matches_naive_3d_cube() {
        let (nx, ny, nz) = (4, 4, 4);
        let x = rand_complex(nx * ny * nz, 1);
        let mut fast = x.clone();
        Fft3::new(nx, ny, nz).forward(&mut fast);
        let slow = dft3_naive(&x, nx, ny, nz);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_naive_3d_rectangular_mixed_kernels() {
        // ny = 3 exercises Bluestein inside the tensor loop.
        let (nx, ny, nz) = (4, 3, 2);
        let x = rand_complex(nx * ny * nz, 2);
        let mut fast = x.clone();
        Fft3::new(nx, ny, nz).forward(&mut fast);
        let slow = dft3_naive(&x, nx, ny, nz);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let (nx, ny, nz) = (8, 4, 6);
        let x = rand_complex(nx * ny * nz, 3);
        let fft = Fft3::new(nx, ny, nz);
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_axes_reduce_to_1d() {
        // nx = ny = 1 makes the 3-D transform a plain length-nz DFT.
        let nz = 16;
        let x = rand_complex(nz, 4);
        let mut fast = x.clone();
        Fft3::new(1, 1, nz).forward(&mut fast);
        let slow = dft(&x);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_field_concentrates_at_dc() {
        let n = 8;
        let spec = fft_3d(&vec![2.5; n * n * n], n, n, n);
        assert!((spec[0].re - 2.5 * (n * n * n) as f64).abs() < 1e-6);
        assert!(spec[1..].iter().all(|z| z.abs() < 1e-6));
    }

    #[test]
    fn real_roundtrip_helpers() {
        let n = 4;
        let vals: Vec<f64> = (0..n * n * n).map(|i| (i as f64 * 0.37).sin()).collect();
        let spec = fft_3d(&vals, n, n, n);
        let back = fft_3d_inverse(&spec, n, n, n);
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn parseval_3d() {
        let (nx, ny, nz) = (4, 8, 2);
        let x = rand_complex(nx * ny * nz, 9);
        let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = x.clone();
        Fft3::new(nx, ny, nz).forward(&mut spec);
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / (nx * ny * nz) as f64;
        assert!((time - freq).abs() < 1e-8 * time.max(1.0));
    }

    #[test]
    #[should_panic]
    fn wrong_buffer_length_panics() {
        let fft = Fft3::cube(4);
        let mut v = vec![Complex64::ZERO; 63];
        fft.forward(&mut v);
    }
}
