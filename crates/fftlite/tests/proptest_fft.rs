//! Property tests: the fast transforms must agree with the naive DFT and
//! satisfy DFT algebra (linearity, Parseval, inversion) on arbitrary input.

use fftlite::dft::dft;
use fftlite::{Complex64, Fft3, FftPlan};
use proptest::prelude::*;

fn arb_signal(max_len: usize) -> impl Strategy<Value = Vec<Complex64>> {
    (1usize..=max_len).prop_flat_map(|n| {
        proptest::collection::vec((-1.0e3f64..1.0e3, -1.0e3f64..1.0e3), n)
            .prop_map(|v| v.into_iter().map(|(re, im)| Complex64::new(re, im)).collect())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn plan_matches_naive_dft(x in arb_signal(48)) {
        let plan = FftPlan::new(x.len());
        let mut fast = x.clone();
        plan.forward(&mut fast);
        let slow = dft(&x);
        let scale = x.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 1e-7 * scale * x.len() as f64);
        }
    }

    #[test]
    fn forward_inverse_is_identity(x in arb_signal(64)) {
        let plan = FftPlan::new(x.len());
        let mut y = x.clone();
        plan.forward(&mut y);
        plan.inverse(&mut y);
        let scale = x.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-9 * scale * x.len() as f64);
        }
    }

    #[test]
    fn transform_is_linear(x in arb_signal(32), alpha in -5.0f64..5.0) {
        let n = x.len();
        let plan = FftPlan::new(n);
        // F(αx) = αF(x)
        let mut fx = x.clone();
        plan.forward(&mut fx);
        let mut fax: Vec<Complex64> = x.iter().map(|z| z.scale(alpha)).collect();
        plan.forward(&mut fax);
        let scale = fx.iter().map(|z| z.abs()).fold(1.0, f64::max);
        for (a, b) in fax.iter().zip(&fx) {
            prop_assert!((*a - b.scale(alpha)).abs() < 1e-8 * scale.max(1.0));
        }
    }

    #[test]
    fn parseval_holds(x in arb_signal(64)) {
        let plan = FftPlan::new(x.len());
        let time: f64 = x.iter().map(|z| z.norm_sqr()).sum();
        let mut spec = x.clone();
        plan.forward(&mut spec);
        let freq: f64 = spec.iter().map(|z| z.norm_sqr()).sum::<f64>() / x.len() as f64;
        prop_assert!((time - freq).abs() <= 1e-8 * time.max(1.0));
    }

    #[test]
    fn fft3_inverse_roundtrip(nx in 1usize..=4, ny in 1usize..=4, nz in 1usize..=6, seed in 0u64..300) {
        let n = nx * ny * nz;
        let mut state = seed;
        let x: Vec<Complex64> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                Complex64::new(((state >> 20) % 1000) as f64, ((state >> 30) % 1000) as f64)
            })
            .collect();
        let fft = Fft3::new(nx, ny, nz);
        let mut y = x.clone();
        fft.forward(&mut y);
        fft.inverse(&mut y);
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    #[test]
    fn dc_component_is_sum(x in arb_signal(32)) {
        let plan = FftPlan::new(x.len());
        let mut spec = x.clone();
        plan.forward(&mut spec);
        let sum: Complex64 = x.iter().copied().sum();
        let scale = sum.abs().max(1.0);
        prop_assert!((spec[0] - sum).abs() < 1e-8 * scale * x.len() as f64);
    }
}
