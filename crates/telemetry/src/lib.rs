//! # telemetry — in-process observability for the streaming service
//!
//! The service layer makes load-dependent runtime decisions — admission
//! rejects, quality degradation, deferred recalibration, budget
//! arbitration — and this crate is how those decisions become visible
//! at runtime instead of only in offline criterion benches. It is a
//! self-contained metrics kernel: **zero dependencies, std atomics
//! only**, so every layer down to `codec-core`'s static compress path
//! can record into it without pulling shims into leaf crates.
//!
//! ## Pieces
//!
//! * [`Counter`] / [`Gauge`] — single relaxed atomics. Counters are
//!   monotone `u64`; gauges hold an `f64` (bit-cast through `AtomicU64`)
//!   so fractional signals like drift residuals fit.
//! * [`Histogram`] — a **log-bucketed** (log-linear) latency/size
//!   histogram: 8 linear sub-buckets per power-of-two octave, 496
//!   buckets covering all of `u64`. Recording is two relaxed
//!   `fetch_add`s plus a `fetch_max`/`fetch_min` — no locks, no
//!   allocation — and histograms **merge** across shards by adding
//!   bucket arrays. See the type docs for why log buckets beat exact
//!   quantiles here.
//! * [`EventJournal`] — a bounded ring buffer of typed [`Event`]s
//!   (overloads, degrades, drift, refreshes, checkpoints, recovery
//!   truncations) with monotone sequence numbers; the newest N events
//!   survive, the oldest are evicted.
//! * [`span`](fn@span) — lightweight span timing over a thread-local
//!   stack: a span records its **self time** (elapsed minus enclosed
//!   child spans), so nested phases — push → optimize → compress →
//!   persist — attribute wall time correctly instead of double-counting
//!   parents.
//! * [`MetricsRegistry`] — names + labels to metric handles, with a
//!   typed [`snapshot`](MetricsRegistry::snapshot), a Prometheus text
//!   exposition ([`render_prometheus`](MetricsRegistry::render_prometheus)),
//!   and a hand-rolled JSON dump
//!   ([`render_json`](MetricsRegistry::render_json)).
//!
//! ## Usage discipline
//!
//! Registration (name lookup) takes a mutex — do it **once**, keep the
//! returned `Arc` handle, and update through the handle on the hot
//! path. The instrumented layers follow this: the stream server
//! registers per-shard/per-tenant handles at startup/registration time,
//! sessions cache their handles when metrics are attached, and
//! codec-core caches per-codec handles in `OnceLock` statics against
//! the process-wide [`global`] registry.
//!
//! The contract with the benches: total instrumentation overhead on the
//! `insitu_step/adaptive` and `stream_server/ingest` hot paths stays
//! ≤ 2% (pinned by `results/BENCH_0006.json`).

mod journal;
mod metrics;
mod registry;
mod span;

pub use journal::{Event, EventJournal, JournalEntry};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{MetricKey, MetricsRegistry, MetricsSnapshot};
pub use span::{span, SpanGuard};

use std::sync::OnceLock;

static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();

/// The process-wide registry. Layers that have no natural owner to hand
/// them a registry — `codec-core`'s static compress/decode and stream
/// file paths — record here; scoped owners (each [`StreamServer`] in
/// `stream-server`) carry their own registry so tests can make exact
/// assertions even when the test harness runs many servers in one
/// process.
///
/// [`StreamServer`]: https://docs.rs/stream-server
pub fn global() -> &'static MetricsRegistry {
    GLOBAL.get_or_init(MetricsRegistry::new)
}
