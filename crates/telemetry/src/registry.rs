//! The registry: names + labels → metric handles, plus the snapshot and
//! render paths.

use crate::journal::{Event, EventJournal, JournalEntry};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex};

/// Default journal capacity: plenty for the operational events one
/// process emits between scrapes, small enough to never matter.
const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// A metric's identity: name plus sorted `(key, value)` label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        Self { name: name.to_string(), labels }
    }

    /// `name{k="v",…}` — the Prometheus series identity.
    fn series(&self) -> String {
        if self.labels.is_empty() {
            return self.name.clone();
        }
        let pairs: Vec<String> = self.labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{}{{{}}}", self.name, pairs.join(","))
    }

    /// Same as [`MetricKey::series`] but with extra label pairs spliced
    /// in (for quantile labels on histogram exposition).
    fn series_with(&self, extra: &[(&str, &str)]) -> String {
        let mut labels = self.labels.clone();
        for (k, v) in extra {
            labels.push((k.to_string(), v.to_string()));
        }
        labels.sort();
        let pairs: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        format!("{}{{{}}}", self.name, pairs.join(","))
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Names + labels → lock-free metric handles, one bounded event
/// journal, and the snapshot/render paths. Registration locks a mutex
/// (do it once, keep the `Arc`); updates through the handles are
/// lock-free.
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<MetricKey, Metric>>,
    journal: EventJournal,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    pub fn with_journal_capacity(capacity: usize) -> Self {
        Self { metrics: Mutex::new(BTreeMap::new()), journal: EventJournal::new(capacity) }
    }

    /// Get-or-create the counter `name{labels}`. Panics if the series
    /// is already registered as a different metric kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics.entry(key).or_insert_with(|| Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get-or-create the gauge `name{labels}`.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics.entry(key).or_insert_with(|| Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Get-or-create the histogram `name{labels}`.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let key = MetricKey::new(name, labels);
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match metrics.entry(key).or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// The registry's event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// Shorthand for `journal().record(event)`.
    pub fn record_event(&self, event: Event) -> u64 {
        self.journal.record(event)
    }

    /// A typed point-in-time view of every registered metric plus the
    /// retained journal entries. Deterministically ordered by
    /// (name, labels).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (key, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => counters.push((key.clone(), c.get())),
                Metric::Gauge(g) => gauges.push((key.clone(), g.get())),
                Metric::Histogram(h) => histograms.push((key.clone(), h.snapshot())),
            }
        }
        drop(metrics);
        MetricsSnapshot { counters, gauges, histograms, events: self.journal.entries() }
    }

    /// Prometheus text exposition: `# TYPE` comments plus one
    /// `name{labels} value` line per series; histograms render as
    /// summaries (`quantile` labels + `_count`/`_sum`/`_max` series).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Hand-rolled JSON dump of the same snapshot (no serializer
    /// dependency; the telemetry crate stays dependency-free).
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().unwrap_or_else(|e| e.into_inner()).len();
        write!(f, "MetricsRegistry({n} series, {:?})", self.journal)
    }
}

/// Typed snapshot returned by [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    pub counters: Vec<(MetricKey, u64)>,
    pub gauges: Vec<(MetricKey, f64)>,
    pub histograms: Vec<(MetricKey, HistogramSnapshot)>,
    pub events: Vec<JournalEntry>,
}

impl MetricsSnapshot {
    /// Counter value by name + labels (`None` when absent). Labels
    /// match irrespective of order.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.counters.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Gauge value by name + labels.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Histogram summary by name + labels.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<HistogramSnapshot> {
        let key = MetricKey::new(name, labels);
        self.histograms.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// See [`MetricsRegistry::render_prometheus`].
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type_comment = String::new();
        let mut type_line = |out: &mut String, name: &str, kind: &str| {
            let comment = format!("# TYPE {name} {kind}\n");
            if comment != last_type_comment {
                out.push_str(&comment);
                last_type_comment = comment;
            }
        };
        for (key, v) in &self.counters {
            type_line(&mut out, &key.name, "counter");
            let _ = writeln!(out, "{} {v}", key.series());
        }
        for (key, v) in &self.gauges {
            type_line(&mut out, &key.name, "gauge");
            let _ = writeln!(out, "{} {}", key.series(), fmt_f64(*v));
        }
        for (key, h) in &self.histograms {
            type_line(&mut out, &key.name, "summary");
            for (q, v) in [("0.5", h.p50), ("0.9", h.p90), ("0.99", h.p99)] {
                let _ = writeln!(out, "{} {v}", key.series_with(&[("quantile", q)]));
            }
            let base =
                MetricKey { name: format!("{}_count", key.name), labels: key.labels.clone() };
            let _ = writeln!(out, "{} {}", base.series(), h.count);
            let base = MetricKey { name: format!("{}_sum", key.name), labels: key.labels.clone() };
            let _ = writeln!(out, "{} {}", base.series(), h.sum);
            let base = MetricKey { name: format!("{}_max", key.name), labels: key.labels.clone() };
            let _ = writeln!(out, "{} {}", base.series(), h.max);
        }
        out
    }

    /// See [`MetricsRegistry::render_json`].
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        for (i, (key, v)) in self.counters.iter().enumerate() {
            push_sep(&mut out, i);
            let _ = write!(
                out,
                "{{\"name\": {}, \"labels\": {}, \"value\": {v}}}",
                json_str(&key.name),
                json_labels(&key.labels)
            );
        }
        out.push_str("\n  ],\n  \"gauges\": [");
        for (i, (key, v)) in self.gauges.iter().enumerate() {
            push_sep(&mut out, i);
            let _ = write!(
                out,
                "{{\"name\": {}, \"labels\": {}, \"value\": {}}}",
                json_str(&key.name),
                json_labels(&key.labels),
                fmt_f64(*v)
            );
        }
        out.push_str("\n  ],\n  \"histograms\": [");
        for (i, (key, h)) in self.histograms.iter().enumerate() {
            push_sep(&mut out, i);
            let _ = write!(
                out,
                "{{\"name\": {}, \"labels\": {}, \"count\": {}, \"sum\": {}, \"min\": {}, \
                 \"max\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                json_str(&key.name),
                json_labels(&key.labels),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.p50,
                h.p90,
                h.p99
            );
        }
        out.push_str("\n  ],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            push_sep(&mut out, i);
            let _ = write!(
                out,
                "{{\"seq\": {}, \"elapsed_ns\": {}, \"kind\": {}",
                e.seq,
                e.elapsed.as_nanos(),
                json_str(e.event.kind())
            );
            match &e.event {
                Event::Overloaded { stream, shard, queue_len } => {
                    let _ =
                        write!(out,
                        ", \"stream\": {stream}, \"shard\": {shard}, \"queue_len\": {queue_len}");
                }
                Event::Degraded { stream, rung } => {
                    let _ = write!(out, ", \"stream\": {stream}, \"rung\": {}", fmt_f64(*rung));
                }
                Event::DriftDetected { stream, residual, partitions } => {
                    let _ = write!(
                        out,
                        ", \"stream\": {stream}, \"residual\": {}, \
                         \"partitions\": {partitions}",
                        fmt_f64(*residual)
                    );
                }
                Event::RefreshCompleted { stream } => {
                    let _ = write!(out, ", \"stream\": {stream}");
                }
                Event::CheckpointSaved { stream, bytes } => {
                    let _ = write!(out, ", \"stream\": {stream}, \"bytes\": {bytes}");
                }
                Event::RecoveryTruncated { frames_kept } => {
                    let _ = write!(out, ", \"frames_kept\": {frames_kept}");
                }
                Event::CompactionStarted { frames } => {
                    let _ = write!(out, ", \"frames\": {frames}");
                }
                Event::CompactionCompleted { frames, bytes_before, bytes_after } => {
                    let _ = write!(
                        out,
                        ", \"frames\": {frames}, \"bytes_before\": {bytes_before}, \
                         \"bytes_after\": {bytes_after}"
                    );
                }
            }
            out.push('}');
        }
        out.push_str("\n  ]\n}\n");
        out
    }
}

fn push_sep(out: &mut String, i: usize) {
    if i > 0 {
        out.push(',');
    }
    out.push_str("\n    ");
}

/// Finite-only float formatting (gauges drop non-finite writes, so this
/// is belt-and-braces for the exposition formats).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", json_str(k), json_str(v));
    }
    out.push('}');
    out
}
