//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone event counter. `inc`/`add` are single relaxed `fetch_add`s;
/// reads are racy-but-atomic snapshots, which is all a counter needs.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// Last-write-wins instantaneous value. Holds an `f64` bit-cast through
/// an `AtomicU64` so fractional signals (drift residuals, occupancy)
/// fit; non-finite writes are dropped so the exposition formats never
/// see NaN/∞.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub const fn new() -> Self {
        Self(AtomicU64::new(0)) // 0u64 == 0.0f64 bit pattern
    }

    /// Set the gauge. Non-finite values are ignored (the render paths
    /// promise finite numbers).
    pub fn set(&self, v: f64) {
        if v.is_finite() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Add a (possibly negative) delta via a CAS loop.
    pub fn add(&self, delta: f64) {
        if !delta.is_finite() {
            return;
        }
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Sub-buckets per power-of-two octave, as a bit count: 2³ = 8 linear
/// slots per octave, bounding the relative quantization error at
/// 1/8 = 12.5% (and the quantile *over*estimate below that, since the
/// reported bound is clamped to the exact observed max).
const SUB_BITS: u32 = 3;
const SUB: usize = 1 << SUB_BITS;

/// Total buckets: `SUB` exact buckets for values `0..SUB`, then 8
/// sub-buckets for each octave `2³..2⁶⁴`. Covers all of `u64`.
pub const NUM_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index for a recorded value. Exact for `v < 2·SUB` (index ==
/// value); log-linear above.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros();
        let sub = ((v >> (octave - SUB_BITS)) & (SUB as u64 - 1)) as usize;
        SUB + (octave - SUB_BITS) as usize * SUB + sub
    }
}

/// Smallest value mapping to bucket `i` (the bucket's lower edge).
#[inline]
fn bucket_lower(i: usize) -> u64 {
    if i < SUB {
        i as u64
    } else {
        let k = i - SUB;
        let octave = SUB_BITS as usize + k / SUB;
        let sub = (k % SUB) as u64;
        (SUB as u64 + sub) << (octave - SUB_BITS as usize)
    }
}

/// Largest value mapping to bucket `i` (the bucket's upper edge,
/// inclusive).
#[inline]
fn bucket_upper(i: usize) -> u64 {
    if i + 1 < NUM_BUCKETS {
        bucket_lower(i + 1) - 1
    } else {
        u64::MAX
    }
}

/// A lock-free log-bucketed histogram of `u64` samples (nanoseconds,
/// bytes, …).
///
/// ## Why log buckets instead of exact quantiles
///
/// Exact quantiles need either every sample retained (unbounded memory,
/// a lock or an MPSC channel on the hot path) or a mergeable sketch
/// (t-digest/DDSketch — real code, real dependencies, and still
/// approximate). Log-linear bucketing gets the useful half of that
/// trade for free: recording is two relaxed `fetch_add`s into a fixed
/// 496-slot array, quantile error is bounded at 12.5% *relative* (one
/// sub-bucket), memory is constant, and two histograms merge by adding
/// bucket arrays — which is exactly what per-shard service-time
/// histograms need to roll up into a server-wide view. Latency
/// decisions downstream (the `Overloaded` retry hint) key off p90
/// *scale*, not its third significant digit, so a ≤ 12.5% bucket edge
/// is comfortably inside the noise floor of a shared host.
///
/// Quantiles are **deterministic**: [`Histogram::quantile`] reports the
/// upper edge of the bucket holding the rank, clamped to the exact
/// observed maximum (tracked via `fetch_max`), so a single recorded
/// value reports itself exactly.
pub struct Histogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            buckets.into_boxed_slice().try_into().expect("NUM_BUCKETS slots");
        Self {
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }

    /// Record one sample: two relaxed `fetch_add`s plus max/min updates.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Exact largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.max.load(Ordering::Relaxed))
    }

    /// Exact smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count() > 0).then(|| self.min.load(Ordering::Relaxed))
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper edge of the bucket
    /// containing that rank, clamped to the exact observed max. `None`
    /// when empty. Deterministic for a given multiset of samples.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(i).min(self.max.load(Ordering::Relaxed)));
            }
        }
        Some(self.max.load(Ordering::Relaxed))
    }

    /// Fold another histogram into this one (bucket-wise addition) —
    /// how per-shard histograms roll up into a server-wide view.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let c = theirs.load(Ordering::Relaxed);
            if c > 0 {
                mine.fetch_add(c, Ordering::Relaxed);
            }
        }
        let n = other.count.load(Ordering::Relaxed);
        if n > 0 {
            self.count.fetch_add(n, Ordering::Relaxed);
            self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
            self.max.fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
            self.min.fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        }
    }

    /// A point-in-time summary (count/sum/min/max and the standard
    /// quantiles).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            p50: self.quantile(0.50).unwrap_or(0),
            p90: self.quantile(0.90).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }

    /// Lower edge of bucket `i` — exposed for the bucket-boundary tests.
    pub fn bucket_lower_edge(i: usize) -> u64 {
        bucket_lower(i)
    }

    /// Upper (inclusive) edge of bucket `i`.
    pub fn bucket_upper_edge(i: usize) -> u64 {
        bucket_upper(i)
    }

    /// Bucket index a value records into.
    pub fn bucket_of(v: u64) -> usize {
        bucket_index(v)
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Histogram(count={}, sum={})", self.count(), self.sum())
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    /// Exact observed min (0 when empty).
    pub min: u64,
    /// Exact observed max (0 when empty).
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}
