//! Bounded structured event journal: the "what happened" companion to
//! the "how much/how fast" metrics.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A typed operational event. `stream` is the emitting stream/tenant id
/// where one applies (0 for process-level events like recovery scans).
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Admission control rejected a push: the shard queue was full.
    Overloaded { stream: u64, shard: u64, queue_len: u64 },
    /// Admission control admitted a push at relaxed quality.
    Degraded { stream: u64, rung: f64 },
    /// A session's drift residual crossed its threshold; a (possibly
    /// deferred) localized refresh of `partitions` models was scheduled.
    DriftDetected { stream: u64, residual: f64, partitions: u64 },
    /// A scheduled refresh finished and its models were installed.
    RefreshCompleted { stream: u64 },
    /// A session checkpoint was serialized.
    CheckpointSaved { stream: u64, bytes: u64 },
    /// A stream-file recovery scan dropped a torn tail, keeping
    /// `frames_kept` intact frames.
    RecoveryTruncated { frames_kept: u64 },
    /// A cold-frame compaction began re-tiering `frames` frames.
    CompactionStarted { frames: u64 },
    /// A compaction finished: the stream's data region went from
    /// `bytes_before` to `bytes_after` bytes.
    CompactionCompleted { frames: u64, bytes_before: u64, bytes_after: u64 },
}

impl Event {
    /// Stable snake_case tag used by the render paths.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Overloaded { .. } => "overloaded",
            Event::Degraded { .. } => "degraded",
            Event::DriftDetected { .. } => "drift_detected",
            Event::RefreshCompleted { .. } => "refresh_completed",
            Event::CheckpointSaved { .. } => "checkpoint_saved",
            Event::RecoveryTruncated { .. } => "recovery_truncated",
            Event::CompactionStarted { .. } => "compaction_started",
            Event::CompactionCompleted { .. } => "compaction_completed",
        }
    }
}

/// One journal row: a monotone sequence number, time since the journal
/// was created, and the event itself.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEntry {
    /// Monotone across the journal's lifetime — entry `seq` is the
    /// `seq`-th event ever recorded, whether or not older entries have
    /// been evicted.
    pub seq: u64,
    /// Elapsed time from journal creation to the event.
    pub elapsed: Duration,
    pub event: Event,
}

struct JournalInner {
    entries: VecDeque<JournalEntry>,
    next_seq: u64,
}

/// A bounded ring buffer of [`JournalEntry`]s: the newest `capacity`
/// events survive, the oldest are evicted first. Events are rare
/// (rejections, drift, checkpoints — not per-sample), so a mutex push
/// is fine; the hot paths never touch this.
pub struct EventJournal {
    capacity: usize,
    start: Instant,
    inner: Mutex<JournalInner>,
}

impl EventJournal {
    /// `capacity` must be ≥ 1.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "journal capacity must be at least 1");
        Self {
            capacity,
            start: Instant::now(),
            inner: Mutex::new(JournalInner { entries: VecDeque::new(), next_seq: 0 }),
        }
    }

    /// Append an event, evicting the oldest entry at capacity. Returns
    /// the assigned sequence number.
    pub fn record(&self, event: Event) -> u64 {
        let elapsed = self.start.elapsed();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.entries.len() == self.capacity {
            inner.entries.pop_front();
        }
        inner.entries.push_back(JournalEntry { seq, elapsed, event });
        seq
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> Vec<JournalEntry> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.entries.iter().cloned().collect()
    }

    /// Retained entry count (≤ capacity).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events ever recorded, including evicted ones.
    pub fn total_recorded(&self) -> u64 {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).next_seq
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for EventJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "EventJournal(len={}, capacity={})", self.len(), self.capacity)
    }
}
