//! Span timing with a thread-local stack: a span records its **self
//! time** — wall time minus the wall time of spans nested inside it on
//! the same thread — so a phase breakdown like push → optimize →
//! compress → persist sums to the whole without double-counting.

use crate::metrics::Histogram;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Per-frame accumulator of child-span wall time, one slot per open
    /// span on this thread.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Start a span that records its self time (nanoseconds) into `hist`
/// when dropped. Nesting is per-thread: a child span opened on another
/// thread (e.g. inside a parallel map) still times itself correctly but
/// its wall time stays inside the parent's self time, since the parent
/// genuinely waited for it.
pub fn span(hist: &Histogram) -> SpanGuard<'_> {
    SPAN_STACK.with(|s| s.borrow_mut().push(0));
    SpanGuard { hist, start: Instant::now() }
}

/// RAII guard returned by [`span`]; records on drop.
#[must_use = "a span measures the scope it lives in — bind it to a variable"]
pub struct SpanGuard<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let total = self.start.elapsed().as_nanos() as u64;
        let child_ns = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            // Propagate this span's *total* wall time into the parent's
            // child accumulator: the parent's self time excludes us.
            if let Some(parent) = stack.last_mut() {
                *parent += total;
            }
            child
        });
        self.hist.record(total.saturating_sub(child_ns));
    }
}
