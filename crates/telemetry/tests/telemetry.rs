//! Telemetry-kernel contracts: bucket-boundary exactness, concurrent
//! increment exactness, journal wraparound, span self-time attribution,
//! and the two render formats.

use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;
use telemetry::{span, Counter, Event, EventJournal, Histogram, MetricsRegistry, NUM_BUCKETS};

// ---------------------------------------------------------------------
// Histogram buckets
// ---------------------------------------------------------------------

/// Every bucket's edges map back to that bucket: a value on a bucket
/// edge lands deterministically in its own bucket, never a neighbour.
#[test]
fn bucket_edges_roundtrip_exactly() {
    for i in 0..NUM_BUCKETS {
        let lo = Histogram::bucket_lower_edge(i);
        let hi = Histogram::bucket_upper_edge(i);
        assert!(lo <= hi, "bucket {i}: lower {lo} > upper {hi}");
        assert_eq!(Histogram::bucket_of(lo), i, "lower edge {lo} of bucket {i}");
        assert_eq!(Histogram::bucket_of(hi), i, "upper edge {hi} of bucket {i}");
        if i + 1 < NUM_BUCKETS {
            assert_eq!(
                Histogram::bucket_lower_edge(i + 1),
                hi + 1,
                "buckets {i} and {} must tile without gaps",
                i + 1
            );
        }
    }
    // The scheme is exact (index == value) through two octaves.
    for v in 0..16u64 {
        assert_eq!(Histogram::bucket_of(v) as u64, v);
    }
    assert_eq!(Histogram::bucket_of(u64::MAX), NUM_BUCKETS - 1);
}

/// A single sample reports itself exactly at every quantile (the bucket
/// upper edge is clamped to the observed max), and quantiles of a known
/// multiset are deterministic.
#[test]
fn quantiles_are_deterministic_and_clamped_to_max() {
    let h = Histogram::new();
    assert_eq!(h.quantile(0.5), None, "empty histogram has no quantiles");
    h.record(1_000_000);
    for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(h.quantile(q), Some(1_000_000));
    }

    // 90 fast + 10 slow samples: p50 sits in the fast bucket, p99 in
    // the slow one, and repeated evaluation never wobbles.
    let h = Histogram::new();
    for _ in 0..90 {
        h.record(100);
    }
    for _ in 0..10 {
        h.record(100_000);
    }
    let p50 = h.quantile(0.50).unwrap();
    let p99 = h.quantile(0.99).unwrap();
    assert!(p50 < 128, "p50 {p50} must stay in the fast bucket");
    assert_eq!(p99, 100_000, "p99 lands in the slow bucket, clamped to exact max");
    for _ in 0..3 {
        assert_eq!(h.quantile(0.50), Some(p50));
        assert_eq!(h.quantile(0.99), Some(p99));
    }
    assert_eq!(h.max(), Some(100_000));
    assert_eq!(h.min(), Some(100));
}

/// Bucket quantization error is bounded: the reported quantile is never
/// below the true value and never more than 12.5% above it.
#[test]
fn quantile_relative_error_is_bounded() {
    for v in [1u64, 7, 8, 100, 1_000, 123_456, 10_000_000, u64::MAX / 3] {
        let h = Histogram::new();
        h.record(v);
        h.record(v.saturating_mul(2)); // push p50's bucket below the max clamp
        let p50 = h.quantile(0.50).unwrap();
        assert!(p50 >= v, "p50 {p50} must not underestimate {v}");
        assert!(
            (p50 as f64) <= (v as f64) * 1.125 + 1.0,
            "p50 {p50} overestimates {v} by more than one sub-bucket"
        );
    }
}

/// Merging shard histograms is bucket-wise addition: count, sum, max
/// and quantiles match recording everything into one histogram.
#[test]
fn merge_matches_single_histogram() {
    let merged = Histogram::new();
    let reference = Histogram::new();
    for shard in 0..4u64 {
        let h = Histogram::new();
        for i in 0..100u64 {
            let v = shard * 10_000 + i * 37;
            h.record(v);
            reference.record(v);
        }
        merged.merge_from(&h);
    }
    assert_eq!(merged.count(), reference.count());
    assert_eq!(merged.sum(), reference.sum());
    assert_eq!(merged.max(), reference.max());
    assert_eq!(merged.min(), reference.min());
    for q in [0.5, 0.9, 0.99] {
        assert_eq!(merged.quantile(q), reference.quantile(q));
    }
}

proptest! {
    /// N threads × M increments sum exactly — no lost updates in the
    /// counter or the histogram (count, sum, and per-bucket totals).
    #[test]
    fn concurrent_increments_sum_exactly(
        threads in 2usize..6,
        per_thread in 1usize..200,
        value in 0u64..1_000_000,
    ) {
        let counter = Arc::new(Counter::new());
        let hist = Arc::new(Histogram::new());
        std::thread::scope(|s| {
            for _ in 0..threads {
                let counter = Arc::clone(&counter);
                let hist = Arc::clone(&hist);
                s.spawn(move || {
                    for _ in 0..per_thread {
                        counter.inc();
                        hist.record(value);
                    }
                });
            }
        });
        let n = (threads * per_thread) as u64;
        prop_assert_eq!(counter.get(), n);
        prop_assert_eq!(hist.count(), n);
        prop_assert_eq!(hist.sum(), n * value);
        prop_assert_eq!(hist.quantile(0.5), Some(value));
    }
}

// ---------------------------------------------------------------------
// Event journal
// ---------------------------------------------------------------------

/// At capacity the oldest entries are evicted and sequence numbers stay
/// monotone across the eviction boundary.
#[test]
fn journal_wraparound_evicts_oldest_keeps_monotone_seq() {
    let j = EventJournal::new(4);
    for i in 0..10u64 {
        let seq = j.record(Event::RefreshCompleted { stream: i });
        assert_eq!(seq, i, "record returns the assigned sequence number");
    }
    assert_eq!(j.len(), 4, "ring retains exactly its capacity");
    assert_eq!(j.total_recorded(), 10);
    let entries = j.entries();
    let seqs: Vec<u64> = entries.iter().map(|e| e.seq).collect();
    assert_eq!(seqs, vec![6, 7, 8, 9], "newest survive, oldest evicted");
    for w in entries.windows(2) {
        assert!(w[0].seq < w[1].seq, "sequence numbers stay monotone");
        assert!(w[0].elapsed <= w[1].elapsed, "timestamps stay ordered");
    }
    // The retained payloads are the newest ones, in order.
    for (e, want) in entries.iter().zip(6u64..) {
        assert_eq!(e.event, Event::RefreshCompleted { stream: want });
    }
}

// ---------------------------------------------------------------------
// Span timing
// ---------------------------------------------------------------------

/// A parent span's recorded self time excludes its children: the three
/// recorded self times sum to (roughly) the outer wall time, not 2× it.
#[test]
fn nested_spans_attribute_self_time() {
    let outer = Histogram::new();
    let inner = Histogram::new();
    let sleep = Duration::from_millis(20);
    let t0 = std::time::Instant::now();
    {
        let _outer = span(&outer);
        {
            let _inner = span(&inner);
            std::thread::sleep(sleep);
        }
        {
            let _inner = span(&inner);
            std::thread::sleep(sleep);
        }
    }
    let wall = t0.elapsed().as_nanos() as u64;
    assert_eq!(outer.count(), 1);
    assert_eq!(inner.count(), 2);
    let inner_total = inner.sum();
    let outer_self = outer.sum();
    assert!(
        inner_total >= 2 * sleep.as_nanos() as u64,
        "children cover their sleeps: {inner_total}ns"
    );
    assert!(
        outer_self < sleep.as_nanos() as u64,
        "parent self time {outer_self}ns must exclude ~{}ns of child time",
        inner_total
    );
    assert!(
        outer_self + inner_total <= wall + wall / 4,
        "self times sum to the wall time, not double-count it"
    );
}

// ---------------------------------------------------------------------
// Registry + render paths
// ---------------------------------------------------------------------

/// Registration is get-or-create: the same (name, labels) yields the
/// same underlying metric whatever the label order.
#[test]
fn registration_is_idempotent_and_label_order_free() {
    let reg = MetricsRegistry::new();
    let a = reg.counter("pushes_total", &[("tenant", "0"), ("shard", "1")]);
    let b = reg.counter("pushes_total", &[("shard", "1"), ("tenant", "0")]);
    a.inc();
    b.add(2);
    assert_eq!(a.get(), 3, "both handles hit the same counter");
    let snap = reg.snapshot();
    assert_eq!(snap.counter("pushes_total", &[("tenant", "0"), ("shard", "1")]), Some(3));
    assert_eq!(snap.counter("pushes_total", &[("tenant", "9")]), None);
}

/// Every exposition line is `name{labels} value` (or a `# TYPE`
/// comment) and the JSON dump is valid JSON.
#[test]
fn render_paths_are_well_formed() {
    let reg = MetricsRegistry::new();
    reg.counter("requests_total", &[("tenant", "0")]).add(5);
    reg.gauge("queue_depth", &[("shard", "0")]).set(3.5);
    let h = reg.histogram("service_ns", &[]);
    h.record(1000);
    h.record(2000);
    reg.record_event(Event::Overloaded { stream: 1, shard: 0, queue_len: 4 });
    reg.record_event(Event::DriftDetected { stream: 1, residual: 0.42, partitions: 3 });

    let text = reg.render_prometheus();
    assert!(text.contains("requests_total{tenant=\"0\"} 5"));
    assert!(text.contains("queue_depth{shard=\"0\"} 3.5"));
    assert!(text.contains("service_ns_count 2"));
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("every line has a value");
        assert!(value.parse::<f64>().is_ok(), "unparseable value in line: {line}");
        let name = series.split('{').next().unwrap();
        assert!(
            !name.is_empty()
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':'),
            "bad metric name in line: {line}"
        );
        if let Some(rest) = series.strip_prefix(name) {
            assert!(
                rest.is_empty() || (rest.starts_with('{') && rest.ends_with('}')),
                "malformed labels in line: {line}"
            );
        }
    }

    let json = reg.render_json();
    let parsed: serde::Value = serde_json::from_str(&json).expect("render_json parses");
    let top = parsed.as_map().expect("top-level object");
    let counters = serde::field(top, "counters").unwrap().as_seq().unwrap();
    let c0 = counters[0].as_map().unwrap();
    assert_eq!(serde::field(c0, "value").unwrap().as_f64(), Some(5.0));
    let events = serde::field(top, "events").unwrap().as_seq().unwrap();
    assert_eq!(events.len(), 2);
    let e0 = events[0].as_map().unwrap();
    assert_eq!(serde::field(e0, "kind").unwrap(), &serde::Value::Str("overloaded".into()));
    let e1 = events[1].as_map().unwrap();
    assert_eq!(serde::field(e1, "kind").unwrap(), &serde::Value::Str("drift_detected".into()));
    assert_eq!(serde::field(e1, "partitions").unwrap().as_f64(), Some(3.0));
}

/// The typed snapshot carries histogram summaries and journal entries.
#[test]
fn snapshot_is_typed_and_complete() {
    let reg = MetricsRegistry::with_journal_capacity(2);
    let h = reg.histogram("latency_ns", &[("shard", "0")]);
    for v in [100u64, 200, 300, 400_000] {
        h.record(v);
    }
    reg.record_event(Event::CheckpointSaved { stream: 7, bytes: 1234 });
    let snap = reg.snapshot();
    let hs = snap.histogram("latency_ns", &[("shard", "0")]).expect("registered");
    assert_eq!(hs.count, 4);
    assert_eq!(hs.max, 400_000);
    assert!(hs.p50 >= 200 && hs.p50 < 400_000);
    assert!((hs.mean() - (100.0 + 200.0 + 300.0 + 400_000.0) / 4.0).abs() < 1e-9);
    assert_eq!(snap.events.len(), 1);
    assert_eq!(snap.events[0].event, Event::CheckpointSaved { stream: 7, bytes: 1234 });
}
