//! Property tests for the grid substrate: index algebra, brick extraction,
//! statistics, and the snapshot wire format.

use gridlab::stats::{count_in_range, summarize, Histogram, PartitionFeatures};
use gridlab::{io, Decomposition, Dim3, Field3};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = Dim3> {
    (1usize..=8, 1usize..=8, 1usize..=8).prop_map(|(x, y, z)| Dim3::new(x, y, z))
}

fn arb_field() -> impl Strategy<Value = Field3<f32>> {
    arb_dims().prop_flat_map(|d| {
        proptest::collection::vec(-1.0e5f32..1.0e5f32, d.len())
            .prop_map(move |v| Field3::from_vec(d, v).expect("sized"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn index_coords_roundtrip(d in arb_dims(), i in 0usize..512) {
        prop_assume!(i < d.len());
        let (x, y, z) = d.coords(i);
        prop_assert_eq!(d.index(x, y, z), i);
        prop_assert!(x < d.nx && y < d.ny && z < d.nz);
    }

    #[test]
    fn extract_insert_roundtrip(f in arb_field()) {
        let d = f.dims();
        // Extract a random sub-brick deterministically derived from dims.
        let bx = 1 + d.nx / 2;
        let by = 1 + d.ny / 2;
        let bz = 1 + d.nz / 2;
        let brick = Dim3::new(bx.min(d.nx), by.min(d.ny), bz.min(d.nz));
        let b = f.extract((0, 0, 0), brick);
        let mut g = Field3::<f32>::zeros(d);
        g.insert((0, 0, 0), &b);
        for x in 0..brick.nx {
            for y in 0..brick.ny {
                for z in 0..brick.nz {
                    prop_assert_eq!(g.get(x, y, z), f.get(x, y, z));
                }
            }
        }
    }

    #[test]
    fn split_assemble_identity(n in 2usize..=8, parts in 1usize..=4, seed in 0u64..300) {
        prop_assume!(n.is_multiple_of(parts));
        let mut state = seed;
        let f = Field3::from_fn(Dim3::cube(n), |_, _, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 40) as f32
        });
        let dec = Decomposition::cubic(n, parts).expect("divides");
        prop_assert_eq!(dec.assemble(&dec.split(&f)).expect("assembles"), f);
    }

    #[test]
    fn partition_of_cell_consistent_with_origins(n in 2usize..=8, parts in 1usize..=4) {
        prop_assume!(n.is_multiple_of(parts));
        let dec = Decomposition::cubic(n, parts).expect("divides");
        for p in dec.iter() {
            let (ox, oy, oz) = p.origin;
            prop_assert_eq!(dec.partition_of_cell(ox, oy, oz), p.id);
        }
    }

    #[test]
    fn summary_bounds_are_tight(f in arb_field()) {
        let s = summarize(f.as_slice());
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.variance >= 0.0);
        prop_assert_eq!(s.count, f.len());
        for v in f.as_slice() {
            prop_assert!((*v as f64) >= s.min && (*v as f64) <= s.max);
        }
    }

    #[test]
    fn histogram_conserves_count(f in arb_field(), bins in 1usize..40) {
        let h = Histogram::auto(f.as_slice(), bins);
        prop_assert_eq!(h.total() as usize, f.len());
        prop_assert_eq!(h.bins(), bins);
    }

    #[test]
    fn range_count_monotone_in_width(f in arb_field(), center in -1e4f64..1e4, w in 0.0f64..1e4) {
        let narrow = count_in_range(f.as_slice(), center - w, center + w);
        let wide = count_in_range(f.as_slice(), center - 2.0 * w, center + 2.0 * w);
        prop_assert!(wide >= narrow);
    }

    #[test]
    fn fused_features_match_separate_passes(f in arb_field(), t in -1e4f64..1e4, eb in 1e-3f64..1e4) {
        let feat = PartitionFeatures::extract(f.as_slice(), t, eb);
        let mean = f.as_slice().iter().map(|v| *v as f64).sum::<f64>() / f.len() as f64;
        prop_assert!((feat.mean - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert_eq!(feat.boundary_cells, count_in_range(f.as_slice(), t - eb, t + eb));
    }

    #[test]
    fn io_roundtrip(f in arb_field()) {
        let bytes = io::to_bytes(&f);
        let g: Field3<f32> = io::from_bytes(&bytes).expect("parses");
        prop_assert_eq!(f, g);
    }

    #[test]
    fn io_rejects_any_truncation(f in arb_field(), cut in 1usize..64) {
        let bytes = io::to_bytes(&f);
        prop_assume!(cut < bytes.len());
        prop_assert!(io::from_bytes::<f32>(&bytes[..bytes.len() - cut]).is_err());
    }
}
