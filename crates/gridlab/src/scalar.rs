//! Floating-point scalar abstraction so fields, compressors and models work
//! for both `f32` (Nyx's native precision) and `f64` (model arithmetic).

use std::fmt::{Debug, Display};
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A minimal IEEE-754 float abstraction.
///
/// Only what the workspace actually needs: conversions to/from `f64`,
/// bit-level access for serialization, and ordinary arithmetic.
pub trait Scalar:
    Copy
    + Debug
    + Display
    + PartialOrd
    + PartialEq
    + Default
    + Send
    + Sync
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Sum
    + 'static
{
    /// Number of bytes in the wire representation.
    const BYTES: usize;
    /// Bits per value (used to report bit rates against the uncompressed size).
    const BITS: u32;
    /// Short type tag for the snapshot format ("f32" / "f64").
    const TAG: &'static str;

    fn zero() -> Self;
    fn one() -> Self;
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn abs(self) -> Self;
    fn is_finite(self) -> bool;
    /// Append the little-endian byte representation to `out`.
    fn write_le(self, out: &mut Vec<u8>);
    /// Parse a value from the first `Self::BYTES` bytes of `buf`.
    fn read_le(buf: &[u8]) -> Self;
}

impl Scalar for f32 {
    const BYTES: usize = 4;
    const BITS: u32 = 32;
    const TAG: &'static str = "f32";

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v as f32
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self as f64
    }
    #[inline]
    fn abs(self) -> Self {
        f32::abs(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f32::is_finite(self)
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(buf: &[u8]) -> Self {
        f32::from_le_bytes(buf[..4].try_into().expect("short buffer for f32"))
    }
}

impl Scalar for f64 {
    const BYTES: usize = 8;
    const BITS: u32 = 64;
    const TAG: &'static str = "f64";

    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(v: f64) -> Self {
        v
    }
    #[inline]
    fn to_f64(self) -> f64 {
        self
    }
    #[inline]
    fn abs(self) -> Self {
        f64::abs(self)
    }
    #[inline]
    fn is_finite(self) -> bool {
        f64::is_finite(self)
    }
    #[inline]
    fn write_le(self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    #[inline]
    fn read_le(buf: &[u8]) -> Self {
        f64::from_le_bytes(buf[..8].try_into().expect("short buffer for f64"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Scalar>(v: T) {
        let mut buf = Vec::new();
        v.write_le(&mut buf);
        assert_eq!(buf.len(), T::BYTES);
        let back = T::read_le(&buf);
        assert_eq!(back.to_f64(), v.to_f64());
    }

    #[test]
    fn f32_wire_roundtrip() {
        roundtrip(1.5f32);
        roundtrip(-0.0f32);
        roundtrip(f32::MAX);
    }

    #[test]
    fn f64_wire_roundtrip() {
        roundtrip(std::f64::consts::PI);
        roundtrip(f64::MIN_POSITIVE);
    }

    #[test]
    fn conversions() {
        assert_eq!(<f32 as Scalar>::from_f64(2.0), 2.0f32);
        assert_eq!(2.0f64.to_f64(), 2.0);
        assert_eq!(f32::TAG, "f32");
        assert_eq!(f64::TAG, "f64");
    }

    #[test]
    fn abs_and_finite() {
        assert_eq!((-3.0f32).abs(), 3.0);
        assert!(!(f64::NAN).is_finite());
        assert!(1.0f64.is_finite());
    }
}
