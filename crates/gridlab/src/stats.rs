//! Per-partition feature extraction.
//!
//! The paper's in situ overhead budget hinges on these being cheap: the
//! optimizer needs only the **mean value** of each partition (bit-rate model,
//! Eq. 15), plus — for baryon density — the **boundary-cell count** within
//! `(t_boundary − eb, t_boundary + eb)` (halo-finder model, Eq. 13).
//! Histogram and entropy are provided for model calibration and validation
//! (entropy is the "better but more expensive" compressibility proxy the
//! paper mentions before settling on the mean).

use crate::{Field3, Scalar};

/// Summary statistics of a slice of scalar values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub mean: f64,
    pub min: f64,
    pub max: f64,
    /// Population variance.
    pub variance: f64,
}

impl Summary {
    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance.sqrt()
    }

    /// Value range `max - min`.
    pub fn range(&self) -> f64 {
        self.max - self.min
    }
}

/// One-pass summary (Welford) of a value slice.
///
/// Welford's update keeps the variance numerically stable for the huge
/// dynamic ranges of cosmology fields (densities span ~9 decades).
pub fn summarize<T: Scalar>(values: &[T]) -> Summary {
    assert!(!values.is_empty(), "cannot summarize an empty slice");
    let mut mean = 0.0f64;
    let mut m2 = 0.0f64;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for (i, v) in values.iter().enumerate() {
        let x = v.to_f64();
        min = min.min(x);
        max = max.max(x);
        let delta = x - mean;
        mean += delta / (i + 1) as f64;
        m2 += delta * (x - mean);
    }
    Summary { count: values.len(), mean, min, max, variance: m2 / values.len() as f64 }
}

/// Convenience wrapper over [`summarize`] for a field.
pub fn summarize_field<T: Scalar>(f: &Field3<T>) -> Summary {
    summarize(f.as_slice())
}

/// Mean value only — the single cheapest feature; used in situ per partition.
pub fn mean<T: Scalar>(values: &[T]) -> f64 {
    assert!(!values.is_empty());
    values.iter().map(|v| v.to_f64()).sum::<f64>() / values.len() as f64
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets.
///
/// Values outside the range are clamped into the first/last bucket so the
/// total count always equals the input length (matches how the paper's
/// error-distribution plots are binned).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    pub lo: f64,
    pub hi: f64,
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Build a histogram of `values`.
    pub fn build<T: Scalar>(values: &[T], lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0 && hi > lo, "invalid histogram spec");
        let mut counts = vec![0u64; bins];
        let w = (hi - lo) / bins as f64;
        for v in values {
            let x = v.to_f64();
            let b = if x < lo {
                0
            } else if x >= hi {
                bins - 1
            } else {
                (((x - lo) / w) as usize).min(bins - 1)
            };
            counts[b] += 1;
        }
        Self { lo, hi, counts }
    }

    /// Histogram spanning the data's own min/max.
    pub fn auto<T: Scalar>(values: &[T], bins: usize) -> Self {
        let s = summarize(values);
        let (lo, hi) = if s.max > s.min { (s.min, s.max) } else { (s.min, s.min + 1.0) };
        Self::build(values, lo, hi, bins)
    }

    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bin width.
    pub fn width(&self) -> f64 {
        (self.hi - self.lo) / self.bins() as f64
    }

    /// Center of bin `i`.
    pub fn center(&self, i: usize) -> f64 {
        self.lo + (i as f64 + 0.5) * self.width()
    }

    /// Shannon entropy (bits) of the bin occupancy distribution.
    pub fn entropy_bits(&self) -> f64 {
        let total = self.total() as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.counts
            .iter()
            .filter(|&&c| c > 0)
            .map(|&c| {
                let p = c as f64 / total;
                -p * p.log2()
            })
            .sum()
    }

    /// Coefficient of variation of bin counts — a quick uniformity score.
    /// A perfectly uniform histogram scores 0.
    pub fn uniformity_cv(&self) -> f64 {
        let n = self.bins() as f64;
        let mean = self.total() as f64 / n;
        if mean == 0.0 {
            return 0.0;
        }
        let var = self
            .counts
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / n;
        var.sqrt() / mean
    }
}

/// Count of values in the open interval `(lo, hi)`.
///
/// With `lo = t_boundary − eb`, `hi = t_boundary + eb` this is the paper's
/// `n_bc` — the number of halo-boundary cells whose candidacy lossy error can
/// flip (Eq. 13).
pub fn count_in_range<T: Scalar>(values: &[T], lo: f64, hi: f64) -> usize {
    values
        .iter()
        .filter(|v| {
            let x = v.to_f64();
            x > lo && x < hi
        })
        .count()
}

/// The paper's per-partition feature record, extracted in one pass.
///
/// `boundary_cells` is `n_bc` measured at the reference bound
/// `eb_ref` (the paper extracts once at `eb = 1.0` and scales linearly:
/// `n_bc(eb) ≈ n_bc(eb_ref) · eb / eb_ref`, valid because the local value
/// histogram is approximately flat at halo-threshold scale).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionFeatures {
    /// Mean of all cells — drives the bit-rate model.
    pub mean: f64,
    /// Cells within `(t_boundary − eb_ref, t_boundary + eb_ref)`.
    pub boundary_cells: usize,
    /// Reference bound the boundary-cell count was taken at.
    pub eb_ref: f64,
    /// Cell count of the partition.
    pub cells: usize,
}

impl PartitionFeatures {
    /// Extract features in a single fused pass over the brick.
    pub fn extract<T: Scalar>(values: &[T], t_boundary: f64, eb_ref: f64) -> Self {
        assert!(!values.is_empty());
        assert!(eb_ref > 0.0);
        let lo = t_boundary - eb_ref;
        let hi = t_boundary + eb_ref;
        let mut sum = 0.0f64;
        let mut nbc = 0usize;
        for v in values {
            let x = v.to_f64();
            sum += x;
            if x > lo && x < hi {
                nbc += 1;
            }
        }
        Self { mean: sum / values.len() as f64, boundary_cells: nbc, eb_ref, cells: values.len() }
    }

    /// Linearly rescale the boundary-cell count to a different error bound
    /// (the paper's `n_bc = n × eb` relation, §4.2 / Fig. 14 discussion).
    pub fn boundary_cells_at(&self, eb: f64) -> f64 {
        self.boundary_cells as f64 * eb / self.eb_ref
    }
}

/// Shannon entropy (bits/value) of the values quantized into `2·half_bins`
/// buckets of width `quantum` centred on the data mean.
///
/// This mirrors the quantization-code entropy that lower-bounds the Huffman
/// stage of an SZ-style compressor; it is the expensive compressibility
/// feature the paper replaces with the mean.
pub fn quantized_entropy_bits<T: Scalar>(values: &[T], quantum: f64, half_bins: usize) -> f64 {
    assert!(quantum > 0.0 && half_bins > 0);
    let m = mean(values);
    let lo = m - quantum * half_bins as f64;
    let hi = m + quantum * half_bins as f64;
    Histogram::build(values, lo, hi, 2 * half_bins).entropy_bits()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Dim3;

    #[test]
    fn summary_of_known_values() {
        let s = summarize(&[1.0f64, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.variance - 1.25).abs() < 1e-12);
        assert!((s.std_dev() - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(s.range(), 3.0);
    }

    #[test]
    fn welford_matches_naive_on_large_offsets() {
        // A mean offset of 1e9 would destroy a naive sum-of-squares variance.
        let vals: Vec<f64> = (0..1000).map(|i| 1e9 + (i % 10) as f64).collect();
        let s = summarize(&vals);
        let naive_mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((s.mean - naive_mean).abs() < 1e-3);
        assert!((s.variance - 8.25).abs() < 1e-3);
    }

    #[test]
    fn histogram_counts_and_clamping() {
        let vals = [-1.0f64, 0.0, 0.5, 0.99, 5.0];
        let h = Histogram::build(&vals, 0.0, 1.0, 2);
        assert_eq!(h.total(), 5);
        // -1 clamps into bin 0; 0.5, 0.99 land in bin 1; 5.0 clamps into bin 1.
        assert_eq!(h.counts, vec![2, 3]);
        assert!((h.width() - 0.5).abs() < 1e-12);
        assert!((h.center(0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_auto_covers_data() {
        let vals = [2.0f32, 4.0, 6.0];
        let h = Histogram::auto(&vals, 4);
        assert_eq!(h.lo, 2.0);
        assert_eq!(h.hi, 6.0);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn entropy_extremes() {
        let uniform = Histogram { lo: 0.0, hi: 1.0, counts: vec![5, 5, 5, 5] };
        assert!((uniform.entropy_bits() - 2.0).abs() < 1e-12);
        assert!((uniform.uniformity_cv()).abs() < 1e-12);
        let point = Histogram { lo: 0.0, hi: 1.0, counts: vec![20, 0, 0, 0] };
        assert_eq!(point.entropy_bits(), 0.0);
        assert!(point.uniformity_cv() > 1.0);
    }

    #[test]
    fn count_in_range_is_open_interval() {
        let vals = [1.0f64, 2.0, 3.0];
        assert_eq!(count_in_range(&vals, 1.0, 3.0), 1); // endpoints excluded
        assert_eq!(count_in_range(&vals, 0.0, 4.0), 3);
    }

    #[test]
    fn features_fused_pass_matches_separate() {
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| (x + y + z) as f64);
        let vals = f.as_slice();
        let t = 10.0;
        let ebr = 2.0;
        let feat = PartitionFeatures::extract(vals, t, ebr);
        assert!((feat.mean - mean(vals)).abs() < 1e-12);
        assert_eq!(feat.boundary_cells, count_in_range(vals, t - ebr, t + ebr));
        assert_eq!(feat.cells, 512);
    }

    #[test]
    fn boundary_cells_scale_linearly() {
        let feat = PartitionFeatures { mean: 0.0, boundary_cells: 100, eb_ref: 1.0, cells: 1000 };
        assert!((feat.boundary_cells_at(0.5) - 50.0).abs() < 1e-12);
        assert!((feat.boundary_cells_at(2.0) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn quantized_entropy_constant_field_is_zero() {
        let vals = vec![5.0f32; 100];
        assert_eq!(quantized_entropy_bits(&vals, 0.1, 8), 0.0);
    }

    #[test]
    fn quantized_entropy_spread_is_positive() {
        let vals: Vec<f64> = (0..128).map(|i| i as f64 * 0.1).collect();
        assert!(quantized_entropy_bits(&vals, 0.1, 64) > 3.0);
    }
}
