//! Grid dimensions and row-major index arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Dimensions of a 3-D grid, stored as `(nx, ny, nz)`.
///
/// Linearisation is row-major with `z` fastest:
/// `idx = (x * ny + y) * nz + z`. This matches how the rest of the
/// workspace lays out field data, and how the Lorenzo predictor in `rsz`
/// walks its neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Dim3 {
    pub nx: usize,
    pub ny: usize,
    pub nz: usize,
}

impl Dim3 {
    /// Create dimensions; all extents must be non-zero.
    pub fn new(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "Dim3 extents must be non-zero");
        Self { nx, ny, nz }
    }

    /// Cubic dimensions `n × n × n`.
    pub fn cube(n: usize) -> Self {
        Self::new(n, n, n)
    }

    /// Total number of cells.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny * self.nz
    }

    /// True when the grid holds no cells (never true for a valid `Dim3`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear index of `(x, y, z)`.
    #[inline]
    pub fn index(&self, x: usize, y: usize, z: usize) -> usize {
        debug_assert!(x < self.nx && y < self.ny && z < self.nz);
        (x * self.ny + y) * self.nz + z
    }

    /// Inverse of [`Dim3::index`].
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize, usize) {
        debug_assert!(idx < self.len());
        let z = idx % self.nz;
        let rest = idx / self.nz;
        let y = rest % self.ny;
        let x = rest / self.ny;
        (x, y, z)
    }

    /// Checked linear index: `None` when out of bounds.
    #[inline]
    pub fn checked_index(&self, x: usize, y: usize, z: usize) -> Option<usize> {
        if x < self.nx && y < self.ny && z < self.nz {
            Some(self.index(x, y, z))
        } else {
            None
        }
    }

    /// Whether every extent is a power of two (fast-path requirement for the
    /// radix-2 FFT used by the power-spectrum analysis).
    pub fn is_pow2(&self) -> bool {
        self.nx.is_power_of_two() && self.ny.is_power_of_two() && self.nz.is_power_of_two()
    }

    /// Whether `other` exactly tiles `self` along every axis.
    pub fn divides(&self, other: Dim3) -> bool {
        self.nx.is_multiple_of(other.nx)
            && self.ny.is_multiple_of(other.ny)
            && self.nz.is_multiple_of(other.nz)
    }

    /// Iterate over all `(x, y, z)` coordinates in linear-index order.
    pub fn iter_coords(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        let d = *self;
        (0..d.len()).map(move |i| d.coords(i))
    }

    /// The six face-adjacent neighbours of `(x, y, z)` that are in bounds.
    ///
    /// Used by the halo finder's connected-components pass (the paper's
    /// Eulerian halo finder groups face-adjacent over-dense cells).
    pub fn face_neighbors(&self, x: usize, y: usize, z: usize) -> impl Iterator<Item = usize> + '_ {
        let d = *self;
        let deltas: [(isize, isize, isize); 6] =
            [(-1, 0, 0), (1, 0, 0), (0, -1, 0), (0, 1, 0), (0, 0, -1), (0, 0, 1)];
        deltas.into_iter().filter_map(move |(dx, dy, dz)| {
            let nx = x.checked_add_signed(dx)?;
            let ny = y.checked_add_signed(dy)?;
            let nz = z.checked_add_signed(dz)?;
            d.checked_index(nx, ny, nz)
        })
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}x{}", self.nx, self.ny, self.nz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        let d = Dim3::new(3, 4, 5);
        for idx in 0..d.len() {
            let (x, y, z) = d.coords(idx);
            assert_eq!(d.index(x, y, z), idx);
        }
    }

    #[test]
    fn index_is_z_fastest() {
        let d = Dim3::new(2, 2, 4);
        assert_eq!(d.index(0, 0, 0), 0);
        assert_eq!(d.index(0, 0, 1), 1);
        assert_eq!(d.index(0, 1, 0), 4);
        assert_eq!(d.index(1, 0, 0), 8);
    }

    #[test]
    fn cube_and_len() {
        let d = Dim3::cube(8);
        assert_eq!(d.len(), 512);
        assert!(d.is_pow2());
        assert!(!d.is_empty());
    }

    #[test]
    fn checked_index_bounds() {
        let d = Dim3::new(2, 3, 4);
        assert!(d.checked_index(1, 2, 3).is_some());
        assert!(d.checked_index(2, 0, 0).is_none());
        assert!(d.checked_index(0, 3, 0).is_none());
        assert!(d.checked_index(0, 0, 4).is_none());
    }

    #[test]
    fn divides_exact_tiling() {
        assert!(Dim3::cube(64).divides(Dim3::cube(16)));
        assert!(!Dim3::cube(64).divides(Dim3::cube(48)));
        assert!(Dim3::new(128, 64, 32).divides(Dim3::new(32, 32, 32)));
    }

    #[test]
    fn face_neighbors_corner_and_center() {
        let d = Dim3::cube(3);
        let corner: Vec<_> = d.face_neighbors(0, 0, 0).collect();
        assert_eq!(corner.len(), 3);
        let center: Vec<_> = d.face_neighbors(1, 1, 1).collect();
        assert_eq!(center.len(), 6);
    }

    #[test]
    #[should_panic]
    fn zero_extent_panics() {
        let _ = Dim3::new(0, 1, 1);
    }

    #[test]
    fn display_format() {
        assert_eq!(Dim3::new(1, 2, 3).to_string(), "1x2x3");
    }

    #[test]
    fn iter_coords_matches_len() {
        let d = Dim3::new(3, 2, 2);
        assert_eq!(d.iter_coords().count(), d.len());
        let v: Vec<_> = d.iter_coords().collect();
        assert_eq!(v[0], (0, 0, 0));
        assert_eq!(v[d.len() - 1], (2, 1, 1));
    }
}
