//! # gridlab — 3-D scalar fields and domain decomposition
//!
//! Foundation crate for the HPDC'21 adaptive-compression reproduction.
//! It provides:
//!
//! * [`Dim3`] — dimensions and index arithmetic for row-major 3-D grids,
//! * [`Field3`] — an owned 3-D scalar field over [`Scalar`] (`f32`/`f64`),
//! * [`Decomposition`] / [`Partition`] — brick domain decomposition mirroring
//!   the per-MPI-rank partitions of a Nyx run,
//! * [`stats`] — the cheap per-partition features the paper's models consume
//!   (mean, histograms, entropy, boundary-cell counts),
//! * [`io`] — a small self-describing binary snapshot format.
//!
//! Everything is deterministic and dependency-light so the higher layers
//! (compressor, models, pipeline) can be tested hermetically.

pub mod dims;
pub mod error;
pub mod field;
pub mod io;
pub mod partition;
pub mod scalar;
pub mod stats;

pub use dims::Dim3;
pub use error::GridError;
pub use field::Field3;
pub use partition::{Decomposition, Partition, PartitionId};
pub use scalar::Scalar;
