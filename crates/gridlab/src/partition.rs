//! Brick domain decomposition.
//!
//! Nyx distributes its grid over MPI ranks as equal axis-aligned bricks; the
//! paper assigns one compression configuration per brick. [`Decomposition`]
//! captures that layout and [`Partition`] is the per-rank view (origin +
//! extents + rank id).

use crate::{Dim3, Field3, GridError, Scalar};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Identifier of a partition within a [`Decomposition`] (row-major over the
/// brick grid, z fastest — the same convention as cell indexing).
pub type PartitionId = usize;

/// One axis-aligned brick of the domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partition {
    /// Index of this brick in its decomposition.
    pub id: PartitionId,
    /// Cell coordinates of the brick's low corner in the global grid.
    pub origin: (usize, usize, usize),
    /// Brick extents in cells.
    pub dims: Dim3,
}

impl Partition {
    /// Number of cells in this brick.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when the brick holds no cells (never for valid decompositions).
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }
}

/// Equal-brick decomposition of a global grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Decomposition {
    domain: Dim3,
    brick: Dim3,
    /// Bricks along each axis.
    counts: (usize, usize, usize),
}

impl Decomposition {
    /// Decompose `domain` into bricks of `brick` cells.
    ///
    /// Fails unless the bricks tile the domain exactly, mirroring Nyx's
    /// static rank layout.
    pub fn new(domain: Dim3, brick: Dim3) -> Result<Self, GridError> {
        if !domain.divides(brick) {
            return Err(GridError::BadDecomposition {
                domain: domain.to_string(),
                brick: brick.to_string(),
            });
        }
        Ok(Self {
            domain,
            brick,
            counts: (domain.nx / brick.nx, domain.ny / brick.ny, domain.nz / brick.nz),
        })
    }

    /// Decomposition of a cubic domain into `parts_per_axis`³ bricks.
    pub fn cubic(domain_n: usize, parts_per_axis: usize) -> Result<Self, GridError> {
        let domain = Dim3::cube(domain_n);
        if parts_per_axis == 0 || !domain_n.is_multiple_of(parts_per_axis) {
            return Err(GridError::BadDecomposition {
                domain: domain.to_string(),
                brick: format!("{parts_per_axis} parts/axis"),
            });
        }
        Decomposition::new(domain, Dim3::cube(domain_n / parts_per_axis))
    }

    pub fn domain(&self) -> Dim3 {
        self.domain
    }

    pub fn brick(&self) -> Dim3 {
        self.brick
    }

    /// Total number of partitions (the paper's `M`).
    pub fn num_partitions(&self) -> usize {
        self.counts.0 * self.counts.1 * self.counts.2
    }

    /// Bricks along each axis.
    pub fn counts(&self) -> (usize, usize, usize) {
        self.counts
    }

    /// The partition with the given id.
    pub fn partition(&self, id: PartitionId) -> Result<Partition, GridError> {
        let n = self.num_partitions();
        if id >= n {
            return Err(GridError::PartitionOutOfRange { id, count: n });
        }
        let (cx, cy, cz) = self.counts;
        let bz = id % cz;
        let rest = id / cz;
        let by = rest % cy;
        let bx = rest / cy;
        debug_assert!(bx < cx);
        Ok(Partition {
            id,
            origin: (bx * self.brick.nx, by * self.brick.ny, bz * self.brick.nz),
            dims: self.brick,
        })
    }

    /// Iterate over all partitions in id order.
    pub fn iter(&self) -> impl Iterator<Item = Partition> + '_ {
        (0..self.num_partitions()).map(move |id| self.partition(id).expect("id in range"))
    }

    /// Id of the partition containing global cell `(x, y, z)`.
    pub fn partition_of_cell(&self, x: usize, y: usize, z: usize) -> PartitionId {
        debug_assert!(x < self.domain.nx && y < self.domain.ny && z < self.domain.nz);
        let bx = x / self.brick.nx;
        let by = y / self.brick.ny;
        let bz = z / self.brick.nz;
        (bx * self.counts.1 + by) * self.counts.2 + bz
    }

    /// Extract every partition brick of `field` (id order).
    pub fn split<T: Scalar>(&self, field: &Field3<T>) -> Vec<Field3<T>> {
        assert_eq!(field.dims(), self.domain, "field does not match decomposition domain");
        self.iter().map(|p| field.extract(p.origin, p.dims)).collect()
    }

    /// Reassemble a global field from per-partition bricks (id order).
    pub fn assemble<T: Scalar>(&self, bricks: &[Field3<T>]) -> Result<Field3<T>, GridError> {
        if bricks.len() != self.num_partitions() {
            return Err(GridError::PartitionOutOfRange {
                id: bricks.len(),
                count: self.num_partitions(),
            });
        }
        let mut out = Field3::zeros(self.domain);
        for (p, b) in self.iter().zip(bricks) {
            if b.dims() != self.brick {
                return Err(GridError::ShapeMismatch { expected: self.brick.len(), got: b.len() });
            }
            out.insert(p.origin, b);
        }
        Ok(out)
    }

    /// Map `f` over every partition brick in parallel, preserving id order.
    ///
    /// This is the in-process analogue of "each MPI rank works on its own
    /// brick": rayon distributes bricks over cores.
    pub fn par_map<T, R, F>(&self, field: &Field3<T>, f: F) -> Vec<R>
    where
        T: Scalar,
        R: Send,
        F: Fn(Partition, &Field3<T>) -> R + Sync,
    {
        assert_eq!(field.dims(), self.domain, "field does not match decomposition domain");
        let parts: Vec<Partition> = self.iter().collect();
        parts
            .into_par_iter()
            .map(|p| {
                let brick = field.extract(p.origin, p.dims);
                f(p, &brick)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubic_decomposition_counts() {
        let d = Decomposition::cubic(64, 4).unwrap();
        assert_eq!(d.num_partitions(), 64);
        assert_eq!(d.brick(), Dim3::cube(16));
    }

    #[test]
    fn rejects_non_tiling() {
        assert!(Decomposition::new(Dim3::cube(10), Dim3::cube(3)).is_err());
        assert!(Decomposition::cubic(10, 3).is_err());
        assert!(Decomposition::cubic(10, 0).is_err());
    }

    #[test]
    fn partition_origins_cover_domain() {
        let d = Decomposition::new(Dim3::new(8, 4, 4), Dim3::new(4, 2, 4)).unwrap();
        assert_eq!(d.num_partitions(), 4);
        let origins: Vec<_> = d.iter().map(|p| p.origin).collect();
        assert!(origins.contains(&(0, 0, 0)));
        assert!(origins.contains(&(4, 2, 0)));
    }

    #[test]
    fn partition_of_cell_is_consistent() {
        let d = Decomposition::cubic(16, 4).unwrap();
        for p in d.iter() {
            let (ox, oy, oz) = p.origin;
            assert_eq!(d.partition_of_cell(ox, oy, oz), p.id);
            assert_eq!(
                d.partition_of_cell(ox + p.dims.nx - 1, oy + p.dims.ny - 1, oz + p.dims.nz - 1),
                p.id
            );
        }
    }

    #[test]
    fn split_assemble_roundtrip() {
        let dec = Decomposition::cubic(8, 2).unwrap();
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| (x * 64 + y * 8 + z) as f32);
        let bricks = dec.split(&f);
        assert_eq!(bricks.len(), 8);
        let g = dec.assemble(&bricks).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn assemble_rejects_wrong_count() {
        let dec = Decomposition::cubic(8, 2).unwrap();
        let bricks = vec![Field3::<f32>::zeros(Dim3::cube(4)); 7];
        assert!(dec.assemble(&bricks).is_err());
    }

    #[test]
    fn par_map_preserves_order() {
        let dec = Decomposition::cubic(8, 2).unwrap();
        let f = Field3::from_fn(Dim3::cube(8), |x, _, _| x as f64);
        let ids = dec.par_map(&f, |p, _| p.id);
        assert_eq!(ids, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn par_map_bricks_match_extract() {
        let dec = Decomposition::cubic(8, 2).unwrap();
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| (x + 2 * y + 3 * z) as f64);
        let sums = dec.par_map(&f, |_, b| b.as_slice().iter().sum::<f64>());
        let serial: Vec<f64> =
            dec.split(&f).iter().map(|b| b.as_slice().iter().sum::<f64>()).collect();
        assert_eq!(sums, serial);
    }
}
