//! Self-describing binary field format.
//!
//! The Nyx reference datasets ship as HDF5; we substitute a minimal
//! little-endian container ("GLB1") so snapshots can be persisted and
//! reloaded without external dependencies. The layout is:
//!
//! ```text
//! magic  b"GLB1"          4 bytes
//! tag    u8 length + utf8 scalar tag ("f32" / "f64")
//! dims   3 × u64          nx, ny, nz
//! data   n × scalar (LE)
//! ```

use crate::{Dim3, Field3, GridError, Scalar};
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"GLB1";

/// Serialize a field into a byte vector.
pub fn to_bytes<T: Scalar>(field: &Field3<T>) -> Vec<u8> {
    let d = field.dims();
    let mut out = Vec::with_capacity(4 + 1 + T::TAG.len() + 24 + field.len() * T::BYTES);
    out.extend_from_slice(MAGIC);
    out.push(T::TAG.len() as u8);
    out.extend_from_slice(T::TAG.as_bytes());
    for n in [d.nx, d.ny, d.nz] {
        out.extend_from_slice(&(n as u64).to_le_bytes());
    }
    for v in field.as_slice() {
        v.write_le(&mut out);
    }
    out
}

/// Deserialize a field from bytes produced by [`to_bytes`].
pub fn from_bytes<T: Scalar>(buf: &[u8]) -> Result<Field3<T>, GridError> {
    let mut pos = 0usize;
    let take = |pos: &mut usize, n: usize| -> Result<&[u8], GridError> {
        if *pos + n > buf.len() {
            return Err(GridError::Format("unexpected end of buffer".into()));
        }
        let s = &buf[*pos..*pos + n];
        *pos += n;
        Ok(s)
    };

    if take(&mut pos, 4)? != MAGIC {
        return Err(GridError::Format("bad magic (expected GLB1)".into()));
    }
    let tag_len = take(&mut pos, 1)?[0] as usize;
    let tag = std::str::from_utf8(take(&mut pos, tag_len)?)
        .map_err(|_| GridError::Format("non-utf8 scalar tag".into()))?;
    if tag != T::TAG {
        return Err(GridError::Format(format!(
            "scalar tag mismatch: file has {tag}, expected {}",
            T::TAG
        )));
    }
    let mut dims = [0usize; 3];
    for d in &mut dims {
        let b: [u8; 8] = take(&mut pos, 8)?.try_into().expect("8 bytes");
        let v = u64::from_le_bytes(b);
        if v == 0 || v > usize::MAX as u64 {
            return Err(GridError::Format("invalid dimension".into()));
        }
        *d = v as usize;
    }
    let dims = Dim3::new(dims[0], dims[1], dims[2]);
    let n = dims.len();
    let payload = take(&mut pos, n * T::BYTES)?;
    let mut data = Vec::with_capacity(n);
    for i in 0..n {
        data.push(T::read_le(&payload[i * T::BYTES..]));
    }
    Field3::from_vec(dims, data)
}

/// Write a field to a file.
pub fn save<T: Scalar>(field: &Field3<T>, path: impl AsRef<Path>) -> Result<(), GridError> {
    let mut f = std::fs::File::create(path)?;
    f.write_all(&to_bytes(field))?;
    Ok(())
}

/// Read a field from a file written by [`save`].
pub fn load<T: Scalar>(path: impl AsRef<Path>) -> Result<Field3<T>, GridError> {
    let mut f = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    f.read_to_end(&mut buf)?;
    from_bytes(&buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_roundtrip_f32() {
        let f = Field3::from_fn(Dim3::new(3, 4, 5), |x, y, z| (x * 20 + y * 5 + z) as f32);
        let bytes = to_bytes(&f);
        let g: Field3<f32> = from_bytes(&bytes).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn bytes_roundtrip_f64() {
        let f = Field3::from_fn(Dim3::cube(4), |x, y, z| (x as f64).sin() + y as f64 + z as f64);
        let g: Field3<f64> = from_bytes(&to_bytes(&f)).unwrap();
        assert_eq!(f, g);
    }

    #[test]
    fn rejects_bad_magic() {
        let f = Field3::<f32>::zeros(Dim3::cube(2));
        let mut bytes = to_bytes(&f);
        bytes[0] = b'X';
        assert!(from_bytes::<f32>(&bytes).is_err());
    }

    #[test]
    fn rejects_tag_mismatch() {
        let f = Field3::<f32>::zeros(Dim3::cube(2));
        let bytes = to_bytes(&f);
        assert!(from_bytes::<f64>(&bytes).is_err());
    }

    #[test]
    fn rejects_truncation() {
        let f = Field3::<f32>::zeros(Dim3::cube(2));
        let bytes = to_bytes(&f);
        assert!(from_bytes::<f32>(&bytes[..bytes.len() - 1]).is_err());
        assert!(from_bytes::<f32>(&bytes[..6]).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gridlab_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("field.glb");
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| (x ^ y ^ z) as f32);
        save(&f, &path).unwrap();
        let g: Field3<f32> = load(&path).unwrap();
        assert_eq!(f, g);
        std::fs::remove_file(path).ok();
    }
}
