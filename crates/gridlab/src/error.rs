//! Error type shared by the gridlab APIs.

use std::fmt;

/// Errors produced by grid construction, decomposition, and snapshot I/O.
#[derive(Debug)]
pub enum GridError {
    /// Data length does not match the stated dimensions.
    ShapeMismatch { expected: usize, got: usize },
    /// A decomposition does not tile the domain exactly.
    BadDecomposition { domain: String, brick: String },
    /// Partition index outside the decomposition.
    PartitionOutOfRange { id: usize, count: usize },
    /// Snapshot parse failure.
    Format(String),
    /// Underlying I/O failure.
    Io(std::io::Error),
}

impl fmt::Display for GridError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GridError::ShapeMismatch { expected, got } => {
                write!(f, "data length {got} does not match dimensions ({expected} cells)")
            }
            GridError::BadDecomposition { domain, brick } => {
                write!(f, "brick {brick} does not tile domain {domain}")
            }
            GridError::PartitionOutOfRange { id, count } => {
                write!(f, "partition {id} out of range (decomposition has {count})")
            }
            GridError::Format(msg) => write!(f, "snapshot format error: {msg}"),
            GridError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for GridError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GridError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GridError {
    fn from(e: std::io::Error) -> Self {
        GridError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GridError::ShapeMismatch { expected: 8, got: 7 };
        assert!(e.to_string().contains("does not match"));
        let e = GridError::PartitionOutOfRange { id: 9, count: 8 };
        assert!(e.to_string().contains("out of range"));
    }

    #[test]
    fn io_source_is_preserved() {
        use std::error::Error;
        let inner = std::io::Error::other("boom");
        let e: GridError = inner.into();
        assert!(e.source().is_some());
    }
}
