//! Owned 3-D scalar fields.

use crate::{Dim3, GridError, Scalar};

/// An owned, row-major (z fastest) 3-D scalar field.
///
/// This is the unit the compressor, the analyses and the models all operate
/// on — either a full simulation field or one per-rank partition brick.
#[derive(Debug, Clone, PartialEq)]
pub struct Field3<T: Scalar> {
    dims: Dim3,
    data: Vec<T>,
}

impl<T: Scalar> Field3<T> {
    /// Zero-filled field.
    pub fn zeros(dims: Dim3) -> Self {
        Self { dims, data: vec![T::zero(); dims.len()] }
    }

    /// Field filled with a constant.
    pub fn constant(dims: Dim3, v: T) -> Self {
        Self { dims, data: vec![v; dims.len()] }
    }

    /// Wrap an existing buffer; its length must equal `dims.len()`.
    pub fn from_vec(dims: Dim3, data: Vec<T>) -> Result<Self, GridError> {
        if data.len() != dims.len() {
            return Err(GridError::ShapeMismatch { expected: dims.len(), got: data.len() });
        }
        Ok(Self { dims, data })
    }

    /// Build by evaluating `f(x, y, z)` at every cell.
    pub fn from_fn(dims: Dim3, mut f: impl FnMut(usize, usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(dims.len());
        for x in 0..dims.nx {
            for y in 0..dims.ny {
                for z in 0..dims.nz {
                    data.push(f(x, y, z));
                }
            }
        }
        Self { dims, data }
    }

    #[inline]
    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consume the field and return the raw buffer.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    #[inline]
    pub fn get(&self, x: usize, y: usize, z: usize) -> T {
        self.data[self.dims.index(x, y, z)]
    }

    #[inline]
    pub fn set(&mut self, x: usize, y: usize, z: usize, v: T) {
        let i = self.dims.index(x, y, z);
        self.data[i] = v;
    }

    /// Apply `f` to every value in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(T) -> T) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise difference `self - other` as a new field.
    pub fn difference(&self, other: &Self) -> Result<Self, GridError> {
        if self.dims != other.dims {
            return Err(GridError::ShapeMismatch { expected: self.len(), got: other.len() });
        }
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a - b).collect();
        Ok(Self { dims: self.dims, data })
    }

    /// Maximum absolute point-wise difference against `other`.
    ///
    /// This is the quantity an ABS-mode error-bounded compressor promises to
    /// keep below the bound, so tests lean on it heavily.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.dims, other.dims, "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a.to_f64() - b.to_f64()).abs())
            .fold(0.0, f64::max)
    }

    /// Convert precision (e.g. `f32` field to `f64` for model arithmetic).
    pub fn cast<U: Scalar>(&self) -> Field3<U> {
        Field3 {
            dims: self.dims,
            data: self.data.iter().map(|v| U::from_f64(v.to_f64())).collect(),
        }
    }

    /// Copy a sub-brick starting at `origin` with extents `brick`.
    ///
    /// Panics if the brick overruns the field.
    pub fn extract(&self, origin: (usize, usize, usize), brick: Dim3) -> Field3<T> {
        let (ox, oy, oz) = origin;
        assert!(
            ox + brick.nx <= self.dims.nx
                && oy + brick.ny <= self.dims.ny
                && oz + brick.nz <= self.dims.nz,
            "brick overruns field"
        );
        let mut data = Vec::with_capacity(brick.len());
        for x in 0..brick.nx {
            for y in 0..brick.ny {
                let row_start = self.dims.index(ox + x, oy + y, oz);
                data.extend_from_slice(&self.data[row_start..row_start + brick.nz]);
            }
        }
        Field3 { dims: brick, data }
    }

    /// Write a sub-brick back at `origin` (inverse of [`Field3::extract`]).
    pub fn insert(&mut self, origin: (usize, usize, usize), brick: &Field3<T>) {
        let (ox, oy, oz) = origin;
        let b = brick.dims;
        assert!(
            ox + b.nx <= self.dims.nx && oy + b.ny <= self.dims.ny && oz + b.nz <= self.dims.nz,
            "brick overruns field"
        );
        for x in 0..b.nx {
            for y in 0..b.ny {
                let src = b.index(x, y, 0);
                let dst = self.dims.index(ox + x, oy + y, oz);
                self.data[dst..dst + b.nz].copy_from_slice(&brick.data[src..src + b.nz]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let d = Dim3::new(2, 3, 4);
        let mut f = Field3::<f32>::zeros(d);
        assert_eq!(f.len(), 24);
        f.set(1, 2, 3, 7.5);
        assert_eq!(f.get(1, 2, 3), 7.5);
        assert_eq!(f.as_slice()[d.index(1, 2, 3)], 7.5);
    }

    #[test]
    fn from_vec_checks_shape() {
        let d = Dim3::cube(2);
        assert!(Field3::from_vec(d, vec![0.0f32; 8]).is_ok());
        assert!(Field3::from_vec(d, vec![0.0f32; 7]).is_err());
    }

    #[test]
    fn from_fn_orders_z_fastest() {
        let d = Dim3::new(2, 2, 2);
        let f = Field3::from_fn(d, |x, y, z| (x * 100 + y * 10 + z) as f64);
        assert_eq!(f.as_slice(), &[0.0, 1.0, 10.0, 11.0, 100.0, 101.0, 110.0, 111.0]);
    }

    #[test]
    fn extract_insert_roundtrip() {
        let d = Dim3::cube(4);
        let f = Field3::from_fn(d, |x, y, z| (x * 16 + y * 4 + z) as f32);
        let brick = f.extract((1, 2, 0), Dim3::new(2, 2, 4));
        assert_eq!(brick.get(0, 0, 0), f.get(1, 2, 0));
        assert_eq!(brick.get(1, 1, 3), f.get(2, 3, 3));

        let mut g = Field3::<f32>::zeros(d);
        g.insert((1, 2, 0), &brick);
        assert_eq!(g.get(2, 3, 3), f.get(2, 3, 3));
        assert_eq!(g.get(0, 0, 0), 0.0);
    }

    #[test]
    fn difference_and_max_abs_diff() {
        let d = Dim3::cube(2);
        let a = Field3::constant(d, 3.0f64);
        let b = Field3::constant(d, 1.0f64);
        let diff = a.difference(&b).unwrap();
        assert!(diff.as_slice().iter().all(|&v| v == 2.0));
        assert_eq!(a.max_abs_diff(&b), 2.0);
    }

    #[test]
    fn cast_precision() {
        let d = Dim3::cube(2);
        let a = Field3::constant(d, 1.25f32);
        let b: Field3<f64> = a.cast();
        assert_eq!(b.get(1, 1, 1), 1.25);
    }

    #[test]
    #[should_panic]
    fn extract_out_of_bounds_panics() {
        let f = Field3::<f32>::zeros(Dim3::cube(4));
        let _ = f.extract((3, 0, 0), Dim3::cube(2));
    }

    #[test]
    fn map_inplace_applies() {
        let mut f = Field3::constant(Dim3::cube(2), 2.0f32);
        f.map_inplace(|v| v * v);
        assert!(f.as_slice().iter().all(|&v| v == 4.0));
    }
}
