//! Matter power spectrum shape and linear growth.
//!
//! We use a BBKS-flavoured parametric form
//! `P(k) ∝ k^ns / (1 + (k/k_t)²)²` — rising at large scales (small `k`),
//! turning over at `k_t`, and falling as `k^(ns−4)` in the UV — which gives
//! the synthetic fields the same "smooth large-scale correlation + small
//! clumps" structure the paper's per-partition variability comes from.
//! The exact transfer function is irrelevant to the compression study; what
//! matters is a scale-dependent spectrum and a monotone growth history.

use serde::{Deserialize, Serialize};

/// Parametric matter power spectrum.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerSpectrum {
    /// Primordial spectral index (≈ 1 for scale-invariant).
    pub ns: f64,
    /// Turnover wavenumber in grid-frequency units.
    pub k_turn: f64,
    /// Overall amplitude (arbitrary normalisation — fields are re-scaled to
    /// a target variance after synthesis).
    pub amplitude: f64,
    /// Gaussian small-scale cutoff `exp(−(k/k_smooth)²)` standing in for
    /// baryonic pressure smoothing: Nyx hydro fields are smooth below a
    /// few cells, which is what makes them compressible at the 27–82×
    /// ratios the paper reports. Set to `f64::INFINITY` to disable.
    pub k_smooth: f64,
}

impl Default for PowerSpectrum {
    fn default() -> Self {
        Self { ns: 0.96, k_turn: 3.0, amplitude: 1.0, k_smooth: 5.0 }
    }
}

impl PowerSpectrum {
    /// Evaluate `P(k)`; `P(0) = 0` (no DC power: overdensity has zero mean).
    pub fn eval(&self, k: f64) -> f64 {
        if k <= 0.0 {
            return 0.0;
        }
        let x = k / self.k_turn;
        let cutoff = if self.k_smooth.is_finite() {
            (-(k / self.k_smooth) * (k / self.k_smooth)).exp()
        } else {
            1.0
        };
        self.amplitude * k.powf(self.ns) / (1.0 + x * x).powi(2) * cutoff
    }

    /// `sqrt(P(k))` — the filter the GRF generator applies in k-space.
    pub fn filter(&self, k: f64) -> f64 {
        self.eval(k).sqrt()
    }
}

/// Linear growth factor for a matter-dominated universe, normalised to
/// `D(0) = 1`: `D(z) = 1 / (1 + z)`.
///
/// Snapshot series hold the random phases fixed and scale mode amplitudes
/// by `D(z)/D(z_ref)`, reproducing the paper's observation that lower
/// redshift ⇒ sharper contrast between partitions ⇒ more headroom for
/// adaptive configuration (Fig. 16).
pub fn growth_factor(z: f64) -> f64 {
    assert!(z >= 0.0, "redshift must be non-negative");
    1.0 / (1.0 + z)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spectrum_is_zero_at_dc() {
        let p = PowerSpectrum::default();
        assert_eq!(p.eval(0.0), 0.0);
        assert_eq!(p.eval(-1.0), 0.0);
    }

    #[test]
    fn spectrum_rises_then_falls() {
        let p = PowerSpectrum::default();
        let low = p.eval(0.5);
        let peak = p.eval(p.k_turn * 0.7);
        let high = p.eval(50.0);
        assert!(peak > low, "{peak} vs {low}");
        assert!(peak > high, "{peak} vs {high}");
    }

    #[test]
    fn smoothing_cuts_small_scales() {
        let smooth = PowerSpectrum::default();
        let raw = PowerSpectrum { k_smooth: f64::INFINITY, ..smooth };
        // Well above k_smooth the cutoff must bite hard.
        let k = smooth.k_smooth * 3.0;
        assert!(smooth.eval(k) < 1e-3 * raw.eval(k));
        // Well below it is untouched.
        assert!((smooth.eval(0.5) / raw.eval(0.5) - 1.0).abs() < 0.1);
    }

    #[test]
    fn uv_slope_is_ns_minus_4() {
        let p = PowerSpectrum { ns: 1.0, k_turn: 1.0, amplitude: 1.0, k_smooth: f64::INFINITY };
        let k1 = 100.0;
        let k2 = 200.0;
        let slope = (p.eval(k2) / p.eval(k1)).ln() / (k2 / k1).ln();
        assert!((slope - (1.0 - 4.0)).abs() < 0.01, "slope {slope}");
    }

    #[test]
    fn filter_is_sqrt() {
        let p = PowerSpectrum::default();
        let k = 2.7;
        assert!((p.filter(k).powi(2) - p.eval(k)).abs() < 1e-12);
    }

    #[test]
    fn growth_monotone_decreasing_in_z() {
        assert!((growth_factor(0.0) - 1.0).abs() < 1e-12);
        assert!(growth_factor(42.0) > growth_factor(54.0));
        assert!(growth_factor(54.0) > 0.0);
    }

    #[test]
    #[should_panic]
    fn negative_redshift_panics() {
        let _ = growth_factor(-0.5);
    }
}
