//! Gaussian random fields with a prescribed power spectrum.
//!
//! Synthesis is the standard FFT-filter recipe: draw white Gaussian noise
//! in real space (its spectrum is flat), transform, multiply each mode by
//! `sqrt(P(|k|))`, transform back. Because the filter is real and even in
//! `k`, Hermitian symmetry is preserved and the output is real to
//! roundoff. Phases are fully determined by the seed, so a redshift series
//! can grow amplitudes while keeping the same structures in place.

use crate::spectrum::PowerSpectrum;
use fftlite::{Complex64, Fft3};
use gridlab::{Dim3, Field3};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Signed frequency of index `j` on an `n`-point axis (grid units).
#[inline]
pub fn freq(j: usize, n: usize) -> f64 {
    if j <= n / 2 {
        j as f64
    } else {
        j as f64 - n as f64
    }
}

/// Magnitude of the wavevector at grid index `(i, j, k)`.
#[inline]
pub fn k_mag(i: usize, j: usize, k: usize, dims: Dim3) -> f64 {
    let kx = freq(i, dims.nx);
    let ky = freq(j, dims.ny);
    let kz = freq(k, dims.nz);
    (kx * kx + ky * ky + kz * kz).sqrt()
}

/// White Gaussian noise field (mean 0, variance 1), deterministic per seed.
pub fn white_noise(dims: Dim3, seed: u64) -> Field3<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let data: Vec<f64> = (0..dims.len())
        .map(|_| {
            // Box–Muller from two uniforms.
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        })
        .collect();
    Field3::from_vec(dims, data).expect("length matches dims")
}

/// The spectral modes of a GRF: white noise filtered by `sqrt(P(k))`.
///
/// Returned in k-space so callers can derive correlated quantities
/// (velocities, displaced densities) from the *same* modes.
pub fn grf_modes(dims: Dim3, spectrum: &PowerSpectrum, seed: u64) -> Vec<Complex64> {
    let noise = white_noise(dims, seed);
    let fft = Fft3::new(dims.nx, dims.ny, dims.nz);
    let mut modes: Vec<Complex64> = noise.as_slice().iter().map(|&v| Complex64::real(v)).collect();
    fft.forward(&mut modes);
    let mut idx = 0usize;
    for i in 0..dims.nx {
        for j in 0..dims.ny {
            for k in 0..dims.nz {
                let f = spectrum.filter(k_mag(i, j, k, dims));
                modes[idx] = modes[idx].scale(f);
                idx += 1;
            }
        }
    }
    modes
}

/// Real-space GRF with unit variance (modes rescaled after synthesis) and
/// zero mean.
pub fn gaussian_field(dims: Dim3, spectrum: &PowerSpectrum, seed: u64) -> Field3<f64> {
    let modes = grf_modes(dims, spectrum, seed);
    field_from_modes(dims, &modes)
}

/// Inverse-transform spectral modes and normalise to mean 0, variance 1.
pub fn field_from_modes(dims: Dim3, modes: &[Complex64]) -> Field3<f64> {
    let fft = Fft3::new(dims.nx, dims.ny, dims.nz);
    let mut buf = modes.to_vec();
    fft.inverse(&mut buf);
    let mut data: Vec<f64> = buf.iter().map(|z| z.re).collect();
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let inv_std = if var > 0.0 { 1.0 / var.sqrt() } else { 1.0 };
    for v in &mut data {
        *v = (*v - mean) * inv_std;
    }
    Field3::from_vec(dims, data).expect("length matches dims")
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::stats::summarize_field;

    #[test]
    fn freq_is_signed() {
        assert_eq!(freq(0, 8), 0.0);
        assert_eq!(freq(4, 8), 4.0);
        assert_eq!(freq(5, 8), -3.0);
        assert_eq!(freq(7, 8), -1.0);
    }

    #[test]
    fn white_noise_is_standardish() {
        let f = white_noise(Dim3::cube(16), 1);
        let s = summarize_field(&f);
        assert!(s.mean.abs() < 0.05, "mean {}", s.mean);
        assert!((s.variance - 1.0).abs() < 0.1, "var {}", s.variance);
    }

    #[test]
    fn white_noise_is_deterministic() {
        let a = white_noise(Dim3::cube(8), 7);
        let b = white_noise(Dim3::cube(8), 7);
        assert_eq!(a, b);
        let c = white_noise(Dim3::cube(8), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn gaussian_field_is_normalised() {
        let f = gaussian_field(Dim3::cube(16), &PowerSpectrum::default(), 3);
        let s = summarize_field(&f);
        assert!(s.mean.abs() < 1e-10);
        assert!((s.variance - 1.0).abs() < 1e-10);
    }

    #[test]
    fn field_is_real_valued_to_roundoff() {
        // Imaginary residue after the inverse transform must be tiny
        // relative to the field amplitude.
        let dims = Dim3::cube(8);
        let modes = grf_modes(dims, &PowerSpectrum::default(), 5);
        let fft = Fft3::new(8, 8, 8);
        let mut buf = modes.clone();
        fft.inverse(&mut buf);
        let max_im = buf.iter().map(|z| z.im.abs()).fold(0.0, f64::max);
        let max_re = buf.iter().map(|z| z.re.abs()).fold(0.0, f64::max);
        assert!(max_im < 1e-9 * max_re.max(1.0), "im {max_im} re {max_re}");
    }

    #[test]
    fn spectrum_shape_is_imprinted() {
        // Measure band power of the synthesized field: low-k band should
        // carry more power than the highest band for the default spectrum.
        let dims = Dim3::cube(32);
        let f = gaussian_field(dims, &PowerSpectrum::default(), 11);
        let fft = Fft3::new(32, 32, 32);
        let mut modes: Vec<Complex64> = f.as_slice().iter().map(|&v| Complex64::real(v)).collect();
        fft.forward(&mut modes);
        let mut low = 0.0;
        let mut nlow = 0u64;
        let mut high = 0.0;
        let mut nhigh = 0u64;
        let mut idx = 0;
        for i in 0..32 {
            for j in 0..32 {
                for k in 0..32 {
                    let km = k_mag(i, j, k, dims);
                    if km > 0.5 && km < 4.0 {
                        low += modes[idx].norm_sqr();
                        nlow += 1;
                    } else if km > 12.0 {
                        high += modes[idx].norm_sqr();
                        nhigh += 1;
                    }
                    idx += 1;
                }
            }
        }
        let low_avg = low / nlow as f64;
        let high_avg = high / nhigh as f64;
        assert!(low_avg > 10.0 * high_avg, "low {low_avg} high {high_avg}");
    }

    #[test]
    fn same_seed_different_spectra_share_phases() {
        // Fields from the same seed but different amplitudes must be highly
        // correlated — the property the redshift series relies on.
        let dims = Dim3::cube(16);
        let p1 = PowerSpectrum::default();
        let p2 = PowerSpectrum { amplitude: 5.0, ..p1 };
        let a = gaussian_field(dims, &p1, 21);
        let b = gaussian_field(dims, &p2, 21);
        let n = a.len() as f64;
        let corr: f64 =
            a.as_slice().iter().zip(b.as_slice()).map(|(&x, &y)| x * y).sum::<f64>() / n;
        assert!(corr > 0.99, "corr {corr}"); // both are unit variance
    }
}
