//! Derivation of the six Nyx fields from one set of density modes.
//!
//! | Field              | Construction                                       | Table-2 range |
//! |--------------------|----------------------------------------------------|---------------|
//! | Baryon density     | lognormal map of the GRF, mean-normalised          | (0, 1e5)      |
//! | Dark matter density| lognormal with higher bias (clumpier)              | (0, 1e4)      |
//! | Temperature        | `T ∝ ρ_b^(γ−1)` power law with lognormal scatter   | (1e2, 1e7)    |
//! | Velocity x/y/z     | Zel'dovich `v_k ∝ i·k/k²·δ_k` from the same modes  | (−1e8, 1e8)   |
//!
//! The lognormal map `ρ = ρ̄·exp(b·δ − b²σ²/2)` keeps the mean fixed at
//! `ρ̄` regardless of growth — matching the paper's note that the density
//! fields have a fixed overall mean "set by the simulation" (§4.3), while
//! the *contrast between partitions* grows as the amplitude does.

use crate::grf::{field_from_modes, freq};
use fftlite::Complex64;
use gridlab::{Dim3, Field3};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The six fields of a Nyx snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FieldKind {
    BaryonDensity,
    DarkMatterDensity,
    Temperature,
    VelocityX,
    VelocityY,
    VelocityZ,
}

impl FieldKind {
    /// All six, in the paper's order.
    pub const ALL: [FieldKind; 6] = [
        FieldKind::BaryonDensity,
        FieldKind::DarkMatterDensity,
        FieldKind::Temperature,
        FieldKind::VelocityX,
        FieldKind::VelocityY,
        FieldKind::VelocityZ,
    ];

    /// Human-readable name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            FieldKind::BaryonDensity => "baryon_density",
            FieldKind::DarkMatterDensity => "dark_matter_density",
            FieldKind::Temperature => "temperature",
            FieldKind::VelocityX => "velocity_x",
            FieldKind::VelocityY => "velocity_y",
            FieldKind::VelocityZ => "velocity_z",
        }
    }

    /// Whether the halo finder applies (density fields only; the paper runs
    /// it on baryon density).
    pub fn is_halo_field(&self) -> bool {
        matches!(self, FieldKind::BaryonDensity)
    }
}

impl std::fmt::Display for FieldKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Physical-ish constants used to map the dimensionless GRF onto Table-2
/// value ranges.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FieldParams {
    /// Mean baryon density (Table 2 range tops at 1e5; clumps reach it).
    pub rho_b_mean: f64,
    /// Mean dark-matter density.
    pub rho_dm_mean: f64,
    /// Lognormal bias for baryons.
    pub bias_b: f64,
    /// Lognormal bias for dark matter (clumpier).
    pub bias_dm: f64,
    /// Temperature normalisation at mean density.
    pub t0: f64,
    /// Temperature–density slope `γ − 1`.
    pub gamma_m1: f64,
    /// Lognormal scatter (std of log) of temperature.
    pub t_scatter: f64,
    /// Velocity amplitude scale.
    pub v_scale: f64,
}

impl Default for FieldParams {
    fn default() -> Self {
        Self {
            rho_b_mean: 40.0,
            rho_dm_mean: 30.0,
            bias_b: 1.0,
            bias_dm: 1.3,
            t0: 2.0e4,
            gamma_m1: 0.55,
            // Small: per-cell scatter is white noise the compressor cannot
            // predict; real Nyx temperature is smooth at cell scale.
            t_scatter: 0.05,
            v_scale: 2.0e7,
        }
    }
}

/// Lognormal density map with fixed mean: `ρ = ρ̄·exp(bσδ̂ − (bσ)²/2)`
/// where `δ̂` is the unit-variance GRF and `σ` the growth-scaled amplitude.
pub fn lognormal_density(delta_hat: &Field3<f64>, mean: f64, bias_sigma: f64) -> Field3<f64> {
    let correction = bias_sigma * bias_sigma / 2.0;
    let mut out = delta_hat.clone();
    out.map_inplace(|d| mean * (bias_sigma * d - correction).exp());
    out
}

/// Temperature from the density via the IGM power-law relation, with
/// deterministic lognormal scatter, clamped to the Table-2 range.
pub fn temperature_field(
    rho_b: &Field3<f64>,
    rho_mean: f64,
    params: &FieldParams,
    seed: u64,
) -> Field3<f64> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7e6d_5c4b);
    let data: Vec<f64> = rho_b
        .as_slice()
        .iter()
        .map(|&rho| {
            let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            let u2: f64 = rng.gen::<f64>();
            let g = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let t =
                params.t0 * (rho / rho_mean).powf(params.gamma_m1) * (params.t_scatter * g).exp();
            t.clamp(1.0e2, 1.0e7)
        })
        .collect();
    Field3::from_vec(rho_b.dims(), data).expect("same dims")
}

/// Zel'dovich velocity components from the density modes:
/// `v_i(k) = i·k_i/k²·δ(k)`, inverse-transformed and scaled.
///
/// Returns `(vx, vy, vz)`, each normalised to unit variance then scaled by
/// `v_scale` (so the Table-2 `±1e8` range holds with σ = 2e7 at ~4σ tails).
pub fn zeldovich_velocities(
    dims: Dim3,
    modes: &[Complex64],
    v_scale: f64,
) -> (Field3<f64>, Field3<f64>, Field3<f64>) {
    let component = |axis: usize| -> Field3<f64> {
        let mut vk = vec![Complex64::ZERO; modes.len()];
        let mut idx = 0usize;
        for i in 0..dims.nx {
            for j in 0..dims.ny {
                for k in 0..dims.nz {
                    let kv = [freq(i, dims.nx), freq(j, dims.ny), freq(k, dims.nz)];
                    let k2: f64 = kv.iter().map(|v| v * v).sum();
                    if k2 > 0.0 {
                        // i·k_a/k² · δ_k  (multiplication by i rotates re/im)
                        let h = kv[axis] / k2;
                        let d = modes[idx];
                        vk[idx] = Complex64::new(-h * d.im, h * d.re);
                    }
                    idx += 1;
                }
            }
        }
        let mut f = field_from_modes(dims, &vk);
        f.map_inplace(|v| v * v_scale);
        f
    };
    (component(0), component(1), component(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grf::{gaussian_field, grf_modes};
    use crate::spectrum::PowerSpectrum;
    use gridlab::stats::summarize_field;

    fn delta(n: usize, seed: u64) -> Field3<f64> {
        gaussian_field(Dim3::cube(n), &PowerSpectrum::default(), seed)
    }

    #[test]
    fn field_kind_enumeration() {
        assert_eq!(FieldKind::ALL.len(), 6);
        assert!(FieldKind::BaryonDensity.is_halo_field());
        assert!(!FieldKind::Temperature.is_halo_field());
        assert_eq!(FieldKind::VelocityX.name(), "velocity_x");
    }

    #[test]
    fn lognormal_preserves_mean() {
        let d = delta(16, 2);
        for sigma in [0.5, 1.0, 2.0] {
            let rho = lognormal_density(&d, 40.0, sigma);
            let s = summarize_field(&rho);
            // E[exp(σδ − σ²/2)] = 1 for Gaussian δ; sample error shrinks
            // with volume but lognormal tails are heavy, allow 15%.
            assert!((s.mean - 40.0).abs() < 6.0, "sigma {sigma}: mean {}", s.mean);
            assert!(s.min > 0.0, "density must be positive");
        }
    }

    #[test]
    fn higher_amplitude_is_clumpier() {
        let d = delta(16, 3);
        let lo = lognormal_density(&d, 40.0, 0.5);
        let hi = lognormal_density(&d, 40.0, 2.0);
        let s_lo = summarize_field(&lo);
        let s_hi = summarize_field(&hi);
        assert!(s_hi.max > s_lo.max);
        assert!(s_hi.variance > s_lo.variance);
    }

    #[test]
    fn temperature_follows_density_power_law() {
        let d = delta(12, 4);
        let params = FieldParams { t_scatter: 0.0, ..FieldParams::default() };
        let rho = lognormal_density(&d, params.rho_b_mean, 1.0);
        let t = temperature_field(&rho, params.rho_b_mean, &params, 9);
        // With zero scatter T is an exact power law of ρ.
        for (r, tt) in rho.as_slice().iter().zip(t.as_slice()) {
            let expect =
                (params.t0 * (r / params.rho_b_mean).powf(params.gamma_m1)).clamp(1e2, 1e7);
            assert!((tt - expect).abs() < 1e-6 * expect, "{tt} vs {expect}");
        }
    }

    #[test]
    fn temperature_respects_table2_range() {
        let d = delta(12, 5);
        let params = FieldParams::default();
        let rho = lognormal_density(&d, params.rho_b_mean, 3.0);
        let t = temperature_field(&rho, params.rho_b_mean, &params, 10);
        let s = summarize_field(&t);
        assert!(s.min >= 1.0e2 && s.max <= 1.0e7);
    }

    #[test]
    fn temperature_scatter_is_deterministic() {
        let d = delta(8, 6);
        let params = FieldParams::default();
        let rho = lognormal_density(&d, params.rho_b_mean, 1.0);
        let a = temperature_field(&rho, params.rho_b_mean, &params, 1);
        let b = temperature_field(&rho, params.rho_b_mean, &params, 1);
        assert_eq!(a, b);
    }

    #[test]
    fn velocities_are_zero_mean_scaled() {
        let dims = Dim3::cube(16);
        let modes = grf_modes(dims, &PowerSpectrum::default(), 8);
        let (vx, vy, vz) = zeldovich_velocities(dims, &modes, 2.0e7);
        for v in [&vx, &vy, &vz] {
            let s = summarize_field(v);
            assert!(s.mean.abs() < 1e-4 * 2.0e7);
            assert!((s.std_dev() - 2.0e7).abs() < 1e-3 * 2.0e7);
            assert!(s.min > -1.0e8 && s.max < 1.0e8, "range {} {}", s.min, s.max);
        }
    }

    #[test]
    fn velocity_components_differ() {
        let dims = Dim3::cube(8);
        let modes = grf_modes(dims, &PowerSpectrum::default(), 12);
        let (vx, vy, _) = zeldovich_velocities(dims, &modes, 1.0);
        assert_ne!(vx, vy);
    }

    #[test]
    fn velocities_are_smoother_than_density() {
        // v ∝ δ_k/k suppresses high frequencies, so neighbouring-cell
        // differences (relative to field std) are smaller for velocity.
        let dims = Dim3::cube(16);
        let modes = grf_modes(dims, &PowerSpectrum::default(), 13);
        let d = field_from_modes(dims, &modes);
        let (vx, _, _) = zeldovich_velocities(dims, &modes, 1.0);
        let roughness = |f: &Field3<f64>| {
            let mut acc = 0.0;
            let mut cnt = 0u64;
            for x in 0..dims.nx {
                for y in 0..dims.ny {
                    for z in 1..dims.nz {
                        let dd = f.get(x, y, z) - f.get(x, y, z - 1);
                        acc += dd * dd;
                        cnt += 1;
                    }
                }
            }
            (acc / cnt as f64).sqrt() / summarize_field(f).std_dev()
        };
        assert!(roughness(&vx) < roughness(&d));
    }
}
