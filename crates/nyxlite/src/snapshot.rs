//! Snapshot container and redshift-series generation.

use crate::fields::{
    lognormal_density, temperature_field, zeldovich_velocities, FieldKind, FieldParams,
};
use crate::grf::{field_from_modes, grf_modes};
use crate::spectrum::{growth_factor, PowerSpectrum};
use gridlab::{Dim3, Field3};
use serde::{Deserialize, Serialize};

/// Generator configuration for a synthetic Nyx run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NyxConfig {
    /// Grid cells per axis (cubic domain).
    pub n: usize,
    /// Master seed: fixes the mode phases for the whole run.
    pub seed: u64,
    /// Power-spectrum shape.
    pub spectrum: PowerSpectrum,
    /// Field derivation parameters.
    pub params: FieldParams,
    /// Density-perturbation amplitude σ at the reference redshift.
    pub sigma_ref: f64,
    /// Reference redshift the amplitude is quoted at.
    pub z_ref: f64,
}

impl NyxConfig {
    /// A sensible default run at the given resolution.
    pub fn new(n: usize, seed: u64) -> Self {
        Self {
            n,
            seed,
            spectrum: PowerSpectrum::default(),
            params: FieldParams::default(),
            // σ = 2.0 at z = 42 gives the pronounced void/cluster contrast
            // (and the 4–8× partition compressibility spread) of late-time
            // Nyx data, while the lognormal map keeps densities in the
            // Table-2 range.
            sigma_ref: 2.0,
            z_ref: 42.0,
        }
    }

    /// Perturbation amplitude at redshift `z`, scaled by linear growth.
    pub fn sigma_at(&self, z: f64) -> f64 {
        self.sigma_ref * growth_factor(z) / growth_factor(self.z_ref)
    }

    /// Generate the snapshot at redshift `z`.
    ///
    /// Phases are seed-locked: snapshots of the same config at different
    /// redshifts contain the *same* structures at different contrast, which
    /// is what makes the paper's static-vs-adaptive redshift experiment
    /// (Fig. 16) meaningful.
    pub fn generate(&self, z: f64) -> Snapshot {
        let dims = Dim3::cube(self.n);
        let sigma = self.sigma_at(z);
        let p = &self.params;

        let modes = grf_modes(dims, &self.spectrum, self.seed);
        let delta_hat = field_from_modes(dims, &modes);

        let rho_b = lognormal_density(&delta_hat, p.rho_b_mean, p.bias_b * sigma);
        let rho_dm = lognormal_density(&delta_hat, p.rho_dm_mean, p.bias_dm * sigma);
        let temp = temperature_field(&rho_b, p.rho_b_mean, p, self.seed);
        // Velocity amplitude also grows with D(z) (linear theory: v ∝ D·f).
        let (vx, vy, vz) = zeldovich_velocities(dims, &modes, p.v_scale * sigma / self.sigma_ref);

        Snapshot {
            redshift: z,
            dims,
            baryon_density: rho_b.cast(),
            dark_matter_density: rho_dm.cast(),
            temperature: temp.cast(),
            velocity_x: vx.cast(),
            velocity_y: vy.cast(),
            velocity_z: vz.cast(),
        }
    }

    /// Generate a snapshot series over the given redshifts.
    pub fn series(&self, redshifts: &[f64]) -> Vec<Snapshot> {
        redshifts.iter().map(|&z| self.generate(z)).collect()
    }
}

/// One simulation dump: six `f32` fields on a shared grid.
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub redshift: f64,
    pub dims: Dim3,
    pub baryon_density: Field3<f32>,
    pub dark_matter_density: Field3<f32>,
    pub temperature: Field3<f32>,
    pub velocity_x: Field3<f32>,
    pub velocity_y: Field3<f32>,
    pub velocity_z: Field3<f32>,
}

impl Snapshot {
    /// Access a field by kind.
    pub fn field(&self, kind: FieldKind) -> &Field3<f32> {
        match kind {
            FieldKind::BaryonDensity => &self.baryon_density,
            FieldKind::DarkMatterDensity => &self.dark_matter_density,
            FieldKind::Temperature => &self.temperature,
            FieldKind::VelocityX => &self.velocity_x,
            FieldKind::VelocityY => &self.velocity_y,
            FieldKind::VelocityZ => &self.velocity_z,
        }
    }

    /// Iterate `(kind, field)` over all six fields.
    pub fn fields(&self) -> impl Iterator<Item = (FieldKind, &Field3<f32>)> {
        FieldKind::ALL.iter().map(move |&k| (k, self.field(k)))
    }

    /// Uncompressed size of the snapshot in bytes.
    pub fn total_bytes(&self) -> usize {
        6 * self.dims.len() * std::mem::size_of::<f32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gridlab::stats::summarize_field;

    #[test]
    fn generate_produces_six_consistent_fields() {
        let snap = NyxConfig::new(16, 42).generate(42.0);
        assert_eq!(snap.dims, Dim3::cube(16));
        for (kind, f) in snap.fields() {
            assert_eq!(f.dims(), snap.dims, "{kind}");
            assert!(f.as_slice().iter().all(|v| v.is_finite()), "{kind}");
        }
        assert_eq!(snap.total_bytes(), 6 * 16 * 16 * 16 * 4);
    }

    #[test]
    fn value_ranges_match_table2() {
        let snap = NyxConfig::new(16, 7).generate(42.0);
        let sb = summarize_field(&snap.baryon_density);
        assert!(sb.min > 0.0 && sb.max < 1.0e5, "baryon {:?}", (sb.min, sb.max));
        let sdm = summarize_field(&snap.dark_matter_density);
        assert!(sdm.min > 0.0 && sdm.max < 1.0e4, "dm {:?}", (sdm.min, sdm.max));
        let st = summarize_field(&snap.temperature);
        assert!(st.min >= 1.0e2 && st.max <= 1.0e7, "temp {:?}", (st.min, st.max));
        for v in [&snap.velocity_x, &snap.velocity_y, &snap.velocity_z] {
            let sv = summarize_field(v);
            assert!(sv.min > -1.0e8 && sv.max < 1.0e8, "vel {:?}", (sv.min, sv.max));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = NyxConfig::new(8, 5).generate(50.0);
        let b = NyxConfig::new(8, 5).generate(50.0);
        assert_eq!(a.baryon_density, b.baryon_density);
        assert_eq!(a.velocity_z, b.velocity_z);
        let c = NyxConfig::new(8, 6).generate(50.0);
        assert_ne!(a.baryon_density, c.baryon_density);
    }

    #[test]
    fn lower_redshift_has_more_contrast() {
        let cfg = NyxConfig::new(16, 11);
        let early = cfg.generate(54.0);
        let late = cfg.generate(42.0);
        let ve = summarize_field(&early.baryon_density).variance;
        let vl = summarize_field(&late.baryon_density).variance;
        assert!(vl > ve, "late {vl} early {ve}");
    }

    #[test]
    fn series_shares_structures() {
        let cfg = NyxConfig::new(8, 3);
        let snaps = cfg.series(&[54.0, 48.0, 42.0]);
        assert_eq!(snaps.len(), 3);
        // Same phases: density maxima should be at the same cell.
        let argmax = |f: &Field3<f32>| {
            f.as_slice()
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty")
        };
        let m0 = argmax(&snaps[0].baryon_density);
        let m2 = argmax(&snaps[2].baryon_density);
        assert_eq!(m0, m2);
    }

    #[test]
    fn sigma_scales_with_growth() {
        let cfg = NyxConfig::new(8, 1);
        assert!((cfg.sigma_at(cfg.z_ref) - cfg.sigma_ref).abs() < 1e-12);
        assert!(cfg.sigma_at(54.0) < cfg.sigma_ref);
    }

    #[test]
    fn dark_matter_is_clumpier_than_baryons() {
        let snap = NyxConfig::new(16, 9).generate(42.0);
        let sb = summarize_field(&snap.baryon_density);
        let sdm = summarize_field(&snap.dark_matter_density);
        // Higher bias ⇒ larger ratio of max to mean.
        assert!(sdm.max / sdm.mean > sb.max / sb.mean);
    }
}
