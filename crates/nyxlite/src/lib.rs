//! # nyxlite — synthetic Nyx-like cosmology snapshots
//!
//! The paper evaluates on Nyx simulation dumps (512³–2048³ grids, six
//! fields, HDF5) that are not redistributable. This crate builds the
//! closest synthetic equivalent (see DESIGN.md substitutions):
//!
//! * [`spectrum`] — a BBKS-flavoured matter power spectrum `P(k)` and a
//!   matter-dominated growth factor `D(z)`, so snapshots evolve the way the
//!   paper's redshift series does (Figs. 16/17: structure sharpens and
//!   contrast grows as `z` drops),
//! * [`grf`] — Gaussian random fields with a prescribed spectrum, generated
//!   by FFT-filtering white noise (deterministic per seed),
//! * [`fields`] — the six Nyx fields derived from one underlying density
//!   perturbation: lognormal baryon & dark-matter density (dense clumps ⇒
//!   halos), a power-law temperature–density relation with scatter, and
//!   Zel'dovich velocities from the same modes,
//! * [`snapshot`] — the `Snapshot` container (all six fields + metadata)
//!   and redshift-series generation with frozen phases.
//!
//! Value ranges follow the paper's Table 2 (baryon density `(0, 1e5)`,
//! temperature `(1e2, 1e7)`, velocity `(−1e8, 1e8)`, …).

pub mod fields;
pub mod grf;
pub mod snapshot;
pub mod spectrum;

pub use fields::FieldKind;
pub use snapshot::{NyxConfig, Snapshot};
pub use spectrum::{growth_factor, PowerSpectrum};
