//! LZSS byte-oriented lossless codec.
//!
//! SZ finishes with a general-purpose lossless pass (zstd/gzip in the C
//! implementation). We implement LZSS with a hash-chain matcher: literals
//! and (distance, length) back-references, flagged in groups of eight. It
//! is applied to container sections where redundancy survives the entropy
//! stage (headers, varint side-channels, verbatim values).
//!
//! Format: `u64` original length, then groups of a flag byte (bit i set ⇒
//! item i is a match) followed by 8 items; a literal is one byte, a match
//! is `u16` distance (1-based) + `u8` length (MIN_MATCH-based).

const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = MIN_MATCH + 255;
const WINDOW: usize = 65_535;
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compress `input`; always succeeds (worst case grows by ~1/8 + 9 bytes).
pub fn lzss_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u64).to_le_bytes());

    let mut head = vec![usize::MAX; 1 << HASH_BITS];
    let mut prev = vec![usize::MAX; input.len()];

    let mut flags_pos = usize::MAX;
    let mut flag_bit = 8u8;
    let push_flag =
        |out: &mut Vec<u8>, is_match: bool, flags_pos: &mut usize, flag_bit: &mut u8| {
            if *flag_bit == 8 {
                out.push(0);
                *flags_pos = out.len() - 1;
                *flag_bit = 0;
            }
            if is_match {
                out[*flags_pos] |= 1 << *flag_bit;
            }
            *flag_bit += 1;
        };

    let mut i = 0;
    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash4(input, i);
            let mut candidate = head[h];
            let mut chain = 0;
            while candidate != usize::MAX && i - candidate <= WINDOW && chain < 32 {
                let max_len = (input.len() - i).min(MAX_MATCH);
                let mut l = 0;
                while l < max_len && input[candidate + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - candidate;
                    if l == max_len {
                        break;
                    }
                }
                candidate = prev[candidate];
                chain += 1;
            }
            // Insert current position into the chain.
            prev[i] = head[h];
            head[h] = i;
        }

        if best_len >= MIN_MATCH {
            push_flag(&mut out, true, &mut flags_pos, &mut flag_bit);
            out.extend_from_slice(&(best_dist as u16).to_le_bytes());
            out.push((best_len - MIN_MATCH) as u8);
            // Register skipped positions so later matches can reference them.
            let end = (i + best_len).min(input.len().saturating_sub(MIN_MATCH - 1));
            #[allow(clippy::needless_range_loop)] // j indexes prev, head, and input together
            for j in (i + 1)..end {
                let h = hash4(input, j);
                prev[j] = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            push_flag(&mut out, false, &mut flags_pos, &mut flag_bit);
            out.push(input[i]);
            i += 1;
        }
    }
    out
}

/// Errors from [`lzss_decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum LzssError {
    Truncated,
    BadReference,
}

impl std::fmt::Display for LzssError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LzssError::Truncated => write!(f, "LZSS stream truncated"),
            LzssError::BadReference => write!(f, "LZSS back-reference out of range"),
        }
    }
}

impl std::error::Error for LzssError {}

/// Decompress a stream produced by [`lzss_compress`].
pub fn lzss_decompress(input: &[u8]) -> Result<Vec<u8>, LzssError> {
    if input.len() < 8 {
        return Err(LzssError::Truncated);
    }
    let n = u64::from_le_bytes(input[..8].try_into().expect("8 bytes")) as usize;
    let mut out = Vec::with_capacity(n);
    let mut pos = 8usize;
    let mut flags = 0u8;
    let mut flag_bit = 8u8;
    while out.len() < n {
        if flag_bit == 8 {
            flags = *input.get(pos).ok_or(LzssError::Truncated)?;
            pos += 1;
            flag_bit = 0;
        }
        let is_match = flags & (1 << flag_bit) != 0;
        flag_bit += 1;
        if is_match {
            if pos + 3 > input.len() {
                return Err(LzssError::Truncated);
            }
            let dist =
                u16::from_le_bytes(input[pos..pos + 2].try_into().expect("2 bytes")) as usize;
            let len = input[pos + 2] as usize + MIN_MATCH;
            pos += 3;
            if dist == 0 || dist > out.len() {
                return Err(LzssError::BadReference);
            }
            let start = out.len() - dist;
            for j in 0..len {
                let b = out[start + j];
                out.push(b);
            }
        } else {
            let b = *input.get(pos).ok_or(LzssError::Truncated)?;
            pos += 1;
            out.push(b);
        }
    }
    out.truncate(n);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = lzss_compress(data);
        let d = lzss_decompress(&c).unwrap();
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
    }

    #[test]
    fn repetitive_compresses_well() {
        let data: Vec<u8> = b"abcdefgh".iter().cycle().take(8000).copied().collect();
        let c = lzss_compress(&data);
        assert!(c.len() < data.len() / 10, "{} vs {}", c.len(), data.len());
        assert_eq!(lzss_decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_grows_bounded() {
        let mut state = 9u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        let c = lzss_compress(&data);
        assert!(c.len() <= data.len() + data.len() / 8 + 16);
        assert_eq!(lzss_decompress(&c).unwrap(), data);
    }

    #[test]
    fn overlapping_match_rle_style() {
        // Classic LZ trick: run of a single byte uses distance 1.
        let data = vec![7u8; 1000];
        let c = lzss_compress(&data);
        assert!(c.len() < 40);
        assert_eq!(lzss_decompress(&c).unwrap(), data);
    }

    #[test]
    fn structured_binary_roundtrip() {
        let mut data = Vec::new();
        for i in 0..500u32 {
            data.extend_from_slice(&(i / 7).to_le_bytes());
        }
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_errors() {
        let c = lzss_compress(b"hello world hello world hello world");
        assert_eq!(lzss_decompress(&c[..4]), Err(LzssError::Truncated));
        assert!(lzss_decompress(&c[..c.len() - 1]).is_err());
    }

    #[test]
    fn corrupt_reference_errors() {
        // Hand-craft: length 4, one match item with distance 9 but no output yet.
        let mut s = Vec::new();
        s.extend_from_slice(&4u64.to_le_bytes());
        s.push(0b0000_0001); // first item is a match
        s.extend_from_slice(&9u16.to_le_bytes());
        s.push(0);
        assert_eq!(lzss_decompress(&s), Err(LzssError::BadReference));
    }

    #[test]
    fn long_input_many_windows() {
        let mut data = Vec::new();
        for i in 0..200_000u32 {
            data.push((i % 251) as u8);
        }
        roundtrip(&data);
    }
}
