//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ applies a customized Huffman stage to its quantisation codes; we do
//! the same. Code assignment is *canonical*: after computing optimal code
//! lengths from the symbol frequencies, codes are assigned in
//! (length, symbol) order. Only `(symbol, length)` pairs need to be stored
//! in the container, and decoding walks the lengths numerically without
//! materialising a tree.
//!
//! ## Hot-path layout
//!
//! Quantisation codes are bounded by `2·radius` and cluster tightly around
//! the bias, so the encoder keys a **dense table** by `symbol − min_symbol`
//! instead of hashing every symbol: one bounds check + one indexed load per
//! encoded symbol. Symbols far outside the cluster (in practice only the
//! RLE `RUN_MARKER`) fall back to a tiny linear-scanned side table. The
//! decoder front-loads a `(1 << PEEK_BITS)`-entry prefix LUT: one peek
//! resolves any codeword of ≤ [`PEEK_BITS`] bits in a single lookup, and
//! only longer codewords take the canonical `first_code`/`first_index`
//! comparison walk.

use crate::bitstream::{BitReader, BitWriter};
use std::collections::BinaryHeap;
use std::collections::HashMap;

/// Codewords at most this long resolve through the decoder's prefix LUT.
const PEEK_BITS: u8 = 12;

/// Widest `symbol − min_symbol` span the dense encode table will cover
/// (2× the default-radius code space). Wider spans — only reachable via
/// adversarial containers — go to the sparse side table instead of
/// ballooning the allocation.
const DENSE_SPAN: u32 = 1 << 17;

/// Errors from Huffman encode/decode.
#[derive(Debug, PartialEq, Eq)]
pub enum HuffmanError {
    /// The code table is empty but symbols were requested.
    EmptyTable,
    /// The bit stream ended mid-codeword or held an unknown codeword.
    CorruptStream,
    /// A symbol outside the table was passed to the encoder.
    UnknownSymbol(u32),
}

impl std::fmt::Display for HuffmanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HuffmanError::EmptyTable => write!(f, "empty Huffman table"),
            HuffmanError::CorruptStream => write!(f, "corrupt Huffman bit stream"),
            HuffmanError::UnknownSymbol(s) => write!(f, "symbol {s} not in Huffman table"),
        }
    }
}

impl std::error::Error for HuffmanError {}

/// Compute optimal code lengths from `(symbol, count)` pairs sorted by
/// symbol (strictly increasing, counts non-zero) via the standard heap
/// Huffman construction.
///
/// Returns `(symbol, length)` pairs for every symbol. Single-symbol
/// alphabets get length 1. This is the allocation-lean entry point the
/// compressor's dense frequency counting feeds directly.
pub fn code_lengths_sorted(freqs: &[(u32, u64)]) -> Vec<(u32, u8)> {
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        tie: u32, // deterministic tie-break
        kind: NodeKind,
    }
    #[derive(PartialEq, Eq)]
    enum NodeKind {
        Leaf(u32),
        Internal(Box<Node>, Box<Node>),
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // BinaryHeap is a max-heap; invert for min-heap behaviour.
            other.weight.cmp(&self.weight).then(other.tie.cmp(&self.tie))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    debug_assert!(freqs.windows(2).all(|w| w[0].0 < w[1].0), "freqs sorted by symbol");
    if freqs.is_empty() {
        return Vec::new();
    }
    if freqs.len() == 1 {
        return vec![(freqs[0].0, 1)];
    }

    let mut heap: BinaryHeap<Node> =
        freqs.iter().map(|&(s, c)| Node { weight: c, tie: s, kind: NodeKind::Leaf(s) }).collect();
    let mut tie = u32::MAX;
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        tie = tie.wrapping_sub(1);
        heap.push(Node {
            weight: a.weight + b.weight,
            tie,
            kind: NodeKind::Internal(Box::new(a), Box::new(b)),
        });
    }
    let root = heap.pop().expect("non-empty heap");

    let mut out = Vec::with_capacity(freqs.len());
    // Iterative DFS to avoid recursion depth on degenerate distributions.
    let mut stack = vec![(root, 0u8)];
    while let Some((node, depth)) = stack.pop() {
        match node.kind {
            NodeKind::Leaf(s) => out.push((s, depth.max(1))),
            NodeKind::Internal(a, b) => {
                stack.push((*a, depth + 1));
                stack.push((*b, depth + 1));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Compute optimal code lengths for `freqs` (symbol → count).
///
/// Convenience wrapper over [`code_lengths_sorted`] for map-shaped callers.
pub fn code_lengths(freqs: &HashMap<u32, u64>) -> Vec<(u32, u8)> {
    let mut pairs: Vec<(u32, u64)> = freqs.iter().map(|(&s, &c)| (s, c)).collect();
    pairs.sort_unstable();
    code_lengths_sorted(&pairs)
}

/// A canonical Huffman code book (encoder + decoder state).
#[derive(Debug, Clone)]
pub struct CodeBook {
    /// (symbol, length) sorted by (length, symbol) — canonical order.
    entries: Vec<(u32, u8)>,
    /// Dense encode table: `(code, len)` at index `symbol − dense_base`;
    /// `len == 0` marks an absent symbol.
    dense: Vec<(u64, u8)>,
    dense_base: u32,
    /// Symbols outside the dense span (`(symbol, code, len)`), linear-scanned.
    sparse: Vec<(u32, u64, u8)>,
    max_len: u8,
    /// For each length L: (first_code[L], index of first symbol of length L).
    first_code: Vec<u64>,
    first_index: Vec<usize>,
    /// Prefix LUT: `(symbol, len)` for every `peek`-bit window whose prefix
    /// is a codeword of length ≤ `peek`; `len == 0` marks "longer code".
    lut: Vec<(u32, u8)>,
    peek: u8,
}

impl CodeBook {
    /// Build a canonical book from `(symbol, length)` pairs.
    pub fn from_lengths(mut lengths: Vec<(u32, u8)>) -> Self {
        lengths.sort_unstable_by_key(|&(s, l)| (l, s));
        let max_len = lengths.last().map(|&(_, l)| l).unwrap_or(0);
        let mut first_code = vec![0u64; max_len as usize + 2];
        let mut first_index = vec![0usize; max_len as usize + 2];

        let dense_base = lengths.iter().map(|&(s, _)| s).min().unwrap_or(0);
        let dense_len = lengths
            .iter()
            .map(|&(s, _)| s - dense_base)
            .filter(|&off| off < DENSE_SPAN)
            .max()
            .map(|off| off as usize + 1)
            .unwrap_or(0);
        let mut dense = vec![(0u64, 0u8); dense_len];
        let mut sparse = Vec::new();

        let peek = max_len.min(PEEK_BITS);
        let mut lut = vec![(0u32, 0u8); if max_len == 0 { 0 } else { 1usize << peek }];

        let mut code = 0u64;
        let mut prev_len = 0u8;
        for (i, &(sym, len)) in lengths.iter().enumerate() {
            code <<= len - prev_len;
            if prev_len != len {
                for l in (prev_len + 1)..=len {
                    first_code[l as usize] = code;
                    first_index[l as usize] = i;
                }
                // first_code for this exact length is the current code.
                first_code[len as usize] = code;
                first_index[len as usize] = i;
            }
            let off = sym - dense_base;
            if off < DENSE_SPAN {
                dense[off as usize] = (code, len);
            } else {
                sparse.push((sym, code, len));
            }
            if len <= peek {
                // Clamp: Kraft-violating tables (reachable only through
                // corrupt containers) could otherwise overrun the LUT.
                let lo = ((code << (peek - len)) as usize).min(lut.len());
                let hi = (((code + 1) << (peek - len)) as usize).min(lut.len());
                for slot in &mut lut[lo..hi] {
                    *slot = (sym, len);
                }
            }
            code += 1;
            prev_len = len;
        }
        Self {
            entries: lengths,
            dense,
            dense_base,
            sparse,
            max_len,
            first_code,
            first_index,
            lut,
            peek,
        }
    }

    /// Build directly from `(symbol, count)` pairs sorted by symbol.
    pub fn from_sorted_freqs(freqs: &[(u32, u64)]) -> Self {
        Self::from_lengths(code_lengths_sorted(freqs))
    }

    /// Build directly from symbol frequencies.
    pub fn from_freqs(freqs: &HashMap<u32, u64>) -> Self {
        Self::from_lengths(code_lengths(freqs))
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The canonical `(symbol, length)` table (for container serialization).
    pub fn entries(&self) -> &[(u32, u8)] {
        &self.entries
    }

    /// `(code, length)` of `sym`, if present.
    #[inline]
    fn lookup(&self, sym: u32) -> Option<(u64, u8)> {
        let off = sym.wrapping_sub(self.dense_base);
        if (off as usize) < self.dense.len() {
            let (code, len) = self.dense[off as usize];
            if len != 0 {
                return Some((code, len));
            }
        }
        self.sparse.iter().find(|&&(s, _, _)| s == sym).map(|&(_, c, l)| (c, l))
    }

    /// Code length of `sym`, if present.
    pub fn length_of(&self, sym: u32) -> Option<u8> {
        self.lookup(sym).map(|(_, l)| l)
    }

    /// Encode `symbols` into `w`.
    ///
    /// Codewords are concatenated MSB-first, so consecutive symbols pack
    /// into one local accumulator and flush together — typically several
    /// symbols per `push_bits` call instead of one. The emitted bit stream
    /// is identical to pushing each codeword individually.
    pub fn encode(&self, symbols: &[u32], w: &mut BitWriter) -> Result<(), HuffmanError> {
        let mut acc = 0u64;
        let mut pending = 0u8;
        for &s in symbols {
            let (code, len) = self.lookup(s).ok_or(HuffmanError::UnknownSymbol(s))?;
            if pending + len > 56 {
                w.push_bits(acc, pending);
                acc = 0;
                pending = 0;
                if len > 56 {
                    // Degenerate ≥ 57-bit codeword: bypass the accumulator.
                    w.push_bits(code, len);
                    continue;
                }
            }
            acc = (acc << len) | (code & ((1u64 << len) - 1));
            pending += len;
        }
        w.push_bits(acc, pending);
        Ok(())
    }

    /// Decode exactly `count` symbols from `r`.
    pub fn decode(&self, r: &mut BitReader<'_>, count: usize) -> Result<Vec<u32>, HuffmanError> {
        if self.entries.is_empty() {
            return if count == 0 { Ok(Vec::new()) } else { Err(HuffmanError::EmptyTable) };
        }
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            // Fast path: one peek resolves codewords of ≤ `peek` bits. The
            // window zero-pads past end-of-stream, so a hit only counts when
            // the stream really holds `len` more bits; otherwise the slow
            // path below re-reads and reports the truncation.
            let (sym, len) = self.lut[r.peek_bits(self.peek) as usize];
            if len != 0 && r.remaining() >= len as usize {
                r.consume_bits(len);
                out.push(sym);
                continue;
            }
            let mut code = 0u64;
            let mut len = 0u8;
            loop {
                let bit = r.read_bit().ok_or(HuffmanError::CorruptStream)?;
                code = (code << 1) | bit as u64;
                len += 1;
                if len > self.max_len {
                    return Err(HuffmanError::CorruptStream);
                }
                // Canonical property: codes of length L form a contiguous
                // numeric range starting at first_code[L].
                let idx_base = self.first_index[len as usize];
                let first = self.first_code[len as usize];
                if code >= first {
                    let offset = (code - first) as usize;
                    let idx = idx_base + offset;
                    if idx < self.entries.len() && self.entries[idx].1 == len {
                        out.push(self.entries[idx].0);
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Shannon-optimal expected bits/symbol for the given frequencies — a
    /// lower bound the Huffman stage approaches within 1 bit.
    pub fn expected_bits(&self, freqs: &HashMap<u32, u64>) -> f64 {
        let total: u64 = freqs.values().sum();
        if total == 0 {
            return 0.0;
        }
        freqs
            .iter()
            .filter_map(|(s, &c)| self.length_of(*s).map(|l| c as f64 * l as f64))
            .sum::<f64>()
            / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn freq_of(symbols: &[u32]) -> HashMap<u32, u64> {
        let mut m = HashMap::new();
        for &s in symbols {
            *m.entry(s).or_insert(0) += 1;
        }
        m
    }

    fn roundtrip(symbols: &[u32]) -> Vec<u32> {
        let book = CodeBook::from_freqs(&freq_of(symbols));
        let mut w = BitWriter::new();
        book.encode(symbols, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        book.decode(&mut r, symbols.len()).unwrap()
    }

    #[test]
    fn roundtrip_small_alphabet() {
        let syms = vec![1, 1, 1, 2, 2, 3, 1, 1, 2, 3, 3, 1];
        assert_eq!(roundtrip(&syms), syms);
    }

    #[test]
    fn roundtrip_single_symbol() {
        let syms = vec![42u32; 100];
        assert_eq!(roundtrip(&syms), syms);
        let book = CodeBook::from_freqs(&freq_of(&syms));
        assert_eq!(book.length_of(42), Some(1));
    }

    #[test]
    fn roundtrip_skewed_distribution() {
        let mut syms = vec![0u32; 1000];
        syms.extend([1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(roundtrip(&syms), syms);
        // Dominant symbol must get the shortest code.
        let book = CodeBook::from_freqs(&freq_of(&syms));
        let l0 = book.length_of(0).unwrap();
        for s in 1..=8 {
            assert!(book.length_of(s).unwrap() >= l0);
        }
    }

    #[test]
    fn roundtrip_large_random_alphabet() {
        let mut state = 123u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 500) as u32
        };
        let syms: Vec<u32> = (0..5000).map(|_| next()).collect();
        assert_eq!(roundtrip(&syms), syms);
    }

    #[test]
    fn roundtrip_far_flung_symbols() {
        // RUN_MARKER-style symbols sit ~2³² away from the quantisation
        // cluster: they must route through the sparse side table and still
        // roundtrip exactly.
        let mut syms = vec![32_768u32; 400];
        syms.extend([u32::MAX; 37]);
        syms.extend([32_700, 32_800, u32::MAX, 32_768]);
        assert_eq!(roundtrip(&syms), syms);
        let book = CodeBook::from_freqs(&freq_of(&syms));
        assert!(book.length_of(u32::MAX).is_some());
        assert_eq!(book.length_of(5), None);
    }

    #[test]
    fn sorted_freqs_match_hashmap_construction() {
        let syms = [9u32, 9, 9, 9, 4, 4, 7, 1, 1, 1, 1, 1, 1];
        let map = freq_of(&syms);
        let mut pairs: Vec<(u32, u64)> = map.iter().map(|(&s, &c)| (s, c)).collect();
        pairs.sort_unstable();
        let a = CodeBook::from_freqs(&map);
        let b = CodeBook::from_sorted_freqs(&pairs);
        assert_eq!(a.entries(), b.entries());
    }

    #[test]
    fn compressed_size_beats_fixed_width_on_skew() {
        let mut syms = vec![7u32; 10_000];
        syms.extend(0..128u32);
        let book = CodeBook::from_freqs(&freq_of(&syms));
        let mut w = BitWriter::new();
        book.encode(&syms, &mut w).unwrap();
        let bits = w.bit_len() as f64 / syms.len() as f64;
        // Fixed-width coding of a 129-symbol alphabet needs 8 bits.
        assert!(bits < 1.5, "got {bits} bits/symbol");
    }

    #[test]
    fn kraft_inequality_holds() {
        let mut freqs = HashMap::new();
        for s in 0..100u32 {
            freqs.insert(s, (s as u64 % 7) * 13 + 1);
        }
        let lengths = code_lengths(&freqs);
        let kraft: f64 = lengths.iter().map(|&(_, l)| 2f64.powi(-(l as i32))).sum();
        assert!(kraft <= 1.0 + 1e-12, "Kraft sum {kraft}");
    }

    #[test]
    fn unknown_symbol_is_error() {
        let book = CodeBook::from_freqs(&freq_of(&[1, 2, 3]));
        let mut w = BitWriter::new();
        assert_eq!(book.encode(&[99], &mut w), Err(HuffmanError::UnknownSymbol(99)));
    }

    #[test]
    fn truncated_stream_is_error() {
        let syms = vec![1u32, 2, 3, 1, 2, 3, 1, 1, 1];
        let book = CodeBook::from_freqs(&freq_of(&syms));
        let mut w = BitWriter::new();
        book.encode(&syms, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // Ask for more symbols than encoded: must hit CorruptStream (or run
        // into padding that decodes — then lengths won't match the request).
        let res = book.decode(&mut r, syms.len() + 64);
        assert!(res.is_err());
    }

    #[test]
    fn long_codes_fall_back_past_the_lut() {
        // An exponential frequency ladder forces code lengths well past
        // PEEK_BITS, exercising the slow canonical walk after a LUT miss.
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        for s in 0..24u32 {
            pairs.push((s, 1u64 << s.min(40)));
        }
        let book = CodeBook::from_sorted_freqs(&pairs);
        let max = book.entries().iter().map(|&(_, l)| l).max().unwrap();
        assert!(max > PEEK_BITS, "ladder only reached {max} bits");
        let syms: Vec<u32> = (0..24u32).chain((0..24u32).rev()).collect();
        let mut w = BitWriter::new();
        book.encode(&syms, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(book.decode(&mut r, syms.len()).unwrap(), syms);
    }

    #[test]
    fn canonical_codes_are_rebuildable_from_entries() {
        let syms = vec![5u32, 5, 5, 9, 9, 1, 0, 0, 0, 0];
        let book = CodeBook::from_freqs(&freq_of(&syms));
        let rebuilt = CodeBook::from_lengths(book.entries().to_vec());
        let mut w = BitWriter::new();
        book.encode(&syms, &mut w).unwrap();
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(rebuilt.decode(&mut r, syms.len()).unwrap(), syms);
    }

    #[test]
    fn expected_bits_close_to_entropy() {
        let mut freqs = HashMap::new();
        freqs.insert(0u32, 900u64);
        freqs.insert(1, 50);
        freqs.insert(2, 50);
        let book = CodeBook::from_freqs(&freqs);
        let total = 1000f64;
        let entropy: f64 = [900f64, 50.0, 50.0]
            .iter()
            .map(|&c| {
                let p = c / total;
                -p * p.log2()
            })
            .sum();
        let expected = book.expected_bits(&freqs);
        assert!(expected >= entropy - 1e-9);
        assert!(expected <= entropy + 1.0, "redundancy above 1 bit: {expected} vs {entropy}");
    }

    #[test]
    fn empty_table_behaviour() {
        let book = CodeBook::from_freqs(&HashMap::new());
        assert!(book.is_empty());
        assert_eq!(book.len(), 0);
        let bytes: Vec<u8> = Vec::new();
        let mut r = BitReader::new(&bytes);
        assert_eq!(book.decode(&mut r, 0).unwrap(), Vec::<u32>::new());
        assert_eq!(book.decode(&mut r, 1), Err(HuffmanError::EmptyTable));
    }
}
