//! SIMD wavefront variants of the quantisation walks.
//!
//! The raster walks in [`crate::compress`] carry a loop-borne dependency:
//! every interior cell's Lorenzo prediction reads `recon[idx − 1]`, the
//! cell visited immediately before it. Vectorising *along* the raster
//! would need that serial chain broken — and any reassociation of the
//! stencil changes which codes are emitted, i.e. the container bytes.
//!
//! Instead these walks traverse each x-plane's interior along
//! **anti-diagonals** (`y + z = const`): with plane `x − 1` complete,
//! cells on one diagonal depend only on the two previous diagonals, so
//! four of them can run as SIMD lanes. Each lane performs *exactly* the
//! per-cell scalar operation sequence — same IEEE ops, same left-to-right
//! association, same rounding — so the codes, reconstruction buffer, and
//! therefore the container bytes are bit-identical to the raster walk's
//! on every input, including NaN/Inf cells (whose verbatim fallback
//! propagates through lane predictions just as it does serially).
//!
//! Ordering bookkeeping differs from the raster walk in one way: codes
//! are written *by cell index* instead of pushed, and the verbatim-value
//! list is rebuilt by a raster scan afterwards — index order equals push
//! order, so the payload layout is unchanged.
//!
//! Dispatch follows the vendor shim's multiversion pattern
//! (see `vendor/portable_simd`): one generic body, an
//! `#[target_feature(enable = "avx2")]` clone picked when the host
//! supports it, and the plain clone otherwise. The original raster walk
//! remains the scalar reference implementation and is what
//! [`portable_simd::Backend::Scalar`] selects.

use crate::predictor::{lorenzo3, lorenzo3_interior};
use crate::quantizer::{Quantizer, UNPREDICTABLE};
use gridlab::{Dim3, Scalar};
use portable_simd::f64x4;

const LANES: usize = 4;

/// One cell of the ABS-mode forward walk, writing by index. Mirrors
/// `forward_cell` + the ABS accept closure in `compress` exactly.
#[inline(always)]
fn forward_cell_abs_at<T: Scalar>(
    quant: &Quantizer,
    eb: f64,
    vals: &[f64],
    idx: usize,
    pred: f64,
    codes: &mut [u32],
    recon: &mut [f64],
) {
    let val = vals[idx];
    if let Some((code, r)) = quant.quantize(val, pred) {
        // Verify in T precision: the decompressor's output cast must
        // still honour the bound.
        let rt = T::from_f64(r).to_f64();
        if (rt - val).abs() <= eb {
            codes[idx] = code;
            recon[idx] = r;
            return;
        }
    }
    codes[idx] = UNPREDICTABLE;
    recon[idx] = val; // exact in the transformed domain
}

/// Four interior cells on one anti-diagonal: fused Lorenzo predict +
/// quantise + bound checks, lane `k` at flat index `base + k·stride`.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn forward_chunk_abs<T: Scalar>(
    vals: &[f64],
    base: usize,
    stride: usize,
    sx: usize,
    sy: usize,
    eb: f64,
    two_eb: f64,
    radius: u32,
    codes: &mut [u32],
    recon: &mut [f64],
) {
    // The seven stencil loads, combined with the raster walk's exact
    // left-to-right association.
    let t1 = f64x4::gather(recon, base - 1, stride);
    let t2 = f64x4::gather(recon, base - sy, stride);
    let t3 = f64x4::gather(recon, base - sx, stride);
    let t4 = f64x4::gather(recon, base - sy - 1, stride);
    let t5 = f64x4::gather(recon, base - sx - 1, stride);
    let t6 = f64x4::gather(recon, base - sx - sy, stride);
    let t7 = f64x4::gather(recon, base - sx - sy - 1, stride);
    let pred = t1 + t2 + t3 - t4 - t5 - t6 + t7;

    let val = f64x4::gather(vals, base, stride);
    let diff = val - pred;
    let q = diff.div(f64x4::splat(two_eb)).round();
    let finite = diff.is_finite();
    let in_range = q.abs().lt(f64x4::splat(radius as f64));
    // `pred + (q·2)·eb`, the quantiser's exact expression shape.
    let rf = pred + q * f64x4::splat(2.0) * f64x4::splat(eb);
    let over = (rf - val).abs().gt(f64x4::splat(eb));
    let qi = q.to_i64().to_array();

    let rfa = rf.to_array();
    let vala = val.to_array();
    for k in 0..LANES {
        let idx = base + k * stride;
        // T-precision recheck (the ABS accept closure).
        let rt = T::from_f64(rfa[k]).to_f64();
        let keep = finite[k] && in_range[k] && !over[k] && (rt - vala[k]).abs() <= eb;
        if keep {
            // In-range lanes can't overflow; rejected lanes may hold a
            // saturated cast, discarded below — wrap instead of trapping.
            codes[idx] = qi[k].wrapping_add(radius as i64) as u32;
            recon[idx] = rfa[k];
        } else {
            codes[idx] = UNPREDICTABLE;
            recon[idx] = vala[k];
        }
    }
}

/// The full ABS forward walk, wavefront order. Writes `codes` (by index)
/// and `recon`; the caller rebuilds the verbatim list by raster scan.
#[inline(always)]
fn forward_walk_abs_body<T: Scalar>(
    dims: Dim3,
    quant: &Quantizer,
    vals: &[f64],
    codes: &mut [u32],
    recon: &mut [f64],
) {
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    let (sx, sy) = (ny * nz, nz);
    let eb = quant.error_bound();
    let two_eb = 2.0 * eb;
    let radius = quant.radius();

    // Plane x = 0 and each plane's y = 0 row / z = 0 column use the
    // general bounds-checked stencil, exactly like the raster walk.
    for y in 0..ny {
        for z in 0..nz {
            let idx = y * sy + z;
            let pred = lorenzo3(recon, ny, nz, 0, y, z);
            forward_cell_abs_at::<T>(quant, eb, vals, idx, pred, codes, recon);
        }
    }
    for x in 1..nx {
        let plane = x * sx;
        for z in 0..nz {
            let pred = lorenzo3(recon, ny, nz, x, 0, z);
            forward_cell_abs_at::<T>(quant, eb, vals, plane + z, pred, codes, recon);
        }
        for y in 1..ny {
            let pred = lorenzo3(recon, ny, nz, x, y, 0);
            forward_cell_abs_at::<T>(quant, eb, vals, plane + y * sy, pred, codes, recon);
        }
        if ny < 2 || nz < 2 {
            continue; // no interior cells in this plane
        }
        // Interior wavefront: anti-diagonal d = y + z, cells independent
        // within a diagonal, flat-index stride sy − 1 between them.
        let stride = sy - 1;
        for d in 2..=(ny - 1) + (nz - 1) {
            let y_lo = if d > nz - 1 { d - (nz - 1) } else { 1 };
            let y_hi = (ny - 1).min(d - 1);
            let len = y_hi - y_lo + 1;
            let base0 = plane + y_lo * sy + (d - y_lo);
            let mut done = 0usize;
            while done + LANES <= len {
                forward_chunk_abs::<T>(
                    vals,
                    base0 + done * stride,
                    stride,
                    sx,
                    sy,
                    eb,
                    two_eb,
                    radius,
                    codes,
                    recon,
                );
                done += LANES;
            }
            for k in done..len {
                let idx = base0 + k * stride;
                let pred = lorenzo3_interior(recon, sx, sy, idx);
                forward_cell_abs_at::<T>(quant, eb, vals, idx, pred, codes, recon);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn forward_walk_abs_avx2<T: Scalar>(
    dims: Dim3,
    quant: &Quantizer,
    vals: &[f64],
    codes: &mut [u32],
    recon: &mut [f64],
) {
    forward_walk_abs_body::<T>(dims, quant, vals, codes, recon);
}

/// Run the wavefront forward walk with the best compiled clone for this
/// host. Byte-identical to the raster walk on every input.
pub(crate) fn forward_walk_abs_wavefront<T: Scalar>(
    dims: Dim3,
    quant: &Quantizer,
    vals: &[f64],
    codes: &mut Vec<u32>,
    unpred: &mut Vec<usize>,
    recon: &mut Vec<f64>,
) {
    let n = dims.len();
    recon.clear();
    recon.resize(n, 0.0);
    codes.clear();
    codes.resize(n, UNPREDICTABLE);
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support verified on this exact host above.
            unsafe { forward_walk_abs_avx2::<T>(dims, quant, vals, codes, recon) };
        } else {
            forward_walk_abs_body::<T>(dims, quant, vals, codes, recon);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    forward_walk_abs_body::<T>(dims, quant, vals, codes, recon);

    // Index order is raster order, so this reproduces the raster walk's
    // push order for the verbatim side-channel.
    unpred.clear();
    for (i, &c) in codes.iter().enumerate() {
        if c == UNPREDICTABLE {
            unpred.push(i);
        }
    }
}

// ---------------------------------------------------------------------------
// Decompress reconstruction (mirror walk pass 1)
// ---------------------------------------------------------------------------

/// One cell of the reconstruction walk, mode-agnostic (the transformed
/// domain is already baked into `up_recon`).
#[inline(always)]
fn recon_cell_at(
    quant: &Quantizer,
    codes: &[u32],
    up_recon: &[f64],
    up_rank: &[u32],
    idx: usize,
    pred: f64,
    recon: &mut [f64],
) {
    let code = codes[idx];
    if code == UNPREDICTABLE {
        recon[idx] = up_recon[up_rank[idx] as usize];
    } else {
        recon[idx] = quant.dequantize(code, pred);
    }
}

/// Four interior cells of the reconstruction wavefront.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn recon_chunk(
    codes: &[u32],
    up_recon: &[f64],
    up_rank: &[u32],
    base: usize,
    stride: usize,
    sx: usize,
    sy: usize,
    eb: f64,
    radius: u32,
    recon: &mut [f64],
) {
    let t1 = f64x4::gather(recon, base - 1, stride);
    let t2 = f64x4::gather(recon, base - sy, stride);
    let t3 = f64x4::gather(recon, base - sx, stride);
    let t4 = f64x4::gather(recon, base - sy - 1, stride);
    let t5 = f64x4::gather(recon, base - sx - 1, stride);
    let t6 = f64x4::gather(recon, base - sx - sy, stride);
    let t7 = f64x4::gather(recon, base - sx - sy - 1, stride);
    let pred = t1 + t2 + t3 - t4 - t5 - t6 + t7;

    let mut qf = [0.0f64; LANES];
    let mut verbatim = [false; LANES];
    for k in 0..LANES {
        let code = codes[base + k * stride];
        verbatim[k] = code == UNPREDICTABLE;
        qf[k] = (code as i64 - radius as i64) as f64;
    }
    // `pred + q·2·eb`, the dequantiser's exact expression shape.
    let rf = pred + f64x4::from_array(qf) * f64x4::splat(2.0) * f64x4::splat(eb);
    let rfa = rf.to_array();
    for k in 0..LANES {
        let idx = base + k * stride;
        recon[idx] = if verbatim[k] { up_recon[up_rank[idx] as usize] } else { rfa[k] };
    }
}

#[inline(always)]
fn recon_walk_body(
    dims: Dim3,
    quant: &Quantizer,
    codes: &[u32],
    up_recon: &[f64],
    up_rank: &[u32],
    recon: &mut [f64],
) {
    let (nx, ny, nz) = (dims.nx, dims.ny, dims.nz);
    let (sx, sy) = (ny * nz, nz);
    let eb = quant.error_bound();
    let radius = quant.radius();

    for y in 0..ny {
        for z in 0..nz {
            let idx = y * sy + z;
            let pred = lorenzo3(recon, ny, nz, 0, y, z);
            recon_cell_at(quant, codes, up_recon, up_rank, idx, pred, recon);
        }
    }
    for x in 1..nx {
        let plane = x * sx;
        for z in 0..nz {
            let pred = lorenzo3(recon, ny, nz, x, 0, z);
            recon_cell_at(quant, codes, up_recon, up_rank, plane + z, pred, recon);
        }
        for y in 1..ny {
            let pred = lorenzo3(recon, ny, nz, x, y, 0);
            recon_cell_at(quant, codes, up_recon, up_rank, plane + y * sy, pred, recon);
        }
        if ny < 2 || nz < 2 {
            continue;
        }
        let stride = sy - 1;
        for d in 2..=(ny - 1) + (nz - 1) {
            let y_lo = if d > nz - 1 { d - (nz - 1) } else { 1 };
            let y_hi = (ny - 1).min(d - 1);
            let len = y_hi - y_lo + 1;
            let base0 = plane + y_lo * sy + (d - y_lo);
            let mut done = 0usize;
            while done + LANES <= len {
                recon_chunk(
                    codes,
                    up_recon,
                    up_rank,
                    base0 + done * stride,
                    stride,
                    sx,
                    sy,
                    eb,
                    radius,
                    recon,
                );
                done += LANES;
            }
            for k in done..len {
                let idx = base0 + k * stride;
                let pred = lorenzo3_interior(recon, sx, sy, idx);
                recon_cell_at(quant, codes, up_recon, up_rank, idx, pred, recon);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn recon_walk_avx2(
    dims: Dim3,
    quant: &Quantizer,
    codes: &[u32],
    up_recon: &[f64],
    up_rank: &[u32],
    recon: &mut [f64],
) {
    recon_walk_body(dims, quant, codes, up_recon, up_rank, recon);
}

/// Wavefront reconstruction walk (decompress pass 1), both error modes.
/// The raster walk consumes verbatim values in visit order; here each
/// verbatim cell's rank is precomputed (`up_rank`, a prefix count over
/// raster order) so out-of-order lanes read the right one.
pub(crate) fn recon_walk_wavefront(
    dims: Dim3,
    quant: &Quantizer,
    codes: &[u32],
    up_recon: &[f64],
    ranks: &mut Vec<u32>,
    recon: &mut Vec<f64>,
) {
    let n = dims.len();
    recon.clear();
    recon.resize(n, 0.0);
    ranks.clear();
    ranks.resize(n, 0);
    let mut rank = 0u32;
    for (r, &c) in ranks.iter_mut().zip(codes.iter()) {
        *r = rank;
        if c == UNPREDICTABLE {
            rank += 1;
        }
    }
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support verified on this exact host above.
            unsafe { recon_walk_avx2(dims, quant, codes, up_recon, ranks, recon) };
        } else {
            recon_walk_body(dims, quant, codes, up_recon, ranks, recon);
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    recon_walk_body(dims, quant, codes, up_recon, ranks, recon);
}
