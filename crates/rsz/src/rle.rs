//! Run-length folding of the dominant quantisation code.
//!
//! Smooth cosmology regions produce long runs of the "zero-residual" code;
//! Huffman alone cannot go below 1 bit/symbol, so runs of the dominant code
//! longer than [`MIN_RUN`] are folded into a single `RUN_MARKER` symbol whose
//! length goes to a side channel of varints. This is what lets the overall
//! pipeline reach the 27–80× ratios the paper reports on Nyx-like data.

/// Marker symbol standing for "a run of the dominant code" in the folded
/// stream. Chosen outside any reachable quantisation code.
pub const RUN_MARKER: u32 = u32::MAX;

/// Runs shorter than this stay literal (folding them would cost more in the
/// side channel than it saves in the Huffman stream).
pub const MIN_RUN: usize = 8;

/// Most frequent code in `codes` (ties break toward the smaller code).
pub fn dominant_code(codes: &[u32]) -> u32 {
    use std::collections::HashMap;
    let mut freq: HashMap<u32, u64> = HashMap::new();
    for &c in codes {
        *freq.entry(c).or_insert(0) += 1;
    }
    freq.into_iter().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0))).map(|(c, _)| c).unwrap_or(0)
}

/// Fold runs of `dom`; returns `(symbols, run_lengths)`.
pub fn fold(codes: &[u32], dom: u32) -> (Vec<u32>, Vec<u32>) {
    let mut symbols = Vec::new();
    let mut runs = Vec::new();
    fold_into(codes, dom, &mut symbols, &mut runs);
    (symbols, runs)
}

/// [`fold`] into caller-owned buffers (cleared first) so hot loops can
/// reuse allocations across partitions.
pub fn fold_into(codes: &[u32], dom: u32, symbols: &mut Vec<u32>, runs: &mut Vec<u32>) {
    symbols.clear();
    symbols.reserve(codes.len());
    runs.clear();
    let mut i = 0;
    while i < codes.len() {
        if codes[i] == dom {
            let mut j = i;
            while j < codes.len() && codes[j] == dom {
                j += 1;
            }
            let run = j - i;
            if run >= MIN_RUN {
                symbols.push(RUN_MARKER);
                runs.push(run as u32);
            } else {
                symbols.extend(std::iter::repeat_n(dom, run));
            }
            i = j;
        } else {
            symbols.push(codes[i]);
            i += 1;
        }
    }
}

/// Expand a folded stream back to the original codes.
///
/// Returns `None` if the run side-channel does not match the markers.
pub fn unfold(symbols: &[u32], runs: &[u32], dom: u32) -> Option<Vec<u32>> {
    let mut out = Vec::with_capacity(symbols.len());
    let mut run_iter = runs.iter();
    for &s in symbols {
        if s == RUN_MARKER {
            let &len = run_iter.next()?;
            out.extend(std::iter::repeat_n(dom, len as usize));
        } else {
            out.push(s);
        }
    }
    if run_iter.next().is_some() {
        return None; // unused run lengths ⇒ corrupt container
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominant_is_most_frequent() {
        assert_eq!(dominant_code(&[5, 5, 5, 2, 2, 9]), 5);
        assert_eq!(dominant_code(&[]), 0);
    }

    #[test]
    fn fold_unfold_identity_no_runs() {
        let codes = vec![1, 2, 3, 4, 5];
        let (syms, runs) = fold(&codes, 1);
        assert!(runs.is_empty());
        assert_eq!(unfold(&syms, &runs, 1).unwrap(), codes);
    }

    #[test]
    fn long_run_is_folded() {
        let mut codes = vec![7u32; 100];
        codes.push(3);
        codes.extend(vec![7u32; 50]);
        let (syms, runs) = fold(&codes, 7);
        assert_eq!(syms, vec![RUN_MARKER, 3, RUN_MARKER]);
        assert_eq!(runs, vec![100, 50]);
        assert_eq!(unfold(&syms, &runs, 7).unwrap(), codes);
    }

    #[test]
    fn short_run_stays_literal() {
        let codes = vec![7u32; MIN_RUN - 1];
        let (syms, runs) = fold(&codes, 7);
        assert_eq!(syms, codes);
        assert!(runs.is_empty());
    }

    #[test]
    fn exactly_min_run_is_folded() {
        let codes = vec![7u32; MIN_RUN];
        let (syms, runs) = fold(&codes, 7);
        assert_eq!(syms, vec![RUN_MARKER]);
        assert_eq!(runs, vec![MIN_RUN as u32]);
    }

    #[test]
    fn mixed_stream_roundtrip() {
        let mut state = 41u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let mut codes = Vec::new();
        for _ in 0..200 {
            if next() % 3 == 0 {
                codes.extend(vec![10u32; (next() % 40) as usize]);
            } else {
                codes.push((next() % 20) as u32);
            }
        }
        let dom = dominant_code(&codes);
        let (syms, runs) = fold(&codes, dom);
        assert_eq!(unfold(&syms, &runs, dom).unwrap(), codes);
    }

    #[test]
    fn unfold_rejects_mismatched_runs() {
        assert!(unfold(&[RUN_MARKER], &[], 7).is_none());
        assert!(unfold(&[1, 2], &[5], 7).is_none());
    }

    #[test]
    fn folding_shrinks_smooth_streams() {
        let codes = vec![100u32; 10_000];
        let (syms, runs) = fold(&codes, 100);
        assert_eq!(syms.len(), 1);
        assert_eq!(runs.len(), 1);
    }
}
