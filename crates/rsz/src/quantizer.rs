//! Error-controlled linear-scaling quantisation (SZ step 2).
//!
//! Residual `d = value − prediction` is quantised to the nearest multiple of
//! `2·eb`: `q = round(d / 2eb)`, reconstructed as `pred + q·2eb`, which
//! bounds the point-wise error by `eb`. Codes are biased by `radius` so the
//! stream is non-negative, and code 0 is reserved for "unpredictable"
//! values that are stored verbatim.
//!
//! The quantisation error is the fractional part of `d / 2eb` scaled back —
//! for residuals that wander over many quanta it is very close to uniform
//! on `[-eb, eb]` (paper Eq. 3 and Fig. 3), the property every downstream
//! model builds on.

/// Reserved code meaning "stored verbatim".
pub const UNPREDICTABLE: u32 = 0;

/// Linear-scaling quantiser with a fixed bound and code radius.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    eb: f64,
    radius: u32,
}

impl Quantizer {
    /// `eb` must be positive; `radius` ≥ 2 gives codes
    /// `1 ..= 2·radius − 1` around the bias point `radius`.
    pub fn new(eb: f64, radius: u32) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive and finite");
        assert!(radius >= 2, "radius must be at least 2");
        Self { eb, radius }
    }

    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Largest code value this quantiser can emit (`2·radius − 1`).
    pub fn max_code(&self) -> u32 {
        2 * self.radius - 1
    }

    /// Quantise `value` against `pred`.
    ///
    /// Returns `Some((code, reconstructed))` when the residual fits the code
    /// range **and** the reconstruction honours the bound; `None` means the
    /// caller must store the value verbatim.
    #[inline]
    pub fn quantize(&self, value: f64, pred: f64) -> Option<(u32, f64)> {
        let diff = value - pred;
        if !diff.is_finite() {
            return None;
        }
        let q = (diff / (2.0 * self.eb)).round();
        if q.abs() >= self.radius as f64 {
            return None;
        }
        let recon = pred + q * 2.0 * self.eb;
        // Guard against floating-point edge cases (huge pred with tiny eb):
        // the reconstruction itself must satisfy the bound.
        if (recon - value).abs() > self.eb {
            return None;
        }
        let code = (q as i64 + self.radius as i64) as u32;
        debug_assert!(code != UNPREDICTABLE && code <= self.max_code());
        Some((code, recon))
    }

    /// Reconstruct from a non-zero code and the same prediction.
    #[inline]
    pub fn dequantize(&self, code: u32, pred: f64) -> f64 {
        debug_assert!(code != UNPREDICTABLE && code <= self.max_code());
        let q = code as i64 - self.radius as i64;
        pred + q as f64 * 2.0 * self.eb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_residual_maps_to_bias_code() {
        let q = Quantizer::new(0.5, 16);
        let (code, recon) = q.quantize(3.0, 3.0).unwrap();
        assert_eq!(code, 16);
        assert_eq!(recon, 3.0);
    }

    #[test]
    fn roundtrip_respects_bound() {
        let q = Quantizer::new(0.1, 256);
        for i in 0..1000 {
            let value = (i as f64 * 0.37).sin() * 10.0;
            let pred = (i as f64 * 0.36).sin() * 10.0;
            if let Some((code, recon)) = q.quantize(value, pred) {
                assert!((recon - value).abs() <= 0.1 + 1e-15);
                assert_eq!(q.dequantize(code, pred), recon);
                assert_ne!(code, UNPREDICTABLE);
            }
        }
    }

    #[test]
    fn out_of_range_residual_is_unpredictable() {
        let q = Quantizer::new(0.01, 4);
        // Residual of 1.0 needs q = 50, beyond radius 4.
        assert!(q.quantize(1.0, 0.0).is_none());
        // Residual of 0.06 → q = 3 < 4 still fits.
        assert!(q.quantize(0.06, 0.0).is_some());
    }

    #[test]
    fn non_finite_residual_is_unpredictable() {
        let q = Quantizer::new(1.0, 16);
        assert!(q.quantize(f64::NAN, 0.0).is_none());
        assert!(q.quantize(f64::INFINITY, 0.0).is_none());
    }

    #[test]
    fn codes_are_symmetric_around_bias() {
        let q = Quantizer::new(1.0, 8);
        let (cp, _) = q.quantize(6.0, 0.0).unwrap(); // q = 3
        let (cm, _) = q.quantize(-6.0, 0.0).unwrap(); // q = -3
        assert_eq!(cp, 8 + 3);
        assert_eq!(cm, 8 - 3);
    }

    #[test]
    fn error_is_uniform_ish_over_many_samples() {
        // Quantisation error of pseudo-random residuals should fill
        // [-eb, eb] roughly evenly: check mean ≈ 0 and spread ≈ eb²/3.
        let eb = 0.5;
        let q = Quantizer::new(eb, 1 << 15);
        let mut state = 7u64;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        let n = 20_000;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let value = ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 1000.0;
            let (_, recon) = q.quantize(value, 0.0).unwrap();
            let e = recon - value;
            sum += e;
            sum2 += e * e;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let expected_var = eb * eb / 3.0;
        assert!((var - expected_var).abs() < 0.1 * expected_var, "var {var} vs {expected_var}");
    }

    #[test]
    fn huge_magnitude_catastrophic_cancellation_guard() {
        // pred ≈ 1e17 with eb = 1e-3: quantum is below one ulp, so the
        // reconstruction check must reject rather than silently violate.
        let q = Quantizer::new(1e-3, 1 << 15);
        let value = 1e17 + 0.4;
        let pred = 1e17;
        // Verbatim storage (None) is also correct here.
        if let Some((_, recon)) = q.quantize(value, pred) {
            assert!((recon - value).abs() <= 1e-3);
        }
    }

    #[test]
    #[should_panic]
    fn zero_bound_rejected() {
        let _ = Quantizer::new(0.0, 16);
    }

    #[test]
    #[should_panic]
    fn tiny_radius_rejected() {
        let _ = Quantizer::new(1.0, 1);
    }
}
