//! Bit-granular writer/reader used by the Huffman coder.
//!
//! Bits are packed MSB-first within each byte; the writer pads the final
//! byte with zeros. MSB-first keeps canonical Huffman decoding a simple
//! numeric comparison walk.
//!
//! The writer batches bits through a 64-bit accumulator and flushes whole
//! bytes, so `push_bits` costs a couple of shifts per call instead of one
//! branch per bit; the reader adds `peek_bits`/`consume_bits` so table-
//! driven decoders can probe a window without committing to it.

/// Append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Pending bits, right-aligned: the low `pending` bits of `acc`, in
    /// stream order (earlier bits more significant). Invariant after every
    /// public call: `pending < 8`.
    acc: u64,
    pending: u8,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.pending as usize
    }

    /// Write one bit (LSB of `bit`).
    #[inline]
    pub fn push_bit(&mut self, bit: u32) {
        self.push_bits((bit & 1) as u64, 1);
    }

    /// Write the low `count` bits of `value`, most-significant bit first.
    #[inline]
    pub fn push_bits(&mut self, value: u64, count: u8) {
        debug_assert!(count <= 64);
        if count == 0 {
            return;
        }
        if count > 56 {
            // Accumulator holds < 8 pending bits, so ≤ 56 fit in one step;
            // split long words (only reachable with ≥ 57-bit codes).
            let hi = count - 32;
            self.push_bits(value >> 32, hi);
            self.push_bits(value & 0xFFFF_FFFF, 32);
            return;
        }
        let mask = if count == 64 { u64::MAX } else { (1u64 << count) - 1 };
        self.acc = (self.acc << count) | (value & mask);
        self.pending += count;
        while self.pending >= 8 {
            self.pending -= 8;
            self.buf.push((self.acc >> self.pending) as u8);
        }
    }

    /// Finish and return the packed bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        if self.pending > 0 {
            let byte = (self.acc << (8 - self.pending)) as u8;
            self.buf.push(byte);
        }
        self.buf
    }
}

/// Sequential bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize, // absolute bit position
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Read one bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u32> {
        let byte = self.buf.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8) as u32)) & 1;
        self.pos += 1;
        Some(bit as u32)
    }

    /// Read `count` bits (up to 64) MSB-first; `None` if the stream is
    /// short.
    #[inline]
    pub fn read_bits(&mut self, count: u8) -> Option<u64> {
        debug_assert!(count <= 64);
        if self.remaining() < count as usize {
            return None;
        }
        if count > 57 {
            // peek_bits gathers through a single u64, which caps one probe
            // at 57 bits from an arbitrary bit offset; split wide reads.
            let hi = self.read_bits(count - 32)?;
            let lo = self.read_bits(32)?;
            return Some((hi << 32) | lo);
        }
        let v = self.peek_bits(count);
        self.pos += count as usize;
        Some(v)
    }

    /// Look at the next `count` bits (MSB-first) without consuming them.
    /// Bits past the end of the stream read as zero — callers probing a
    /// fixed window near the end must check [`Self::remaining`] before
    /// trusting a match.
    #[inline]
    pub fn peek_bits(&self, count: u8) -> u64 {
        debug_assert!(count <= 57, "peek window limited by the 64-bit gather");
        let mut v = 0u64;
        let first = self.pos / 8;
        let nbytes = (self.pos % 8 + count as usize).div_ceil(8);
        for k in 0..nbytes {
            v = (v << 8) | *self.buf.get(first + k).unwrap_or(&0) as u64;
        }
        let have = nbytes * 8 - self.pos % 8;
        v >>= have - count as usize;
        v & if count == 0 { 0 } else { u64::MAX >> (64 - count) }
    }

    /// Consume `count` bits previously inspected via [`Self::peek_bits`].
    /// Callers must have verified `remaining() >= count`.
    #[inline]
    pub fn consume_bits(&mut self, count: u8) {
        debug_assert!(self.remaining() >= count as usize);
        self.pos += count as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [1u32, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0xFFFF, 16);
        w.push_bits(0, 5);
        w.push_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(16), Some(0xFFFF));
        assert_eq!(r.read_bits(5), Some(0));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn wide_reads_at_unaligned_positions() {
        // 58–64-bit reads cross the single-u64 peek window when the bit
        // cursor is unaligned; they must still return the exact bits.
        for lead in 1u8..8 {
            let mut w = BitWriter::new();
            w.push_bits(0, lead);
            w.push_bits(u64::MAX, 64);
            w.push_bits(0xABCD_EF01_2345_6789 >> 6, 58);
            let bytes = w.into_bytes();
            let mut r = BitReader::new(&bytes);
            assert_eq!(r.read_bits(lead), Some(0));
            assert_eq!(r.read_bits(64), Some(u64::MAX), "lead {lead}");
            assert_eq!(r.read_bits(58), Some(0xABCD_EF01_2345_6789 >> 6), "lead {lead}");
        }
    }

    #[test]
    fn msb_first_packing() {
        let mut w = BitWriter::new();
        w.push_bits(0b1, 1);
        w.push_bits(0, 7);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
    }

    #[test]
    fn reader_detects_exhaustion() {
        let mut w = BitWriter::new();
        w.push_bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1100_0000)); // padded zeros readable
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn empty_stream() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        w.push_bits(0b1010, 4);
        assert_eq!(w.bit_len(), 4);
        w.push_bits(0b1010_1010, 8);
        assert_eq!(w.bit_len(), 12);
        assert_eq!(w.into_bytes().len(), 2);
    }

    #[test]
    fn mixed_width_stream_matches_bitwise_reference() {
        // Cross-check the accumulator writer against a bit-at-a-time
        // reference over a pseudo-random width schedule.
        let mut state = 9u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state
        };
        let mut fast = BitWriter::new();
        let mut slow_bits: Vec<u32> = Vec::new();
        for _ in 0..500 {
            let width = (next() % 24 + 1) as u8;
            let value = next();
            fast.push_bits(value, width);
            for i in (0..width).rev() {
                slow_bits.push(((value >> i) & 1) as u32);
            }
        }
        let bytes = fast.into_bytes();
        let mut r = BitReader::new(&bytes);
        for (i, &b) in slow_bits.iter().enumerate() {
            assert_eq!(r.read_bit(), Some(b), "bit {i}");
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut w = BitWriter::new();
        w.push_bits(0b1011_0110_1101, 12);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits(5), 0b10110);
        assert_eq!(r.peek_bits(5), 0b10110);
        r.consume_bits(5);
        assert_eq!(r.peek_bits(7), 0b1101101);
        assert_eq!(r.read_bits(7), Some(0b1101101));
        assert_eq!(r.remaining(), 4); // final padding
    }

    #[test]
    fn peek_past_end_zero_pads() {
        let bytes = [0b1100_0000u8];
        let mut r = BitReader::new(&bytes);
        r.consume_bits(6);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.peek_bits(10), 0); // 2 real zero bits + 8 phantom zeros
        let bytes = [0b0000_0011u8];
        let mut r = BitReader::new(&bytes);
        r.consume_bits(6);
        assert_eq!(r.peek_bits(10), 0b11_0000_0000);
    }
}
