//! Bit-granular writer/reader used by the Huffman coder.
//!
//! Bits are packed MSB-first within each byte; the writer pads the final
//! byte with zeros. MSB-first keeps canonical Huffman decoding a simple
//! numeric comparison walk.

/// Append-only bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    /// Bits already used in the last byte (0..8; 0 means byte boundary).
    used: u8,
}

impl BitWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of whole bits written so far.
    pub fn bit_len(&self) -> usize {
        if self.used == 0 {
            self.buf.len() * 8
        } else {
            (self.buf.len() - 1) * 8 + self.used as usize
        }
    }

    /// Write one bit (LSB of `bit`).
    #[inline]
    pub fn push_bit(&mut self, bit: u32) {
        if self.used == 0 || self.used == 8 {
            self.buf.push(0);
            self.used = 0;
        }
        if bit & 1 != 0 {
            let last = self.buf.len() - 1;
            self.buf[last] |= 1 << (7 - self.used);
        }
        self.used += 1;
    }

    /// Write the low `count` bits of `value`, most-significant bit first.
    #[inline]
    pub fn push_bits(&mut self, value: u64, count: u8) {
        debug_assert!(count <= 64);
        for i in (0..count).rev() {
            self.push_bit(((value >> i) & 1) as u32);
        }
    }

    /// Finish and return the packed bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Sequential bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    pos: usize, // absolute bit position
}

impl<'a> BitReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() * 8 - self.pos
    }

    /// Read one bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u32> {
        let byte = self.buf.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8) as u32)) & 1;
        self.pos += 1;
        Some(bit as u32)
    }

    /// Read `count` bits MSB-first; `None` if the stream is short.
    #[inline]
    pub fn read_bits(&mut self, count: u8) -> Option<u64> {
        if self.remaining() < count as usize {
            return None;
        }
        let mut v = 0u64;
        for _ in 0..count {
            v = (v << 1) | self.read_bit()? as u64;
        }
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_bits_roundtrip() {
        let pattern = [1u32, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1];
        let mut w = BitWriter::new();
        for &b in &pattern {
            w.push_bit(b);
        }
        assert_eq!(w.bit_len(), pattern.len());
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.push_bits(0b101, 3);
        w.push_bits(0xFFFF, 16);
        w.push_bits(0, 5);
        w.push_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(3), Some(0b101));
        assert_eq!(r.read_bits(16), Some(0xFFFF));
        assert_eq!(r.read_bits(5), Some(0));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn msb_first_packing() {
        let mut w = BitWriter::new();
        w.push_bits(0b1, 1);
        w.push_bits(0, 7);
        assert_eq!(w.into_bytes(), vec![0b1000_0000]);
    }

    #[test]
    fn reader_detects_exhaustion() {
        let mut w = BitWriter::new();
        w.push_bits(0b11, 2);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(8), Some(0b1100_0000)); // padded zeros readable
        assert_eq!(r.read_bit(), None);
        assert_eq!(r.read_bits(1), None);
    }

    #[test]
    fn empty_stream() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        assert!(bytes.is_empty());
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bit(), None);
    }

    #[test]
    fn bit_len_tracks_partial_bytes() {
        let mut w = BitWriter::new();
        w.push_bits(0b1010, 4);
        assert_eq!(w.bit_len(), 4);
        w.push_bits(0b1010_1010, 8);
        assert_eq!(w.bit_len(), 12);
        assert_eq!(w.into_bytes().len(), 2);
    }
}
