//! Lorenzo prediction stencils.
//!
//! SZ predicts each value from its already-reconstructed causal neighbours;
//! in 3-D that is the Lorenzo stencil (Ibarria et al. 2003): the inclusion–
//! exclusion sum over the 7 neighbours of the unit cube behind the point.
//! Out-of-bounds neighbours read as zero, which makes the 3-D formula
//! degrade gracefully to 2-D on the first plane, 1-D on the first row, and
//! plain "predict 0" at the origin — no special-casing needed.
//!
//! Prediction **must** run on reconstructed (lossy) values, never the
//! originals: the decompressor only has reconstructed values, so using them
//! on both sides keeps the two walks bit-identical and stops error from
//! compounding along the scan.

/// 1-D Lorenzo: previous value.
#[inline]
pub fn lorenzo1(recon: &[f64], i: usize) -> f64 {
    if i == 0 {
        0.0
    } else {
        recon[i - 1]
    }
}

/// 2-D Lorenzo on a row-major `(ny, nz)` plane (z fastest).
#[inline]
pub fn lorenzo2(recon: &[f64], nz: usize, y: usize, z: usize) -> f64 {
    let at = |yy: isize, zz: isize| -> f64 {
        if yy < 0 || zz < 0 {
            0.0
        } else {
            recon[yy as usize * nz + zz as usize]
        }
    };
    let y = y as isize;
    let z = z as isize;
    at(y - 1, z) + at(y, z - 1) - at(y - 1, z - 1)
}

/// 3-D Lorenzo on a row-major `(nx, ny, nz)` volume (z fastest).
///
/// `pred = f(x−1,y,z) + f(x,y−1,z) + f(x,y,z−1)
///        − f(x−1,y−1,z) − f(x−1,y,z−1) − f(x,y−1,z−1)
///        + f(x−1,y−1,z−1)`
#[inline]
pub fn lorenzo3(recon: &[f64], ny: usize, nz: usize, x: usize, y: usize, z: usize) -> f64 {
    #[inline]
    fn at(recon: &[f64], ny: usize, nz: usize, x: isize, y: isize, z: isize) -> f64 {
        if x < 0 || y < 0 || z < 0 {
            0.0
        } else {
            recon[(x as usize * ny + y as usize) * nz + z as usize]
        }
    }
    let (xi, yi, zi) = (x as isize, y as isize, z as isize);
    at(recon, ny, nz, xi - 1, yi, zi)
        + at(recon, ny, nz, xi, yi - 1, zi)
        + at(recon, ny, nz, xi, yi, zi - 1)
        - at(recon, ny, nz, xi - 1, yi - 1, zi)
        - at(recon, ny, nz, xi - 1, yi, zi - 1)
        - at(recon, ny, nz, xi, yi - 1, zi - 1)
        + at(recon, ny, nz, xi - 1, yi - 1, zi - 1)
}

/// 3-D Lorenzo for strictly interior points (`x ≥ 1 && y ≥ 1 && z ≥ 1`),
/// expressed in flat-index arithmetic so hot loops skip the per-neighbour
/// bounds branches of [`lorenzo3`].
///
/// `sx`/`sy` are the x/y strides (`ny·nz` and `nz`) and `idx` the linear
/// index of the point being predicted. Callers must guarantee interiority;
/// the walk loops in `compress.rs` do so structurally by peeling the
/// `x == 0`, `y == 0` and `z == 0` boundary cells.
#[inline(always)]
pub fn lorenzo3_interior(recon: &[f64], sx: usize, sy: usize, idx: usize) -> f64 {
    debug_assert!(idx > sx + sy);
    recon[idx - 1] + recon[idx - sy] + recon[idx - sx]
        - recon[idx - sy - 1]
        - recon[idx - sx - 1]
        - recon[idx - sx - sy]
        + recon[idx - sx - sy - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorenzo1_is_previous() {
        let r = [1.0, 2.0, 3.0];
        assert_eq!(lorenzo1(&r, 0), 0.0);
        assert_eq!(lorenzo1(&r, 1), 1.0);
        assert_eq!(lorenzo1(&r, 2), 2.0);
    }

    #[test]
    fn lorenzo2_exact_on_bilinear() {
        // f(y, z) = 2y + 3z + 4 is affine, so the 2-D Lorenzo stencil
        // predicts interior points exactly.
        let (ny, nz) = (4, 5);
        let f = |y: usize, z: usize| 2.0 * y as f64 + 3.0 * z as f64 + 4.0;
        let mut grid = vec![0.0; ny * nz];
        for y in 0..ny {
            for z in 0..nz {
                grid[y * nz + z] = f(y, z);
            }
        }
        for y in 1..ny {
            for z in 1..nz {
                assert!((lorenzo2(&grid, nz, y, z) - f(y, z)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn lorenzo2_border_degrades_to_1d() {
        let (ny, nz) = (3, 3);
        let grid: Vec<f64> = (0..ny * nz).map(|i| i as f64).collect();
        // On the y = 0 row the stencil reduces to the z-predecessor.
        assert_eq!(lorenzo2(&grid, nz, 0, 1), grid[0]);
        assert_eq!(lorenzo2(&grid, nz, 0, 2), grid[1]);
        // At the origin it predicts zero.
        assert_eq!(lorenzo2(&grid, nz, 0, 0), 0.0);
    }

    #[test]
    fn lorenzo3_exact_on_bilinear_sums() {
        // The 3-D Lorenzo residual is the mixed third difference ΔxΔyΔz, so
        // it annihilates any sum of terms each independent of ≥1 axis:
        // 1, x, y, z, xy, xz, yz (but NOT xyz).
        let (nx, ny, nz) = (4, 4, 4);
        let f = |x: usize, y: usize, z: usize| {
            let (x, y, z) = (x as f64, y as f64, z as f64);
            1.0 + 2.0 * x + 3.0 * y + 4.0 * z + 5.0 * x * y + 6.0 * x * z + 7.0 * y * z
        };
        let mut grid = vec![0.0; nx * ny * nz];
        for x in 0..nx {
            for y in 0..ny {
                for z in 0..nz {
                    grid[(x * ny + y) * nz + z] = f(x, y, z);
                }
            }
        }
        for x in 1..nx {
            for y in 1..ny {
                for z in 1..nz {
                    let p = lorenzo3(&grid, ny, nz, x, y, z);
                    assert!((p - f(x, y, z)).abs() < 1e-9, "at ({x},{y},{z})");
                }
            }
        }
    }

    #[test]
    fn lorenzo3_first_plane_is_2d() {
        let (nx, ny, nz) = (2, 3, 3);
        let grid: Vec<f64> = (0..nx * ny * nz).map(|i| (i * i) as f64).collect();
        for y in 0..ny {
            for z in 0..nz {
                let p3 = lorenzo3(&grid, ny, nz, 0, y, z);
                let p2 = lorenzo2(&grid[..ny * nz], nz, y, z);
                assert_eq!(p3, p2);
            }
        }
    }

    #[test]
    fn lorenzo3_origin_predicts_zero() {
        let grid = vec![9.0; 27];
        assert_eq!(lorenzo3(&grid, 3, 3, 0, 0, 0), 0.0);
    }

    #[test]
    fn lorenzo3_constant_field_interior() {
        let grid = vec![5.0; 64];
        // Interior of a constant field: 3·5 − 3·5 + 5 = 5.
        assert_eq!(lorenzo3(&grid, 4, 4, 1, 1, 1), 5.0);
    }

    #[test]
    fn lorenzo3_interior_matches_general_stencil() {
        let (nx, ny, nz) = (4usize, 5usize, 6usize);
        let grid: Vec<f64> =
            (0..nx * ny * nz).map(|i| ((i * 37) % 101) as f64 * 0.25 - 3.0).collect();
        let (sx, sy) = (ny * nz, nz);
        for x in 1..nx {
            for y in 1..ny {
                for z in 1..nz {
                    let idx = (x * ny + y) * nz + z;
                    assert_eq!(
                        lorenzo3_interior(&grid, sx, sy, idx),
                        lorenzo3(&grid, ny, nz, x, y, z),
                        "at ({x},{y},{z})"
                    );
                }
            }
        }
    }
}
