//! Compression pipeline and container format.
//!
//! Assembles the SZ stages (Lorenzo → quantise → RLE-fold → Huffman →
//! optional LZSS) into a self-describing byte container, and runs the exact
//! mirror walk for decompression.
//!
//! ## Determinism contract
//! Both walks maintain the same `f64` reconstruction buffer and visit cells
//! in identical raster order, so predictions agree bit-for-bit and the
//! user-facing guarantee holds:
//!
//! * ABS mode: `|x' − x| ≤ eb` point-wise,
//! * PW_REL mode: `|x' − x| ≤ rel·|x|` for `|x| > zero_thresh`, and
//!   `x' = 0` with `|x| ≤ zero_thresh` otherwise.
//!
//! ## Hot path
//! The forward walk fuses Lorenzo prediction and quantisation into a single
//! raster pass: boundary cells (`x == 0`, `y == 0`, or `z == 0`) take the
//! branchy general stencil, interior spans use flat-index arithmetic
//! ([`crate::predictor::lorenzo3_interior`]). All per-partition working
//! buffers (reconstruction plane, code stream, fold output, frequency
//! counts) live in a reusable [`SzScratch`], fetched thread-locally by
//! [`compress_slice`]/[`decompress_slice`] — so compressing many partitions
//! (serially or one scoped worker per core) allocates only the output
//! container. Symbol statistics are counted in a dense array indexed by
//! quantisation code (bounded by `2·radius`) instead of a hash map.

use crate::bitstream::{BitReader, BitWriter};
use crate::huffman::{CodeBook, HuffmanError};
use crate::lossless::{lzss_compress, lzss_decompress, LzssError};
use crate::predictor::{lorenzo3, lorenzo3_interior};
use crate::quantizer::{Quantizer, UNPREDICTABLE};
use crate::rle::{fold_into, unfold, RUN_MARKER};
use crate::simd_walk;
use gridlab::{Dim3, Field3, Scalar};
use portable_simd::Backend;
use std::cell::RefCell;
use std::collections::HashMap;

const MAGIC: &[u8; 4] = b"RSZ1";
const VERSION: u8 = 1;
/// Default quantisation radius (same as SZ's default 2^15 bins).
pub const DEFAULT_RADIUS: u32 = 1 << 15;

/// Code spaces at most this large use dense array counting; anything wider
/// (exotic `with_radius` configurations) falls back to hash-map counting
/// rather than allocating gigabyte-scale scratch.
const DENSE_COUNT_LIMIT: usize = 1 << 20;

/// Error-bound mode, mirroring SZ's ABS and PW_REL.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorMode {
    /// Point-wise absolute bound `|x' − x| ≤ eb`.
    Abs(f64),
    /// Point-wise relative bound `|x' − x| ≤ rel·|x|`, implemented through
    /// the logarithmic transform. Values with `|x| ≤ zero_thresh` are
    /// reconstructed as exactly `0`.
    PwRel { rel: f64, zero_thresh: f64 },
}

impl ErrorMode {
    fn tag(&self) -> u8 {
        match self {
            ErrorMode::Abs(_) => 0,
            ErrorMode::PwRel { .. } => 1,
        }
    }
}

/// Compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SzConfig {
    pub mode: ErrorMode,
    /// Quantisation radius: codes span `1 ..= 2·radius − 1`.
    pub radius: u32,
    /// Apply the LZSS lossless pass to the container payload.
    pub lossless: bool,
}

impl SzConfig {
    /// ABS mode with the given bound.
    pub fn abs(eb: f64) -> Self {
        assert!(eb > 0.0 && eb.is_finite(), "error bound must be positive");
        Self { mode: ErrorMode::Abs(eb), radius: DEFAULT_RADIUS, lossless: false }
    }

    /// PW_REL mode with the given relative bound and zero threshold.
    pub fn pw_rel(rel: f64, zero_thresh: f64) -> Self {
        assert!(rel > 0.0 && rel < 1.0, "relative bound must be in (0, 1)");
        assert!(zero_thresh >= 0.0);
        Self {
            mode: ErrorMode::PwRel { rel, zero_thresh },
            radius: DEFAULT_RADIUS,
            lossless: false,
        }
    }

    /// Builder-style: enable the LZSS payload pass.
    pub fn with_lossless(mut self, on: bool) -> Self {
        self.lossless = on;
        self
    }

    /// Builder-style: override the quantisation radius.
    pub fn with_radius(mut self, radius: u32) -> Self {
        assert!(radius >= 2);
        self.radius = radius;
        self
    }
}

/// Errors surfaced by decompression (compression is total by construction).
#[derive(Debug)]
pub enum SzError {
    Format(String),
    Huffman(HuffmanError),
    Lossless(LzssError),
}

impl std::fmt::Display for SzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzError::Format(m) => write!(f, "container format error: {m}"),
            SzError::Huffman(e) => write!(f, "huffman error: {e}"),
            SzError::Lossless(e) => write!(f, "lossless error: {e}"),
        }
    }
}

impl std::error::Error for SzError {}

impl From<HuffmanError> for SzError {
    fn from(e: HuffmanError) -> Self {
        SzError::Huffman(e)
    }
}

impl From<LzssError> for SzError {
    fn from(e: LzssError) -> Self {
        SzError::Lossless(e)
    }
}

/// A compressed field: opaque bytes plus the parsed header.
#[derive(Debug, Clone)]
pub struct Compressed {
    bytes: Vec<u8>,
    dims: Dim3,
    mode: ErrorMode,
    n_unpredictable: usize,
}

impl Compressed {
    /// Full container size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Raw container bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Take ownership of the container bytes without copying.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Re-wrap container bytes (e.g. read back from storage).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SzError> {
        let h = Header::parse(&bytes)?;
        Ok(Self { dims: h.dims, mode: h.mode, n_unpredictable: 0, bytes })
    }

    /// Grid dimensions of the compressed field.
    pub fn dims(&self) -> Dim3 {
        self.dims
    }

    /// The error mode the data was compressed under.
    pub fn mode(&self) -> ErrorMode {
        self.mode
    }

    /// Number of values that had to be stored verbatim.
    pub fn n_unpredictable(&self) -> usize {
        self.n_unpredictable
    }

    /// Rate/ratio statistics for a `T`-typed original.
    pub fn stats<T: Scalar>(&self) -> CodecStats {
        let n = self.dims.len();
        let original = n * T::BYTES;
        CodecStats {
            original_bytes: original,
            compressed_bytes: self.bytes.len(),
            bit_rate: 8.0 * self.bytes.len() as f64 / n as f64,
            ratio: original as f64 / self.bytes.len() as f64,
        }
    }
}

/// Size accounting for one compression.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecStats {
    pub original_bytes: usize,
    pub compressed_bytes: usize,
    /// Bits per value.
    pub bit_rate: f64,
    /// `original / compressed`.
    pub ratio: f64,
}

// ---------------------------------------------------------------------------
// Varints (LEB128) for the run side-channel.
// ---------------------------------------------------------------------------

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, SzError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or_else(|| SzError::Format("varint truncated".into()))?;
        *pos += 1;
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 64 {
            return Err(SzError::Format("varint overflow".into()));
        }
    }
}

// ---------------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------------

struct Header {
    dims: Dim3,
    mode: ErrorMode,
    radius: u32,
    dom: u32,
    lossless: bool,
    payload_at: usize,
    tag: String,
}

impl Header {
    fn parse(bytes: &[u8]) -> Result<Header, SzError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], SzError> {
            if *pos + n > bytes.len() {
                return Err(SzError::Format("header truncated".into()));
            }
            let s = &bytes[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(SzError::Format("bad magic".into()));
        }
        let version = take(&mut pos, 1)?[0];
        if version != VERSION {
            return Err(SzError::Format(format!("unsupported version {version}")));
        }
        let tag_len = take(&mut pos, 1)?[0] as usize;
        let tag = std::str::from_utf8(take(&mut pos, tag_len)?)
            .map_err(|_| SzError::Format("bad scalar tag".into()))?
            .to_string();
        let mut dims = [0usize; 3];
        for d in &mut dims {
            let b: [u8; 8] = take(&mut pos, 8)?.try_into().expect("8");
            let v = u64::from_le_bytes(b);
            if v == 0 {
                return Err(SzError::Format("zero dimension".into()));
            }
            *d = v as usize;
        }
        let mode_tag = take(&mut pos, 1)?[0];
        let eb = f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let zt = f64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
        let mode = match mode_tag {
            0 => ErrorMode::Abs(eb),
            1 => ErrorMode::PwRel { rel: eb, zero_thresh: zt },
            t => return Err(SzError::Format(format!("unknown mode tag {t}"))),
        };
        let radius = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
        if radius < 2 {
            return Err(SzError::Format("radius too small".into()));
        }
        let dom = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4"));
        let flags = take(&mut pos, 1)?[0];
        Ok(Header {
            dims: Dim3::new(dims[0], dims[1], dims[2]),
            mode,
            radius,
            dom,
            lossless: flags & 1 != 0,
            payload_at: pos,
            tag,
        })
    }
}

fn write_header<T: Scalar>(cfg: &SzConfig, dims: Dim3, dom: u32, out: &mut Vec<u8>) {
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(T::TAG.len() as u8);
    out.extend_from_slice(T::TAG.as_bytes());
    for n in [dims.nx, dims.ny, dims.nz] {
        out.extend_from_slice(&(n as u64).to_le_bytes());
    }
    out.push(cfg.mode.tag());
    let (eb, zt) = match cfg.mode {
        ErrorMode::Abs(eb) => (eb, 0.0),
        ErrorMode::PwRel { rel, zero_thresh } => (rel, zero_thresh),
    };
    out.extend_from_slice(&eb.to_le_bytes());
    out.extend_from_slice(&zt.to_le_bytes());
    out.extend_from_slice(&cfg.radius.to_le_bytes());
    out.extend_from_slice(&dom.to_le_bytes());
    out.push(if cfg.lossless { 1 } else { 0 });
}

// ---------------------------------------------------------------------------
// Bitmaps (PW_REL side-channels)
// ---------------------------------------------------------------------------

fn pack_bitmap(bits: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

fn unpack_bitmap(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

// ---------------------------------------------------------------------------
// Reusable scratch
// ---------------------------------------------------------------------------

/// Reusable per-thread working memory for the compression/decompression hot
/// paths. All buffers are cleared (not shrunk) between fields, so a loop
/// over many partitions — the in situ pipeline's shape — performs no
/// per-partition allocation beyond the output container itself.
#[derive(Debug, Default)]
pub struct SzScratch {
    /// `f64` reconstruction buffer shared by both walks.
    recon: Vec<f64>,
    /// Transformed target values (identity for ABS, `ln|x|` for PW_REL).
    vals: Vec<f64>,
    /// Quantisation code stream.
    codes: Vec<u32>,
    /// Linear indices of verbatim-stored cells.
    unpred: Vec<usize>,
    /// Dense frequency counts indexed by code; zeroed sparsely via `touched`.
    freq: Vec<u64>,
    /// Codes with non-zero `freq` entries (for sparse reset + sorted pairs).
    touched: Vec<u32>,
    /// RLE-folded symbol stream and run side-channel.
    symbols: Vec<u32>,
    runs: Vec<u32>,
    /// Verbatim-cell rank prefix counts (SIMD reconstruction walk only).
    ranks: Vec<u32>,
    /// Four interleaved sub-histograms (SIMD-backend frequency count).
    freq4: Vec<u64>,
}

thread_local! {
    static TLS_SCRATCH: RefCell<SzScratch> = RefCell::new(SzScratch::default());
}

/// Run `f` with the calling thread's scratch buffer (fresh fallback if the
/// thread-local is unexpectedly busy).
fn with_tls_scratch<R>(f: impl FnOnce(&mut SzScratch) -> R) -> R {
    TLS_SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => f(&mut scratch),
        Err(_) => f(&mut SzScratch::default()),
    })
}

/// Count each value of `items` into `scratch.freq` (dense, `< limit`) and
/// return sorted `(value, count)` pairs. The dense array is reset sparsely
/// through `scratch.touched` so repeated small partitions stay cheap.
fn dense_sorted_counts(items: &[u32], limit: usize, scratch: &mut SzScratch) -> Vec<(u32, u64)> {
    if scratch.freq.len() < limit {
        scratch.freq.resize(limit, 0);
    }
    scratch.touched.clear();
    for &c in items {
        let slot = &mut scratch.freq[c as usize];
        if *slot == 0 {
            scratch.touched.push(c);
        }
        *slot += 1;
    }
    scratch.touched.sort_unstable();
    let pairs: Vec<(u32, u64)> =
        scratch.touched.iter().map(|&c| (c, scratch.freq[c as usize])).collect();
    for &c in &scratch.touched {
        scratch.freq[c as usize] = 0;
    }
    pairs
}

/// Widest code space the 4-way count will allocate sub-histograms for
/// (4 × 2^16 × 8 B = 2 MiB of scratch; wider spaces use the single
/// histogram, which is identical in output).
const QUAD_COUNT_LIMIT: usize = 1 << 16;

/// [`dense_sorted_counts`] with four interleaved sub-histograms: runs of
/// one dominant code no longer serialise on a single counter's
/// store-to-load chain, which is the bottleneck on smooth fields where one
/// code covers most cells. Counts are exact, so the folded result is
/// identical to the single-histogram path.
fn dense_sorted_counts_quad(
    items: &[u32],
    limit: usize,
    scratch: &mut SzScratch,
) -> Vec<(u32, u64)> {
    if scratch.freq4.len() < 4 * limit {
        scratch.freq4.resize(4 * limit, 0);
    }
    scratch.touched.clear();
    let freq4 = &mut scratch.freq4[..4 * limit];
    let touched = &mut scratch.touched;
    let mut bump = |lane: usize, c: u32| {
        let slot = &mut freq4[lane * limit + c as usize];
        if *slot == 0 {
            touched.push(c); // may repeat across lanes; deduped below
        }
        *slot += 1;
    };
    let mut chunks = items.chunks_exact(4);
    for quad in &mut chunks {
        bump(0, quad[0]);
        bump(1, quad[1]);
        bump(2, quad[2]);
        bump(3, quad[3]);
    }
    for &c in chunks.remainder() {
        bump(0, c);
    }
    touched.sort_unstable();
    touched.dedup();
    let pairs: Vec<(u32, u64)> = touched
        .iter()
        .map(|&c| (c, (0..4).map(|lane| freq4[lane * limit + c as usize]).sum()))
        .collect();
    for &c in touched.iter() {
        for lane in 0..4 {
            freq4[lane * limit + c as usize] = 0;
        }
    }
    pairs
}

/// Sorted `(value, count)` pairs via a hash map — the fallback for code
/// spaces too wide for dense counting.
fn hashed_sorted_counts(items: &[u32]) -> Vec<(u32, u64)> {
    let mut map: HashMap<u32, u64> = HashMap::new();
    for &c in items {
        *map.entry(c).or_insert(0) += 1;
    }
    let mut pairs: Vec<(u32, u64)> = map.into_iter().collect();
    pairs.sort_unstable();
    pairs
}

// ---------------------------------------------------------------------------
// The quantisation walk
// ---------------------------------------------------------------------------

/// One cell of the forward walk: quantise `vals[idx]` against `pred`,
/// recording either the code + accepted reconstruction or a verbatim marker.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn forward_cell<FS>(
    quant: &Quantizer,
    vals: &[f64],
    idx: usize,
    pred: f64,
    accept: &mut FS,
    codes: &mut Vec<u32>,
    recon: &mut [f64],
    unpred: &mut Vec<usize>,
) where
    FS: FnMut(usize, f64) -> Option<f64>,
{
    let val = vals[idx];
    if let Some((code, r)) = quant.quantize(val, pred) {
        if let Some(keep) = accept(idx, r) {
            codes.push(code);
            recon[idx] = keep;
            return;
        }
    }
    codes.push(UNPREDICTABLE);
    unpred.push(idx);
    recon[idx] = val; // exact in the transformed domain
}

/// Forward walk in an arbitrary transformed domain, fused: Lorenzo
/// prediction and quantisation happen in one raster pass over the
/// reconstruction buffer.
///
/// `vals[i]` is the value to encode at linear index `i`; `accept(i, recon)`
/// lets the caller verify/override in the *original* domain and decide
/// whether the reconstruction is acceptable (returning the value to keep in
/// the reconstruction buffer, or `None` to force verbatim storage, which
/// records the cell index in `scratch.unpred`).
fn forward_walk<FS>(
    dims: Dim3,
    quant: &Quantizer,
    vals: &[f64],
    mut accept: FS,
    scratch: &mut SzScratch,
) where
    FS: FnMut(usize, f64) -> Option<f64>,
{
    let n = dims.len();
    let (ny, nz) = (dims.ny, dims.nz);
    let (sx, sy) = (ny * nz, nz);
    scratch.recon.clear();
    scratch.recon.resize(n, 0.0);
    scratch.codes.clear();
    scratch.codes.reserve(n);
    scratch.unpred.clear();
    let SzScratch { recon, codes, unpred, .. } = scratch;
    let recon = &mut recon[..];
    let mut idx = 0usize;
    for x in 0..dims.nx {
        for y in 0..ny {
            if x == 0 || y == 0 {
                // Boundary planes: the general stencil's zero-extension
                // handles the dimensional fallback.
                for z in 0..nz {
                    let pred = lorenzo3(recon, ny, nz, x, y, z);
                    forward_cell(quant, vals, idx, pred, &mut accept, codes, recon, unpred);
                    idx += 1;
                }
            } else {
                // Interior row: peel z == 0, then branch-free stencil.
                let pred = lorenzo3(recon, ny, nz, x, y, 0);
                forward_cell(quant, vals, idx, pred, &mut accept, codes, recon, unpred);
                idx += 1;
                for _z in 1..nz {
                    let pred = lorenzo3_interior(recon, sx, sy, idx);
                    forward_cell(quant, vals, idx, pred, &mut accept, codes, recon, unpred);
                    idx += 1;
                }
            }
        }
    }
    debug_assert_eq!(idx, n);
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// Compress a field under `cfg`. Total: never fails.
pub fn compress<T: Scalar>(field: &Field3<T>, cfg: &SzConfig) -> Compressed {
    compress_slice(field.as_slice(), field.dims(), cfg)
}

/// Compress a raw slice laid out as `dims` (z fastest).
///
/// Uses the calling thread's scratch buffers; see [`compress_slice_with`]
/// to manage scratch explicitly.
pub fn compress_slice<T: Scalar>(values: &[T], dims: Dim3, cfg: &SzConfig) -> Compressed {
    with_tls_scratch(|scratch| compress_slice_with(values, dims, cfg, scratch))
}

/// [`compress_slice`] with caller-owned scratch (for benchmarks or callers
/// that want deterministic buffer lifetimes). Uses the process-wide SIMD
/// dispatch decision ([`portable_simd::backend`]).
pub fn compress_slice_with<T: Scalar>(
    values: &[T],
    dims: Dim3,
    cfg: &SzConfig,
    scratch: &mut SzScratch,
) -> Compressed {
    compress_slice_backend(values, dims, cfg, scratch, portable_simd::backend())
}

/// [`compress_slice_with`] with an explicit kernel backend — the hook the
/// forced-backend parity suites and `diag_simd` use to compare the scalar
/// raster walk against the SIMD wavefront in one process. Both backends
/// produce byte-identical containers on every input.
pub fn compress_slice_backend<T: Scalar>(
    values: &[T],
    dims: Dim3,
    cfg: &SzConfig,
    scratch: &mut SzScratch,
    backend: Backend,
) -> Compressed {
    assert_eq!(values.len(), dims.len(), "slice length must match dims");
    let n = dims.len();

    // Phase 1: fused predict/quantise walk (mode-specific target domain).
    let (sign_bitmap, zero_bitmap) = match cfg.mode {
        ErrorMode::Abs(eb) => {
            let quant = Quantizer::new(eb, cfg.radius);
            scratch.vals.clear();
            scratch.vals.extend(values.iter().map(|v| v.to_f64()));
            let vals = std::mem::take(&mut scratch.vals);
            if backend != Backend::Scalar {
                let SzScratch { recon, codes, unpred, .. } = &mut *scratch;
                simd_walk::forward_walk_abs_wavefront::<T>(
                    dims, &quant, &vals, codes, unpred, recon,
                );
            } else {
                forward_walk(
                    dims,
                    &quant,
                    &vals,
                    |i, r| {
                        // Verify in T precision: the decompressor's output
                        // cast must still honour the bound.
                        let rt = T::from_f64(r).to_f64();
                        if (rt - vals[i]).abs() <= eb {
                            Some(r)
                        } else {
                            None
                        }
                    },
                    scratch,
                );
            }
            scratch.vals = vals;
            (None, None)
        }
        ErrorMode::PwRel { rel, zero_thresh } => {
            let eb_log = (1.0 + rel).ln() / 2.0;
            let quant = Quantizer::new(eb_log, cfg.radius);
            let floor = zero_thresh.max(f64::MIN_POSITIVE);
            let signs: Vec<bool> = values.iter().map(|v| v.to_f64() < 0.0).collect();
            let zeros: Vec<bool> = values.iter().map(|v| v.to_f64().abs() <= zero_thresh).collect();
            scratch.vals.clear();
            scratch.vals.extend(values.iter().map(|v| v.to_f64().abs().max(floor).ln()));
            let vals = std::mem::take(&mut scratch.vals);
            forward_walk(
                dims,
                &quant,
                &vals,
                |i, r| {
                    if zeros[i] {
                        // Output is forced to 0; any in-bound recon is fine
                        // for the prediction walk.
                        return Some(r);
                    }
                    let v = values[i].to_f64();
                    let mag = r.exp();
                    let out = T::from_f64(if signs[i] { -mag } else { mag }).to_f64();
                    if (out - v).abs() <= rel * v.abs() {
                        Some(r)
                    } else {
                        None
                    }
                },
                scratch,
            );
            scratch.vals = vals;
            (Some(pack_bitmap(&signs)), Some(pack_bitmap(&zeros)))
        }
    };
    debug_assert_eq!(scratch.codes.len(), n);
    let n_unpredictable = scratch.unpred.len();

    // Phase 2: dominant-code RLE folding + Huffman, with dense statistics.
    // Codes are bounded by 2·radius, so counting indexes a flat array; the
    // folded-stream frequencies are then derived arithmetically (literal
    // dominant occurrences = total − folded cells) instead of re-counting.
    let code_space = 2 * cfg.radius as usize;
    let codes = std::mem::take(&mut scratch.codes);
    let code_counts = if code_space <= DENSE_COUNT_LIMIT {
        if backend != Backend::Scalar && code_space <= QUAD_COUNT_LIMIT {
            dense_sorted_counts_quad(&codes, code_space, scratch)
        } else {
            dense_sorted_counts(&codes, code_space, scratch)
        }
    } else {
        hashed_sorted_counts(&codes)
    };
    // Most frequent code, ties toward the smaller code (counts are sorted
    // by code, so strict `>` keeps the first maximum).
    let dom = code_counts
        .iter()
        .fold((0u32, 0u64), |best, &(c, k)| if k > best.1 { (c, k) } else { best })
        .0;
    let mut symbols = std::mem::take(&mut scratch.symbols);
    let mut runs = std::mem::take(&mut scratch.runs);
    fold_into(&codes, dom, &mut symbols, &mut runs);
    let folded_cells: u64 = runs.iter().map(|&r| r as u64).sum();
    let mut freq_pairs: Vec<(u32, u64)> = Vec::with_capacity(code_counts.len() + 1);
    for &(c, k) in &code_counts {
        if c == dom {
            let literal = k - folded_cells;
            if literal > 0 {
                freq_pairs.push((c, literal));
            }
        } else {
            freq_pairs.push((c, k));
        }
    }
    if !runs.is_empty() {
        freq_pairs.push((RUN_MARKER, runs.len() as u64)); // RUN_MARKER = u32::MAX sorts last
    }
    let book = CodeBook::from_sorted_freqs(&freq_pairs);
    let mut bw = BitWriter::new();
    book.encode(&symbols, &mut bw).expect("all symbols are in the book");
    let bitstream = bw.into_bytes();

    // Phase 3: payload assembly.
    let mut payload = Vec::new();
    write_varint(&mut payload, symbols.len() as u64);
    write_varint(&mut payload, book.entries().len() as u64);
    // Table entries sorted by symbol, delta-varint coded: quantisation
    // codes cluster around the bias, so deltas are tiny. This matters for
    // small partitions where a flat 5-byte/entry table would dominate the
    // container.
    let mut by_symbol: Vec<(u32, u8)> = book.entries().to_vec();
    by_symbol.sort_unstable();
    let mut prev = 0u32;
    for &(sym, len) in &by_symbol {
        write_varint(&mut payload, (sym - prev) as u64);
        payload.push(len);
        prev = sym;
    }
    write_varint(&mut payload, bitstream.len() as u64);
    payload.extend_from_slice(&bitstream);
    write_varint(&mut payload, runs.len() as u64);
    for &r in &runs {
        write_varint(&mut payload, r as u64);
    }
    write_varint(&mut payload, n_unpredictable as u64);
    for &i in &scratch.unpred {
        values[i].write_le(&mut payload);
    }
    if let (Some(sb), Some(zb)) = (&sign_bitmap, &zero_bitmap) {
        payload.extend_from_slice(sb);
        payload.extend_from_slice(zb);
    }
    scratch.codes = codes;
    scratch.symbols = symbols;
    scratch.runs = runs;

    let payload = if cfg.lossless { lzss_compress(&payload) } else { payload };

    let mut bytes = Vec::with_capacity(64 + payload.len());
    write_header::<T>(cfg, dims, dom, &mut bytes);
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&payload);

    Compressed { bytes, dims, mode: cfg.mode, n_unpredictable }
}

/// Parse just the header of container bytes and return the grid dims —
/// a borrowing probe for readers that must not pay a payload copy.
pub fn probe_dims(bytes: &[u8]) -> Result<Dim3, SzError> {
    Ok(Header::parse(bytes)?.dims)
}

/// Decompress into a field.
pub fn decompress<T: Scalar>(c: &Compressed) -> Result<Field3<T>, SzError> {
    let (values, dims) = decompress_slice::<T>(c.as_bytes())?;
    Field3::from_vec(dims, values).map_err(|e| SzError::Format(e.to_string()))
}

/// Decompress raw container bytes; returns the values and their dims.
pub fn decompress_slice<T: Scalar>(bytes: &[u8]) -> Result<(Vec<T>, Dim3), SzError> {
    with_tls_scratch(|scratch| decompress_slice_with(bytes, scratch))
}

/// [`decompress_slice`] with caller-owned scratch. Uses the process-wide
/// SIMD dispatch decision ([`portable_simd::backend`]).
pub fn decompress_slice_with<T: Scalar>(
    bytes: &[u8],
    scratch: &mut SzScratch,
) -> Result<(Vec<T>, Dim3), SzError> {
    decompress_slice_backend(bytes, scratch, portable_simd::backend())
}

/// [`decompress_slice_with`] with an explicit kernel backend (parity-test
/// hook; see [`compress_slice_backend`]).
pub fn decompress_slice_backend<T: Scalar>(
    bytes: &[u8],
    scratch: &mut SzScratch,
    backend: Backend,
) -> Result<(Vec<T>, Dim3), SzError> {
    let h = Header::parse(bytes)?;
    if h.tag != T::TAG {
        return Err(SzError::Format(format!(
            "scalar tag mismatch: container has {}, requested {}",
            h.tag,
            T::TAG
        )));
    }
    let dims = h.dims;
    let n = dims.len();
    let mut pos = h.payload_at;
    let take = |pos: &mut usize, k: usize| -> Result<&[u8], SzError> {
        if *pos + k > bytes.len() {
            return Err(SzError::Format("container truncated".into()));
        }
        let s = &bytes[*pos..*pos + k];
        *pos += k;
        Ok(s)
    };
    let payload_len = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8")) as usize;
    let raw = take(&mut pos, payload_len)?;
    let payload_owned;
    let payload: &[u8] = if h.lossless {
        payload_owned = lzss_decompress(raw)?;
        &payload_owned
    } else {
        raw
    };

    // --- parse payload sections ---
    let mut p = 0usize;
    let ptake = |p: &mut usize, k: usize| -> Result<&[u8], SzError> {
        if *p + k > payload.len() {
            return Err(SzError::Format("payload truncated".into()));
        }
        let s = &payload[*p..*p + k];
        *p += k;
        Ok(s)
    };
    let pvarint = |p: &mut usize| -> Result<u64, SzError> {
        let mut vp = *p;
        let v = read_varint(payload, &mut vp)?;
        *p = vp;
        Ok(v)
    };
    let n_symbols = pvarint(&mut p)? as usize;
    let table_len = pvarint(&mut p)? as usize;
    let mut entries = Vec::with_capacity(table_len);
    let mut prev = 0u64;
    for _ in 0..table_len {
        let delta = pvarint(&mut p)?;
        let sym = prev + delta;
        prev = sym;
        if sym > u32::MAX as u64 {
            return Err(SzError::Format("symbol overflow in table".into()));
        }
        let len = ptake(&mut p, 1)?[0];
        if len == 0 || len > 64 {
            return Err(SzError::Format("invalid code length".into()));
        }
        entries.push((sym as u32, len));
    }
    let book = CodeBook::from_lengths(entries);
    let bs_len = pvarint(&mut p)? as usize;
    let bitstream = ptake(&mut p, bs_len)?;
    let mut reader = BitReader::new(bitstream);
    let symbols = book.decode(&mut reader, n_symbols)?;

    let n_runs = pvarint(&mut p)? as usize;
    let mut runs = Vec::with_capacity(n_runs);
    for _ in 0..n_runs {
        runs.push(pvarint(&mut p)? as u32);
    }
    let n_unpred = pvarint(&mut p)? as usize;
    let unpred_bytes = ptake(&mut p, n_unpred * T::BYTES)?;
    let mut unpredictable = Vec::with_capacity(n_unpred);
    for i in 0..n_unpred {
        unpredictable.push(T::read_le(&unpred_bytes[i * T::BYTES..]));
    }

    let (signs, zeros) = match h.mode {
        ErrorMode::Abs(_) => (None, None),
        ErrorMode::PwRel { .. } => {
            let bm_len = n.div_ceil(8);
            let sb = unpack_bitmap(ptake(&mut p, bm_len)?, n);
            let zb = unpack_bitmap(ptake(&mut p, bm_len)?, n);
            (Some(sb), Some(zb))
        }
    };

    // --- reverse the RLE fold ---
    let codes = unfold(&symbols, &runs, h.dom)
        .ok_or_else(|| SzError::Format("run side-channel mismatch".into()))?;
    if codes.len() != n {
        return Err(SzError::Format(format!(
            "code count {} does not match {} cells",
            codes.len(),
            n
        )));
    }
    if codes.iter().any(|&c| c != UNPREDICTABLE && c != RUN_MARKER && c > 2 * h.radius - 1) {
        return Err(SzError::Format("quantisation code out of range".into()));
    }
    let verbatim_cells = codes.iter().filter(|&&c| c == UNPREDICTABLE).count();
    if verbatim_cells > unpredictable.len() {
        return Err(SzError::Format("missing verbatim value".into()));
    }
    if verbatim_cells < unpredictable.len() {
        return Err(SzError::Format("unused verbatim values".into()));
    }

    // --- mirror walk, pass 1: rebuild the f64 reconstruction buffer ---
    let (eb_walk, is_pwrel, rel_floor) = match h.mode {
        ErrorMode::Abs(eb) => (eb, false, 0.0),
        ErrorMode::PwRel { rel, zero_thresh } => {
            ((1.0 + rel).ln() / 2.0, true, zero_thresh.max(f64::MIN_POSITIVE))
        }
    };
    let quant = Quantizer::new(eb_walk, h.radius);
    let (ny, nz) = (dims.ny, dims.nz);
    let (sx, sy) = (ny * nz, nz);
    // Verbatim cells enter the prediction buffer in the transformed domain.
    let up_recon: Vec<f64> = unpredictable
        .iter()
        .map(|v| if is_pwrel { v.to_f64().abs().max(rel_floor).ln() } else { v.to_f64() })
        .collect();
    if backend != Backend::Scalar {
        let SzScratch { recon, ranks, .. } = &mut *scratch;
        simd_walk::recon_walk_wavefront(dims, &quant, &codes, &up_recon, ranks, recon);
    } else {
        scratch.recon.clear();
        scratch.recon.resize(n, 0.0);
        let recon = &mut scratch.recon[..];
        let mut up_pos = 0usize;
        let mut idx = 0usize;
        for x in 0..dims.nx {
            for y in 0..ny {
                if x == 0 || y == 0 {
                    for z in 0..nz {
                        let code = codes[idx];
                        if code == UNPREDICTABLE {
                            recon[idx] = up_recon[up_pos];
                            up_pos += 1;
                        } else {
                            let pred = lorenzo3(recon, ny, nz, x, y, z);
                            recon[idx] = quant.dequantize(code, pred);
                        }
                        idx += 1;
                    }
                } else {
                    let code = codes[idx];
                    if code == UNPREDICTABLE {
                        recon[idx] = up_recon[up_pos];
                        up_pos += 1;
                    } else {
                        let pred = lorenzo3(recon, ny, nz, x, y, 0);
                        recon[idx] = quant.dequantize(code, pred);
                    }
                    idx += 1;
                    for _z in 1..nz {
                        let code = codes[idx];
                        if code == UNPREDICTABLE {
                            recon[idx] = up_recon[up_pos];
                            up_pos += 1;
                        } else {
                            let pred = lorenzo3_interior(recon, sx, sy, idx);
                            recon[idx] = quant.dequantize(code, pred);
                        }
                        idx += 1;
                    }
                }
            }
        }
    }
    let recon = &scratch.recon[..];

    // --- mirror walk, pass 2: emit T values in the original domain ---
    let mut out: Vec<T> = Vec::with_capacity(n);
    let mut up_pos = 0usize;
    if is_pwrel {
        let zeros = zeros.as_ref().expect("pwrel bitmaps present");
        let signs = signs.as_ref().expect("pwrel bitmaps present");
        for idx in 0..n {
            if codes[idx] == UNPREDICTABLE {
                out.push(unpredictable[up_pos]);
                up_pos += 1;
            } else if zeros[idx] {
                out.push(T::zero());
            } else {
                let mag = recon[idx].exp();
                out.push(T::from_f64(if signs[idx] { -mag } else { mag }));
            }
        }
    } else {
        for idx in 0..n {
            if codes[idx] == UNPREDICTABLE {
                out.push(unpredictable[up_pos]);
                up_pos += 1;
            } else {
                out.push(T::from_f64(recon[idx]));
            }
        }
    }
    Ok((out, dims))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wavy_field(n: usize) -> Field3<f32> {
        Field3::from_fn(Dim3::cube(n), |x, y, z| {
            let (x, y, z) = (x as f32, y as f32, z as f32);
            (x * 0.3).sin() * 40.0 + (y * 0.2).cos() * 25.0 + (z * 0.45).sin() * 10.0 + 100.0
        })
    }

    #[test]
    fn abs_roundtrip_respects_bound() {
        let f = wavy_field(16);
        for eb in [1.0, 0.1, 0.01] {
            let c = compress(&f, &SzConfig::abs(eb));
            let g: Field3<f32> = decompress(&c).unwrap();
            assert_eq!(g.dims(), f.dims());
            let err = f.max_abs_diff(&g);
            assert!(err <= eb + 1e-9, "eb={eb} got {err}");
        }
    }

    #[test]
    fn non_finite_cells_roundtrip_bit_exactly() {
        // NaN/∞ make the residual unpredictable: such cells are stored
        // verbatim and come back bit-for-bit. The error bound is vacuous
        // for them — quarantine, never a panic or a silent rewrite.
        let mut f = wavy_field(8);
        f.as_mut_slice()[3] = f32::NAN;
        f.as_mut_slice()[77] = f32::INFINITY;
        f.as_mut_slice()[200] = f32::NEG_INFINITY;
        let c = compress(&f, &SzConfig::abs(0.1));
        let g: Field3<f32> = decompress(&c).unwrap();
        for (a, b) in f.as_slice().iter().zip(g.as_slice()) {
            if a.is_finite() {
                assert!((a - b).abs() <= 0.1 + 1e-9, "bound violated near poisoned cell");
            } else {
                assert_eq!(a.to_bits(), b.to_bits(), "non-finite cell must survive bit-exactly");
            }
        }
    }

    #[test]
    fn smooth_field_compresses_hard() {
        let f = wavy_field(32);
        let c = compress(&f, &SzConfig::abs(0.5));
        let s = c.stats::<f32>();
        assert!(s.ratio > 16.0, "ratio {}", s.ratio);
        assert!(s.bit_rate < 2.0, "bit rate {}", s.bit_rate);
    }

    #[test]
    fn higher_bound_means_higher_ratio() {
        let f = wavy_field(16);
        let r1 = compress(&f, &SzConfig::abs(0.01)).stats::<f32>().ratio;
        let r2 = compress(&f, &SzConfig::abs(1.0)).stats::<f32>().ratio;
        assert!(r2 > r1, "{r2} <= {r1}");
    }

    #[test]
    fn lossless_pass_roundtrips() {
        let f = wavy_field(12);
        let c = compress(&f, &SzConfig::abs(0.1).with_lossless(true));
        let g: Field3<f32> = decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) <= 0.1 + 1e-9);
    }

    #[test]
    fn constant_field_is_tiny() {
        let f = Field3::constant(Dim3::cube(32), 42.0f32);
        let c = compress(&f, &SzConfig::abs(0.001));
        assert!(c.len() < 400, "container {} bytes", c.len());
        let g: Field3<f32> = decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) <= 0.001);
    }

    #[test]
    fn random_noise_still_bounded() {
        let mut state = 77u64;
        let f = Field3::from_fn(Dim3::cube(10), |_, _, _| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) as f32 * 2000.0
        });
        let eb = 0.5;
        let c = compress(&f, &SzConfig::abs(eb));
        let g: Field3<f32> = decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) <= eb + 1e-9);
    }

    #[test]
    fn pwrel_roundtrip_respects_relative_bound() {
        let f = Field3::from_fn(Dim3::cube(12), |x, y, z| {
            let v = (1.0 + x as f64 + 10.0 * y as f64) * (z as f64 + 1.0);
            (if (x + y) % 2 == 0 { v } else { -v }) as f32
        });
        let rel = 0.01;
        let c = compress(&f, &SzConfig::pw_rel(rel, 1e-12));
        let g: Field3<f32> = decompress(&c).unwrap();
        for (a, b) in f.as_slice().iter().zip(g.as_slice()) {
            let (a, b) = (*a as f64, *b as f64);
            assert!((a - b).abs() <= rel * a.abs() + 1e-12, "{a} vs {b}");
        }
    }

    #[test]
    fn pwrel_zero_threshold_zeros_small_values() {
        let f = Field3::from_fn(Dim3::cube(8), |x, _, _| if x == 0 { 1e-9f32 } else { 5.0 });
        let c = compress(&f, &SzConfig::pw_rel(0.05, 1e-6));
        let g: Field3<f32> = decompress(&c).unwrap();
        assert_eq!(g.get(0, 3, 3), 0.0);
        assert!((g.get(4, 3, 3) - 5.0).abs() <= 0.25);
    }

    #[test]
    fn f64_roundtrip() {
        let f = Field3::from_fn(Dim3::cube(8), |x, y, z| (x + y + z) as f64 * 1.7);
        let c = compress(&f, &SzConfig::abs(0.01));
        let g: Field3<f64> = decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) <= 0.01);
    }

    #[test]
    fn container_roundtrip_through_bytes() {
        let f = wavy_field(8);
        let c = compress(&f, &SzConfig::abs(0.1));
        let c2 = Compressed::from_bytes(c.as_bytes().to_vec()).unwrap();
        assert_eq!(c2.dims(), f.dims());
        let g: Field3<f32> = decompress(&c2).unwrap();
        assert!(f.max_abs_diff(&g) <= 0.1 + 1e-9);
    }

    #[test]
    fn wrong_scalar_type_rejected() {
        let f = wavy_field(8);
        let c = compress(&f, &SzConfig::abs(0.1));
        assert!(decompress::<f64>(&c).is_err());
    }

    #[test]
    fn corrupt_container_rejected() {
        let f = wavy_field(8);
        let mut bytes = compress(&f, &SzConfig::abs(0.1)).as_bytes().to_vec();
        bytes[0] = b'X';
        assert!(Compressed::from_bytes(bytes).is_err());
    }

    #[test]
    fn truncated_container_rejected() {
        let f = wavy_field(8);
        let bytes = compress(&f, &SzConfig::abs(0.1)).as_bytes().to_vec();
        let half = bytes.len() / 2;
        assert!(decompress_slice::<f32>(&bytes[..half]).is_err());
    }

    #[test]
    fn stats_are_consistent() {
        let f = wavy_field(16);
        let c = compress(&f, &SzConfig::abs(0.1));
        let s = c.stats::<f32>();
        assert_eq!(s.original_bytes, 16 * 16 * 16 * 4);
        assert_eq!(s.compressed_bytes, c.len());
        assert!((s.ratio - s.original_bytes as f64 / s.compressed_bytes as f64).abs() < 1e-12);
        assert!(
            (s.bit_rate - 8.0 * s.compressed_bytes as f64 / (16.0 * 16.0 * 16.0)).abs() < 1e-12
        );
    }

    #[test]
    fn error_distribution_is_roughly_uniform() {
        // Validates the paper's Eq. 3 premise on this implementation.
        let f = wavy_field(24);
        let eb = 0.2;
        let c = compress(&f, &SzConfig::abs(eb));
        let g: Field3<f32> = decompress(&c).unwrap();
        let errs: Vec<f64> =
            f.as_slice().iter().zip(g.as_slice()).map(|(&a, &b)| a as f64 - b as f64).collect();
        let mean: f64 = errs.iter().sum::<f64>() / errs.len() as f64;
        let var: f64 =
            errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errs.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        // Uniform on [-eb, eb] has variance eb²/3; allow generous slack for
        // the dominant-code structure of smooth fields.
        assert!(var > 0.2 * eb * eb / 3.0 && var < 2.0 * eb * eb / 3.0, "var {var}");
    }

    #[test]
    fn explicit_scratch_reuse_is_byte_identical() {
        // One scratch across many different fields/shapes must not leak
        // state between compressions.
        let mut scratch = SzScratch::default();
        let cfg = SzConfig::abs(0.1);
        for dims in [Dim3::cube(12), Dim3::new(1, 1, 40), Dim3::new(5, 9, 2), Dim3::cube(12)] {
            let f = Field3::from_fn(dims, |x, y, z| ((x * 31 + y * 7 + z * 3) % 97) as f32 * 0.5);
            let fresh = compress_slice_with(f.as_slice(), dims, &cfg, &mut SzScratch::default());
            let reused = compress_slice_with(f.as_slice(), dims, &cfg, &mut scratch);
            assert_eq!(fresh.as_bytes(), reused.as_bytes(), "scratch leak on {dims:?}");
            let (via_scratch, _) =
                decompress_slice_with::<f32>(fresh.as_bytes(), &mut scratch).unwrap();
            let (via_fresh, _) = decompress_slice::<f32>(fresh.as_bytes()).unwrap();
            assert_eq!(via_scratch, via_fresh);
        }
    }

    #[test]
    fn simd_and_scalar_backends_are_byte_identical() {
        // The tentpole invariant: the wavefront walk must emit the exact
        // container bytes of the raster walk, and reconstruct the exact
        // output, on smooth, noisy, and poisoned fields of awkward shapes.
        // (On non-AVX2 hosts the Avx2 request runs the baseline clone of
        // the same wavefront body — the comparison still bites.)
        let mut scratch = SzScratch::default();
        let shapes = [
            Dim3::cube(1),
            Dim3::new(1, 1, 4096),
            Dim3::new(4096, 1, 1),
            Dim3::new(3, 5, 7),
            Dim3::new(2, 17, 13),
            Dim3::cube(12),
        ];
        for dims in shapes {
            let mut state = 0x9e3779b97f4a7c15u64 ^ dims.len() as u64;
            let mut f = Field3::from_fn(dims, |x, y, z| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let noise = ((state >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.3;
                ((x as f64 * 0.3).sin() * 40.0 + (y as f64 + z as f64) * 0.7 + noise) as f32
            });
            // Poison a few cells: verbatim fallback must agree lane-for-lane.
            let n = dims.len();
            f.as_mut_slice()[n / 3] = f32::NAN;
            f.as_mut_slice()[n / 2] = f32::INFINITY;
            for cfg in [SzConfig::abs(0.1), SzConfig::abs(1e-6), SzConfig::abs(f64::MAX)] {
                let a =
                    compress_slice_backend(f.as_slice(), dims, &cfg, &mut scratch, Backend::Scalar);
                let b =
                    compress_slice_backend(f.as_slice(), dims, &cfg, &mut scratch, Backend::Avx2);
                assert_eq!(a.as_bytes(), b.as_bytes(), "compress diverged on {dims:?}");
                let (da, _) =
                    decompress_slice_backend::<f32>(a.as_bytes(), &mut scratch, Backend::Scalar)
                        .unwrap();
                let (db, _) =
                    decompress_slice_backend::<f32>(a.as_bytes(), &mut scratch, Backend::Avx2)
                        .unwrap();
                let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&da), bits(&db), "decompress diverged on {dims:?}");
            }
        }
    }

    #[test]
    fn quad_count_matches_single_histogram() {
        // Same scratch across both paths and repeated calls: identical
        // pairs and a clean sparse reset either way.
        let mut scratch = SzScratch::default();
        let mut state = 5u64;
        let items: Vec<u32> = (0..10_007)
            .map(|i| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                if i % 3 == 0 {
                    7
                } else {
                    (state % 50) as u32
                }
            })
            .collect();
        for slice in [&items[..], &items[..7], &items[..0], &items[..4]] {
            let single = dense_sorted_counts(slice, 64, &mut scratch);
            let quad = dense_sorted_counts_quad(slice, 64, &mut scratch);
            assert_eq!(single, quad, "diverged on {} items", slice.len());
        }
    }

    #[test]
    fn simd_backend_handles_pwrel_containers() {
        // PwRel compression still uses the raster walk, but decompression's
        // pass 1 is mode-agnostic and runs the wavefront — outputs must
        // match the scalar mirror walk bit-for-bit.
        let mut scratch = SzScratch::default();
        let f = Field3::from_fn(Dim3::new(6, 9, 11), |x, y, z| {
            let v = (1.0 + x as f64 + 10.0 * y as f64) * (z as f64 + 1.0);
            (if (x + y) % 2 == 0 { v } else { -v }) as f32
        });
        let c = compress(&f, &SzConfig::pw_rel(0.01, 1e-12));
        let (da, _) =
            decompress_slice_backend::<f32>(c.as_bytes(), &mut scratch, Backend::Scalar).unwrap();
        let (db, _) =
            decompress_slice_backend::<f32>(c.as_bytes(), &mut scratch, Backend::Avx2).unwrap();
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&da), bits(&db));
    }

    #[test]
    fn huge_radius_falls_back_to_hashed_counting() {
        // 2·radius beyond DENSE_COUNT_LIMIT must not allocate a dense array
        // (and must produce the same container as any other path would).
        let f = wavy_field(8);
        let cfg = SzConfig::abs(0.05).with_radius(1 << 24);
        let c = compress(&f, &cfg);
        let g: Field3<f32> = decompress(&c).unwrap();
        assert!(f.max_abs_diff(&g) <= 0.05 + 1e-9);
    }
}
