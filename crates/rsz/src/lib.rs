//! # rsz — a pure-Rust SZ-class error-bounded lossy compressor
//!
//! The paper compresses Nyx fields with SZ/cuSZ through FFI; no native Rust
//! SZ exists, so this crate re-implements the SZ algorithm family from
//! scratch (the substitution DESIGN.md documents):
//!
//! 1. **Prediction** — a 1/2/3-D Lorenzo predictor over *reconstructed*
//!    neighbours ([`predictor`]), exactly as CPU-SZ does, so compressor and
//!    decompressor stay in lockstep and errors never accumulate.
//! 2. **Error-controlled linear-scaling quantisation** ([`quantizer`]) —
//!    the prediction residual is quantised in units of `2·eb`; any value the
//!    quantiser cannot bound is stored verbatim ("unpredictable").
//! 3. **Entropy coding** — run-length folding of the dominant code followed
//!    by canonical Huffman ([`huffman`], [`rle`]) over a bit stream
//!    ([`bitstream`]), plus an optional LZSS lossless pass ([`lossless`]).
//!
//! Two error modes are supported, mirroring SZ:
//! * [`ErrorMode::Abs`] — point-wise absolute bound `|x' − x| ≤ eb`;
//! * [`ErrorMode::PwRel`] — point-wise relative bound via the standard
//!   logarithmic transform.
//!
//! The crate guarantees the bound *by construction* and the test-suite
//! (incl. property tests) verifies it on adversarial inputs. The error the
//! quantiser injects is approximately uniform on `[-eb, eb]` — the paper's
//! Eq. 3 — which the model layer (`adaptive-config`) depends on and
//! validates empirically (Fig. 3).
//!
//! **Non-finite input is quarantined, not rejected**: a NaN/∞ cell (and any
//! cell whose residual against it is non-finite) is unpredictable by
//! definition, so it is stored verbatim and decodes **bit-exactly**. The
//! error bound is vacuous for such cells; compression never panics on them.
//! Callers that want poisoned fields refused outright must screen upstream
//! (the streaming session's ingestion check does).

//!
//! **SIMD backends**: the hot walks have wavefront SIMD variants
//! ([`simd_walk`]) dispatched at runtime through `vendor/portable_simd`;
//! scalar and SIMD paths emit byte-identical containers. Force a path
//! process-wide with `HPDC21_SIMD=force|off`, or per call via
//! [`compress_slice_backend`]/[`decompress_slice_backend`].

pub mod bitstream;
pub mod compress;
pub mod huffman;
pub mod lossless;
pub mod predictor;
pub mod quantizer;
pub mod rle;
mod simd_walk;

pub use compress::{
    compress, compress_slice, compress_slice_backend, compress_slice_with, decompress,
    decompress_slice, decompress_slice_backend, decompress_slice_with, CodecStats, Compressed,
    ErrorMode, SzConfig, SzError, SzScratch,
};
pub use portable_simd::Backend;
